"""Campaign orchestration: seeded spec fleets, engine fan-out, and the
executor chaos drills."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    campaign_specs,
    engine_chaos_drill,
    run_campaign,
)
from repro.gen.examples import fig15_lis


def test_campaign_specs_are_reproducible_and_cover_all_kinds():
    a = campaign_specs(12, seed=5)
    b = campaign_specs(12, seed=5)
    assert a == b
    assert {s.kind for specs in a for s in specs} == set(FAULT_KINDS)
    # Composed schedules appear (every sixth draws two specs).
    assert any(len(specs) == 2 for specs in a)
    assert campaign_specs(12, seed=6) != a


def test_campaign_specs_validation():
    with pytest.raises(ValueError, match="schedules"):
        campaign_specs(-1)
    with pytest.raises(ValueError, match="kinds"):
        campaign_specs(3, kinds=())


def test_run_campaign_serial_matches_parallel():
    lis = fig15_lis()
    serial = run_campaign(lis, schedules=3, backends=("trace",), seed=2)
    parallel = run_campaign(
        lis, schedules=3, backends=("trace",), seed=2, jobs=2
    )
    assert serial.ok and parallel.ok
    assert serial.trials == parallel.trials
    summary = serial.summary()
    assert summary["trials"] == 3
    assert summary["violations"] == 0
    assert "PASS" in serial.render()


def test_run_campaign_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        run_campaign(fig15_lis(), schedules=1, backends=("warp",))


def test_run_campaign_checkpoint_resume_is_identical(tmp_path):
    lis = fig15_lis()
    journal = tmp_path / "campaign.ckpt"
    first = run_campaign(
        lis, schedules=2, backends=("trace", "fast"), seed=3,
        checkpoint=journal,
    )
    # Second run must be served entirely from the journal.
    from repro.engine import AnalysisEngine

    with AnalysisEngine() as eng:
        second = run_campaign(
            lis, schedules=2, backends=("trace", "fast"), seed=3,
            engine=eng, checkpoint=journal,
        )
        assert eng.stats.checkpoint_hits == 4
        assert eng.stats.tasks == 0
    assert second.trials == first.trials


def test_engine_chaos_drill_survives_a_killed_worker():
    outcome = engine_chaos_drill(mode="kill", jobs=2)
    assert outcome["ok"], outcome
    assert outcome["survived"] and outcome["siblings_ok"]
    assert outcome["pool_rebuilds"] >= 1
    assert outcome["retries"] >= 1


def test_engine_chaos_drill_survives_a_hung_worker():
    outcome = engine_chaos_drill(mode="hang", jobs=2, op_timeout=2.0)
    assert outcome["ok"], outcome
    assert outcome["op_timeouts"] >= 1
    assert outcome["pool_rebuilds"] >= 1


def test_engine_chaos_drill_rejects_unknown_mode():
    with pytest.raises(ValueError, match="chaos mode"):
        engine_chaos_drill(mode="tsunami")
