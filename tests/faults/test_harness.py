"""Property tests: the LIS robustness invariants hold under every
seeded fault schedule, on every simulator backend, for random systems.

This is the executable form of the paper's central claim -- stalls
(congestion, void inputs, stop glitches, relay jitter) may slow a
latency-insensitive system down transiently, but can never corrupt
the valid value streams, lose or duplicate tokens, overflow a sized
queue, or change the sustainable throughput.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    BACKENDS,
    FAULT_KINDS,
    FaultSpec,
    build_schedule,
    check_invariants,
)
from repro.gen.examples import fig15_lis, uplink_downlink_lis
from repro.lis.equivalence import valid_stream
from repro.lis.trace_sim import TraceSimulator

from ..strategies import lis_systems


@st.composite
def fault_specs(draw, max_horizon: int = 28):
    return FaultSpec(
        kind=draw(st.sampled_from(FAULT_KINDS)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        horizon=draw(st.integers(min_value=0, max_value=max_horizon)),
        density=draw(
            st.floats(
                min_value=0.0, max_value=0.5, allow_nan=False
            )
        ),
        burst=draw(st.integers(min_value=1, max_value=6)),
        gap=draw(st.integers(min_value=0, max_value=8)),
    )


@st.composite
def fault_spec_lists(draw):
    return draw(st.lists(fault_specs(), min_size=1, max_size=2))


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    system=lis_systems(max_shells=4, max_channels=6, max_relays=2),
    specs=fault_spec_lists(),
)
@settings(max_examples=30)
def test_invariants_hold_on_random_systems(backend, system, specs):
    lis, make_behaviors = system
    report = check_invariants(
        lis, specs, backend=backend, behaviors=make_behaviors, measure=120
    )
    assert report.ok, [v.as_dict() for v in report.violations]
    assert report.compared_items >= 4 * len(lis.shells())


@given(
    system=lis_systems(max_shells=4, max_channels=6, max_relays=2),
    specs=fault_spec_lists(),
)
@settings(max_examples=20)
def test_no_token_loss_beyond_the_injected_stalls(system, specs):
    """Quantitative token conservation: over the same clocks, every
    node of the faulted run fires at most as often as the reference
    and the shortfall is bounded by the total injected stall count
    (each stall delays at most one firing, and delays never multiply
    token counts)."""
    lis, make_behaviors = system
    schedule = build_schedule(lis, specs)
    clocks = schedule.horizon + 120
    reference = TraceSimulator(lis, make_behaviors()).run(clocks)
    faulted = TraceSimulator(
        lis, make_behaviors(), faults=schedule.gate()
    ).run(clocks)
    for shell in lis.shells():
        ref = len(valid_stream(reference, shell))
        got = len(valid_stream(faulted, shell))
        assert got <= ref
        assert ref - got <= schedule.total_stalls + schedule.horizon


@pytest.mark.parametrize("backend", BACKENDS)
def test_composed_storm_on_the_paper_example(backend):
    lis = fig15_lis()
    specs = [
        FaultSpec("stall-adversarial", seed=13, horizon=40, burst=8),
        FaultSpec("void-storm", seed=13, horizon=40, burst=10),
        FaultSpec("relay-jitter", seed=13, horizon=40, density=0.5),
    ]
    report = check_invariants(lis, specs, backend=backend)
    assert report.ok, [v.as_dict() for v in report.violations]
    assert report.total_stalls > 0
    # fig15: q=1 degrades the MST to 3/4 and the harness band is
    # anchored on that practical rate, not the 5/6 ideal.
    assert report.actual < report.ideal


def test_queue_sizing_assignment_is_respected_under_faults():
    """The harness validates a concrete ``size_queues`` fix: with the
    optimal extra tokens installed, the post-recovery rate must reach
    the ideal MST and occupancy must stay within the enlarged bound."""
    from repro.core import size_queues

    lis = fig15_lis()
    solution = size_queues(lis, method="exact")
    report = check_invariants(
        lis,
        FaultSpec("stall-random", seed=21, density=0.3),
        backend="trace",
        extra_tokens=solution.extra_tokens,
    )
    assert report.ok, [v.as_dict() for v in report.violations]
    # With the fix installed the practical MST equals the ideal, so the
    # harness band pins the measured rate to the ideal (mod window eps).
    assert report.actual == report.ideal
    assert report.min_rate >= report.ideal - report.epsilon


def test_detects_a_genuinely_divergent_run():
    """Sanity of the detector itself: feeding the faulted run different
    source data must trip the latency-equivalence check."""
    from repro.faults import default_behaviors

    lis = uplink_downlink_lis()
    seeds = iter((1, 2))

    def mismatched_behaviors():
        return default_behaviors(lis, seed=next(seeds))

    report = check_invariants(
        lis,
        FaultSpec("stall-random", seed=1, density=0.1),
        behaviors=mismatched_behaviors,
    )
    assert not report.ok
    assert any(
        v.invariant == "latency-equivalence" for v in report.violations
    )


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        check_invariants(
            fig15_lis(), FaultSpec("stall-random"), backend="quantum"
        )


def test_non_factory_behaviors_rejected():
    with pytest.raises(TypeError, match="factory"):
        check_invariants(
            fig15_lis(), FaultSpec("stall-random"), behaviors={"A": None}
        )


def test_report_as_dict_is_json_able():
    import json

    report = check_invariants(fig15_lis(), FaultSpec("stall-bursty", seed=3))
    payload = report.as_dict()
    text = json.dumps(payload)
    assert json.loads(text)["ok"] is True
    assert payload["specs"][0]["kind"] == "stall-bursty"
