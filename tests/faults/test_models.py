"""Unit tests for the fault specs and compiled schedules."""

import pytest

from repro.core import LisGraph
from repro.faults import (
    FAULT_KINDS,
    FaultSpec,
    adversarial_stalls,
    build_schedule,
    bursty_stalls,
    default_behaviors,
    random_stalls,
    relay_jitter,
    stop_glitches,
    structural_nodes,
    void_storm,
)
from repro.gen.examples import fig15_lis


def chain_lis():
    lis = LisGraph()
    lis.add_shell("src")
    lis.add_shell("mid", latency=2)
    lis.add_shell("dst")
    lis.add_channel("src", "mid", relays=1)  # 0
    lis.add_channel("mid", "dst")  # 1
    return lis


def test_spec_round_trips_through_json_dict():
    spec = FaultSpec(
        "stall-bursty", seed=7, horizon=32, density=0.1, burst=3, gap=5,
        nodes=("A", "B"),
    )
    assert FaultSpec.from_dict(spec.as_dict()) == spec


def test_spec_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("meteor-strike")
    with pytest.raises(ValueError, match="horizon"):
        FaultSpec("stall-random", horizon=-1)
    with pytest.raises(ValueError, match="density"):
        FaultSpec("stall-random", density=1.5)
    with pytest.raises(ValueError, match="burst"):
        FaultSpec("stall-bursty", burst=0)


def test_factories_cover_every_kind():
    made = {
        f().kind
        for f in (
            random_stalls,
            bursty_stalls,
            adversarial_stalls,
            void_storm,
            stop_glitches,
            relay_jitter,
        )
    }
    assert made == set(FAULT_KINDS)


def test_structural_nodes_use_the_shared_backend_naming():
    nodes = structural_nodes(chain_lis())
    assert "src" in nodes and "mid" in nodes and "dst" in nodes
    assert ("stage", "mid", 0) in nodes  # latency-2 pipeline stage
    assert ("rs", 0, 0) in nodes  # relay station on channel 0
    assert nodes == sorted(nodes, key=repr)


def test_build_schedule_is_deterministic():
    lis = fig15_lis()
    specs = [random_stalls(seed=11), bursty_stalls(seed=3)]
    a = build_schedule(lis, specs)
    b = build_schedule(lis, specs)
    assert a.stalls == b.stalls
    assert a.horizon == b.horizon == 48
    assert a.total_stalls > 0
    # A different seed draws a different schedule.
    c = build_schedule(lis, [random_stalls(seed=12)])
    assert c.stalls != build_schedule(lis, [random_stalls(seed=11)]).stalls


def test_schedule_quiet_after_horizon():
    schedule = build_schedule(fig15_lis(), random_stalls(seed=1, horizon=16))
    assert all(t < 16 for clocks in schedule.stalls.values() for t in clocks)
    for node in schedule.stalls:
        assert not schedule.stalled(node, 16)
        assert not schedule.stalled(node, 1_000)


def test_void_storm_and_stop_glitch_target_the_environment_edges():
    lis = chain_lis()
    storm = build_schedule(lis, void_storm(seed=2))
    assert set(storm.stalls) <= {"src"}  # only the source shell
    glitch = build_schedule(lis, stop_glitches(seed=2, density=0.9))
    assert set(glitch.stalls) <= {"dst"}  # only the sink shell


def test_relay_jitter_targets_relay_stations_only():
    schedule = build_schedule(fig15_lis(), relay_jitter(seed=5, density=0.9))
    assert schedule.stalls
    assert all(
        isinstance(n, tuple) and n[0] == "rs" for n in schedule.stalls
    )


def test_adversarial_stalls_focus_on_the_critical_cycle():
    from repro.core import actual_mst

    lis = fig15_lis()
    result = actual_mst(lis)
    crit = {e.src for e in result.critical} | {e.dst for e in result.critical}
    schedule = build_schedule(lis, adversarial_stalls(seed=9))
    assert schedule.stalls
    assert set(schedule.stalls) <= crit


def test_explicit_nodes_override_matches_str_and_repr():
    lis = chain_lis()
    schedule = build_schedule(
        lis,
        FaultSpec(
            "stall-random",
            density=0.9,
            # str() form for the shell, repr() form for the tuple node.
            nodes=("src", repr(("rs", 0, 0))),
        ),
    )
    assert set(schedule.stalls) <= {"src", ("rs", 0, 0)}
    assert len(schedule.stalls) == 2


def test_mask_agrees_with_gate():
    np = pytest.importorskip("numpy")
    from repro.sim import compile_lis

    lis = fig15_lis()
    schedule = build_schedule(
        lis, [random_stalls(seed=4), relay_jitter(seed=4, density=0.8)]
    )
    compiled = compile_lis(lis)
    clocks = schedule.horizon + 8
    mask = schedule.mask(compiled, clocks)
    assert mask.shape == (clocks, compiled.n_nodes)
    assert mask.dtype == np.bool_
    for t in range(clocks):
        for i, name in enumerate(compiled.node_names):
            assert mask[t, i] == schedule.stalled(name, t)


def test_default_behaviors_are_seeded_and_stateful():
    lis = fig15_lis()
    a = default_behaviors(lis, seed=1)
    b = default_behaviors(lis, seed=1)
    c = default_behaviors(lis, seed=2)
    assert set(a) == set(lis.shells())
    assert [bh.initial for bh in a.values()] == [
        bh.initial for bh in b.values()
    ]
    assert [bh.initial for bh in a.values()] != [
        bh.initial for bh in c.values()
    ]
