"""Coverage for smaller public-API surfaces and edge paths."""

import pytest

from repro.graphs import Digraph, GraphError, induced_order
from repro.lis import ShellBehavior
from repro.soc import run_exhaustive_insertion


def test_induced_order():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")  # cycle overall...
    order = induced_order(g, ["a", "b"])  # ...but not in the subgraph
    assert order == ["a", "b"]
    with pytest.raises(GraphError):
        induced_order(g, ["a", "b", "c"])


def test_outputs_for_mapping_and_broadcast():
    behavior = ShellBehavior()
    assert behavior.outputs_for(9, [1, 3]) == {1: 9, 3: 9}
    assert behavior.outputs_for({1: "x", 3: "y"}, [1, 3]) == {1: "x", 3: "y"}
    with pytest.raises(KeyError):
        behavior.outputs_for({1: "x"}, [1, 2])


def test_exhaustive_sweep_counts_exact_timeouts():
    """A microscopic timeout forces the exact solver to give up; the
    report must count it and fall back to heuristic-only data."""
    report = run_exhaustive_insertion(
        limit=25, run_exact=True, exact_timeout=1e-9
    )
    degraded = report.degraded
    assert degraded  # the first placements include degrading ones
    assert sum(report.timeouts.values()) > 0
    summary = report.summary()
    assert summary["timeouts"] == report.timeouts
    for placement in degraded:
        # Heuristic results are always present even when exact timed out.
        assert placement.heuristic_tokens["orig"] >= 1
        for variant in ("orig", "simplified"):
            if placement.optimal_tokens.get(variant) is None:
                assert report.timeouts.get(variant, 0) > 0


def test_cli_size_greedy_method(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "sys.json"
    main(["example", "fig15", "-o", str(path)])
    capsys.readouterr()
    assert main(["size", str(path), "--method", "greedy"]) == 0
    out = capsys.readouterr().out
    assert "total tokens: 2" in out


def test_public_root_api_imports():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None or name == "__version__"


def test_root_exports_match_docs():
    """docs/API.md's package-root export block is repro.__all__, exactly."""
    import re
    from pathlib import Path

    import repro

    api_md = (
        Path(__file__).resolve().parents[1] / "docs" / "API.md"
    ).read_text()
    match = re.search(
        r"<!-- root-exports:begin -->\s*```text\n(.*?)```",
        api_md,
        re.DOTALL,
    )
    assert match, "docs/API.md lost its root-exports block"
    documented = {
        name.strip() for name in match.group(1).replace("\n", " ").split(",")
    }
    assert documented == set(repro.__all__)


def test_analysis_public_api():
    import repro
    import repro.analysis as analysis

    assert set(analysis.__all__) == {
        "Context",
        "ContextStats",
        "clear_registry",
        "context_from_json",
        "get_context",
        "global_stats",
        "reset_global_stats",
    }
    for name in analysis.__all__:
        assert getattr(analysis, name) is not None
    # The everyday names are re-exported at the package root.
    assert repro.Context is analysis.Context
    assert repro.get_context is analysis.get_context


def test_solver_registry_roundtrip():
    from repro import available_solvers, get_solver

    assert {"heuristic", "greedy", "exact", "milp"} <= set(available_solvers())
    with pytest.raises(ValueError, match="unknown method"):
        get_solver("simulated-annealing")


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
