"""The decorator frontend: @shell / @system class bodies, typed ports,
direction checking, hierarchical flattening, and error surfaces."""

import pytest

from repro.core import LisGraph, actual_mst
from repro.dsl import (
    SEP,
    Channel,
    DslError,
    Port,
    SystemBuilder,
    decl_from_lis,
    shell,
    system,
    to_system_decl,
)


@shell
class Core:
    din = Port.input()
    dout = Port.output()


@shell(latency=3)
class Deep:
    din = Port.input()
    dout = Port.output()


@system
class Ping:
    a = Core()
    b = Core()
    fwd = Channel(a, b, relays=1)
    back = Channel(b, a)


class TestShellDecorator:
    def test_plain_and_parametrized_forms(self):
        assert Core.latency == 1
        assert Deep.latency == 3

    def test_ports_are_recorded(self):
        assert Core.port("din").direction == "in"
        assert Core.port("dout").direction == "out"
        with pytest.raises(DslError, match="no port"):
            Core.port("nope")

    def test_instance_latency_override(self):
        inst = Core(latency=2)
        assert inst.latency == 2
        with pytest.raises(DslError, match="latency"):
            Core(latency=0)

    def test_unnamed_instance_has_no_name(self):
        with pytest.raises(DslError, match="name"):
            Core().name  # noqa: B018 -- the property raises


class TestSystemDecorator:
    def test_lowering_matches_hand_built(self):
        hand = LisGraph()
        hand.add_channel("a", "b", relays=1)
        hand.add_channel("b", "a")
        assert Ping.fingerprint() == hand.freeze().fingerprint()

    def test_lower_returns_frozen_graph(self):
        lis = Ping.lower()
        assert sorted(lis.shells()) == ["a", "b"]
        assert actual_mst(lis).mst is not None

    def test_channel_id_lookup(self):
        assert Ping.channel_id("a", "b") == 0
        assert Ping.channel_id("b", "a") == 1

    def test_member_access(self):
        assert Ping.member("a").type is Core
        with pytest.raises(DslError, match="no member"):
            Ping.member("zz")

    def test_duck_typed_decl_marker(self):
        decl = to_system_decl(Ping)
        assert decl.fingerprint() == Ping.fingerprint()


class TestDirectionChecks:
    def test_channel_from_input_port_rejected(self):
        with pytest.raises(DslError, match="'in' port"):

            @system
            class Bad:
                a = Core()
                b = Core()
                ch = Channel(a.din, b)

    def test_channel_into_output_port_rejected(self):
        with pytest.raises(DslError, match="'out' port"):

            @system
            class Bad:
                a = Core()
                b = Core()
                ch = Channel(a, b.dout)

    def test_explicit_ports_accepted(self):
        @system
        class Good:
            a = Core()
            b = Core()
            ch = Channel(a.dout, b.din)

        assert Good.channel_id("a", "b") == 0


class TestHierarchy:
    def test_flattening_dot_joins_names(self):
        @system
        class Pair:
            left = Core()
            right = Core()
            ch = Channel(left, right)

        @system
        class Nested:
            p = Pair()
            q = Pair()
            link = Channel(p.right, q.left, queue=2)

        lis = Nested.lower()
        assert sorted(lis.shells()) == [
            f"p{SEP}left",
            f"p{SEP}right",
            f"q{SEP}left",
            f"q{SEP}right",
        ]
        cid = Nested.channel_id(f"p{SEP}right", f"q{SEP}left")
        assert lis.queue(cid) == 2

    def test_inline_merges_namespaces(self):
        @system
        class Pair:
            left = Core()
            right = Core()
            ch = Channel(left, right)

        @system
        class Flat:
            p = Pair(inline=True)
            tail = Core()
            out = Channel(p.right, tail)

        assert sorted(Flat.lower().shells()) == ["left", "right", "tail"]

    def test_latency_survives_flattening(self):
        @system
        class Sub:
            w = Deep()
            c = Core()
            ch = Channel(w, c)

        @system
        class Top:
            s = Sub()
            loop = Channel(s.c, s.w)

        lis = Top.lower()
        assert lis.latency(f"s{SEP}w") == 3


class TestBuilderAndRoundTrip:
    def test_builder_equivalent_to_decorators(self):
        b = SystemBuilder("Ping")
        b.shell("a")
        b.shell("b")
        b.channel("a", "b", relays=1)
        b.channel("b", "a")
        assert b.build().fingerprint() == Ping.fingerprint()

    def test_decl_from_lis_round_trips(self):
        lis = Ping.lower()
        again = decl_from_lis(lis, name="Ping")
        assert again.fingerprint() == lis.fingerprint()
