"""Round-trip regression: every declarative twin lowers to a graph
byte-identical to its hand-built factory -- same canonical JSON, same
fingerprint, same (shared!) analysis Context."""

import pytest

from repro.analysis import get_context
from repro.core import actual_mst, ideal_mst
from repro.dsl import corpus_names, corpus_system, DslError
from repro.gen.declarative import (
    DECLARATIVE_TWINS,
    twin_fingerprints,
    verify_twin,
)


@pytest.mark.parametrize("name", sorted(DECLARATIVE_TWINS))
def test_twin_fingerprints_are_byte_identical(name):
    left, right = twin_fingerprints(name)
    assert left == right
    assert verify_twin(name)


@pytest.mark.parametrize("name", sorted(DECLARATIVE_TWINS))
def test_twins_share_one_analysis_context(name):
    """Identical fingerprints mean the registry hands back the *same*
    Context object -- the DSL rides the whole memoization stack."""
    hand, decl = DECLARATIVE_TWINS[name]
    ctx_hand = get_context(hand().freeze())
    ctx_decl = decl().context()
    assert ctx_hand is ctx_decl


def test_get_context_accepts_dsl_declarations_directly():
    from repro.dsl.corpus import Fig15

    assert get_context(Fig15) is get_context(Fig15.lower())


def test_fig15_analysis_matches_paper_from_dsl():
    ctx = corpus_system("fig15").context()
    assert str(ideal_mst(ctx).mst) == "5/6"
    assert str(actual_mst(ctx).mst) == "3/4"


def test_corpus_covers_all_twins():
    assert set(DECLARATIVE_TWINS) <= set(corpus_names())


def test_corpus_rejects_unknown_names():
    with pytest.raises(DslError, match="unknown"):
        corpus_system("figure-does-not-exist")


def test_cofdm_declarative_class_matches_factory():
    """The class-body COFDM (repro.soc.declarative) and the builder
    spelling lower identically."""
    from repro.soc.cofdm import cofdm_transmitter
    from repro.soc.declarative import CofdmTransmitter, cofdm_system

    hand = cofdm_transmitter().freeze().fingerprint()
    assert CofdmTransmitter.fingerprint() == hand
    assert cofdm_system().fingerprint() == hand
