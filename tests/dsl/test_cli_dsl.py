"""CLI surface of the declarative frontend: ``repro generate --dsl``
and ``repro export-rtl``."""

import json

import pytest

from repro.cli import main

DSL_SOURCE = '''\
from repro.dsl import Channel, Port, shell, system


@shell
class Core:
    din = Port.input()
    dout = Port.output()


@system
class Ping:
    a = Core()
    b = Core()
    fwd = Channel(a, b, relays=1)
    back = Channel(b, a)


@system
class Pong:
    x = Core()
    y = Core()
    go = Channel(x, y)
    no = Channel(y, x, queue=2)
'''


@pytest.fixture
def dsl_file(tmp_path):
    path = tmp_path / "systems.py"
    path.write_text(DSL_SOURCE)
    return path


def test_generate_dsl_lowers_to_json(dsl_file, tmp_path, capsys):
    out = tmp_path / "ping.json"
    args = [
        "generate", "--dsl", str(dsl_file), "--system", "Ping",
        "-o", str(out),
    ]
    assert main(args) == 0
    assert "fingerprint" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert len(doc["channels"]) == 2


def test_generate_dsl_ambiguous_root_rejected(dsl_file, tmp_path, capsys):
    args = ["generate", "--dsl", str(dsl_file), "-o", str(tmp_path / "x.json")]
    assert main(args) != 0


def test_generate_dsl_unknown_system_rejected(dsl_file, tmp_path):
    args = [
        "generate", "--dsl", str(dsl_file), "--system", "Nope",
        "-o", str(tmp_path / "x.json"),
    ]
    assert main(args) != 0


def test_generate_system_without_dsl_rejected(tmp_path):
    args = ["generate", "--system", "Ping", "-o", str(tmp_path / "x.json")]
    assert main(args) != 0


def test_generated_json_round_trips_through_analyze(
    dsl_file, tmp_path, capsys
):
    out = tmp_path / "ping.json"
    assert main(
        ["generate", "--dsl", str(dsl_file), "--system", "Ping",
         "-o", str(out)]
    ) == 0
    capsys.readouterr()
    assert main(["analyze", str(out)]) == 0
    assert "MST" in capsys.readouterr().out


def test_export_rtl_corpus_name(tmp_path, capsys):
    out = tmp_path / "rtl"
    assert main(["export-rtl", "fig1", "-o", str(out), "--clocks", "40"]) == 0
    capsys.readouterr()
    assert (out / "Fig1.sv").exists()
    assert (out / "Fig1_tb.sv").exists()


def test_export_rtl_with_check(tmp_path, capsys):
    out = tmp_path / "rtl"
    args = ["export-rtl", "fig15", "-o", str(out), "--check", "--clocks", "80"]
    assert main(args) == 0
    text = capsys.readouterr().out
    assert "PASS" in text
    assert (out / "Fig15.sv").exists()


def test_export_rtl_from_dsl_file(dsl_file, tmp_path, capsys):
    out = tmp_path / "rtl"
    args = ["export-rtl", f"{dsl_file}:Pong", "-o", str(out)]
    assert main(args) == 0
    capsys.readouterr()
    assert (out / "Pong.sv").exists()


def test_export_rtl_unknown_system_rejected(tmp_path, capsys):
    code = main(["export-rtl", "no-such-system", "-o", str(tmp_path / "rtl")])
    assert code != 0
    assert "cannot load system" in capsys.readouterr().err
