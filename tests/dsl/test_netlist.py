"""The backend-neutral netlist and its occupancy-count simulator.

``build_netlist`` is the single structural elaboration shared by the
SystemVerilog emitter and by :class:`NetlistSimulator`; pinning the
simulator cycle-exactly against the reference backends therefore pins
the *RTL structure itself* (same queues, same depths, same reset
tokens, same firing rule)."""

import pytest

from repro.core import LisGraph
from repro.dsl import (
    NetlistSimulator,
    build_netlist,
    corpus_system,
    simulate_netlist,
)
from repro.lis import RtlSimulator
from repro.sim import differential_check


def _fig15():
    return corpus_system("fig15").lower()


class TestBuildNetlist:
    def test_nodes_match_rtl_simulator(self):
        lis = _fig15()
        net = build_netlist(lis, {})
        assert {n.name for n in net.nodes} == set(RtlSimulator(lis).nodes)

    def test_final_hop_capacity_encodes_queue_and_extra(self):
        lis = LisGraph()
        lis.add_channel("A", "B", queue=2)
        net = build_netlist(lis.freeze(), {0: 1})
        (queue,) = net.queues
        assert queue.final and queue.channel == 0
        # capacity = queue + extra + 1 reset placeholder
        assert queue.capacity == 4
        assert queue.reset_tokens == 1

    def test_relay_hops_are_two_deep(self):
        lis = LisGraph()
        lis.add_channel("A", "B", relays=2)
        net = build_netlist(lis.freeze(), {})
        hops = net.channel_hops(0)
        assert len(hops) == 3
        assert [q.capacity for q in hops[:-1]] == [2, 2]
        assert [q.reset_tokens for q in hops[:-1]] == [0, 0]
        assert hops[-1].final

    def test_latency_expands_to_stage_queues(self):
        lis = LisGraph()
        lis.add_shell("B", latency=3)
        lis.add_channel("A", "B")
        net = build_netlist(lis.freeze(), {})
        stages = [n for n in net.nodes if n.kind == "stage"]
        assert len(stages) == 2


class TestNetlistSimulator:
    @pytest.mark.parametrize(
        "name", ["fig1", "fig15", "uplink_downlink", "elastic_pipeline"]
    )
    def test_cycle_exact_against_reference_simulators(self, name):
        lis = corpus_system(name).lower()
        report = differential_check(lis, clocks=100, check_netlist=True)
        assert report.agreed, report.failures
        assert "netlist" in report.throughput

    def test_firing_counts_match_rtl_simulator(self):
        lis = _fig15()
        clocks = 80
        rtl = RtlSimulator(lis)
        rtl.run(clocks)
        net = NetlistSimulator.from_lis(lis)
        net.run(clocks)
        assert net.firing_counts() == {
            n: sum(rtl.trace.fired[n]) for n in rtl.nodes
        }

    def test_occupancy_matches_rtl_simulator(self):
        lis = corpus_system("elastic_pipeline").lower()
        rtl = RtlSimulator(lis)
        rtl.run(100)
        net = NetlistSimulator.from_lis(lis)
        net.run(100)
        assert net.max_queue_occupancy() == rtl.max_queue_occupancy()

    def test_extra_tokens_change_behavior(self):
        lis = _fig15()
        base = simulate_netlist(lis, clocks=100)
        fixed = simulate_netlist(lis, clocks=100, extra_tokens={5: 1, 6: 1})
        assert fixed.throughput("A") >= base.throughput("A")

    def test_behaviors_are_rejected(self):
        lis = _fig15()
        with pytest.raises(ValueError):
            NetlistSimulator.from_lis(lis, {"A": object()})
