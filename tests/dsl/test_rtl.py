"""The SystemVerilog exporter: identifier sanitization, export
structure, golden firing counts, and the cycle-exact cross-check."""

import pytest

from repro.core import LisGraph
from repro.dsl import (
    DslError,
    corpus_system,
    crosscheck_rtl,
    export_rtl,
    sv_identifier,
)


class TestSvIdentifier:
    def test_plain_names_pass_through(self):
        assert sv_identifier("fft_in") == "fft_in"

    def test_dots_and_dashes_become_underscores(self):
        assert sv_identifier("mem.ctrl") == "mem_ctrl"
        assert sv_identifier("tx-filter") == "tx_filter"

    def test_leading_digit_is_prefixed(self):
        assert sv_identifier("3stage").startswith("n")

    def test_keywords_are_prefixed(self):
        assert sv_identifier("module") == "u_module"
        assert sv_identifier("always") == "u_always"

    def test_collisions_are_deduped(self):
        used = set()
        first = sv_identifier("a.b", used)
        second = sv_identifier("a_b", used)
        assert first != second
        assert len({first, second}) == 2


class TestExportRtl:
    def test_export_structure(self):
        export = export_rtl(corpus_system("fig15"), clocks=80)
        assert set(export.files) == {"Fig15.sv", "Fig15_tb.sv"}
        assert export.top == "Fig15"
        assert export.clocks == 80
        assert len(export.fingerprint) == 64
        assert set(export.modules) == {"A", "B", "C", "D", "E"}

    def test_golden_counts_come_from_the_netlist_model(self):
        export = export_rtl(corpus_system("fig15"), clocks=80)
        # fig15 sustains 3/4 after warmup; exact counts are pinned.
        assert export.golden["A"] == 60

    def test_design_contains_all_modules(self):
        export = export_rtl(corpus_system("fig15"), clocks=80)
        design = export.files["Fig15.sv"]
        assert "module lis_channel_queue" in design
        assert "module lis_relay_station" in design
        for module in export.modules.values():
            assert f"module {module}" in design
        assert "module Fig15" in design

    def test_testbench_embeds_golden_counts(self):
        export = export_rtl(corpus_system("fig1"), clocks=40)
        assert export.testbench == "Fig1_tb"
        tb = export.files["Fig1_tb.sv"]
        assert "$fatal" in tb and "GOLDEN" in tb
        for count in export.golden.values():
            assert str(count) in tb

    def test_dotted_names_are_sanitized(self):
        from repro.dsl import Channel, Port, shell, system

        @shell
        class Core:
            din = Port.input()
            dout = Port.output()

        @system
        class Pair:
            left = Core()
            right = Core()
            ch = Channel(left, right)

        @system
        class Nested:
            p = Pair()
            q = Pair()
            link = Channel(p.right, q.left)
            back = Channel(q.right, p.left)

        export = export_rtl(Nested, clocks=40)
        assert "p.left" in export.golden  # dotted in the model...
        code = "\n".join(  # ...sanitized in the SV (comments may map them)
            line.split("//", 1)[0] for line in export.source().splitlines()
        )
        assert "p.left" not in code
        assert "p_left" in code

    def test_write_creates_files(self, tmp_path):
        export = export_rtl(corpus_system("fig1"), clocks=40)
        paths = export.write(tmp_path / "rtl")
        assert sorted(p.name for p in paths) == ["Fig1.sv", "Fig1_tb.sv"]
        for path in paths:
            assert path.read_text() == export.files[path.name]

    def test_accepts_raw_lis_graphs(self):
        lis = LisGraph()
        lis.add_channel("A", "B")
        export = export_rtl(lis, name="AB", clocks=20)
        assert export.top == "AB"

    def test_invalid_parameters_rejected(self):
        with pytest.raises((DslError, ValueError)):
            export_rtl(corpus_system("fig1"), clocks=0)
        with pytest.raises((DslError, ValueError)):
            export_rtl(corpus_system("fig1"), width=0)


class TestCrosscheck:
    @pytest.mark.parametrize("name", ["fig1", "fig15", "elastic_pipeline"])
    def test_corpus_systems_crosscheck_clean(self, name):
        report = crosscheck_rtl(corpus_system(name), clocks=100)
        assert report.agreed, report.failures
        assert set(report.throughput) == {
            "fast",
            "netlist",
            "rtl",
            "schedule",
            "trace",
        }

    def test_extra_tokens_flow_through(self):
        base = crosscheck_rtl(corpus_system("fig15"), clocks=100)
        fixed = crosscheck_rtl(
            corpus_system("fig15"), clocks=100, extra_tokens={5: 1, 6: 1}
        )
        assert base.agreed and fixed.agreed
        # The queue fix strictly improves measured throughput.
        assert fixed.throughput["netlist"] > base.throughput["netlist"]
