"""Multi-process DiskCache stress: one directory, many workers.

The server runs several shards (and possibly several server
*processes*) over one shared cache directory, so the cache must
tolerate concurrent writers: puts are atomic rename-into-place,
eviction and the stats read-modify-write run under an advisory
``flock``.  These tests hammer a single directory from real OS
processes and check that nothing corrupts and nothing is lost.
"""

import multiprocessing
import pickle
import sys
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.engine.cache import DiskCache

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="POSIX advisory locks required"
)

WORKERS = 4
KEY_SPACE = [f"{i:064x}" for i in range(8)]


def _expected(key: str) -> dict:
    # Content-addressed invariant: the value is a pure function of the
    # key, so concurrent writers of one key store identical bytes.
    return {"key": key, "payload": key * 10}


def _hammer(directory: str, worker_id: int, rounds: int) -> dict:
    """Interleave puts and gets over a shared key space."""
    cache = DiskCache(directory)
    stale, ok = 0, 0
    for i in range(rounds):
        key = KEY_SPACE[(worker_id + i) % len(KEY_SPACE)]
        cache.put("stress", key, _expected(key))
        probe = KEY_SPACE[(worker_id + i + 3) % len(KEY_SPACE)]
        try:
            value = cache.get("stress", probe)
        except KeyError:
            stale += 1  # not written yet: allowed, corruption is not
        else:
            assert value == _expected(probe)
            ok += 1
    return {
        "ok": ok,
        "stale": stale,
        "corrupt": cache.corrupt_entries,
    }


def _merge_stats(directory: str, merges: int) -> int:
    cache = DiskCache(directory)
    for _ in range(merges):
        cache.merge_stats(
            {"hits": 1, "ops": {"analyze": {"calls": 1}}}
        )
    return merges


def _evict_writer(directory: str, worker_id: int, entries: int) -> int:
    cache = DiskCache(directory, max_bytes=4096)
    for i in range(entries):
        cache.put(
            "evict", f"{worker_id:02d}{i:062x}", list(range(200))
        )
    cache.evict()
    return cache.evicted_entries


def _pool():
    # fork keeps module-level test functions callable in the children.
    ctx = multiprocessing.get_context("fork")
    return ProcessPoolExecutor(max_workers=WORKERS, mp_context=ctx)


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "shared-cache")


def test_concurrent_put_get_never_corrupts(cache_dir):
    rounds = 50
    with _pool() as pool:
        results = list(
            pool.map(
                _hammer,
                [cache_dir] * WORKERS,
                range(WORKERS),
                [rounds] * WORKERS,
            )
        )
    assert sum(r["corrupt"] for r in results) == 0
    assert sum(r["ok"] for r in results) > 0
    # Every key is left readable, intact, and correctly framed.
    cache = DiskCache(cache_dir)
    for key in KEY_SPACE:
        assert cache.get("stress", key) == _expected(key)
    assert cache.quarantined() == 0
    assert cache.entries() == {"stress": len(KEY_SPACE)}


def test_merge_stats_loses_no_updates(cache_dir):
    """The lost-update race: N processes x M merges must sum to
    exactly N*M -- only the advisory lock makes this exact."""
    if not hasattr(DiskCache, "_lock"):  # pragma: no cover
        pytest.skip("no advisory lock support")
    merges = 25
    with _pool() as pool:
        list(pool.map(_merge_stats, [cache_dir] * WORKERS, [merges] * WORKERS))
    stats = DiskCache(cache_dir).read_stats()
    assert stats["hits"] == WORKERS * merges
    assert stats["ops"]["analyze"]["calls"] == WORKERS * merges


def test_concurrent_eviction_respects_the_cap(cache_dir):
    entries = 30
    with _pool() as pool:
        evicted = list(
            pool.map(
                _evict_writer,
                [cache_dir] * WORKERS,
                range(WORKERS),
                [entries] * WORKERS,
            )
        )
    cache = DiskCache(cache_dir, max_bytes=4096)
    # A worker's evict can interleave with a sibling's late puts, so
    # settle the directory once more; then the cap must hold.
    cache.evict()
    assert cache.total_bytes() <= 4096
    assert sum(evicted) > 0
    for path in cache.directory.glob("*--*.pkl"):
        op, _, rest = path.name.partition("--")
        key = rest[: -len(".pkl")]
        assert cache.get(op, key) == list(range(200))
    assert cache.quarantined() == 0


def test_atomic_put_replaces_in_place(cache_dir):
    cache = DiskCache(cache_dir)
    cache.put("op", "k" * 64, {"v": 1})
    cache.put("op", "k" * 64, {"v": 2})
    assert cache.get("op", "k" * 64) == {"v": 2}
    # No temp files left behind by the rename dance.
    assert not list(cache.directory.glob(".tmp-*"))


def test_corrupt_entry_quarantined_once_across_readers(cache_dir):
    cache = DiskCache(cache_dir)
    cache.put("op", "c" * 64, {"v": 1})
    path = cache._path("op", "c" * 64)
    blob = path.read_bytes()
    path.write_bytes(blob[:-4] + b"XXXX")  # break the checksum
    with pytest.raises(KeyError):
        cache.get("op", "c" * 64)
    assert cache.corrupt_entries == 1
    assert cache.quarantined() == 1
    # The lookup path is clean again: a rewrite round-trips.
    cache.put("op", "c" * 64, {"v": 2})
    assert cache.get("op", "c" * 64) == {"v": 2}


def test_legacy_unframed_entries_still_read(cache_dir):
    cache = DiskCache(cache_dir)
    path = cache._path("op", "l" * 64)
    path.write_bytes(pickle.dumps({"old": True}))
    assert cache.get("op", "l" * 64) == {"old": True}
