"""EngineStats snapshot/delta: per-interval observability.

A long-lived process (the analysis server) needs to attribute engine
activity to individual requests without resetting the cumulative
counters other readers rely on; snapshot-before / delta-after is that
mechanism.
"""

import pytest

from repro.core.serialize import lis_to_json
from repro.engine import AnalysisEngine
from repro.engine.core import EngineStats, OpStats
from repro.gen import examples


@pytest.fixture()
def engine():
    with AnalysisEngine(jobs=1) as eng:
        yield eng


def fig1_json():
    return lis_to_json(examples.fig1_lis())


class TestOpStatsDelta:
    def test_fieldwise_subtraction(self):
        after = OpStats(
            calls=5, hits=3, misses=2, seconds=1.5, solver_calls=4
        )
        before = OpStats(
            calls=2, hits=1, misses=1, seconds=0.5, solver_calls=4
        )
        diff = after.delta(before)
        assert diff.calls == 3
        assert diff.hits == 2
        assert diff.misses == 1
        assert diff.seconds == pytest.approx(1.0)
        assert diff.solver_calls == 0


class TestSnapshot:
    def test_snapshot_is_independent(self, engine):
        engine.run([("ideal_mst", fig1_json(), None)])
        snap = engine.stats.snapshot()
        tasks_at_snap = snap.tasks
        engine.run([("actual_mst", fig1_json(), None)])
        # The live stats moved on; the snapshot did not.
        assert engine.stats.tasks == tasks_at_snap + 1
        assert snap.tasks == tasks_at_snap
        assert "actual_mst" not in snap.ops

    def test_snapshot_deep_copies_op_tables(self, engine):
        engine.run([("ideal_mst", fig1_json(), None)])
        snap = engine.stats.snapshot()
        engine.run([("ideal_mst", fig1_json(), None)])  # memo hit
        assert engine.stats.ops["ideal_mst"].hits == 1
        assert snap.ops["ideal_mst"].hits == 0


class TestDelta:
    def test_delta_attributes_exactly_the_interval(self, engine):
        engine.run([("ideal_mst", fig1_json(), None)])
        before = engine.stats.snapshot()
        engine.run([("ideal_mst", fig1_json(), None)])  # hit
        engine.run([("actual_mst", fig1_json(), None)])  # miss
        delta = engine.stats.delta(before)
        assert delta.tasks == 2
        assert delta.ops["ideal_mst"].hits == 1
        assert delta.ops["ideal_mst"].misses == 0
        assert delta.ops["actual_mst"].misses == 1
        # Cumulative view is untouched by taking the delta.
        assert engine.stats.tasks == 3

    def test_delta_drops_idle_ops(self, engine):
        engine.run([("ideal_mst", fig1_json(), None)])
        before = engine.stats.snapshot()
        engine.run([("actual_mst", fig1_json(), None)])
        delta = engine.stats.delta(before)
        assert set(delta.ops) == {"actual_mst"}

    def test_delta_drops_idle_context_counters(self, engine):
        engine.run([("ideal_mst", fig1_json(), None)])
        before = engine.stats.snapshot()
        delta = engine.stats.delta(before)
        assert delta.context == {}
        assert delta.solver == {}
        assert delta.tasks == 0

    def test_cache_served_interval_has_no_misses(self, engine):
        engine.run([("analyze", fig1_json(), None)])
        before = engine.stats.snapshot()
        engine.run([("analyze", fig1_json(), None)])
        delta = engine.stats.delta(before)
        assert delta.misses == 0
        assert delta.hits == 1

    def test_delta_of_empty_interval_renders(self, engine):
        before = engine.stats.snapshot()
        delta = engine.stats.delta(before)
        assert isinstance(delta, EngineStats)
        assert delta.as_dict()["ops"] == {}
        assert delta.hit_rate == 0.0
