"""The ``simulate_batch`` engine op: caching, parallel determinism."""

from fractions import Fraction

from repro.engine import AnalysisEngine
from repro.gen import GeneratorConfig, fig1_lis, fig15_lis, generate_lis
from repro.sim import BatchSimulator


def batch_task(lis, assignments, clocks=200, warmup=50):
    return (
        "simulate_batch",
        lis,
        {"assignments": assignments, "clocks": clocks, "warmup": warmup},
    )


def test_matches_direct_batch_simulator():
    lis = fig1_lis()
    assignments = [{}, {1: 1}]
    with AnalysisEngine() as eng:
        (result,) = eng.run([batch_task(lis, assignments, clocks=300, warmup=60)])
    direct = BatchSimulator(lis, assignments).run(360, warmup=60)
    for b in range(2):
        assert result[b]["max_occupancy"] == direct.max_queue_occupancy(b)
        for shell, rate in result[b]["throughput"].items():
            assert rate == direct.throughput(b, shell)
    assert result[0]["throughput"]["A"] == Fraction(2, 3)
    assert result[1]["throughput"]["A"] == Fraction(1)


def test_identical_batch_hits_the_cache():
    lis = fig15_lis()
    task = batch_task(lis, [{}, {5: 1, 6: 1}])
    with AnalysisEngine() as eng:
        first = eng.run([task])
        second = eng.run([task])
        assert first == second
        op = eng.stats.ops["simulate_batch"]
        assert op.calls == 2
        assert op.misses == 1
        assert op.hits == 1


def test_different_assignments_miss_the_cache():
    lis = fig15_lis()
    with AnalysisEngine() as eng:
        eng.run([batch_task(lis, [{}])])
        eng.run([batch_task(lis, [{5: 1}])])
        assert eng.stats.ops["simulate_batch"].misses == 2


def test_parallel_results_identical_and_ordered(tmp_path):
    systems = [
        generate_lis(
            GeneratorConfig(
                v=14, s=3, c=2, rs=4, rp=True, policy="scc", seed=8800 + i
            )
        )
        for i in range(5)
    ]
    tasks = [batch_task(lis, [{}, {0: 1}], clocks=120, warmup=30) for lis in systems]
    with AnalysisEngine() as serial_eng:
        serial = serial_eng.run(tasks)
    with AnalysisEngine(jobs=2) as par_eng:
        parallel = par_eng.run(tasks)
    with AnalysisEngine(jobs=2, cache_dir=tmp_path / "c") as cold_eng:
        cold = cold_eng.run(tasks)
    assert parallel == serial  # submission order, bit-for-bit
    assert cold == serial


def test_disk_cache_roundtrip(tmp_path):
    lis = fig1_lis()
    task = batch_task(lis, [{}, {1: 1}])
    with AnalysisEngine(cache_dir=tmp_path / "c") as eng:
        first = eng.run([task])
    with AnalysisEngine(cache_dir=tmp_path / "c") as warm:
        second = warm.run([task])
        assert warm.stats.ops["simulate_batch"].disk_hits == 1
    assert first == second
