"""Self-healing executor behaviour: corrupt cache entries, killed and
hung workers, per-task failure outcomes, serial degradation."""

import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.engine import AnalysisEngine, DiskCache, register_op
from repro.engine.cache import content_key
from repro.gen.examples import fig15_lis, ring_lis


# Registered at import time so forked pool workers inherit them.
def _op_flaky(ctx, options):
    if options.get("explode"):
        raise RuntimeError(f"boom on {options['explode']}")
    return {"ok": True, "tag": options.get("tag")}, {"solver_calls": 0}


def _op_kill_self(ctx, options):
    sentinel = options["sentinel"]
    if not os.path.exists(sentinel):
        fd = os.open(sentinel, os.O_CREAT | os.O_WRONLY, 0o644)
        os.close(fd)
        # Only die when running inside a pool worker; the serial
        # fallback (main process) must survive to prove degradation.
        if multiprocessing.parent_process() is not None:
            os.kill(os.getpid(), signal.SIGKILL)
    return {"survived_in": os.getpid()}, {"solver_calls": 0}


def _op_sleepy(ctx, options):
    time.sleep(float(options.get("seconds", 0.05)))
    return {"slept": True}, {"solver_calls": 0}


register_op("test_flaky", _op_flaky, overwrite=True)
register_op("test_kill_self", _op_kill_self, overwrite=True)
register_op("test_sleepy", _op_sleepy, overwrite=True)


# -- corrupt disk cache ------------------------------------------------


def _entry_files(cache_dir):
    return sorted(cache_dir.glob("*--*.pkl"))


def test_corrupt_cache_entry_quarantined_and_recomputed(tmp_path):
    lis = fig15_lis()
    cache = tmp_path / "cache"
    with AnalysisEngine(cache_dir=cache) as eng:
        clean = eng.run([("ideal_mst", lis, None)])[0]
    (entry,) = _entry_files(cache)
    blob = entry.read_bytes()
    entry.write_bytes(blob[: len(blob) // 2])  # torn write

    with AnalysisEngine(cache_dir=cache) as eng:
        again = eng.run([("ideal_mst", lis, None)])[0]
        assert eng.stats.corrupt_entries == 1
        assert eng.stats.op("ideal_mst").disk_hits == 0
        assert eng.stats.op("ideal_mst").misses == 1
    assert again.mst == clean.mst
    # The bad file moved out of the lookup path into quarantine/ and a
    # fresh, valid entry replaced it.
    disk = DiskCache(cache)
    assert disk.quarantined() == 1
    assert (cache / DiskCache.QUARANTINE_DIR / entry.name).exists()
    assert _entry_files(cache), "recomputed entry was not re-persisted"

    # Third run: served from the repaired disk entry.
    with AnalysisEngine(cache_dir=cache) as eng:
        third = eng.run([("ideal_mst", lis, None)])[0]
        assert eng.stats.op("ideal_mst").disk_hits == 1
        assert eng.stats.corrupt_entries == 0
    assert third.mst == clean.mst


def test_garbage_payload_with_valid_frame_is_quarantined(tmp_path):
    disk = DiskCache(tmp_path)
    key = content_key("analyze", "{}", None)
    disk.put("analyze", key, {"fine": 1})
    path = disk._path("analyze", key)
    # Valid frame, valid digest, but an unpicklable payload.
    payload = b"this is not a pickle"
    import hashlib

    path.write_bytes(
        DiskCache.MAGIC
        + hashlib.sha256(payload).hexdigest().encode()
        + b"\n"
        + payload
    )
    with pytest.raises(KeyError):
        disk.get("analyze", key)
    assert disk.corrupt_entries == 1
    assert disk.quarantined() == 1


def test_legacy_unframed_entries_still_readable(tmp_path):
    disk = DiskCache(tmp_path)
    key = content_key("ideal_mst", "{}", None)
    disk._path("ideal_mst", key).write_bytes(
        pickle.dumps({"legacy": True})
    )
    assert disk.get("ideal_mst", key) == {"legacy": True}
    assert disk.corrupt_entries == 0


# -- per-task failure outcomes (no sibling discard) --------------------


def _flaky_tasks(lis):
    return [
        ("test_flaky", lis, {"tag": 1}),
        ("test_flaky", lis, {"explode": "two"}),
        ("test_flaky", lis, {"tag": 3}),
        ("test_flaky", lis, {"explode": "four"}),
    ]


def test_run_attaches_exceptions_per_task_in_order():
    lis = fig15_lis()
    with AnalysisEngine() as eng:
        results = eng.run(_flaky_tasks(lis), return_exceptions=True)
    assert results[0] == {"ok": True, "tag": 1}
    assert isinstance(results[1], RuntimeError)
    assert "two" in str(results[1])
    assert results[2] == {"ok": True, "tag": 3}
    assert isinstance(results[3], RuntimeError)
    assert "four" in str(results[3])


@pytest.mark.parametrize("jobs", [1, 2])
def test_run_default_raises_first_error_after_completing_siblings(jobs):
    lis = fig15_lis()
    with AnalysisEngine(jobs=jobs) as eng:
        with pytest.raises(RuntimeError, match="two"):
            eng.run(_flaky_tasks(lis))
        # Every sibling completed and the successes were cached: the
        # batch was not abandoned at the first failure.
        stats = eng.stats.op("test_flaky")
        assert stats.misses == 2
        assert stats.failures == 2
        assert eng.stats.failures == 2
        # Re-running the successful tasks is now free.
        again = eng.run(
            [("test_flaky", lis, {"tag": 1}), ("test_flaky", lis, {"tag": 3})]
        )
        assert again == [{"ok": True, "tag": 1}, {"ok": True, "tag": 3}]
        assert eng.stats.op("test_flaky").hits == 2


def test_failures_are_not_cached():
    lis = fig15_lis()
    with AnalysisEngine() as eng:
        first = eng.run(
            [("test_flaky", lis, {"explode": "x"})], return_exceptions=True
        )
        second = eng.run(
            [("test_flaky", lis, {"explode": "x"})], return_exceptions=True
        )
        assert isinstance(first[0], RuntimeError)
        assert isinstance(second[0], RuntimeError)
        assert eng.stats.op("test_flaky").hits == 0


# -- killed workers ----------------------------------------------------


def test_sigkilled_worker_is_replayed_with_identical_results(tmp_path):
    lis = ring_lis(3, relays=1)
    sentinel = tmp_path / "first-attempt.sentinel"
    tasks = [
        ("test_kill_self", lis, {"sentinel": str(sentinel)}),
        ("ideal_mst", lis, None),
        ("actual_mst", lis, None),
    ]
    with AnalysisEngine(jobs=2) as eng:
        healed = eng.run(tasks)
        assert eng.stats.pool_rebuilds >= 1
        assert eng.stats.retries >= 1
    assert healed[0]["survived_in"] > 0
    with AnalysisEngine(jobs=2) as eng:  # clean engine, sentinel present
        clean = eng.run(tasks)
        assert eng.stats.pool_rebuilds == 0
    assert healed[1].mst == clean[1].mst
    assert healed[2].mst == clean[2].mst


def test_repeatedly_killed_op_degrades_to_serial(tmp_path):
    lis = ring_lis(3)
    sentinel = tmp_path / "never-enough.sentinel"
    tasks = [
        ("test_kill_self", lis, {"sentinel": str(sentinel)}),
        ("ideal_mst", lis, None),
    ]

    with AnalysisEngine(jobs=2, max_retries=0, retry_backoff=0.0) as eng:
        results = eng.run(tasks)
        # Zero retry budget: the pool fault immediately degrades the op
        # to in-process execution, where the kill branch is skipped.
        # The sibling may or may not have resolved before the pool
        # broke, so it can legitimately degrade too (1 or 2 fallbacks).
        assert 1 <= eng.stats.serial_fallbacks <= len(tasks)
        assert eng.stats.pool_rebuilds >= 1
    assert results[0]["survived_in"] == os.getpid()
    assert results[1].mst is not None


# -- hung workers ------------------------------------------------------


def test_hung_op_times_out_and_attaches_timeout_error():
    lis = ring_lis(3)
    tasks = [
        ("test_sleepy", lis, {"seconds": 30.0}),
        ("ideal_mst", lis, None),
    ]
    with AnalysisEngine(
        jobs=2, op_timeout=0.5, max_retries=0, retry_backoff=0.0
    ) as eng:
        results = eng.run(tasks, return_exceptions=True)
        assert eng.stats.op_timeouts >= 1
        assert eng.stats.pool_rebuilds >= 1
    assert isinstance(results[0], TimeoutError)
    assert "op_timeout" in str(results[0])
    assert results[1].mst is not None


def test_fast_ops_run_within_generous_timeout():
    lis = ring_lis(3)
    with AnalysisEngine(jobs=2, op_timeout=60.0) as eng:
        results = eng.run(
            [
                ("test_sleepy", lis, {"seconds": 0.01}),
                ("ideal_mst", lis, None),
            ]
        )
        assert eng.stats.op_timeouts == 0
    assert results[0] == {"slept": True}
