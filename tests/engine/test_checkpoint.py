"""Checkpoint/resume protocol: journal integrity, crash tolerance, and
byte-for-byte identical resumed sweeps."""

import json

import pytest

from repro.engine import AnalysisEngine, Checkpoint, run_checkpointed, task_key
from repro.gen.examples import fig15_lis, ring_lis


def _tasks(n=8):
    return [
        ("actual_mst", ring_lis(3, relays=1), {"extra_tokens": {"0": i}})
        for i in range(n)
    ]


def test_task_key_matches_engine_content_hash():
    lis = fig15_lis()
    a = task_key(("ideal_mst", lis, None))
    b = task_key(("ideal_mst", lis, None))
    assert a == b and len(a) == 64
    assert task_key(("actual_mst", lis, None)) != a
    assert task_key(("ideal_mst", lis, {"x": 1})) != a


def test_round_trip_and_resume_serves_from_journal(tmp_path):
    journal = tmp_path / "run.ckpt"
    tasks = _tasks()
    with AnalysisEngine() as eng:
        first = run_checkpointed(eng, tasks, journal)
        assert eng.stats.checkpoint_hits == 0
    with AnalysisEngine() as eng:
        second = run_checkpointed(eng, tasks, journal)
        assert eng.stats.checkpoint_hits == len(tasks)
        assert eng.stats.tasks == 0  # nothing recomputed
    assert [r.mst for r in first] == [r.mst for r in second]


def test_interrupted_sweep_resumes_byte_for_byte(tmp_path):
    """The acceptance criterion: kill a sweep partway, resume it with
    the same checkpoint file, and the final output must equal the
    uninterrupted run's output byte for byte."""
    import pickle

    # mst_sweep returns plain {label: Fraction} dicts, so equal results
    # pickle to equal bytes (no identity-dependent containers).  The
    # results are compared element-wise: pickling the whole list would
    # drag cross-element object sharing (pickle's memo) into the bytes.
    tasks = [
        ("mst_sweep", ring_lis(3, relays=1), {"queues": [1, 1 + i]})
        for i in range(10)
    ]
    with AnalysisEngine() as eng:
        uninterrupted = eng.run(tasks)

    journal = tmp_path / "interrupted.ckpt"
    # "Crash" after the first 4 tasks: only they reach the journal.
    with AnalysisEngine() as eng:
        run_checkpointed(eng, tasks[:4], journal, chunk=2)
    torn = journal.read_bytes()
    assert len(Checkpoint(journal)) == 4

    with AnalysisEngine() as eng:
        resumed = run_checkpointed(eng, tasks, journal, chunk=2)
        assert eng.stats.checkpoint_hits == 4
        assert eng.stats.tasks == 6
    assert [pickle.dumps(r) for r in resumed] == [
        pickle.dumps(r) for r in uninterrupted
    ]
    # The journal grew strictly by appending: resume never rewrites
    # history (torn-tail crashes stay recoverable).
    assert journal.read_bytes().startswith(torn)


def test_torn_final_line_is_skipped_and_recovered(tmp_path):
    journal = tmp_path / "torn.ckpt"
    tasks = _tasks(4)
    with AnalysisEngine() as eng:
        complete = run_checkpointed(eng, tasks, journal)
    blob = journal.read_bytes()
    journal.write_bytes(blob[: len(blob) - 40])  # SIGKILL mid-append

    ckpt = Checkpoint(journal)
    assert ckpt.corrupt_lines == 1
    assert len(ckpt) == 3
    with AnalysisEngine() as eng:
        resumed = run_checkpointed(eng, tasks, ckpt)
        assert eng.stats.checkpoint_hits == 3
        assert eng.stats.tasks == 1
    assert [r.mst for r in resumed] == [r.mst for r in complete]


def test_tampered_record_fails_its_digest_and_is_skipped(tmp_path):
    journal = tmp_path / "tampered.ckpt"
    tasks = _tasks(2)
    with AnalysisEngine() as eng:
        run_checkpointed(eng, tasks, journal)
    lines = journal.read_text().splitlines()
    record = json.loads(lines[0])
    record["data"] = record["data"][:-8] + "AAAAAAA="  # flip payload bits
    lines[0] = json.dumps(record, separators=(",", ":"))
    journal.write_text("\n".join(lines) + "\n")

    ckpt = Checkpoint(journal)
    assert ckpt.corrupt_lines == 1
    assert len(ckpt) == 1


def test_duplicate_tasks_share_one_journal_record(tmp_path):
    journal = tmp_path / "dupes.ckpt"
    lis = fig15_lis()
    tasks = [("ideal_mst", lis, None)] * 3
    with AnalysisEngine() as eng:
        results = run_checkpointed(eng, tasks, journal)
    assert len({r.mst for r in results}) == 1
    assert len(Checkpoint(journal)) == 1


def test_checkpoint_accepts_path_or_instance(tmp_path):
    journal = tmp_path / "forms.ckpt"
    tasks = _tasks(2)
    with AnalysisEngine() as eng:
        a = run_checkpointed(eng, tasks, str(journal))
    with AnalysisEngine() as eng:
        b = run_checkpointed(eng, tasks, Checkpoint(journal))
        assert eng.stats.checkpoint_hits == 2
    assert [r.mst for r in a] == [r.mst for r in b]


def test_exhaustive_sweep_checkpoint_resume(tmp_path):
    """End-to-end through the Table V runner: an interrupted exhaustive
    sweep resumed from its checkpoint equals the uninterrupted sweep."""
    from repro.soc import run_exhaustive_insertion

    clean = run_exhaustive_insertion(run_exact=False, limit=6)
    journal = tmp_path / "table5.ckpt"
    # Interrupted attempt: only the first 3 placements complete.
    run_exhaustive_insertion(run_exact=False, limit=3, checkpoint=journal)
    with_resume = run_exhaustive_insertion(
        run_exact=False, limit=6, checkpoint=journal
    )
    assert with_resume.to_csv() == clean.to_csv()

    def stable(summary):  # wall-clock timings legitimately differ
        return {k: v for k, v in summary.items() if "cpu" not in k}

    assert stable(with_resume.summary()) == stable(clean.summary())


def test_fig17_runner_checkpoint_resume(tmp_path):
    from repro.experiments import fig17_fixed_queue_recovery

    kwargs = dict(q_values=[1, 2], trials=2, rs=2, v=8, s=2, c=1)
    clean = fig17_fixed_queue_recovery(**kwargs)
    journal = tmp_path / "fig17.ckpt"
    first = fig17_fixed_queue_recovery(**kwargs, checkpoint=journal)
    resumed = fig17_fixed_queue_recovery(**kwargs, checkpoint=journal)
    assert first == clean
    assert resumed == clean
