"""The analysis engine: caching, invalidation, parallel determinism."""

import json
from fractions import Fraction

import pytest

from repro.engine import AnalysisEngine, analyze_many
from repro.engine.cache import DiskCache, LruCache, canonical_options, content_key
from repro.gen import GeneratorConfig, fig1_lis, fig15_lis, generate_lis


def systems(n=6):
    return [
        generate_lis(
            GeneratorConfig(
                v=16, s=3, c=2, rs=4, rp=True, policy="scc", seed=7000 + i
            )
        )
        for i in range(n)
    ]


# -- content keys -----------------------------------------------------------


def test_content_key_sensitive_to_op_options_and_system():
    from repro.core import lis_to_json

    lis = lis_to_json(fig1_lis())
    base = content_key("ideal_mst", lis, None)
    assert content_key("actual_mst", lis, None) != base
    assert content_key("ideal_mst", lis, {"x": 1}) != base
    other = fig1_lis()
    other.set_queue(1, 2)
    assert content_key("ideal_mst", lis_to_json(other), None) != base
    # ... and deterministic for equal content.
    assert content_key("ideal_mst", lis_to_json(fig1_lis()), None) == base


def test_canonical_options_orders_keys_and_encodes_fractions():
    a = canonical_options({"target": Fraction(5, 6), "timeout": None})
    b = canonical_options({"timeout": None, "target": Fraction(5, 6)})
    assert a == b
    assert "5/6" in a


def test_lru_cache_evicts_oldest():
    cache = LruCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a"
    cache.put("c", 3)
    assert "b" not in cache and "a" in cache and "c" in cache


# -- hit/miss accounting ----------------------------------------------------


def test_memory_cache_hit_miss_accounting():
    lis = fig1_lis()
    with AnalysisEngine() as eng:
        first = eng.ideal_mst(lis)
        second = eng.ideal_mst(lis)
        assert first.mst == second.mst == Fraction(1)
        op = eng.stats.ops["ideal_mst"]
        assert op.calls == 2
        assert op.misses == 1
        assert op.hits == 1
        assert eng.stats.hit_rate == 0.5


def test_mutation_invalidates_cached_result():
    """set_queue / insert_relay change the content hash, so the engine
    can never serve a stale analysis for the mutated system."""
    lis = fig1_lis()
    with AnalysisEngine() as eng:
        assert eng.actual_mst(lis).mst == Fraction(2, 3)

        lis.set_queue(1, 2)  # the Fig. 6 repair
        assert eng.actual_mst(lis).mst == Fraction(1)

        lis.insert_relay(0)  # new relay station: degraded again
        third = eng.actual_mst(lis)
        assert third.mst < Fraction(1)

        op = eng.stats.ops["actual_mst"]
        assert op.hits == 0 and op.misses == 3


def test_batch_coalesces_duplicate_tasks():
    lis = fig1_lis()
    with AnalysisEngine() as eng:
        results = eng.map("ideal_mst", [lis, fig1_lis(), lis])
        assert [r.mst for r in results] == [Fraction(1)] * 3
        op = eng.stats.ops["ideal_mst"]
        assert op.misses == 1
        assert op.coalesced == 2


def test_cached_results_are_isolated_copies():
    lis = fig1_lis()
    with AnalysisEngine() as eng:
        first = eng.analyze(lis)
        first.slack.clear()  # caller mangles its copy...
        second = eng.analyze(lis)
        assert second.slack  # ...the cache is unharmed


# -- serial == parallel == cached ------------------------------------------


def test_parallel_results_identical_to_serial(tmp_path):
    pool = systems(6)
    with AnalysisEngine() as serial_eng:
        serial = serial_eng.map("analyze", pool)
    with AnalysisEngine(jobs=4) as par_eng:
        parallel = par_eng.map("analyze", pool)
    with AnalysisEngine(cache_dir=tmp_path / "c") as cold_eng:
        cold = cold_eng.map("analyze", pool)
    with AnalysisEngine(cache_dir=tmp_path / "c") as warm_eng:
        warm = warm_eng.map("analyze", pool)
        warm_op = warm_eng.stats.ops["analyze"]

    for a, b, c, d in zip(serial, parallel, cold, warm):
        for report in (b, c, d):
            assert report.topology is a.topology
            assert report.ideal == a.ideal
            assert report.practical == a.practical
            assert (report.fix is None) == (a.fix is None)
            if a.fix is not None:
                assert report.fix.cost == a.fix.cost
                assert report.fix.extra_tokens == a.fix.extra_tokens
    # The warm engine served everything from disk.
    assert warm_op.misses == 0
    assert warm_op.disk_hits == len(pool)


def test_size_queues_through_engine_matches_direct_call():
    from repro.core import size_queues

    lis = fig15_lis()
    direct = size_queues(lis, method="exact")
    with AnalysisEngine(jobs=2) as eng:
        sized = eng.size_queues(lis, method="exact")
    assert sized.cost == direct.cost == 2
    assert sized.extra_tokens == direct.extra_tokens
    assert sized.achieved == direct.achieved


def test_heterogeneous_batch_keeps_order():
    lis = fig1_lis()
    with AnalysisEngine() as eng:
        ideal, actual, fixed = eng.run(
            [
                ("ideal_mst", lis, None),
                ("actual_mst", lis, None),
                ("actual_mst", lis, {"extra_tokens": {1: 1}}),
            ]
        )
    assert ideal.mst == Fraction(1)
    assert actual.mst == Fraction(2, 3)
    assert fixed.mst == Fraction(1)


def test_analyze_many_convenience():
    pool = systems(3)
    reports = analyze_many(pool)
    assert len(reports) == 3
    for lis, report in zip(pool, reports):
        assert report.ideal == Fraction(1)
        assert report.channels == len(lis.channels())


def test_worker_exceptions_propagate():
    from repro.core.npcomplete import reduce_vertex_cover_to_qs
    from repro.core.solvers import ExactTimeout

    red = reduce_vertex_cover_to_qs(
        "abc", [("a", "b"), ("b", "c"), ("a", "c")], 3
    )
    with AnalysisEngine() as eng:
        with pytest.raises(ExactTimeout):
            eng.size_queues(red.lis, method="exact", timeout=1e-9)


def test_unknown_op_rejected():
    with AnalysisEngine() as eng:
        with pytest.raises(ValueError, match="unknown op"):
            eng.run([("transmogrify", fig1_lis(), None)])


# -- observability ----------------------------------------------------------


def test_stats_render_and_persist(tmp_path):
    cache = tmp_path / "cache"
    with AnalysisEngine(cache_dir=cache) as eng:
        eng.map("ideal_mst", systems(3))
        text = eng.stats.render()
    assert "ideal_mst" in text and "hit rate" in text

    stats = json.loads((cache / "stats.json").read_text())
    assert stats["tasks"] == 3
    assert stats["ops"]["ideal_mst"]["misses"] == 3

    # A second engine accumulates into the same counters.
    with AnalysisEngine(cache_dir=cache) as eng2:
        eng2.map("ideal_mst", systems(3))
    stats = json.loads((cache / "stats.json").read_text())
    assert stats["tasks"] == 6
    assert stats["ops"]["ideal_mst"]["disk_hits"] == 3


def test_disk_cache_inventory(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("ideal_mst", "k" * 64, {"x": 1})
    entries = cache.entries()
    assert entries == {"ideal_mst": 1}
    assert cache.total_bytes() > 0


def test_solver_call_counters(tmp_path):
    lis = fig15_lis()
    with AnalysisEngine() as eng:
        eng.size_queues(lis, method="heuristic")
        assert eng.stats.solver_calls == 1
        eng.analyze(lis)
        assert eng.stats.solver_calls == 2  # analyze sized its fix
