"""Balanced binary words: mechanical-word normal forms and checks."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.schedule import is_balanced, mechanical_word, word_offset, word_rate


def test_word_rate_exact_fraction():
    assert word_rate((1, 0, 1, 1)) == Fraction(3, 4)
    assert word_rate([True, False]) == Fraction(1, 2)
    assert word_rate((0, 0)) == 0
    assert word_rate((1,)) == 1


def test_empty_word_rejected():
    with pytest.raises(ValueError, match="empty"):
        word_rate(())
    with pytest.raises(ValueError, match="empty"):
        is_balanced(())
    with pytest.raises(ValueError, match="empty"):
        word_offset(())


def test_balanced_examples():
    assert is_balanced((1, 0, 1, 0, 1))  # rate 3/5 Sturmian period
    assert is_balanced((1, 1, 1, 0))
    assert is_balanced((0, 0, 0))
    assert is_balanced((1, 1))
    # Two 1s adjacent and two 0s adjacent at rate 1/2: unbalanced.
    assert not is_balanced((1, 1, 0, 0))
    assert not is_balanced((1, 1, 0, 1, 0, 0))


def test_mechanical_word_validation():
    with pytest.raises(ValueError, match="period"):
        mechanical_word(1, 0)
    with pytest.raises(ValueError, match="outside"):
        mechanical_word(5, 4)
    with pytest.raises(ValueError, match="outside"):
        mechanical_word(-1, 4)


def test_mechanical_word_basics():
    assert mechanical_word(0, 3) == (0, 0, 0)
    assert mechanical_word(3, 3) == (1, 1, 1)
    assert mechanical_word(3, 4) == (0, 1, 1, 1)
    assert mechanical_word(3, 4, length=8) == (0, 1, 1, 1, 0, 1, 1, 1)


@given(
    p=st.integers(min_value=0, max_value=12),
    q=st.integers(min_value=1, max_value=12),
    offset=st.integers(min_value=0, max_value=11),
)
def test_mechanical_words_are_balanced_at_stated_rate(p, q, offset):
    if p > q:
        p, q = q, p
    word = mechanical_word(p, q, offset)
    assert len(word) == q
    assert word_rate(word) == Fraction(p, q)
    assert is_balanced(word)


@given(
    p=st.integers(min_value=0, max_value=10),
    q=st.integers(min_value=1, max_value=10),
    offset=st.integers(min_value=0, max_value=9),
)
def test_word_offset_round_trips_mechanical_words(p, q, offset):
    if p > q:
        p, q = q, p
    word = mechanical_word(p, q, offset)
    found = word_offset(word)
    assert found is not None
    assert mechanical_word(p, q, found) == word


def test_word_offset_none_for_unbalanced():
    assert word_offset((1, 1, 0, 0)) is None


def test_rotations_of_balanced_word_stay_balanced():
    word = mechanical_word(2, 5)
    for r in range(5):
        rotated = word[r:] + word[:r]
        assert is_balanced(rotated)
        assert word_offset(rotated) is not None
