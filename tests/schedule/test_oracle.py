"""The analytic schedule oracle: exactness against the analytic MST,
cycle-exact prediction of the simulators, balanced firing words, and
numpy-vs-reference derivation equality."""

from fractions import Fraction

import pytest
from hypothesis import assume, given, settings

from repro.analysis import get_context
from repro.core import actual_mst, size_queues
from repro.core.scheduling import ScheduleError
from repro.gen import fig1_lis, fig15_lis, ring_lis, uplink_downlink_lis
from repro.lis import TraceSimulator, get_backend, measured_throughput
from repro.schedule import (
    derive_schedule,
    derive_schedule_reference,
    is_balanced,
    mechanical_word,
    word_offset,
    word_rate,
)
from tests.strategies import lis_systems

PAPER_EXAMPLES = (
    fig1_lis,
    fig15_lis,
    lambda: ring_lis(5, relays=3),
    uplink_downlink_lis,
)


def oracles_equal(a, b):
    """Structural equality of two derivations of the same system."""
    assert a.transient == b.transient
    assert a.hyperperiod == b.hyperperiod
    assert set(a.node_names) == set(b.node_names)
    for node in a.node_names:
        assert a.firing_word(node) == b.firing_word(node), node
        assert a.firing_plan(node, a.transient + 2 * a.hyperperiod) == (
            b.firing_plan(node, a.transient + 2 * a.hyperperiod)
        ), node
    assert a.max_queue_occupancy() == b.max_queue_occupancy()
    assert set(a.occ_channels) == set(b.occ_channels)
    for channel in a.occ_channels:
        assert a.occupancy_distribution(channel) == (
            b.occupancy_distribution(channel)
        ), channel


# ----------------------------------------------------------------------
# Deterministic paper examples
# ----------------------------------------------------------------------


def test_fig15_oracle_exact_rate_and_period():
    oracle = derive_schedule(fig15_lis())
    assert oracle.transient == 0
    assert oracle.hyperperiod == 4
    assert oracle.min_rate() == Fraction(3, 4)
    assert oracle.throughput("A") == Fraction(3, 4)
    rates = oracle.shell_throughputs()
    assert set(rates.values()) == {Fraction(3, 4)}
    assert oracle.warmup_needed == oracle.transient == 0


def test_oracle_matches_pure_reference_on_paper_examples():
    for make in PAPER_EXAMPLES:
        lis = make()
        oracles_equal(derive_schedule(lis), derive_schedule_reference(lis))


def test_oracle_rate_equals_analytic_mst_on_paper_examples():
    for make in PAPER_EXAMPLES:
        lis = make()
        assert derive_schedule(lis).min_rate() == actual_mst(lis).mst


def test_firing_words_are_balanced_mechanical_rotations():
    oracle = derive_schedule(fig15_lis())
    for node in oracle.node_names:
        word = oracle.firing_word(node)
        assert word_rate(word) == oracle.throughput(node)
        assert is_balanced(word), node
        assert word_offset(word) is not None, node


def test_firings_consistent_with_firing_plan():
    oracle = derive_schedule(fig15_lis())
    for node in ("A", "B"):
        plan = oracle.firing_plan(node, 37)
        assert oracle.firings(node, 37) == sum(plan)
        assert oracle.firings(node, 37, warmup=11) == sum(plan[11:])
    with pytest.raises(ValueError, match="warmup"):
        oracle.firings("A", 10, warmup=20)


def test_firings_predict_simulator_exactly():
    lis = ring_lis(5, relays=3)
    oracle = derive_schedule(lis)
    sim = TraceSimulator(lis)
    sim.run(97)
    for shell in lis.shells():
        assert oracle.firings(shell, 97) == sum(sim.trace.fired[shell])
        assert oracle.firing_plan(shell, 97) == sim.trace.fired[shell]


def test_peak_occupancy_equals_simulator_exactly():
    for make in PAPER_EXAMPLES:
        lis = make()
        oracle = derive_schedule(lis)
        sim = TraceSimulator(lis)
        sim.run(oracle.transient + oracle.hyperperiod)
        assert oracle.max_queue_occupancy() == sim.max_queue_occupancy()


def test_occupancy_distribution_is_a_distribution():
    oracle = derive_schedule(fig15_lis())
    assert oracle.occ_channels
    for channel in oracle.occ_channels:
        dist = oracle.occupancy_distribution(channel)
        assert sum(dist.values()) == 1
        assert all(level >= 0 for level in dist)
        assert max(dist) <= oracle.max_queue_occupancy()[channel]
    with pytest.raises(KeyError, match="no observable queue"):
        oracle.occupancy_distribution(10_000)


def test_extra_tokens_shift_the_steady_state():
    lis = fig15_lis()
    fix = size_queues(lis, method="exact").extra_tokens
    oracle = derive_schedule(lis, extra_tokens=fix)
    assert oracle.min_rate() == actual_mst(lis, fix).mst == Fraction(5, 6)
    assert derive_schedule(lis).min_rate() == Fraction(3, 4)


def test_budget_exhaustion_raises_schedule_error():
    with pytest.raises(ScheduleError, match="no periodic marking"):
        derive_schedule(fig15_lis(), max_steps=1)


def test_context_memoizes_the_oracle():
    from repro.analysis import Context, ContextStats

    # A fresh, registry-independent context with private counters --
    # get_context() memoizes contexts process-wide, so a shared one may
    # already hold the oracle from an earlier test.
    ctx = Context(fig15_lis(), stats=ContextStats())
    first = ctx.schedule_oracle()
    assert ctx.schedule_oracle() is first
    assert ctx.stats.count("schedule", "miss") == 1
    assert ctx.stats.count("schedule", "hit") == 1
    fix = size_queues(ctx, method="exact").extra_tokens
    other = ctx.schedule_oracle(fix)
    assert other is not first
    assert ctx.schedule_oracle(dict(fix)) is other  # key canonicalized
    assert measured_throughput(ctx, "A", backend="schedule") == Fraction(3, 4)


# ----------------------------------------------------------------------
# Hypothesis differential suite (random systems)
# ----------------------------------------------------------------------


@given(system=lis_systems(max_shells=5, max_channels=8))
@settings(deadline=None)
def test_random_systems_schedule_rate_is_exact_mst(system):
    """On every (weakly connected) generated system the oracle's rate
    equals the analytic MST as an exact Fraction, and the simulation
    backends land within the finite-horizon tolerance."""
    lis, _ = system
    assume(get_backend("schedule").supports(lis))
    from repro.lis import crossvalidate

    oracle = get_context(lis).schedule_oracle()
    assert oracle.min_rate() == actual_mst(lis).mst
    report = crossvalidate(lis, clocks=200, warmup=80)
    assert report["agreed"], report
    assert report["schedule"] == report["analytic"]


@given(system=lis_systems(max_shells=4, max_channels=6))
@settings(deadline=None)
def test_random_systems_peak_occupancy_exact(system):
    """Exact-Fraction (integer) equality of the oracle's peak queue
    occupancy with the simulator's, once the horizon covers one full
    transient + hyperperiod."""
    lis, _ = system
    assume(get_backend("schedule").supports(lis))
    oracle = get_context(lis).schedule_oracle()
    sim = TraceSimulator(lis)
    sim.run(oracle.transient + oracle.hyperperiod)
    assert oracle.max_queue_occupancy() == sim.max_queue_occupancy()


@given(system=lis_systems(max_shells=4, max_channels=6, max_latency=2))
@settings(max_examples=50, deadline=None)
def test_random_systems_numpy_matches_reference(system):
    """The compiled-array walk and the pure marked-graph walk derive
    the identical decomposition."""
    lis, _ = system
    oracles_equal(derive_schedule(lis), derive_schedule_reference(lis))


@given(system=lis_systems(max_shells=4, max_channels=6))
@settings(max_examples=50, deadline=None)
def test_random_systems_words_have_balanced_normal_form(system):
    """Every steady-state firing word carries the exact throughput as
    its density, and a balanced word of that exact rate exists (the
    mechanical word) -- ASAP words themselves need not be balanced
    (``1100`` shows up on tiny rings), so balancedness is only asserted
    when it holds, via the offset round-trip."""
    lis, _ = system
    assume(get_backend("schedule").supports(lis))
    oracle = get_context(lis).schedule_oracle()
    for node in oracle.node_names:
        word = oracle.firing_word(node)
        rate = word_rate(word)
        assert rate == oracle.throughput(node)
        normal = mechanical_word(rate.numerator, rate.denominator)
        assert is_balanced(normal)
        assert word_rate(normal) == rate
        if is_balanced(word):
            offset = word_offset(word)
            assert offset is not None
            assert mechanical_word(sum(word), len(word), offset) == word
        else:
            assert word_offset(word) is None
