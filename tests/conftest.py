"""Shared test configuration: Hypothesis profiles.

* ``dev`` (default) -- the library default of 100 examples, with the
  deadline disabled (simulation-heavy properties have long tails).
* ``ci`` -- bounded examples for continuous integration; select with
  ``HYPOTHESIS_PROFILE=ci``.
* ``thorough`` -- a deeper sweep for local soak runs.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile("dev", max_examples=100, deadline=None)
settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("thorough", max_examples=500, deadline=None)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
