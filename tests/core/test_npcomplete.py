"""Tests for the Vertex-Cover -> Queue-Sizing reduction (Section V)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import actual_mst, ideal_mst, size_queues
from repro.core.cycles import deficient_cycles
from repro.core.npcomplete import (
    IDEAL_REDUCTION_MST,
    PBLOCK_TABLE,
    classify_pblocks,
    cover_to_qs_solution,
    is_vertex_cover,
    minimum_vertex_cover,
    qs_solution_to_cover,
    reduce_vertex_cover_to_qs,
)


def triangle():
    return reduce_vertex_cover_to_qs("abc", [("a", "b"), ("b", "c"), ("a", "c")], 2)


def single_edge():
    return reduce_vertex_cover_to_qs("uv", [("u", "v")], 1)


def test_reduction_rejects_self_loops_and_unknown_vertices():
    with pytest.raises(ValueError):
        reduce_vertex_cover_to_qs("a", [("a", "a")], 1)
    with pytest.raises(ValueError):
        reduce_vertex_cover_to_qs("a", [("a", "z")], 1)


def test_reduction_collapses_duplicate_edges():
    red = reduce_vertex_cover_to_qs("uv", [("u", "v"), ("v", "u")], 1)
    assert len(red.vc_edges) == 1


def test_reduction_structure():
    red = single_edge()
    # 2 vertices * 2 shells + 5 limiter shells.
    assert red.lis.system.number_of_nodes() == 9
    # 2 vertex channels + 2 edge channels + 5 limiter channels.
    assert len(red.lis.channels()) == 9
    # Each edge-construct channel carries one relay station.
    for c1, c2 in red.edge_channels.values():
        assert red.lis.relays(c1) == 1
        assert red.lis.relays(c2) == 1
    # Sources/sinks: construct transitions are pure (paper's step b).
    sys = red.lis.system
    for v in red.vc_vertices:
        assert sys.in_degree((v, "a")) == 0
        assert sys.out_degree((v, "b")) == 0


def test_ideal_mst_pinned_to_five_sixths():
    assert ideal_mst(single_edge().lis).mst == IDEAL_REDUCTION_MST
    assert ideal_mst(triangle().lis).mst == IDEAL_REDUCTION_MST


def test_fig12_cycle_present():
    """Per VC edge, one doubled cycle with 6 places and 4 tokens whose
    sizable backedges are exactly the two vertex constructs."""
    red = single_edge()
    mg = red.lis.doubled_marked_graph()
    vertex_channels = set(red.vertex_channel.values())
    fig12 = [
        r
        for r in deficient_cycles(mg, IDEAL_REDUCTION_MST)
        if r.length == 6 and r.tokens == 4 and r.channels <= vertex_channels
    ]
    assert len(fig12) == 1
    assert fig12[0].channels == vertex_channels
    assert fig12[0].deficit(IDEAL_REDUCTION_MST) == 1


def test_cover_yields_qs_solution():
    """Proof direction b: a vertex cover fixes the doubled graph."""
    red = triangle()
    cover = {"a", "b"}  # covers all three triangle edges
    extra = cover_to_qs_solution(red, cover)
    assert actual_mst(red.lis, extra).mst >= IDEAL_REDUCTION_MST


def test_non_cover_fails_to_fix():
    red = triangle()
    not_cover = {"a"}  # edge (b, c) uncovered
    extra = cover_to_qs_solution(red, not_cover)
    assert actual_mst(red.lis, extra).mst < IDEAL_REDUCTION_MST


def test_qs_solution_maps_back_to_cover():
    """Proof direction a: an optimal QS solution induces a cover."""
    red = triangle()
    solution = size_queues(red.lis, method="exact")
    assert solution.restores_target
    cover = qs_solution_to_cover(red, solution.extra_tokens)
    assert is_vertex_cover(red.vc_edges, cover)
    assert len(cover) <= solution.cost


def test_optimal_qs_cost_equals_min_cover_size_on_triangle():
    red = triangle()
    solution = size_queues(red.lis, method="exact")
    assert solution.cost == len(minimum_vertex_cover("abc", red.vc_edges)) == 2


def test_minimum_vertex_cover_solver():
    assert minimum_vertex_cover("ab", [("a", "b")]) <= {"a", "b"}
    assert len(minimum_vertex_cover("abcd", [("a", "b"), ("c", "d")])) == 2
    star_edges = [("hub", x) for x in "abc"]
    assert minimum_vertex_cover("abc" "h", []) == set()
    assert minimum_vertex_cover(["hub", "a", "b", "c"], star_edges) == {"hub"}


def test_pblock_table_matches_paper():
    assert PBLOCK_TABLE["P1"].tokens == 2 and PBLOCK_TABLE["P1"].places == 3
    assert PBLOCK_TABLE["P2"].tokens == 4 and PBLOCK_TABLE["P2"].places == 3
    assert PBLOCK_TABLE["P3"].tokens == 2 and PBLOCK_TABLE["P3"].places == 2
    assert PBLOCK_TABLE["P4"].tokens == 2 and PBLOCK_TABLE["P4"].places == 2


def test_pblock_decomposition_accounts_for_all_construct_cycles():
    """Every doubled cycle in the construct region decomposes into
    P-blocks whose published token/place sums match the cycle exactly
    (after the paper's P4->P3 normalization, valid because direction
    switches pair up: #P3 == #P4)."""
    red = triangle()
    mg = red.lis.doubled_marked_graph()
    from repro.core.cycles import cycle_records

    checked = 0
    for record in cycle_records(mg):
        counts = classify_pblocks(red, record)
        if counts is None or sum(counts.values()) == 0:
            continue
        assert counts["P3"] == counts["P4"]
        expected_tokens = sum(
            PBLOCK_TABLE[name].tokens * n for name, n in counts.items()
        )
        expected_places = sum(
            PBLOCK_TABLE[name].places * n for name, n in counts.items()
        )
        assert record.tokens == expected_tokens
        assert record.length == expected_places
        checked += 1
    assert checked >= 3  # at least the three Fig. 12 cycles


@st.composite
def small_vc_instances(draw):
    n = draw(st.integers(min_value=2, max_value=4))
    vertices = [f"v{i}" for i in range(n)]
    possible = [
        (vertices[i], vertices[j])
        for i in range(n)
        for j in range(i + 1, n)
    ]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=4, unique=True)
    )
    return vertices, edges


@given(small_vc_instances())
@settings(max_examples=15, deadline=None)
def test_reduction_preserves_optimum(instance):
    """Optimal QS cost on the reduction == minimum vertex cover size."""
    vertices, edges = instance
    red = reduce_vertex_cover_to_qs(vertices, edges, len(vertices))
    solution = size_queues(red.lis, method="exact")
    optimum_cover = minimum_vertex_cover(vertices, edges)
    assert solution.restores_target
    assert solution.cost == len(optimum_cover)
    # And the recovered cover really covers.
    cover = qs_solution_to_cover(red, solution.extra_tokens)
    assert is_vertex_cover(edges, cover)
