"""The canonical naming module (repro.core.naming) is the single
source of node-name conventions for every expanded-system consumer:
lowerings, simulators, fault injection, the DSL and the RTL exporter.
These tests pin the conventions and the deterministic orderings."""

from repro.core import LisGraph
from repro.core.naming import (
    relay_name,
    sink_shells,
    source_shells,
    stage_name,
    structural_nodes,
)


def _pipeline():
    lis = LisGraph()
    lis.add_shell("B", latency=3)
    lis.add_channel("A", "B", relays=2)
    lis.add_channel("B", "C")
    return lis


def test_relay_and_stage_names_are_tuples():
    assert relay_name(4, 1) == ("rs", 4, 1)
    assert stage_name("B", 0) == ("stage", "B", 0)
    # Distinct namespaces: a relay can never collide with a stage.
    assert relay_name(0, 0) != stage_name(0, 0)


def test_structural_nodes_cover_shells_stages_and_relays():
    lis = _pipeline()
    nodes = structural_nodes(lis)
    assert set(nodes) == {
        "A",
        "B",
        "C",
        stage_name("B", 0),
        stage_name("B", 1),
        relay_name(0, 0),
        relay_name(0, 1),
    }
    # Deterministic: repr-sorted, and stable across calls.
    assert nodes == sorted(nodes, key=repr)
    assert nodes == structural_nodes(lis)


def test_structural_nodes_match_rtl_simulator_nodes():
    """The RTL simulator expands the same structure; the two node sets
    must agree exactly (this is the hoisting contract)."""
    from repro.lis import RtlSimulator

    lis = _pipeline()
    sim = RtlSimulator(lis)
    assert set(structural_nodes(lis)) == set(sim.nodes)


def test_source_and_sink_shells():
    lis = _pipeline()
    assert source_shells(lis) == ["A"]
    assert sink_shells(lis) == ["C"]


def test_closed_loop_falls_back_to_all_shells():
    lis = LisGraph()
    lis.add_channel("X", "Y")
    lis.add_channel("Y", "X")
    assert source_shells(lis) == ["X", "Y"]
    assert sink_shells(lis) == ["X", "Y"]
