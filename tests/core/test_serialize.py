"""Tests for LIS JSON serialization."""

from fractions import Fraction

import pytest

from repro.core import LisGraph, actual_mst, ideal_mst
from repro.core.serialize import (
    lis_from_json,
    lis_to_json,
    load_lis,
    save_lis,
)
from repro.gen import fig1_lis, fig15_lis


def test_roundtrip_preserves_structure():
    lis = fig15_lis()
    lis.set_queue(3, 4)
    clone = lis_from_json(lis_to_json(lis))
    assert clone.system.number_of_nodes() == lis.system.number_of_nodes()
    assert len(clone.channels()) == len(lis.channels())
    assert ideal_mst(clone).mst == ideal_mst(lis).mst
    assert actual_mst(clone).mst == actual_mst(lis).mst
    assert clone.queue(3) == 4


def test_roundtrip_preserves_channel_ids():
    """Channel ids are array indices, so solutions stay meaningful."""
    lis = fig1_lis()
    clone = lis_from_json(lis_to_json(lis))
    for cid in lis.channel_ids():
        original = lis.channel(cid)
        restored = clone.channel(cid)
        assert (str(original.src), str(original.dst)) == (
            restored.src,
            restored.dst,
        )
        assert original.data["relays"] == restored.data["relays"]


def test_roundtrip_preserves_latency():
    lis = LisGraph()
    lis.add_shell("m", latency=3)
    lis.add_channel("m", "n")
    clone = lis_from_json(lis_to_json(lis))
    assert clone.latency("m") == 3
    assert clone.latency("n") == 1


def test_default_queue_in_document():
    lis = LisGraph(default_queue=2)
    lis.add_channel("a", "b")
    lis.add_channel("a", "b", queue=5)
    clone = lis_from_json(lis_to_json(lis))
    assert clone.default_queue == 2
    assert clone.queue(0) == 2
    assert clone.queue(1) == 5


def test_implicit_shells_from_channels():
    clone = lis_from_json(
        '{"channels": [{"src": "x", "dst": "y"}]}'
    )
    assert set(clone.shells()) == {"x", "y"}
    assert clone.queue(0) == 1


def test_save_and_load(tmp_path):
    path = tmp_path / "system.json"
    save_lis(fig1_lis(), path)
    clone = load_lis(path)
    assert actual_mst(clone).mst == Fraction(2, 3)
