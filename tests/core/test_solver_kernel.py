"""Differential properties of the bitset-compiled TD kernel.

The pure-Python solvers (``exact-ref`` / ``heuristic-ref``) are the
oracle: on random abstract instances and on instances lowered from
random whole systems, the kernel must return the same optimal cost
(exact), bit-for-bit identical weights (heuristic), and row-by-row
identical feasibility verdicts (``check_batch`` vs ``is_solution``).
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import get_context
from repro.core.solvers import (
    ExactTimeout,
    NodeLimitReached,
    compile_td,
    get_solver,
    kernel_enabled,
)
from repro.core.solvers.exact import solve_td_exact_reference_instance
from repro.core.solvers.heuristic import _descend
from repro.core.solvers.kernel import TdKernel
from repro.core.token_deficit import (
    InfeasibleError,
    TokenDeficitInstance,
    build_td_instance,
)
from repro.engine import AnalysisEngine, solve_exact_portfolio

from tests.strategies import lis_graphs


@st.composite
def td_instances(draw, max_cycles: int = 8, max_channels: int = 8):
    """A random feasible TD instance: every cycle is covered by at
    least one channel (uncovered cycles are dropped, mirroring what
    simplification guarantees for real systems)."""
    n_cycles = draw(st.integers(min_value=1, max_value=max_cycles))
    n_channels = draw(st.integers(min_value=1, max_value=max_channels))
    sets: dict[int, set[int]] = {}
    for cid in range(n_channels):
        cover = draw(
            st.sets(
                st.integers(min_value=0, max_value=n_cycles - 1),
                max_size=n_cycles,
            )
        )
        if cover:
            sets[cid] = cover
    covered = set().union(*sets.values()) if sets else set()
    deficits = {
        idx: draw(st.integers(min_value=1, max_value=4)) for idx in covered
    }
    return TokenDeficitInstance(deficits=deficits, sets=sets)


def clone(instance: TokenDeficitInstance) -> TokenDeficitInstance:
    return TokenDeficitInstance(
        deficits=dict(instance.deficits),
        sets={cid: set(cov) for cid, cov in instance.sets.items()},
        forced=dict(instance.forced),
    )


@given(td_instances())
@settings(deadline=None)
def test_kernel_exact_cost_matches_reference(instance):
    if instance.is_trivial:
        return
    kern_weights, kern_stats = get_solver("exact").solve_instance(
        clone(instance), timeout=60
    )
    ref_weights, ref_stats = solve_td_exact_reference_instance(
        clone(instance), timeout=60
    )
    # Same optimum; witnesses may differ (search-order ties).
    assert sum(kern_weights.values()) == sum(ref_weights.values())
    assert instance.is_solution(kern_weights)
    assert instance.is_solution(ref_weights)
    for stats in (kern_stats, ref_stats):
        assert {
            "nodes_explored",
            "table_hits",
            "bound_cuts",
            "batch_checks",
            "backend",
        } <= set(stats)


@given(td_instances())
@settings(deadline=None)
def test_kernel_heuristic_matches_descend_bit_for_bit(instance):
    kern = compile_td(clone(instance))
    assert kern.solve_heuristic() == _descend(clone(instance))


@given(
    td_instances(),
    st.lists(
        st.dictionaries(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=4),
            max_size=8,
        ),
        min_size=1,
        max_size=6,
    ),
)
@settings(deadline=None)
def test_check_batch_agrees_with_is_solution(instance, assignments):
    kern = compile_td(clone(instance))
    # Mix in the two solver outputs so feasible rows are well covered.
    assignments = assignments + [
        kern.solve_heuristic(),
        get_solver("exact").solve_instance(clone(instance), timeout=60)[0],
    ]
    verdicts = kern.check_batch(assignments)
    assert len(list(verdicts)) == len(assignments)
    for weights, verdict in zip(assignments, verdicts):
        assert bool(verdict) == instance.is_solution(weights)
    assert kern.stats.batch_checks == len(assignments)


@given(lis_graphs(max_shells=4, max_channels=7))
@settings(deadline=None)
def test_kernel_agrees_on_lowered_systems(lis):
    """End-to-end: instances lowered from random whole systems."""
    try:
        instance = build_td_instance(lis, simplify=True)
    except InfeasibleError:
        return
    if instance.is_trivial:
        return
    kern_weights, _ = get_solver("exact").solve_instance(
        clone(instance), timeout=60
    )
    ref_weights, _ = solve_td_exact_reference_instance(
        clone(instance), timeout=60
    )
    assert sum(kern_weights.values()) == sum(ref_weights.values())
    assert compile_td(clone(instance)).solve_heuristic() == _descend(
        clone(instance)
    )


# ----------------------------------------------------------------------
# Directed unit behavior
# ----------------------------------------------------------------------


def _hard_instance(n: int = 7) -> TokenDeficitInstance:
    """Pairwise-overlapping covers with uniform deficits -- enough
    branching to exercise the table, bound, and node limit."""
    deficits = {i: 2 for i in range(n)}
    sets = {
        100 + i: {i, (i + 1) % n, (i + 3) % n} for i in range(n)
    }
    return TokenDeficitInstance(deficits=deficits, sets=sets)


def test_compile_rejects_uncovered_cycles():
    with pytest.raises(InfeasibleError):
        compile_td(
            TokenDeficitInstance(deficits={0: 1, 1: 1}, sets={5: {0}})
        )


def test_compile_layout_and_reverse_index():
    instance = TokenDeficitInstance(
        deficits={0: 1, 1: 3, 2: 2},
        sets={10: {0, 1}, 7: {1, 2}, 99: {2}},
    )
    kern = compile_td(instance)
    # Rows by decreasing deficit, columns by ascending channel id.
    assert kern.cycle_ids == (1, 2, 0)
    assert kern.deficits == (3, 2, 1)
    assert kern.channels == (7, 10, 99)
    assert kern.covering_channels(1) == frozenset({7, 10})
    assert kern.covering_channels(2) == frozenset({7, 99})
    assert kern.root_branch_channels() == (7, 10)
    # Masks are consistent transposes of each other.
    for row in range(kern.n_cycles):
        for col in range(kern.n_channels):
            assert bool(kern.cover_mask(row) & (1 << col)) == bool(
                kern.channel_mask(col) & (1 << row)
            )


def test_node_limit_raises_and_portfolio_recovers():
    instance = _hard_instance()
    kern = compile_td(clone(instance))
    with pytest.raises(NodeLimitReached):
        kern.solve_exact(node_limit=1)
    full, _ = compile_td(clone(instance)).solve_exact()
    assert instance.is_solution(full)


def test_deadline_overshoot_is_reported():
    kern = compile_td(_hard_instance(9))
    with pytest.raises(ExactTimeout) as excinfo:
        kern.solve_exact(deadline=time.monotonic() - 1.0)
    assert excinfo.value.overshoot >= 0.0


def test_kernel_env_gate(monkeypatch):
    monkeypatch.setenv("REPRO_TD_KERNEL", "0")
    assert not kernel_enabled()
    instance = _hard_instance(5)
    weights, stats = get_solver("exact").solve_instance(
        clone(instance), timeout=60
    )
    assert stats["backend"] == "reference"
    monkeypatch.setenv("REPRO_TD_KERNEL", "1")
    kweights, kstats = get_solver("exact").solve_instance(
        clone(instance), timeout=60
    )
    assert kstats["backend"] == "kernel"
    assert sum(weights.values()) == sum(kweights.values())


def test_registry_reference_solvers_registered():
    assert get_solver("exact-ref").name == "exact-ref"
    assert get_solver("heuristic-ref").name == "heuristic-ref"


def test_solver_stats_are_uniform_across_registry():
    """Every registered solver reports the same counter keys, so the
    engine and ``repro stats`` render one table (zeros included)."""
    instance = _hard_instance(4)
    for name in ("heuristic", "heuristic-ref", "greedy", "exact",
                 "exact-ref", "milp"):
        try:
            _, stats = get_solver(name).solve_instance(
                clone(instance), timeout=60
            )
        except ImportError:  # milp without scipy
            continue
        assert {
            "nodes_explored",
            "table_hits",
            "bound_cuts",
            "batch_checks",
        } <= set(stats), name


def test_portfolio_matches_exact_on_a_system():
    from repro.gen import GeneratorConfig, generate_lis

    lis = generate_lis(
        GeneratorConfig(
            v=20, s=3, c=1, rs=6, rp=True, policy="scc", seed=11
        )
    )
    ctx = get_context(lis)
    expected = get_solver("exact").solve(lis, timeout=60)
    with AnalysisEngine(jobs=1) as engine:
        tokens, stats = solve_exact_portfolio(
            ctx, engine=engine, timeout=60, node_limit=0
        )
    assert sum(tokens.values()) == expected.cost
    assert stats["portfolio"] in (True, False)
    from repro.core import actual_mst, ideal_mst

    assert actual_mst(lis, tokens).mst >= ideal_mst(lis).mst


def test_portfolio_falls_back_on_non_collapsible_systems():
    """Intra-SCC relay stations defeat the rule-4 collapse; the
    portfolio must degrade to the full graph like collapse="auto"."""
    from repro.gen.examples import fig15_lis

    lis = fig15_lis()
    ctx = get_context(lis)
    assert not ctx.is_collapsible()
    expected = get_solver("exact").solve(lis, timeout=60)
    tokens, stats = solve_exact_portfolio(lis, timeout=60)
    assert sum(tokens.values()) == expected.cost
    # Forced fan-out must agree too.
    tokens, _ = solve_exact_portfolio(lis, timeout=60, node_limit=0)
    assert sum(tokens.values()) == expected.cost


def test_context_td_kernel_is_cached():
    from repro.gen import GeneratorConfig, generate_lis

    lis = generate_lis(
        GeneratorConfig(
            v=16, s=2, c=1, rs=3, rp=True, policy="scc", seed=5
        )
    )
    ctx = get_context(lis)
    first = ctx.td_kernel()
    assert isinstance(first, TdKernel)
    assert ctx.td_kernel() is first
    # The unsimplified variant is a distinct artifact (no forcing).
    assert ctx.td_kernel(simplify=False) is not first
    assert ctx.td_kernel(simplify=False).forced == {}
