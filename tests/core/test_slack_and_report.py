"""Tests for pipelining slack and the full analysis report."""

from fractions import Fraction

import pytest

from repro.core import (
    AnalysisReport,
    TopologyClass,
    analyze,
    channel_slack,
    ideal_mst,
    pipelining_slack,
)
from repro.core.lis_graph import LisGraph
from repro.gen import fig1_lis, fig15_lis, ring_lis, tree_lis


def test_slack_unlimited_off_cycles():
    lis = fig1_lis()  # acyclic system graph
    slack = pipelining_slack(lis)
    assert slack == {0: None, 1: None}
    assert channel_slack(lis, 0) is None


def test_slack_on_plain_ring():
    """A 6-ring at target 1/2 tolerates 6 extra places per channel."""
    lis = ring_lis(6)
    slack = pipelining_slack(lis, target=Fraction(1, 2))
    assert all(v == 6 for v in slack.values())
    # At target 1 every channel is tight.
    tight = pipelining_slack(lis, target=Fraction(1))
    assert all(v == 0 for v in tight.values())


def test_slack_prices_in_existing_relays():
    lis = ring_lis(6, relays=2)  # mean 6/8 = 3/4
    slack = pipelining_slack(lis, target=Fraction(3, 4))
    assert all(v == 0 for v in slack.values())
    relaxed = pipelining_slack(lis, target=Fraction(1, 2))
    assert all(v == 4 for v in relaxed.values())  # 6/0.5 - 8


def test_slack_respected_by_insertion():
    """Using exactly the slack keeps the ideal MST; +1 drops it."""
    lis = ring_lis(5)
    target = Fraction(5, 8)
    slack = pipelining_slack(lis, target=target)
    budget = slack[0]
    assert budget == 3
    trial = lis.copy()
    trial.insert_relay(0, budget)
    assert ideal_mst(trial).mst >= target
    trial.insert_relay(0, 1)
    assert ideal_mst(trial).mst < target


def test_slack_minimum_over_cycles():
    # A channel shared by a tight cycle and a loose one gets the tight
    # cycle's budget.
    lis = LisGraph.from_edges(
        [("a", "b"), ("b", "a"), ("b", "c"), ("c", "a")]
    )
    lis.insert_relay(0)  # a->b now has a relay: 2-cycle mean 2/3
    slack = pipelining_slack(lis, target=Fraction(1, 2))
    # Channel 0 on cycles {a,b} (2 tokens, 3 places: budget 1) and
    # {a,b,c} (3 tokens, 4 places: budget 2): min is 1.
    assert slack[0] == 1
    assert slack[1] == 1
    assert slack[2] == 2  # only on the 3-cycle
    assert slack[3] == 2


def test_slack_validates_target():
    with pytest.raises(ValueError):
        pipelining_slack(ring_lis(3), target=Fraction(2))
    with pytest.raises(KeyError):
        channel_slack(ring_lis(3), 999)


def test_slack_with_core_latency():
    lis = LisGraph()
    lis.add_shell("m", latency=3)
    lis.add_shell("n")
    lis.add_channel("m", "n")
    lis.add_channel("n", "m")
    # Cycle: 2 tokens, 4 places (2 hops + 2 stages); at 1/3: budget 2.
    slack = pipelining_slack(lis, target=Fraction(1, 3))
    assert slack == {0: 2, 1: 2}


def test_analyze_report_fields_fig15():
    lis = fig15_lis()
    report = analyze(lis, method="exact")
    assert isinstance(report, AnalysisReport)
    assert report.degraded
    assert report.topology is TopologyClass.NETWORK_OF_SCCS
    assert report.ideal == Fraction(5, 6)
    assert report.practical == Fraction(3, 4)
    assert report.bottlenecks == {0, 5, 6}
    assert report.fix.cost == 2
    assert report.critical_path is not None
    text = report.render(lis)
    assert "BOTTLENECK" in text
    assert "Recommended queue sizing" in text
    assert "+1" in text


def test_analyze_report_healthy_system():
    lis = tree_lis(depth=2, relays_per_channel=2)
    report = analyze(lis)
    assert not report.degraded
    assert report.fix is None
    assert report.bottlenecks == frozenset()
    text = report.render(lis)
    assert "Recommended" not in text
    assert "slack=inf" in text


def test_cli_analyze_full(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "sys.json"
    main(["example", "fig15", "-o", str(path)])
    capsys.readouterr()
    assert main(["analyze", str(path), "--full"]) == 0
    out = capsys.readouterr().out
    assert "BOTTLENECK" in out
    assert "practical MST: 3/4" in out
