"""Optimality-preservation invariants of the §VII-A simplifications.

The paper's simplification rules are only legitimate because they never
change the optimal solution cost.  These properties check exactly
that, against brute force on abstract instances and against the
unsimplified exact solve on whole generated systems.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import size_queues
from repro.core.solvers.exact import solve_td_exact
from repro.gen import GeneratorConfig, generate_lis
from tests.core.test_solvers import brute_force_optimum, td_instances


@given(td_instances())
@settings(max_examples=60, deadline=None)
def test_simplify_preserves_optimal_cost(inst):
    """forced tokens + optimum of the residual == optimum of the raw
    instance, for the full rule set."""
    raw_optimum = brute_force_optimum(inst)
    simplified = copy.deepcopy(inst)
    simplified.simplify()
    residual = solve_td_exact(simplified).cost
    assert sum(simplified.forced.values()) + residual == raw_optimum


@given(td_instances(), st.sampled_from([("subset",), ("singleton",)]))
@settings(max_examples=40, deadline=None)
def test_each_rule_alone_preserves_optimal_cost(inst, rules):
    raw_optimum = brute_force_optimum(inst)
    simplified = copy.deepcopy(inst)
    simplified.simplify(rules)
    residual = solve_td_exact(simplified).cost
    assert sum(simplified.forced.values()) + residual == raw_optimum


@given(td_instances())
@settings(max_examples=30, deadline=None)
def test_simplify_is_idempotent(inst):
    once = copy.deepcopy(inst)
    once.simplify()
    twice = copy.deepcopy(once)
    twice.simplify()
    assert once.deficits == twice.deficits
    assert once.forced == twice.forced
    assert {k: set(v) for k, v in once.sets.items()} == {
        k: set(v) for k, v in twice.sets.items()
    }


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_scc_collapse_preserves_exact_cost_on_whole_systems(seed):
    """Rule 4 end-to-end: solving the collapsed system is exactly as
    good as solving the full doubled graph (q = 1 baselines)."""
    lis = generate_lis(
        GeneratorConfig(
            v=18, s=3, c=1, rs=4, rp=True, policy="scc", seed=seed
        )
    )
    collapsed = size_queues(lis, method="exact", collapse="always", timeout=60)
    direct = size_queues(lis, method="exact", collapse="never", timeout=60)
    assert collapsed.restores_target and direct.restores_target
    assert collapsed.cost == direct.cost
