"""Cross-solver properties on randomly generated whole systems."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import actual_mst, ideal_mst, size_queues
from repro.gen import GeneratorConfig, generate_lis


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_all_solvers_restore_and_order_correctly(seed):
    lis = generate_lis(
        GeneratorConfig(
            v=20, s=3, c=1, rs=4, rp=True, policy="scc", seed=seed
        )
    )
    costs = {}
    for method in ("heuristic", "greedy", "exact", "milp"):
        solution = size_queues(lis, method=method, timeout=60)
        assert solution.restores_target, (seed, method)
        # The solution is verified against the real doubled graph.
        assert (
            actual_mst(lis, solution.extra_tokens).mst
            == ideal_mst(lis).mst
        )
        costs[method] = solution.cost
    assert costs["milp"] == costs["exact"]
    assert costs["heuristic"] >= costs["exact"]
    assert costs["greedy"] >= costs["exact"]


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_solutions_are_minimal_under_token_removal(seed):
    """Dropping any single token from an exact solution reopens a
    deficiency -- exact solutions contain no dead weight."""
    lis = generate_lis(
        GeneratorConfig(
            v=16, s=2, c=1, rs=3, rp=True, policy="scc", seed=seed
        )
    )
    solution = size_queues(lis, method="exact", timeout=60)
    if not solution.extra_tokens:
        return
    target = solution.target
    for cid in solution.extra_tokens:
        reduced = dict(solution.extra_tokens)
        reduced[cid] -= 1
        if reduced[cid] == 0:
            del reduced[cid]
        assert actual_mst(lis, reduced).mst < target, (
            seed,
            cid,
            solution.extra_tokens,
        )


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    q=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_bigger_baseline_queues_never_need_more_tokens(seed, q):
    """Raising all baseline queues can only shrink the residual
    queue-sizing cost."""
    base = generate_lis(
        GeneratorConfig(
            v=16, s=2, c=1, rs=3, rp=True, policy="scc", seed=seed, queue=1
        )
    )
    wide = base.copy()
    wide.set_all_queues(q)
    cost_base = size_queues(base, method="exact", timeout=60).cost
    cost_wide = size_queues(wide, method="exact", timeout=60).cost
    assert cost_wide <= cost_base
