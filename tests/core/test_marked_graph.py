"""Unit and property tests for the marked-graph engine."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MarkedGraph, MarkingError
from repro.graphs import elementary_edge_cycles


def ring_mg(tokens_per_place):
    mg = MarkedGraph()
    n = len(tokens_per_place)
    keys = []
    for i, tokens in enumerate(tokens_per_place):
        keys.append(mg.add_place(i, (i + 1) % n, tokens=tokens))
    return mg, keys


def test_add_place_rejects_negative_tokens():
    mg = MarkedGraph()
    with pytest.raises(MarkingError):
        mg.add_place("a", "b", tokens=-1)


def test_enabled_requires_all_inputs():
    mg = MarkedGraph()
    mg.add_place("a", "c", tokens=1)
    mg.add_place("b", "c", tokens=0)
    assert not mg.is_enabled("c")
    # Sources (no input places) are always enabled.
    assert mg.is_enabled("a") and mg.is_enabled("b")


def test_fire_moves_tokens():
    mg = MarkedGraph()
    p_in = mg.add_place("a", "b", tokens=1)
    p_out = mg.add_place("b", "c", tokens=0)
    mg.fire("b")
    assert mg.tokens(p_in) == 0
    assert mg.tokens(p_out) == 1


def test_fire_disabled_raises():
    mg = MarkedGraph()
    mg.add_place("a", "b", tokens=0)
    with pytest.raises(MarkingError):
        mg.fire("b")


def test_step_fires_all_enabled_concurrently():
    # Ring 1-0-1: transitions 0 and 2 are enabled (inputs from places 2
    # and 1 respectively). After one synchronous step the marking rotates.
    mg, keys = ring_mg([1, 0, 1])
    fired = mg.step()
    assert fired == {1, 0}  # t1 consumes place 0->1; t0 consumes place 2->0
    assert [mg.tokens(k) for k in keys] == [1, 1, 0]


def test_step_semantics_uses_start_of_step_marking():
    # a -> b chain with one token: only b's upstream provides at t0; b
    # must not fire twice in a single step even though a refills it.
    mg = MarkedGraph()
    p1 = mg.add_place("a", "b", tokens=1)
    mg.add_place("b", "a", tokens=0)
    fired = mg.step()
    assert fired == {"b"}
    assert mg.tokens(p1) == 0


def test_run_returns_each_step():
    mg, _ = ring_mg([1, 1, 1])
    history = mg.run(3)
    assert len(history) == 3
    for fired in history:
        assert fired == {0, 1, 2}  # fully marked ring fires every step


def test_tokens_setters():
    mg = MarkedGraph()
    key = mg.add_place("a", "b", tokens=1)
    mg.set_tokens(key, 5)
    assert mg.tokens(key) == 5
    mg.add_tokens(key, -2)
    assert mg.tokens(key) == 3
    with pytest.raises(MarkingError):
        mg.set_tokens(key, -1)


def test_marking_roundtrip():
    mg, keys = ring_mg([2, 0, 1])
    saved = mg.marking()
    mg.run(5)
    assert mg.marking() != saved or True  # marking may coincide; restore:
    mg.set_marking(saved)
    assert mg.marking() == saved


def test_total_tokens_preserved_on_ring():
    mg, _ = ring_mg([1, 0, 1])
    before = mg.total_tokens()
    mg.run(10)
    assert mg.total_tokens() == before


def test_liveness():
    live, _ = ring_mg([1, 0, 0])
    dead, _ = ring_mg([0, 0, 0])
    assert live.is_live()
    assert not dead.is_live()
    assert dead.is_deadlocked()
    assert not live.is_deadlocked()


def test_acyclic_graph_is_live():
    mg = MarkedGraph()
    mg.add_place("a", "b", tokens=0)
    assert mg.is_live()


def test_cycle_mean_and_token_count():
    mg, keys = ring_mg([1, 0, 1])
    assert mg.cycle_token_count(keys) == 2
    assert mg.cycle_mean(keys) == Fraction(2, 3)
    with pytest.raises(MarkingError):
        mg.cycle_mean([])


def test_measure_firing_rate_on_ring():
    mg, _ = ring_mg([1, 0, 1])  # MST = 2/3
    rate = mg.measure_firing_rate(0, steps=300, warmup=30)
    assert abs(rate - Fraction(2, 3)) < Fraction(1, 50)


def test_measure_firing_rate_requires_positive_steps():
    mg, _ = ring_mg([1])
    with pytest.raises(MarkingError):
        mg.measure_firing_rate(0, steps=0)


def test_copy_is_independent():
    mg, keys = ring_mg([1, 0, 1])
    clone = mg.copy()
    clone.step()
    assert mg.marking() != clone.marking()


@st.composite
def random_marked_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=1, max_value=12))
    mg = MarkedGraph()
    for i in range(n):
        mg.add_transition(i)
    for _ in range(m):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        mg.add_place(src, dst, tokens=draw(st.integers(min_value=0, max_value=2)))
    return mg


@given(random_marked_graphs(), st.integers(min_value=1, max_value=8))
@settings(max_examples=60)
def test_cycle_tokens_invariant_under_steps(mg, steps):
    """The fundamental invariant: firing preserves cycle token counts."""
    cycles = [
        [e.key for e in cyc] for cyc in elementary_edge_cycles(mg.graph)
    ]
    before = [mg.cycle_token_count(c) for c in cycles]
    mg.run(steps)
    after = [mg.cycle_token_count(c) for c in cycles]
    assert before == after


@given(random_marked_graphs())
@settings(max_examples=60)
def test_single_fire_matches_step_for_isolated_enabled_transition(mg):
    """Interleaved firing of each enabled transition once == one step."""
    clone = mg.copy()
    fired = sorted(map(repr, mg.step()))
    enabled = sorted(map(repr, clone.enabled_transitions()))
    assert fired == enabled


@st.composite
def live_strongly_connected_mgs(draw):
    """A ring plus chords, every place holding >= 1 token: strongly
    connected and live by construction."""
    n = draw(st.integers(min_value=2, max_value=5))
    mg = MarkedGraph()
    for i in range(n):
        mg.add_place(i, (i + 1) % n, tokens=draw(st.integers(1, 2)))
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        mg.add_place(src, dst, tokens=draw(st.integers(1, 2)))
    return mg


@given(live_strongly_connected_mgs())
@settings(max_examples=40, deadline=None)
def test_strongly_connected_live_graph_returns_to_initial_marking(mg):
    """Classical recurrence: under step semantics the marking sequence
    of a live strongly connected marked graph is periodic, and over one
    period every transition fires the same number of times."""
    initial = mg.marking()
    seen = {tuple(sorted(initial.items())): 0}
    counts = {t: 0 for t in mg.transitions}
    period = None
    for step in range(1, 200):
        for t in mg.step():
            counts[t] += 1
        state = tuple(sorted(mg.marking().items()))
        if state == tuple(sorted(initial.items())):
            period = step
            break
    assert period is not None, "no recurrence within 200 steps"
    fired = set(counts.values())
    assert len(fired) == 1  # equal firing counts around the period
    assert fired.pop() >= 1
