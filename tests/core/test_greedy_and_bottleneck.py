"""Tests for the greedy set-cover solver and critical-place analysis."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core import (
    bottleneck_channels,
    size_queues,
    solve_td_exact,
    solve_td_greedy,
)
from repro.core.token_deficit import InfeasibleError
from repro.gen import fig1_lis, fig15_lis, ring_lis
from repro.graphs import (
    Digraph,
    critical_edges,
    elementary_edge_cycles,
    karp_minimum_cycle_mean,
)
from tests.core.test_solvers import make_instance, td_instances


# ----------------------------------------------------------------------
# critical_edges
# ----------------------------------------------------------------------
def W(e):
    return e.data["w"]


def test_critical_edges_single_ring():
    g = Digraph()
    keys = [
        g.add_edge(0, 1, w=1),
        g.add_edge(1, 2, w=0),
        g.add_edge(2, 0, w=1),
    ]
    assert critical_edges(g, W, Fraction(2, 3)) == set(keys)


def test_critical_edges_ignores_slack_cycle():
    g = Digraph()
    tight = [g.add_edge("a", "b", w=0), g.add_edge("b", "a", w=0)]
    slack = [g.add_edge("a", "c", w=2), g.add_edge("c", "a", w=2)]
    found = critical_edges(g, W, Fraction(0))
    assert found == set(tight)
    assert not found & set(slack)


def test_critical_edges_self_loop():
    g = Digraph()
    loop = g.add_edge("x", "x", w=1)
    g.add_edge("x", "y", w=0)
    assert critical_edges(g, W, Fraction(1)) == {loop}


def test_critical_edges_rejects_wrong_mean():
    g = Digraph()
    g.add_edge(0, 1, w=1)
    g.add_edge(1, 0, w=1)
    with pytest.raises(ValueError):
        critical_edges(g, W, Fraction(2))  # larger than the true minimum


@given(td_instances())
@settings(max_examples=10, deadline=None)
def test_td_instances_strategy_smoke(inst):
    # Keep the shared strategy importable and meaningful here.
    assert isinstance(inst.deficits, dict)


@settings(max_examples=40, deadline=None)
@given(td_instances())
def test_greedy_always_feasible(inst):
    weights = solve_td_greedy(inst)
    assert inst.is_solution(weights)


def test_critical_edges_brute_force_agreement():
    import itertools
    import random

    rng = random.Random(5)
    for _ in range(25):
        g = Digraph()
        n = rng.randint(2, 5)
        for _ in range(rng.randint(2, 9)):
            g.add_edge(
                rng.randrange(n), rng.randrange(n), w=rng.randint(0, 3)
            )
        mean = karp_minimum_cycle_mean(g, W)
        if mean is None:
            continue
        expected = set()
        for cycle in elementary_edge_cycles(g):
            if Fraction(sum(W(e) for e in cycle), len(cycle)) == mean:
                expected.update(e.key for e in cycle)
        assert critical_edges(g, W, mean) == expected


# ----------------------------------------------------------------------
# bottleneck_channels
# ----------------------------------------------------------------------
def test_bottleneck_channels_fig1():
    channels = bottleneck_channels(fig1_lis())
    # The Fig. 5 critical cycle runs through the upper channel forward
    # and the lower channel's backedge.
    assert channels == {0, 1}


def test_bottleneck_channels_fig15():
    assert bottleneck_channels(fig15_lis()) == {0, 5, 6}


def test_bottleneck_empty_at_full_rate():
    assert bottleneck_channels(ring_lis(4)) == set()
    assert bottleneck_channels(fig1_lis(), extra_tokens={1: 1}) == set()


# ----------------------------------------------------------------------
# greedy solver
# ----------------------------------------------------------------------
def test_greedy_trivial():
    assert solve_td_greedy(make_instance({}, {})) == {}


def test_greedy_prefers_shared_edges():
    inst = make_instance({0: 1, 1: 1}, {10: {0}, 11: {0, 1}, 12: {1}})
    assert solve_td_greedy(inst) == {11: 1}


def test_greedy_infeasible_raises():
    inst = make_instance({0: 1}, {})
    with pytest.raises(InfeasibleError):
        solve_td_greedy(inst)


def test_greedy_deterministic_tie_break():
    inst = make_instance({0: 2}, {10: {0}, 11: {0}})
    assert solve_td_greedy(inst) == {10: 2}


@given(td_instances())
@settings(max_examples=50, deadline=None)
def test_greedy_never_beats_exact(inst):
    greedy = solve_td_greedy(inst)
    exact = solve_td_exact(inst)
    assert inst.is_solution(greedy)
    assert sum(greedy.values()) >= exact.cost


def test_size_queues_greedy_method():
    for lis in (fig1_lis(), fig15_lis()):
        greedy = size_queues(lis, method="greedy")
        exact = size_queues(lis, method="exact")
        assert greedy.restores_target
        assert greedy.cost >= exact.cost
