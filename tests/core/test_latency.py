"""Tests for multi-cycle core latency (paper, footnote 3) and the
minimum-cycle-ratio analysis behind it."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LisGraph, LisError, actual_mst, ideal_mst
from repro.core.lis_graph import stage_name
from repro.core.throughput import ideal_mst_compact
from repro.graphs import Digraph, minimum_cycle_ratio


def latency_ring(latencies, relays=0):
    """A ring of shells with the given core latencies."""
    lis = LisGraph()
    names = [f"s{i}" for i in range(len(latencies))]
    for name, latency in zip(names, latencies):
        lis.add_shell(name, latency=latency)
    for i, name in enumerate(names):
        lis.add_channel(
            name,
            names[(i + 1) % len(names)],
            relays=relays if i == 0 else 0,
        )
    return lis


def test_add_shell_rejects_bad_latency():
    lis = LisGraph()
    with pytest.raises(LisError):
        lis.add_shell("x", latency=0)


def test_latency_defaults_to_one():
    lis = LisGraph()
    lis.add_channel("a", "b")  # implicit shells
    assert lis.latency("a") == 1


def test_pipeline_expansion_structure():
    lis = LisGraph()
    lis.add_shell("m", latency=3)
    lis.add_shell("n")
    lis.add_channel("m", "n")
    mg = lis.ideal_marked_graph()
    s0, s1 = stage_name("m", 0), stage_name("m", 1)
    assert mg.graph.has_node(s0) and mg.graph.has_node(s1)
    assert mg.graph.node_data(s0)["kind"] == "stage"
    # The channel leaves the pipeline tail, not the core.
    assert mg.graph.has_edge(s1, "n")
    assert not mg.graph.has_edge("m", "n")
    # Internal places start empty; the channel's final place holds the
    # initial token.
    internal = [p for p in mg.places if p.data.get("internal")]
    assert [p.data["tokens"] for p in internal] == [0, 0]
    (final,) = [p for p in mg.places if not p.data.get("internal")]
    assert final.data["tokens"] == 1


def test_doubled_pipeline_has_unit_stage_backedges():
    lis = LisGraph()
    lis.add_shell("m", latency=3)
    lis.add_shell("n")
    lis.add_channel("m", "n")
    mg = lis.doubled_marked_graph()
    internal_back = [
        p
        for p in mg.places
        if p.data.get("internal") and p.data["kind"] == "back"
    ]
    assert len(internal_back) == 2
    # Elastic two-slot stages, like relay stations.
    assert all(p.data["tokens"] == 2 for p in internal_back)
    assert all(not p.data["sizable"] for p in internal_back)


def test_latency_ring_mst_formula():
    """A ring of n unit shells with one latency-L shell has ideal MST
    n / (n + L - 1): the loop pays the pipeline depth."""
    for n, L in [(3, 2), (3, 3), (4, 3), (5, 4)]:
        latencies = [L] + [1] * (n - 1)
        lis = latency_ring(latencies)
        expected = min(Fraction(1), Fraction(n, n + L - 1))
        assert ideal_mst(lis).mst == expected
        assert ideal_mst_compact(lis) == expected


def test_latency_and_relays_compose():
    lis = latency_ring([3, 1, 1], relays=2)
    # 3 tokens; places: 3 hops + 2 pipeline stages + 2 relays = 7.
    assert ideal_mst(lis).mst == Fraction(3, 7)
    assert ideal_mst_compact(lis) == Fraction(3, 7)


def test_compact_matches_expanded_on_acyclic():
    lis = LisGraph()
    lis.add_shell("a", latency=4)
    lis.add_channel("a", "b", relays=2)
    assert ideal_mst_compact(lis) == 1
    assert ideal_mst(lis).mst == 1


def test_backpressure_with_latency_never_helps():
    lis = latency_ring([2, 1, 1, 1])
    assert actual_mst(lis).mst <= ideal_mst(lis).mst


def test_minimum_cycle_ratio_basic():
    g = Digraph()
    g.add_edge(0, 1, w=1, t=1)
    g.add_edge(1, 0, w=1, t=3)
    result = minimum_cycle_ratio(
        g, weight=lambda e: e.data["w"], time=lambda e: e.data["t"]
    )
    assert result.mean == Fraction(2, 4)
    assert len(result.cycle) == 2


def test_minimum_cycle_ratio_picks_worst_cycle():
    g = Digraph()
    # Cycle A: ratio 2/2 = 1; cycle B: ratio 2/5.
    g.add_edge("a", "b", w=1, t=1)
    g.add_edge("b", "a", w=1, t=1)
    g.add_edge("a", "c", w=1, t=2)
    g.add_edge("c", "a", w=1, t=3)
    result = minimum_cycle_ratio(
        g, weight=lambda e: e.data["w"], time=lambda e: e.data["t"]
    )
    assert result.mean == Fraction(2, 5)
    assert {e.src for e in result.cycle} == {"a", "c"}


def test_minimum_cycle_ratio_acyclic_none():
    g = Digraph()
    g.add_edge("a", "b", w=1, t=1)
    assert minimum_cycle_ratio(g, lambda e: 1, lambda e: 1) is None


def test_minimum_cycle_ratio_rejects_nonpositive_time():
    g = Digraph()
    g.add_edge("a", "a", w=1, t=0)
    with pytest.raises(ValueError):
        minimum_cycle_ratio(g, lambda e: 1, lambda e: e.data["t"])


def test_ratio_with_unit_times_equals_mean():
    from repro.graphs import karp_minimum_cycle_mean

    g = Digraph()
    g.add_edge(0, 1, w=2)
    g.add_edge(1, 2, w=0)
    g.add_edge(2, 0, w=1)
    g.add_edge(1, 0, w=0)
    ratio = minimum_cycle_ratio(g, lambda e: e.data["w"], lambda e: 1)
    assert ratio.mean == karp_minimum_cycle_mean(g, lambda e: e.data["w"])


@given(
    latencies=st.lists(
        st.integers(min_value=1, max_value=4), min_size=2, max_size=5
    ),
    relays=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_compact_and_expanded_agree_on_latency_rings(latencies, relays):
    lis = latency_ring(latencies, relays=relays)
    assert ideal_mst_compact(lis) == ideal_mst(lis).mst


@given(
    latencies=st.lists(
        st.integers(min_value=1, max_value=3), min_size=2, max_size=4
    )
)
@settings(max_examples=25, deadline=None)
def test_simulators_agree_with_latency(latencies):
    from repro.lis import RtlSimulator, TraceSimulator

    lis = latency_ring(latencies)
    a = TraceSimulator(lis).run(40)
    b = RtlSimulator(lis).run(40)
    shells = [f"s{i}" for i in range(len(latencies))]
    for shell in shells:
        assert a.fired[shell] == b.fired[shell]


def test_simulated_rate_matches_latency_mst():
    lis = latency_ring([3, 1, 1])  # ideal MST 3/5
    # A plain ring has no reconvergent paths, so q=1 preserves it.
    assert actual_mst(lis).mst == Fraction(3, 5)
    from repro.lis import TraceSimulator

    sim = TraceSimulator(lis)
    sim.run(430)
    rate = sim.trace.throughput("s1", skip=30)
    assert abs(rate - Fraction(3, 5)) < Fraction(1, 30)
