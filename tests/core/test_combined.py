"""Tests for the joint relay-insertion + queue-sizing optimizer."""

from fractions import Fraction

import pytest

from repro.core import actual_mst, combined_repair, ideal_mst
from repro.core.relay_opt import apply_insertion
from repro.gen import fig1_lis, fig15_lis, ring_lis


def test_fig1_default_costs_prefer_queue_token():
    """One queue slot (1 register) beats one relay station (2)."""
    solution = combined_repair(fig1_lis(), max_added_relays=1)
    assert solution.added_relays == {}
    assert solution.sizing.extra_tokens == {1: 1}
    assert solution.register_cost == 1
    assert solution.achieved == 1


def test_fig1_cheap_relays_prefer_insertion():
    solution = combined_repair(
        fig1_lis(), max_added_relays=1, relay_register_cost=Fraction(1, 2)
    )
    assert solution.added_relays == {1: 1}
    assert solution.sizing.cost == 0
    assert solution.register_cost == Fraction(1, 2)


def test_fig15_insertion_never_chosen():
    """Every insertion forfeits the 5/6 target, so the best mixed
    repair is pure queue sizing (Section VI's counterexample)."""
    solution = combined_repair(fig15_lis(), max_added_relays=2)
    assert solution.added_relays == {}
    assert solution.sizing.cost == 2
    assert solution.achieved == Fraction(5, 6)
    assert solution.evaluated > 30  # the budget was actually searched


def test_combined_repair_verifies_end_to_end():
    lis = fig1_lis()
    solution = combined_repair(lis, max_added_relays=1)
    repaired = apply_insertion(lis, solution.added_relays)
    assert (
        actual_mst(repaired, solution.sizing.extra_tokens).mst
        == ideal_mst(lis).mst
    )


def test_healthy_system_costs_nothing():
    solution = combined_repair(ring_lis(4), max_added_relays=1)
    assert solution.register_cost == 0
    assert solution.added_relays == {}
    assert solution.sizing.cost == 0


def test_zero_budget_equals_pure_queue_sizing():
    from repro.core import size_queues

    solution = combined_repair(fig15_lis(), max_added_relays=0)
    pure = size_queues(fig15_lis(), method="exact")
    assert solution.sizing.cost == pure.cost
    assert solution.total_relays_added == 0


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        combined_repair(fig1_lis(), max_added_relays=-1)


def test_unreachable_target_raises():
    # No repair can push the MST of a relayed ring above its ideal.
    lis = ring_lis(3, relays=1)  # ideal 3/4
    with pytest.raises(ValueError):
        combined_repair(lis, max_added_relays=1, target=Fraction(9, 10))
