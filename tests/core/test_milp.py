"""Tests for the MILP (Lu--Koh-style) reference solver."""

import math

import pytest
from hypothesis import given, settings

from repro.core import size_queues
from repro.core.solvers import (
    ExactTimeout,
    lp_lower_bound,
    solve_td_exact,
    solve_td_milp,
)
from repro.gen import fig1_lis, fig15_lis
from tests.core.test_solvers import make_instance, td_instances


def test_milp_trivial_instance():
    outcome = solve_td_milp(make_instance({}, {}))
    assert outcome.cost == 0 and outcome.weights == {}
    assert lp_lower_bound(make_instance({}, {})) == 0.0


def test_milp_single_cycle():
    inst = make_instance({0: 2}, {10: {0}, 11: {0}})
    outcome = solve_td_milp(inst)
    assert outcome.cost == 2
    assert inst.is_solution(outcome.weights)


def test_milp_shared_edge_instance():
    inst = make_instance({0: 2, 1: 2}, {10: {0}, 11: {0, 1}, 12: {1}})
    outcome = solve_td_milp(inst)
    assert outcome.cost == 2
    assert outcome.weights == {11: 2}


def test_lp_bound_is_a_lower_bound_and_can_be_fractional():
    # Odd cycle cover: three cycles pairwise sharing edges; LP optimum
    # is 1.5, integer optimum 2.
    inst = make_instance(
        {0: 1, 1: 1, 2: 1},
        {10: {0, 1}, 11: {1, 2}, 12: {0, 2}},
    )
    bound = lp_lower_bound(inst)
    assert math.isclose(bound, 1.5, abs_tol=1e-6)
    outcome = solve_td_milp(inst)
    assert outcome.cost == 2
    # The heuristic incumbent (cost 2) lets ceil(1.5) prune the root,
    # so the optimum is certified after a single LP solve.
    assert outcome.nodes_explored >= 1
    assert outcome.lp_bound <= outcome.cost + 1e-9


def test_milp_timeout():
    inst = make_instance(
        {i: 2 for i in range(6)},
        {e: {i for i in range(6) if (i + e) % 2} for e in range(6)},
    )
    with pytest.raises(ExactTimeout):
        solve_td_milp(inst, timeout=-1.0)


@given(td_instances())
@settings(max_examples=40, deadline=None)
def test_milp_matches_exact_solver(inst):
    milp = solve_td_milp(inst)
    exact = solve_td_exact(inst)
    assert inst.is_solution(milp.weights)
    assert milp.cost == exact.cost
    assert milp.lp_bound <= milp.cost + 1e-6


def test_size_queues_milp_method():
    for lis in (fig1_lis(), fig15_lis()):
        milp = size_queues(lis, method="milp")
        exact = size_queues(lis, method="exact")
        assert milp.restores_target
        assert milp.cost == exact.cost
        assert "lp_bound" in milp.stats
