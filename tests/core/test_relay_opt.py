"""Tests for relay-station insertion optimization (Section VI)."""

from fractions import Fraction

import pytest

from repro.core import LisGraph, actual_mst, ideal_mst
from repro.core.relay_opt import (
    apply_insertion,
    equalization_slacks,
    exhaustive_relay_search,
    relay_insertion_can_restore,
)
from repro.gen import fig1_lis, fig15_lis, ring_lis


def test_equalization_on_fig1_adds_relay_to_lower_channel():
    slacks = equalization_slacks(fig1_lis())
    assert slacks == {1: 1}  # the lower channel gets one relay station


def test_equalization_restores_mst_on_fig1():
    lis = fig1_lis()
    balanced = apply_insertion(lis, equalization_slacks(lis))
    assert actual_mst(balanced).mst == 1


def test_equalization_balanced_system_needs_nothing():
    lis = LisGraph()
    lis.add_channel("A", "B", relays=1)
    lis.add_channel("A", "B", relays=1)
    assert equalization_slacks(lis) == {}


def test_equalization_three_way_diamond():
    lis = LisGraph.from_edges(
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    )
    lis.insert_relay(0, 2)  # long a->b branch
    slacks = equalization_slacks(lis)
    balanced = apply_insertion(lis, slacks)
    # Longest path a->b->d is 4 cycles; a->c->d must match.
    assert sum(slacks.values()) == 2
    assert actual_mst(balanced).mst == 1


def test_equalization_rejects_cyclic_systems():
    with pytest.raises(ValueError):
        equalization_slacks(ring_lis(3))


def test_apply_insertion_copies():
    lis = fig1_lis()
    modified = apply_insertion(lis, {1: 2})
    assert lis.relays(1) == 0
    assert modified.relays(1) == 2


def test_exhaustive_search_finds_fig2_right():
    result = exhaustive_relay_search(fig1_lis(), max_added=1)
    assert result.added == {1: 1}
    assert result.actual == 1
    assert result.ideal == 1
    assert result.evaluated >= 3  # empty + two channels


def test_exhaustive_search_zero_budget_is_identity():
    result = exhaustive_relay_search(fig1_lis(), max_added=0)
    assert result.added == {}
    assert result.actual == Fraction(2, 3)


def test_fig15_counterexample_certified():
    """Section VI's headline: no insertion recovers Fig. 15's 5/6."""
    lis = fig15_lis()
    for budget in (1, 2):
        ok, result = relay_insertion_can_restore(lis, max_added=budget)
        assert not ok
        assert result.actual < Fraction(5, 6)
    # Queue sizing, by contrast, succeeds (cross-check).
    assert actual_mst(lis, {5: 1, 6: 1}).mst == Fraction(5, 6)


def test_fig15_every_single_insertion_hurts_ideal():
    lis = fig15_lis()
    for cid in lis.channel_ids():
        trial = apply_insertion(lis, {cid: 1})
        assert ideal_mst(trial).mst < Fraction(5, 6)


def test_fig1_restoration_certified():
    ok, result = relay_insertion_can_restore(fig1_lis(), max_added=1)
    assert ok
    assert result.added == {1: 1}


def test_search_ignores_ideal_lowering_assignments():
    """On a ring, every insertion lowers the ideal MST; with
    preserve_ideal the search must return the empty assignment."""
    lis = ring_lis(4)
    result = exhaustive_relay_search(lis, max_added=2)
    assert result.added == {}
    assert result.ideal == 1
