"""Tests for the heuristic, exact, and fixed queue-sizing solvers."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExactTimeout,
    LisGraph,
    QsSolution,
    actual_mst,
    build_td_instance,
    fixed_qs_mst,
    fixed_qs_profile,
    ideal_mst,
    minimal_fixed_q,
    size_queues,
    solve_td_exact,
    solve_td_heuristic,
)
from repro.core.token_deficit import TokenDeficitInstance
from repro.core.cycles import CycleRecord
from repro.gen import fig1_lis, fig15_lis, ring_lis, tree_lis


def make_instance(deficits, sets):
    n = max(deficits) + 1 if deficits else 0
    cycles = [
        CycleRecord(places=(), tokens=0, channels=frozenset(), node_path=(i,))
        for i in range(n)
    ]
    return TokenDeficitInstance(
        deficits=dict(deficits),
        sets={k: set(v) for k, v in sets.items()},
        cycles=cycles,
    )


@st.composite
def td_instances(draw):
    """Random feasible TD instances (every cycle covered by >= 1 edge)."""
    n_cycles = draw(st.integers(min_value=1, max_value=5))
    n_edges = draw(st.integers(min_value=1, max_value=5))
    deficits = {
        i: draw(st.integers(min_value=1, max_value=3)) for i in range(n_cycles)
    }
    sets = {}
    for e in range(n_edges):
        covered = draw(
            st.sets(st.integers(min_value=0, max_value=n_cycles - 1))
        )
        if covered:
            sets[e] = covered
    # Guarantee coverage of every cycle.
    for i in range(n_cycles):
        if not any(i in s for s in sets.values()):
            sets.setdefault(0, set()).add(i)
    return make_instance(deficits, sets)


def brute_force_optimum(instance, limit=12):
    """Smallest total weight solving the instance, by exhaustive search."""
    import itertools

    channels = sorted(instance.sets)
    for total in range(limit + 1):
        for combo in itertools.combinations_with_replacement(channels, total):
            weights = {}
            for ch in combo:
                weights[ch] = weights.get(ch, 0) + 1
            if instance.is_solution(weights):
                return total
    raise AssertionError("no solution within limit")


# ----------------------------------------------------------------------
# Heuristic
# ----------------------------------------------------------------------
def test_heuristic_trivial_instance():
    assert solve_td_heuristic(make_instance({}, {})) == {}


def test_heuristic_single_cycle():
    inst = make_instance({0: 2}, {10: {0}, 11: {0}})
    weights = inst.merge_forced(solve_td_heuristic(inst))
    assert sum(weights.values()) == 2
    assert inst.is_solution(weights)


def test_heuristic_shared_edge_preferred():
    # Edge 11 covers both cycles; optimal cost 2 via 11 alone.
    inst = make_instance({0: 2, 1: 2}, {10: {0}, 11: {0, 1}, 12: {1}})
    weights = solve_td_heuristic(inst)
    assert inst.is_solution(weights)
    assert sum(weights.values()) <= 4  # never worse than per-cycle fixing


def test_heuristic_is_feasible_and_deterministic():
    inst = make_instance(
        {0: 1, 1: 2, 2: 1}, {5: {0, 1}, 6: {1, 2}, 7: {2}}
    )
    first = solve_td_heuristic(inst)
    second = solve_td_heuristic(inst)
    assert first == second
    assert inst.is_solution(first)


@given(td_instances())
@settings(max_examples=80, deadline=None)
def test_heuristic_always_feasible_and_geq_exact(inst):
    heuristic = solve_td_heuristic(inst)
    assert inst.is_solution(heuristic)
    optimum = brute_force_optimum(inst)
    assert sum(heuristic.values()) >= optimum


# ----------------------------------------------------------------------
# Exact
# ----------------------------------------------------------------------
def test_exact_trivial_instance():
    outcome = solve_td_exact(make_instance({}, {}))
    assert outcome.cost == 0 and outcome.weights == {}


def test_exact_beats_or_matches_heuristic():
    inst = make_instance({0: 2, 1: 2}, {10: {0}, 11: {0, 1}, 12: {1}})
    outcome = solve_td_exact(inst)
    assert outcome.cost == 2
    assert inst.is_solution(outcome.weights)


@given(td_instances())
@settings(max_examples=60, deadline=None)
def test_exact_matches_brute_force(inst):
    outcome = solve_td_exact(inst)
    assert inst.is_solution(outcome.weights)
    assert outcome.cost == brute_force_optimum(inst)


def test_exact_timeout_raises():
    # A dense instance with a deadline in the past must raise promptly.
    deficits = {i: 3 for i in range(12)}
    sets = {e: {i for i in range(12) if (i + e) % 3} for e in range(12)}
    inst = make_instance(deficits, sets)
    with pytest.raises(ExactTimeout):
        solve_td_exact(inst, timeout=-1.0)


# ----------------------------------------------------------------------
# Fixed QS
# ----------------------------------------------------------------------
def test_fixed_qs_mst_does_not_mutate():
    lis = fig1_lis()
    assert fixed_qs_mst(lis, 2) == 1
    assert lis.queue(0) == 1  # untouched


def test_fixed_qs_profile_monotone():
    lis = fig15_lis()
    profile = fixed_qs_profile(lis, range(1, 5))
    values = [profile[q] for q in sorted(profile)]
    assert values == sorted(values)
    assert values[-1] == Fraction(5, 6)


def test_minimal_fixed_q():
    assert minimal_fixed_q(fig1_lis()) == 2
    assert minimal_fixed_q(tree_lis(depth=2, relays_per_channel=3)) == 1
    assert minimal_fixed_q(fig15_lis()) == 2


def test_minimal_fixed_q_with_insufficient_cap():
    lis = fig1_lis()
    lis.insert_relay(0, 3)  # now needs q = 5 on the lower path
    with pytest.raises(ValueError):
        minimal_fixed_q(lis, q_max=2)


def test_adversarial_fixed_q_construction():
    """Section VIII-B: Fig. 2 plus (q-1) extra relay stations on the
    upper channel defeats fixed queues of size q."""
    for q in (2, 3):
        lis = fig1_lis()
        lis.insert_relay(0, q - 1)  # upper channel now has q relays
        assert fixed_qs_mst(lis, q) < 1
        assert fixed_qs_mst(lis, q + 1) == 1


# ----------------------------------------------------------------------
# size_queues end-to-end
# ----------------------------------------------------------------------
def test_size_queues_fig1_both_methods():
    for method in ("heuristic", "exact"):
        sol = size_queues(fig1_lis(), method=method)
        assert isinstance(sol, QsSolution)
        assert sol.extra_tokens == {1: 1}
        assert sol.cost == 1
        assert sol.restores_target
        assert sol.method == method


def test_size_queues_fig15():
    sol = size_queues(fig15_lis(), method="exact")
    assert sol.cost == 2
    assert sol.extra_tokens == {5: 1, 6: 1}
    assert sol.achieved == Fraction(5, 6)


def test_size_queues_nothing_to_do():
    sol = size_queues(ring_lis(4))
    assert sol.cost == 0 and sol.extra_tokens == {}
    assert sol.achieved == 1


def test_size_queues_validates_arguments():
    with pytest.raises(ValueError):
        size_queues(fig1_lis(), method="annealing")
    with pytest.raises(ValueError):
        size_queues(fig1_lis(), collapse="sometimes")
    with pytest.raises(ValueError):
        size_queues(fig1_lis(), target=Fraction(3, 2))
    with pytest.raises(ValueError):
        size_queues(fig1_lis(), target=Fraction(0))


def test_size_queues_collapse_modes():
    lis = fig1_lis()
    auto = size_queues(lis, collapse="auto")
    never = size_queues(lis, collapse="never")
    assert auto.simplified and not never.simplified
    assert auto.cost == never.cost == 1
    assert auto.extra_tokens == never.extra_tokens


def test_size_queues_heuristic_cost_geq_exact():
    lis = fig15_lis()
    h = size_queues(lis, method="heuristic")
    e = size_queues(lis, method="exact")
    assert h.cost >= e.cost
    assert h.restores_target and e.restores_target


def test_size_queues_partial_target():
    """Restoring only 3/4 on Fig. 15 costs nothing (already 3/4)."""
    sol = size_queues(fig15_lis(), target=Fraction(3, 4))
    assert sol.cost == 0
    assert sol.achieved >= Fraction(3, 4)


@given(
    upper_relays=st.integers(min_value=1, max_value=3),
    lower_relays=st.integers(min_value=0, max_value=3),
    q=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=30, deadline=None)
def test_size_queues_always_restores_on_two_path_systems(
    upper_relays, lower_relays, q
):
    lis = LisGraph(default_queue=q)
    lis.add_channel("A", "B", relays=upper_relays)
    lis.add_channel("A", "B", relays=lower_relays)
    for method in ("heuristic", "exact"):
        sol = size_queues(lis, method=method)
        assert sol.restores_target
        assert actual_mst(lis, sol.extra_tokens).mst == ideal_mst(lis).mst
