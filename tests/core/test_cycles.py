"""Tests for deficient-cycle analysis and the SCC collapse."""

from fractions import Fraction

import pytest

from repro.core import (
    CollapseError,
    LisGraph,
    actual_mst,
    collapse_sccs,
    cycle_records,
    deficient_cycles,
    ideal_mst,
    is_collapsible,
)
from repro.core.cycles import total_extra_tokens
from repro.gen import fig1_lis, fig15_lis, ring_lis


def test_cycle_records_on_fig1_doubled():
    mg = fig1_lis().doubled_marked_graph()
    records = cycle_records(mg)
    # Node cycles: A<->B via four place pairings plus A<->rs and rs<->B
    # edge/backedge pairs and the 3-hop mixed cycles.
    means = sorted(r.mean for r in records)
    assert means[0] == Fraction(2, 3)  # the Fig. 5 critical cycle
    assert all(r.length == len(r.places) for r in records)


def test_deficit_computation():
    mg = fig1_lis().doubled_marked_graph()
    (worst,) = deficient_cycles(mg, Fraction(1))
    assert worst.mean == Fraction(2, 3)
    assert worst.deficit(Fraction(1)) == 1
    assert worst.deficit(Fraction(2, 3)) == 0
    assert worst.deficit(Fraction(5, 6)) == 1  # ceil(5/6*3 - 2) = 1


def test_deficient_cycles_channels_are_sizable_only():
    mg = fig15_lis().doubled_marked_graph()
    for record in deficient_cycles(mg, Fraction(5, 6)):
        assert record.channels  # every deficient cycle can be fixed
        for cid in record.channels:
            assert 0 <= cid <= 6


def test_fig15_deficient_cycle_set():
    """Three deficient doubled cycles, all fixable via channels 5/6."""
    mg = fig15_lis().doubled_marked_graph()
    records = deficient_cycles(mg, Fraction(5, 6))
    assert len(records) == 3
    assert {r.mean for r in records} <= {Fraction(3, 4), Fraction(4, 5)}
    union = set()
    for r in records:
        union |= r.channels
    assert {5, 6} <= union


def test_is_collapsible():
    assert is_collapsible(fig1_lis())  # trivial SCCs, inter-SCC relay
    assert not is_collapsible(ring_lis(3, relays=1))  # intra-SCC relay
    assert is_collapsible(ring_lis(3))  # no relays at all


def test_collapse_requires_inter_scc_relays():
    with pytest.raises(CollapseError):
        collapse_sccs(ring_lis(3, relays=1))


def test_collapse_merges_scc_and_maps_channels():
    # Two 3-rings connected by one pipelined channel.
    lis = LisGraph()
    for ring_id in (0, 1):
        names = [f"r{ring_id}n{i}" for i in range(3)]
        for i, name in enumerate(names):
            lis.add_channel(name, names[(i + 1) % 3])
    bridge = lis.add_channel("r0n0", "r1n0", relays=2)
    collapsed, channel_map = collapse_sccs(lis)
    assert collapsed.system.number_of_nodes() == 2
    assert len(collapsed.channels()) == 1
    (new_cid,) = collapsed.channel_ids()
    assert channel_map[new_cid] == bridge
    assert collapsed.relays(new_cid) == 2
    assert collapsed.queue(new_cid) == lis.queue(bridge)


def test_collapsed_solution_is_equivalent():
    """A diamond of SCCs with inter-SCC relays: the deficits computed on
    the collapsed system equal those on the full system (q = 1)."""
    lis = LisGraph()
    # Four 2-rings (SCCs) in a diamond: s0 -> s1 -> s3, s0 -> s2 -> s3.
    for s in range(4):
        a, b = f"s{s}a", f"s{s}b"
        lis.add_channel(a, b)
        lis.add_channel(b, a)
    c01 = lis.add_channel("s0a", "s1a", relays=2)
    lis.add_channel("s0b", "s2a")
    lis.add_channel("s1b", "s3a")
    lis.add_channel("s2b", "s3b")
    assert is_collapsible(lis)
    collapsed, channel_map = collapse_sccs(lis)

    full = deficient_cycles(lis.doubled_marked_graph(), Fraction(1))
    small = deficient_cycles(collapsed.doubled_marked_graph(), Fraction(1))
    # Many full-graph cycles (one per intra-SCC routing) collapse onto
    # far fewer cycles, but the distinct deficits coincide.
    assert len(small) < len(full)
    assert {r.deficit(Fraction(1)) for r in full} == {
        r.deficit(Fraction(1)) for r in small
    }
    # Every inter-SCC channel a collapsed cycle can use maps back to a
    # channel some full-graph cycle also uses.
    full_channels = {c for r in full for c in r.channels}
    for record in small:
        for c in record.channels:
            assert channel_map[c] in full_channels
    # The relayed channel itself is traversed forward by the deficient
    # cycles, so the fix must land on the *reconvergent* path's
    # backedges -- never on c01's own backedge.
    assert c01 not in full_channels

    # Solution equivalence: sizing via the collapsed system restores
    # the ideal MST of the original, at the same cost as solving the
    # full system directly.
    from repro.core import size_queues

    via_collapse = size_queues(lis, method="exact", collapse="always")
    direct = size_queues(lis, method="exact", collapse="never")
    assert via_collapse.restores_target and direct.restores_target
    assert via_collapse.cost == direct.cost


def test_collapse_of_acyclic_system_is_identity_shaped():
    lis = fig1_lis()
    collapsed, channel_map = collapse_sccs(lis)
    assert collapsed.system.number_of_nodes() == 2
    assert len(collapsed.channels()) == 2
    assert sorted(channel_map.values()) == [0, 1]
    assert ideal_mst(collapsed).mst == ideal_mst(lis).mst
    assert actual_mst(collapsed).mst == actual_mst(lis).mst


def test_total_extra_tokens_helper():
    assert total_extra_tokens({1: 2, 5: 3}) == 5
    assert total_extra_tokens([(1, 2), (5, 3)]) == 5
    assert total_extra_tokens({}) == 0
