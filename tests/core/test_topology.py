"""Tests for topology classification (Section IV / Table II)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LisGraph,
    RelayPlacement,
    TopologyClass,
    actual_mst,
    classify_topology,
    conservative_fixed_queue,
    fixed_q1_is_safe,
    has_reconvergent_paths,
    ideal_mst,
    relay_placement,
)
from repro.core.topology import is_directed_cycle_component
from repro.gen import fig1_lis, fig15_lis, ring_lis, tree_lis


def test_tree_classification():
    lis = tree_lis(depth=2)
    assert classify_topology(lis) is TopologyClass.TREE
    assert not has_reconvergent_paths(lis.system)
    assert fixed_q1_is_safe(lis)


def test_chain_is_tree_class():
    lis = LisGraph.from_edges([("a", "b"), ("b", "c")])
    assert classify_topology(lis) is TopologyClass.TREE


def test_single_ring_is_scc_no_reconvergent():
    lis = ring_lis(4)
    assert classify_topology(lis) is TopologyClass.SCC_NO_RECONVERGENT
    assert fixed_q1_is_safe(lis)


def test_figure_eight_rings_share_articulation_point():
    """Two rings joined at one shell: still no reconvergent paths."""
    lis = LisGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "a"), ("a", "d"), ("d", "e"), ("e", "a")]
    )
    assert classify_topology(lis) is TopologyClass.SCC_NO_RECONVERGENT


def test_parallel_channels_are_reconvergent():
    """Fig. 1's two A->B channels reconverge at B."""
    lis = fig1_lis()
    assert has_reconvergent_paths(lis.system)
    assert classify_topology(lis) is TopologyClass.NETWORK_OF_SCCS
    assert not fixed_q1_is_safe(lis)


def test_diamond_dag_is_reconvergent():
    lis = LisGraph.from_edges(
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    )
    assert classify_topology(lis) is TopologyClass.NETWORK_OF_SCCS


def test_fig15_is_general_topology():
    assert classify_topology(fig15_lis()) is TopologyClass.NETWORK_OF_SCCS


def test_chorded_ring_is_reconvergent():
    lis = LisGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("b", "d")]
    )
    assert classify_topology(lis) is TopologyClass.NETWORK_OF_SCCS


def test_is_directed_cycle_component():
    from repro.graphs import Digraph, biconnected_components

    ring = Digraph()
    for i in range(3):
        ring.add_edge(i, (i + 1) % 3)
    (comp,) = biconnected_components(ring)
    assert is_directed_cycle_component(comp)

    undirected_cycle = Digraph()
    undirected_cycle.add_edge("a", "b")
    undirected_cycle.add_edge("a", "b")
    (comp2,) = biconnected_components(undirected_cycle)
    assert not is_directed_cycle_component(comp2)
    assert not is_directed_cycle_component([])


def test_relay_placement_classes():
    none = ring_lis(3)
    assert relay_placement(none) is RelayPlacement.NONE

    intra = ring_lis(3, relays=1)
    assert relay_placement(intra) is RelayPlacement.INTRA_SCC

    inter = LisGraph()
    inter.add_channel("a", "b", relays=1)
    assert relay_placement(inter) is RelayPlacement.INTER_SCC

    mixed = ring_lis(3, relays=1)
    mixed.add_channel("s0", "x", relays=1)
    assert relay_placement(mixed) is RelayPlacement.MIXED


def test_conservative_fixed_queue():
    lis = fig1_lis()
    assert conservative_fixed_queue(lis) == 2  # one relay station
    lis.insert_relay(0, 3)
    assert conservative_fixed_queue(lis) == 5


def test_safe_classes_really_are_safe_with_q1():
    """Section IV's theorem, checked by full analysis on instances of
    both safe classes with relay stations everywhere."""
    tree = tree_lis(depth=2, fanout=2, relays_per_channel=2)
    assert actual_mst(tree).mst == ideal_mst(tree).mst == 1

    # Figure-eight SCC (no reconvergent paths) with relays on channels
    # *inside* the cycles.
    lis = LisGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "a"), ("a", "d"), ("d", "e"), ("e", "a")]
    )
    lis.insert_relay(0)  # inside first ring
    lis.insert_relay(4)  # inside second ring
    assert classify_topology(lis) is TopologyClass.SCC_NO_RECONVERGENT
    assert actual_mst(lis).mst == ideal_mst(lis).mst


@given(
    depth=st.integers(min_value=1, max_value=3),
    fanout=st.integers(min_value=1, max_value=3),
    relays=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_trees_never_degrade(depth, fanout, relays):
    lis = tree_lis(depth=depth, fanout=fanout, relays_per_channel=relays)
    assert classify_topology(lis) is TopologyClass.TREE
    assert actual_mst(lis).mst == 1


@given(
    rings=st.lists(
        st.tuples(
            st.integers(min_value=2, max_value=4),  # ring size
            st.integers(min_value=0, max_value=2),  # relays inside
        ),
        min_size=1,
        max_size=3,
    )
)
@settings(max_examples=30, deadline=None)
def test_rosette_of_rings_never_degrades_with_q1(rings):
    """Rings sharing one hub shell: the hub is an articulation point,
    the topology has no reconvergent paths, and q=1 keeps ideal MST."""
    lis = LisGraph()
    lis.add_shell("hub")
    for r, (size, relays) in enumerate(rings):
        prev = "hub"
        for i in range(size - 1):
            node = f"r{r}n{i}"
            lis.add_channel(prev, node)
            prev = node
        lis.add_channel(prev, "hub", relays=relays)
    assert classify_topology(lis) is TopologyClass.SCC_NO_RECONVERGENT
    assert actual_mst(lis).mst == ideal_mst(lis).mst
