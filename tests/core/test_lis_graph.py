"""Tests for the LIS system model and its marked-graph lowerings."""

import pytest

from repro.core import RELAY_CAPACITY, LisError, LisGraph, relay_name
from repro.gen import fig1_lis


def test_add_channel_defaults():
    lis = LisGraph()
    cid = lis.add_channel("a", "b")
    assert lis.queue(cid) == 1
    assert lis.relays(cid) == 0
    assert lis.shells() == ["a", "b"]


def test_default_queue_propagates():
    lis = LisGraph(default_queue=3)
    cid = lis.add_channel("a", "b")
    assert lis.queue(cid) == 3


def test_invalid_parameters_raise():
    with pytest.raises(LisError):
        LisGraph(default_queue=0)
    lis = LisGraph()
    with pytest.raises(LisError):
        lis.add_channel("a", "b", queue=0)
    with pytest.raises(LisError):
        lis.add_channel("a", "b", relays=-1)
    cid = lis.add_channel("a", "b")
    with pytest.raises(LisError):
        lis.set_queue(cid, 0)
    with pytest.raises(LisError):
        lis.remove_relay(cid, 1)


def test_parallel_channels_allowed():
    lis = fig1_lis()
    assert len(lis.channels()) == 2
    assert lis.relays(0) == 1
    assert lis.relays(1) == 0


def test_relay_insertion_and_removal():
    lis = LisGraph()
    cid = lis.add_channel("a", "b")
    lis.insert_relay(cid, 2)
    assert lis.relays(cid) == 2
    assert lis.total_relays() == 2
    lis.remove_relay(cid)
    assert lis.relays(cid) == 1


def test_set_all_queues():
    lis = fig1_lis()
    lis.set_all_queues(4)
    assert all(lis.queue(c) == 4 for c in lis.channel_ids())


def test_from_edges():
    lis = LisGraph.from_edges([("a", "b"), ("b", "c")], queue=2)
    assert len(lis.channels()) == 2
    assert all(lis.queue(c) == 2 for c in lis.channel_ids())


def test_copy_is_independent():
    lis = fig1_lis()
    clone = lis.copy()
    clone.insert_relay(0)
    assert lis.relays(0) == 1
    assert clone.relays(0) == 2


def test_ideal_marked_graph_structure():
    """Fig. 1's ideal marked graph: A, B, one relay station; tokens per
    the head-of-edge convention (1 into shells, 0 into relays)."""
    lis = fig1_lis()
    mg = lis.ideal_marked_graph()
    rs = relay_name(0, 0)
    assert set(mg.transitions) == {"A", "B", rs}
    assert mg.graph.node_data(rs)["kind"] == "relay"
    tokens = {
        (p.src, p.dst): p.data["tokens"] for p in mg.places
    }
    assert tokens[("A", rs)] == 0  # into relay station: void at t0
    assert tokens[(rs, "B")] == 1  # into shell
    assert tokens[("A", "B")] == 1  # lower channel, into shell
    assert all(p.data["kind"] == "fwd" for p in mg.places)


def test_doubled_marked_graph_backedges():
    lis = fig1_lis()
    mg = lis.doubled_marked_graph()
    rs = relay_name(0, 0)
    back = {
        (p.src, p.dst): p for p in mg.places if p.data["kind"] == "back"
    }
    # Backedge of A->rs segment: capacity of the relay station.
    assert back[(rs, "A")].data["tokens"] == RELAY_CAPACITY
    # Backedge of rs->B segment: B's queue for the upper channel.
    assert back[("B", rs)].data["tokens"] == 1
    assert back[("B", rs)].data["sizable"]
    assert not back[(rs, "A")].data["sizable"]
    # Lower channel backedge.
    lower = [
        p for (s, d), p in back.items() if (s, d) == ("B", "A")
    ]
    assert len(lower) == 1 and lower[0].data["tokens"] == 1
    # Forward and backward place counts match.
    fwd = [p for p in mg.places if p.data["kind"] == "fwd"]
    assert len(fwd) == len(back)


def test_doubled_with_extra_tokens():
    lis = fig1_lis()
    mg = lis.doubled_marked_graph(extra_tokens={1: 1})  # lower channel +1
    lower_back = [
        p
        for p in mg.places
        if p.data["kind"] == "back" and p.data["channel"] == 1
    ]
    assert lower_back[0].data["tokens"] == 2


def test_doubled_extra_tokens_validation():
    lis = fig1_lis()
    with pytest.raises(LisError):
        lis.doubled_marked_graph(extra_tokens={99: 1})
    with pytest.raises(LisError):
        lis.doubled_marked_graph(extra_tokens={0: -1})


def test_multi_relay_chain_expansion():
    lis = LisGraph()
    cid = lis.add_channel("a", "b", relays=3)
    mg = lis.doubled_marked_graph()
    # Chain a -> rs0 -> rs1 -> rs2 -> b: 4 forward + 4 backward places.
    assert mg.graph.number_of_edges() == 8
    fwd_tokens = sorted(
        p.data["tokens"] for p in mg.places if p.data["kind"] == "fwd"
    )
    assert fwd_tokens == [0, 0, 0, 1]
    back_tokens = sorted(
        p.data["tokens"] for p in mg.places if p.data["kind"] == "back"
    )
    assert back_tokens == [1, 2, 2, 2]
    assert lis.relays(cid) == 3


def test_sizable_backedges_mapping():
    lis = fig1_lis()
    mg = lis.doubled_marked_graph()
    mapping = lis.sizable_backedges(mg)
    assert set(mapping) == {0, 1}
    for cid, key in mapping.items():
        place = mg.graph.edge(key)
        assert place.data["kind"] == "back"
        assert place.data["channel"] == cid
        assert place.data["sizable"]
