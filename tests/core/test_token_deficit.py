"""Tests for the token-deficit abstraction and its simplification rules."""

from fractions import Fraction

import pytest

from repro.core import (
    InfeasibleError,
    LisGraph,
    TokenDeficitInstance,
    build_td_instance,
)
from repro.core.cycles import CycleRecord
from repro.gen import fig1_lis, fig15_lis


def make_instance(deficits, sets):
    """Bare instance with synthetic cycle records for error messages."""
    n = max(deficits) + 1 if deficits else 0
    cycles = [
        CycleRecord(places=(), tokens=0, channels=frozenset(), node_path=(i,))
        for i in range(n)
    ]
    return TokenDeficitInstance(
        deficits=dict(deficits),
        sets={k: set(v) for k, v in sets.items()},
        cycles=cycles,
    )


def test_is_solution():
    inst = make_instance({0: 2, 1: 1}, {10: {0, 1}, 11: {0}})
    assert inst.is_solution({10: 2})
    assert inst.is_solution({10: 1, 11: 1})
    assert not inst.is_solution({11: 2})  # cycle 1 uncovered
    assert not inst.is_solution({10: 1})


def test_solution_cost_includes_forced():
    inst = make_instance({0: 1}, {10: {0}})
    inst.forced = {99: 3}
    assert inst.solution_cost({10: 1}) == 4


def test_merge_forced():
    inst = make_instance({}, {})
    inst.forced = {1: 2}
    merged = inst.merge_forced({1: 1, 2: 0, 3: 4})
    assert merged == {1: 3, 3: 4}


def test_subset_rule_drops_dominated_edges():
    inst = make_instance({0: 1, 1: 1}, {10: {0}, 11: {0, 1}})
    inst._drop_subset_sets()
    assert 10 not in inst.sets
    assert 11 in inst.sets


def test_subset_rule_keeps_one_of_equal_sets():
    inst = make_instance({0: 1}, {10: {0}, 11: {0}})
    inst._drop_subset_sets()
    assert len(inst.sets) == 1


def test_singleton_forcing():
    inst = make_instance({0: 2, 1: 1}, {10: {0, 1}})
    inst.simplify()
    assert inst.is_trivial
    # Cycle 0 forces 2 tokens on edge 10, which also covers cycle 1.
    assert inst.forced == {10: 2}


def test_singleton_forcing_accumulates():
    # Cycle 0 only on edge 10 (deficit 1); after discounting, cycle 1
    # (deficit 3, also only on 10) still needs 2 more.
    inst = make_instance({0: 1, 1: 3}, {10: {0, 1}})
    inst.simplify()
    assert inst.forced == {10: 3}
    assert inst.is_trivial


def test_infeasible_cycle_without_edges():
    inst = make_instance({0: 1}, {})
    with pytest.raises(InfeasibleError):
        inst.simplify()


def test_simplify_fixpoint_chains():
    """Forcing one edge can make another cycle singleton-covered."""
    inst = make_instance(
        {0: 1, 1: 1},
        {10: {0}, 11: {0, 1}, 12: {1}},
    )
    # Rule 2 first drops 10 (subset of 11) and 12 (subset of 11), then
    # both cycles are singleton-covered by 11.
    inst.simplify()
    assert inst.is_trivial
    assert inst.forced == {11: 1}


def test_build_td_instance_fig1():
    inst = build_td_instance(fig1_lis())
    assert inst.target == 1
    # One deficient cycle, covered only by the lower channel's backedge
    # -> fully solved by simplification.
    assert inst.is_trivial
    assert inst.forced == {1: 1}


def test_build_td_instance_fig15():
    inst = build_td_instance(fig15_lis())
    assert inst.target == Fraction(5, 6)
    merged_channels = set(inst.forced) | set(inst.sets)
    assert merged_channels <= {1, 2, 3, 4, 5, 6}
    # The paper's fix needs tokens on channels 5 and 6.
    assert {5, 6} <= merged_channels


def test_build_with_explicit_target_and_extra():
    lis = fig1_lis()
    # Committing the known fix leaves nothing deficient.
    inst = build_td_instance(lis, extra_tokens={1: 1})
    assert inst.is_trivial and not inst.forced


def test_build_unsimplified_keeps_cycles():
    inst = build_td_instance(fig1_lis(), simplify=False)
    assert not inst.is_trivial
    assert len(inst.deficits) == 1


def test_build_respects_lower_target():
    """Asking only for 2/3 on Fig. 1 requires nothing at all."""
    inst = build_td_instance(fig1_lis(), target=Fraction(2, 3))
    assert inst.is_trivial and not inst.forced


def test_covering_channels():
    inst = make_instance({0: 1, 1: 1}, {10: {0}, 11: {0, 1}})
    assert inst.covering_channels(0) == {10, 11}
    assert inst.covering_channels(1) == {11}


def test_infeasible_unsimplified_build(monkeypatch):
    """A deficient cycle with no sizable backedges raises even when
    simplification is skipped."""
    lis = fig1_lis()
    import repro.core.token_deficit as td_mod

    real = td_mod.deficient_cycles

    def strip_channels(mg, goal, max_cycles=None):
        return [
            CycleRecord(
                places=r.places,
                tokens=r.tokens,
                channels=frozenset(),
                node_path=r.node_path,
            )
            for r in real(mg, goal, max_cycles=max_cycles)
        ]

    monkeypatch.setattr(td_mod, "deficient_cycles", strip_channels)
    with pytest.raises(InfeasibleError):
        build_td_instance(lis, simplify=False)
