"""The solver registry and the normalized/deprecated entrypoints."""

from fractions import Fraction

import pytest

from repro.core import available_solvers, get_solver, register_solver
from repro.core.solvers import (
    solve_td_exact,
    solve_td_heuristic,
    solve_td_heuristic_instance,
)
from repro.core.solvers.registry import _REGISTRY
from repro.core.token_deficit import build_td_instance
from repro.gen import fig1_lis, fig15_lis


def test_builtin_solvers_registered():
    names = available_solvers()
    assert list(names) == sorted(names)
    assert {"exact", "greedy", "heuristic", "milp"} <= set(names)


def test_get_solver_unknown_name():
    with pytest.raises(ValueError, match="unknown method 'nope'"):
        get_solver("nope")


def test_solver_solve_accepts_unified_keywords():
    solver = get_solver("exact")
    solution = solver.solve(
        fig15_lis(),
        target=Fraction(5, 6),
        timeout=30,
        max_cycles=100_000,
        collapse="auto",
    )
    assert solution.cost == 2
    assert solution.achieved == Fraction(5, 6)


def test_solver_solve_instance_normalized_signature():
    instance = build_td_instance(fig15_lis(), simplify=True)
    for name in available_solvers():
        weights, stats = get_solver(name).solve_instance(instance, timeout=30)
        assert isinstance(weights, dict)
        assert isinstance(stats, dict)


def test_register_custom_solver():
    def solve_nothing(instance, *, timeout=None):
        return {}, {"custom": True}

    register_solver("null", solve_nothing, description="test stub")
    try:
        assert "null" in available_solvers()
        with pytest.raises(ValueError, match="already registered"):
            register_solver("null", solve_nothing)
        register_solver("null", solve_nothing, overwrite=True)
    finally:
        _REGISTRY.pop("null", None)


def test_legacy_instance_call_warns_but_works():
    instance = build_td_instance(fig1_lis(), simplify=True)
    with pytest.warns(DeprecationWarning, match="solve_instance"):
        legacy = solve_td_heuristic(instance)
    weights, _stats = solve_td_heuristic_instance(instance)
    assert legacy == weights


def test_legacy_exact_call_warns_and_keeps_outcome_shape():
    instance = build_td_instance(fig15_lis(), simplify=True)
    with pytest.warns(DeprecationWarning):
        outcome = solve_td_exact(instance, timeout=30)
    assert outcome.cost == sum(outcome.weights.values())


def test_entrypoint_dispatches_on_lis_graph():
    """Passing a LisGraph to a solve_td_* entrypoint routes through the
    facade and returns a full QsSolution -- no deprecation warning."""
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        solution = solve_td_exact(fig15_lis(), timeout=30)
    assert solution.cost == 2
    assert solution.restores_target


def test_entrypoint_rejects_unknown_keywords():
    with pytest.raises(TypeError, match="unexpected keyword"):
        solve_td_exact(fig15_lis(), flavor="spicy")
