"""MST analysis tests: every worked example of the paper is checked here."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LisGraph,
    actual_mst,
    cycle_time,
    degradation_ratio,
    ideal_mst,
    mst,
    mst_per_scc,
)
from repro.gen import (
    fig1_lis,
    fig2_right_lis,
    fig10_limiter_lis,
    fig15_lis,
    ring_lis,
    tree_lis,
    uplink_downlink_lis,
)


def test_fig1_ideal_mst_is_one():
    """No feedback loop: the relay station's tau leaves the system."""
    result = ideal_mst(fig1_lis())
    assert result.mst == 1
    assert not result.is_degraded
    assert result.critical is None


def test_fig5_doubled_mst_two_thirds():
    """Fig. 5: with q=1 backpressure, the cycle {A, rs, B, A} has three
    places and two tokens, so the MST drops to 2/3."""
    result = actual_mst(fig1_lis())
    assert result.mst == Fraction(2, 3)
    assert result.is_degraded
    assert len(result.critical) == 3
    assert sum(p.data["tokens"] for p in result.critical) == 2


def test_fig5_cycle_time_is_three_halves():
    mg = fig1_lis().doubled_marked_graph()
    assert cycle_time(mg) == Fraction(3, 2)


def test_fig6_queue_of_two_restores_mst():
    """Fig. 6: one extra token on the lower channel's backedge."""
    assert actual_mst(fig1_lis(), extra_tokens={1: 1}).mst == 1
    # Equivalently, configure the queue itself.
    lis = fig1_lis()
    lis.set_queue(1, 2)
    assert actual_mst(lis).mst == 1


def test_fig2_right_relay_insertion_restores_mst():
    """Equalizing the two paths with a second relay station: MST = 1."""
    lis = fig2_right_lis()
    assert ideal_mst(lis).mst == 1
    assert actual_mst(lis).mst == 1


def test_fig15_numbers():
    """Fig. 15: ideal 5/6; doubled with q=1 degrades to 3/4."""
    lis = fig15_lis()
    assert ideal_mst(lis).mst == Fraction(5, 6)
    assert actual_mst(lis).mst == Fraction(3, 4)


def test_fig15_relay_insertion_cannot_recover():
    """Adding a relay station on (A,C) or (C,E) lowers the *ideal* MST
    to 3/4, so insertion alone can never reach 5/6 (Section VI)."""
    for channel in (5, 6):  # (A,C) and (C,E)
        lis = fig15_lis()
        lis.insert_relay(channel)
        assert ideal_mst(lis).mst == Fraction(3, 4)


def test_fig15_queue_sizing_recovers():
    """One extra queue slot on (A,C) and one on (C,E) recovers 5/6."""
    lis = fig15_lis()
    assert actual_mst(lis, extra_tokens={5: 1, 6: 1}).mst == Fraction(5, 6)


def test_fig10_limiter_is_five_sixths():
    result = ideal_mst(fig10_limiter_lis())
    assert result.mst == Fraction(5, 6)
    assert len(result.critical) == 6


def test_uplink_downlink_sccs():
    """Intro example: uplink MST 3/4 feeding downlink MST 2/3."""
    lis = uplink_downlink_lis()
    per_scc = mst_per_scc(lis.ideal_marked_graph())
    values = sorted(v for k, v in per_scc.items() if len(k) > 1)
    assert values == [Fraction(2, 3), Fraction(3, 4)]
    assert ideal_mst(lis).mst == Fraction(2, 3)


def test_ring_mst_formula():
    for n, relays in [(3, 0), (3, 1), (4, 2), (5, 3)]:
        lis = ring_lis(n, relays)
        expected = min(Fraction(1), Fraction(n, n + relays))
        assert ideal_mst(lis).mst == expected


def test_tree_never_degrades_with_q1():
    """Section IV-A: trees keep MST 1 with q = 1, any relay count."""
    for relays in (1, 3):
        lis = tree_lis(depth=3, fanout=2, relays_per_channel=relays)
        assert ideal_mst(lis).mst == 1
        assert actual_mst(lis).mst == 1


def test_cycle_time_none_for_acyclic_or_dead():
    lis = LisGraph.from_edges([("a", "b")])
    assert cycle_time(lis.ideal_marked_graph()) is None  # acyclic
    dead = ring_lis(2)
    mg = dead.ideal_marked_graph()
    for place in mg.places:
        mg.set_tokens(place.key, 0)
    assert cycle_time(mg) is None  # deadlocked


def test_degradation_ratio():
    assert degradation_ratio(fig1_lis()) == Fraction(2, 3)
    assert degradation_ratio(fig1_lis(), extra_tokens={1: 1}) == 1


def test_degradation_ratio_raises_on_dead_ideal():
    lis = ring_lis(2)
    mgless = lis.copy()
    # A 2-ring of shells is live (tokens on both places); force deadlock
    # by relays on both channels making a token-free cycle impossible to
    # construct through the public API -- instead check the error path
    # directly with a custom marked graph via monkeypatched ideal.
    from repro.core import throughput

    class DeadLis(LisGraph):
        def ideal_marked_graph(self):
            from repro.core import MarkedGraph

            mg = MarkedGraph()
            mg.add_place("x", "y", tokens=0)
            mg.add_place("y", "x", tokens=0)
            return mg

        def doubled_marked_graph(self, extra_tokens=None):
            return self.ideal_marked_graph()

    with pytest.raises(ValueError):
        throughput.degradation_ratio(DeadLis())
    assert mgless is not None


def test_mst_monotone_in_queue_capacity_examples():
    lis = fig1_lis()
    values = []
    for q in range(1, 5):
        lis.set_all_queues(q)
        values.append(actual_mst(lis).mst)
    assert values == sorted(values)
    assert values[-1] == 1


@given(
    n=st.integers(min_value=2, max_value=6),
    relays=st.integers(min_value=0, max_value=4),
    q=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60)
def test_backpressure_never_helps(n, relays, q):
    """theta(d[G]) <= theta(G) for rings of any configuration."""
    lis = ring_lis(n, relays, queue=q)
    assert actual_mst(lis).mst <= ideal_mst(lis).mst


@given(
    n=st.integers(min_value=2, max_value=5),
    relays=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=40)
def test_conservative_fixed_qs_bound(n, relays):
    """Section IV: q = r + 1 always preserves the ideal MST."""
    lis = ring_lis(n, relays)
    lis.set_all_queues(lis.total_relays() + 1)
    assert actual_mst(lis).mst == ideal_mst(lis).mst
