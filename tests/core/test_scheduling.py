"""Tests for static scheduling and simulation-driven queue sizing."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LisGraph, actual_mst, ideal_mst
from repro.core.marked_graph import MarkedGraph
from repro.core.scheduling import (
    Schedule,
    ScheduleError,
    periodic_schedule,
    schedule_lis,
    simulation_driven_sizing,
)
from repro.gen import fig1_lis, fig15_lis, ring_lis, uplink_downlink_lis


def test_periodic_schedule_of_simple_ring():
    mg = MarkedGraph()
    for i in range(3):
        mg.add_place(i, (i + 1) % 3, tokens=1 if i != 1 else 0)
    schedule = periodic_schedule(mg)  # ring with mean 2/3
    assert schedule.rate(0) == Fraction(2, 3)
    assert schedule.rate(1) == Fraction(2, 3)
    assert schedule.hyperperiod >= 1


def test_schedule_of_deadlocked_system_raises():
    mg = MarkedGraph()
    mg.add_place("a", "b", tokens=0)
    mg.add_place("b", "a", tokens=0)
    with pytest.raises(ScheduleError):
        periodic_schedule(mg)


def test_schedule_budget_exhaustion_raises():
    """Unbounded accumulation (fast SCC feeding slow) never repeats."""
    lis = uplink_downlink_lis()
    with pytest.raises(ScheduleError):
        schedule_lis(lis, practical=False, max_steps=200)


def test_practical_schedule_rate_equals_practical_mst():
    for lis in (fig1_lis(), fig15_lis(), ring_lis(4, relays=2)):
        schedule = schedule_lis(lis, practical=True)
        expected = actual_mst(lis).mst
        probe = lis.shells()[0]
        assert schedule.rate(probe) == expected


def test_ideal_schedule_rate_equals_ideal_mst():
    lis = fig15_lis()
    schedule = schedule_lis(lis, practical=False)
    assert schedule.rate("A") == ideal_mst(lis).mst == Fraction(5, 6)


def test_schedule_matches_simulator_firings():
    """The schedule replays exactly the simulator's firing pattern."""
    from repro.lis import TraceSimulator

    lis = fig1_lis()
    schedule = schedule_lis(lis, practical=True)
    sim = TraceSimulator(lis)
    sim.run(30)
    for shell in ("A", "B"):
        assert schedule.firing_plan(shell, 30) == sim.trace.fired[shell]


def test_firing_plan_wraps_period():
    schedule = Schedule(
        prefix=(frozenset({"x"}),),
        period=(frozenset(), frozenset({"x"})),
        peak_tokens={},
    )
    assert schedule.firing_plan("x", 6) == [
        True,  # prefix
        False,
        True,
        False,
        True,
        False,
    ]
    assert schedule.firings_in_period("x") == 1
    assert schedule.rate("x") == Fraction(1, 2)


def test_rate_of_empty_period_raises():
    schedule = Schedule(prefix=(), period=(), peak_tokens={})
    with pytest.raises(ScheduleError):
        schedule.rate("x")


def test_firing_word_and_transient():
    schedule = Schedule(
        prefix=(frozenset({"x"}),),
        period=(frozenset(), frozenset({"x"})),
        peak_tokens={},
    )
    assert schedule.transient == 1
    assert schedule.firing_word("x") == (0, 1)
    assert schedule.firing_word("absent") == (0, 0)
    # Density of the word is the rate; word tools accept it directly.
    from repro.schedule.words import word_rate

    assert word_rate(schedule.firing_word("x")) == schedule.rate("x")


def test_schedule_lis_with_extra_tokens_matches_sized_mst():
    from repro.core import size_queues

    lis = fig15_lis()
    fix = size_queues(lis, method="exact").extra_tokens
    schedule = schedule_lis(lis, practical=True, extra_tokens=fix)
    assert schedule.rate("A") == actual_mst(lis, fix).mst == Fraction(5, 6)


def test_schedule_lis_rejects_extra_tokens_on_ideal_system():
    with pytest.raises(ScheduleError, match="ideal"):
        schedule_lis(fig15_lis(), practical=False, extra_tokens={0: 1})


def test_schedule_words_agree_with_oracle():
    """The pure-Python schedule and the compiled oracle recover the
    same steady-state words and transient."""
    from repro.schedule import derive_schedule

    lis = fig15_lis()
    schedule = schedule_lis(lis, practical=True)
    oracle = derive_schedule(lis)
    assert schedule.transient == oracle.transient
    assert schedule.hyperperiod == oracle.hyperperiod
    for shell in lis.shells():
        assert schedule.firing_word(shell) == oracle.firing_word(shell)


def test_simulation_driven_sizing_restores_fig1():
    lis = fig1_lis()
    sizes = simulation_driven_sizing(lis)
    sized = lis.copy()
    for cid, q in sizes.items():
        sized.set_queue(cid, q)
    assert actual_mst(sized).mst == ideal_mst(lis).mst == 1
    # The lower channel needs the extra slot; the upper does not.
    assert sizes[1] == 2
    assert sizes[0] == 1


def test_simulation_driven_sizing_restores_fig15():
    lis = fig15_lis()
    sizes = simulation_driven_sizing(lis)
    sized = lis.copy()
    for cid, q in sizes.items():
        sized.set_queue(cid, q)
    assert actual_mst(sized).mst == Fraction(5, 6)


def test_simulation_driven_sizing_cost_vs_analytic():
    """The simulation-driven sizes are valid but not cheaper than the
    exact token-deficit solution."""
    from repro.core import size_queues

    lis = fig15_lis()
    sizes = simulation_driven_sizing(lis)
    empirical_extra = sum(q - lis.queue(cid) for cid, q in sizes.items())
    exact = size_queues(lis, method="exact")
    assert empirical_extra >= exact.cost


def test_simulation_driven_sizing_unbounded_raises():
    with pytest.raises(ScheduleError):
        simulation_driven_sizing(uplink_downlink_lis(), max_steps=200)


@given(
    n=st.integers(min_value=2, max_value=5),
    relays=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_scheduled_rate_matches_mst_on_rings(n, relays):
    lis = ring_lis(n, relays)
    schedule = schedule_lis(lis, practical=True)
    assert schedule.rate("s0") == actual_mst(lis).mst


@given(
    upper=st.integers(min_value=0, max_value=3),
    lower=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_simulation_driven_sizing_always_restores_two_path(upper, lower):
    lis = LisGraph()
    lis.add_channel("A", "B", relays=upper)
    lis.add_channel("A", "B", relays=lower)
    sizes = simulation_driven_sizing(lis)
    sized = lis.copy()
    for cid, q in sizes.items():
        sized.set_queue(cid, q)
    assert actual_mst(sized).mst == ideal_mst(lis).mst
