"""Tests for table rendering and result persistence."""

from fractions import Fraction

from repro.experiments import format_cell, render_table, save_result
from repro.experiments.tables import results_dir


def test_format_cell_variants():
    assert format_cell(Fraction(2, 3)) == "0.667"
    assert format_cell(0.12345) == "0.123"
    assert format_cell(None) == "-"
    assert format_cell(42) == "42"
    assert format_cell("txt") == "txt"


def test_render_table_alignment():
    text = render_table(
        ["name", "value"],
        [["a", 1], ["longer", 22]],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1] == "=" * 1
    header = lines[2]
    assert header.startswith("name")
    assert "value" in header
    # All rows have equal rendered width per column (separator row).
    sep = lines[3]
    assert set(sep) <= {"-", " "}
    assert "longer" in lines[5]


def test_render_table_without_title():
    text = render_table(["h"], [[1]])
    assert text.splitlines()[0] == "h"


def test_results_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "out"))
    path = results_dir()
    assert path == tmp_path / "out"
    assert path.is_dir()


def test_save_result_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    saved = save_result("unit_test_artifact", "hello\nworld")
    assert saved.read_text() == "hello\nworld\n"
    assert saved.name == "unit_test_artifact.txt"


def test_config_env_knobs(monkeypatch):
    from repro.experiments import cofdm_limit, exact_timeout, trials

    monkeypatch.setenv("REPRO_TRIALS", "17")
    monkeypatch.setenv("REPRO_EXACT_TIMEOUT", "123.5")
    monkeypatch.setenv("REPRO_COFDM_LIMIT", "99")
    assert trials() == 17
    assert exact_timeout() == 123.5
    assert cofdm_limit() == 99
    monkeypatch.setenv("REPRO_COFDM_LIMIT", "0")
    assert cofdm_limit() is None
    monkeypatch.delenv("REPRO_TRIALS")
    assert trials(default=7) == 7
