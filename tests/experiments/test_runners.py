"""Tests for the Section VIII experiment runners (small trial counts)."""

from repro.experiments import (
    Table4Row,
    fig16_mst_degradation,
    fig17_fixed_queue_recovery,
    table4_exact_vs_heuristic,
)


def test_fig16_series_structure():
    series = fig16_mst_degradation(
        rs_values=[4, 8], queues=[1, 5], trials=3
    )
    assert set(series) == {
        (policy, label)
        for policy in ("scc", "any")
        for label in ("inf", "1", "5")
    }
    for values in series.values():
        assert len(values) == 2
        assert all(0 < v <= 1 for v in values)
    # scc ideal is pinned at 1.0.
    assert series[("scc", "inf")] == [1.0, 1.0]
    # finite queues bound the ideal from below.
    for policy in ("scc", "any"):
        for i in range(2):
            assert series[(policy, "1")][i] <= series[(policy, "inf")][i] + 1e-12


def test_fig16_deterministic_for_seed_base():
    a = fig16_mst_degradation([6], [1], trials=2, seed_base=5)
    b = fig16_mst_degradation([6], [1], trials=2, seed_base=5)
    assert a == b


def test_fig17_ratios_monotone():
    ratios = fig17_fixed_queue_recovery([1, 2, 4, 8], trials=3)
    values = [ratios[q] for q in (1, 2, 4, 8)]
    assert values == sorted(values)
    assert values[-1] <= 1.0 + 1e-12


def test_table4_rows_and_accounting():
    rows = table4_exact_vs_heuristic(
        configs=[(30, 3, 1)], trials=3, rs=4, exact_timeout=20
    )
    (row,) = rows
    assert isinstance(row, Table4Row)
    assert row.v == 30 and row.s == 3
    finished = len(row.exact_solutions)
    unfinished = len(row.heuristic_solutions_unfinished)
    assert finished + unfinished == 3
    assert 0 <= row.percent_exact_finished <= 1
    table_row = row.as_table_row()
    assert len(table_row) == len(Table4Row.HEADERS)
    # Heuristic never beats exact on the finished trials.
    for exact, heuristic in zip(
        row.exact_solutions, row.heuristic_solutions_finished
    ):
        assert heuristic >= exact


def test_table4_percent_with_no_trials():
    row = Table4Row(v=1, s=1, c=1, rs=0)
    assert row.percent_exact_finished == 1.0
