"""Tests for the COFDM scenario helpers."""

from fractions import Fraction

from repro.soc import (
    FIG19_RELAY_CHANNELS,
    analyze_scenario,
    run_exhaustive_insertion,
    worst_placements,
)


def test_analyze_fig19_scenario():
    analysis = analyze_scenario(FIG19_RELAY_CHANNELS)
    assert analysis.ideal == Fraction(3, 4)
    assert analysis.degraded == Fraction(2, 3)
    assert analysis.is_degraded
    assert len(analysis.cycles) == 6
    assert analysis.fix.cost == 2
    assert analysis.fix.restores_target
    rows = analysis.cycle_rows()
    assert len(rows) == 6
    assert all(mean < 0.75 for _, mean in rows)


def test_analyze_non_degrading_scenario():
    # A single relay station on the Clip -> tx_Filter tail touches no
    # reconvergent loop region with q = 1... unless it does; assert the
    # invariant structure instead of a specific verdict.
    analysis = analyze_scenario([("Clip", "tx_Filter")])
    assert analysis.degraded <= analysis.ideal
    assert analysis.fix.restores_target
    if not analysis.is_degraded:
        assert analysis.cycles == ()
        assert analysis.fix.cost == 0


def test_analyze_stacked_relays_on_one_channel():
    analysis = analyze_scenario([("FEC", "Spread"), ("FEC", "Spread")])
    assert analysis.ideal == Fraction(3, 4)  # 2 relays on the 6-loop
    assert analysis.fix.restores_target


def test_analyze_with_bigger_queues():
    analysis = analyze_scenario(FIG19_RELAY_CHANNELS, queue=2)
    assert analysis.ideal == Fraction(3, 4)
    # The paper: q = 2 absorbs two inserted relay stations entirely.
    assert not analysis.is_degraded
    assert analysis.fix.cost == 0


def test_worst_placements_ranking():
    report = run_exhaustive_insertion(limit=40, run_exact=False)
    worst = worst_placements(report, count=3)
    assert len(worst) <= 3
    losses = [
        (p.ideal - p.actual) / p.ideal for p in worst
    ]
    assert losses == sorted(losses, reverse=True)
    if worst:
        overall = [
            (p.ideal - p.actual) / p.ideal for p in report.degraded
        ]
        assert losses[0] == max(overall)
