"""Tests for the Table V exhaustive-insertion sweep (bounded slices)."""

from fractions import Fraction

from repro.core import actual_mst, ideal_mst
from repro.soc import cofdm_transmitter, run_exhaustive_insertion


def test_sweep_slice_structure():
    report = run_exhaustive_insertion(limit=12, exact_timeout=10)
    assert len(report.placements) == 12
    assert report.queue == 1
    assert report.relays_per_placement == 2
    for placement in report.placements:
        assert len(placement.channels) == 2
        assert placement.actual <= placement.ideal
        if placement.degraded:
            assert placement.heuristic_tokens["orig"] >= 1
            assert placement.heuristic_tokens["simplified"] >= 1
            # The heuristic never beats the optimum.
            for variant in ("orig", "simplified"):
                opt = placement.optimal_tokens[variant]
                if opt is not None:
                    assert placement.heuristic_tokens[variant] >= opt
        else:
            assert placement.heuristic_tokens == {}


def test_summary_keys_present():
    report = run_exhaustive_insertion(limit=12, exact_timeout=10)
    summary = report.summary()
    assert summary["insertions"] == 12
    assert 0 <= summary["degraded_fraction"] <= 1
    if report.degraded:
        assert "heuristic_tokens_orig" in summary
        assert "optimal_tokens_simplified" in summary
        assert summary["heuristic_tokens_orig"] >= summary["optimal_tokens_orig"]


def test_simplified_solutions_never_worse_for_optimal():
    report = run_exhaustive_insertion(limit=20, exact_timeout=10)
    for placement in report.degraded:
        orig = placement.optimal_tokens["orig"]
        simp = placement.optimal_tokens["simplified"]
        if orig is not None and simp is not None:
            assert simp == orig  # both are optimal costs


def test_q2_single_relay_never_degrades():
    """Section IX: one relay station with q = 2 cannot degrade."""
    report = run_exhaustive_insertion(
        queue=2, relays_per_placement=1, run_exact=False
    )
    assert len(report.placements) == 30
    assert not report.degraded


def test_heuristic_only_mode_skips_exact():
    report = run_exhaustive_insertion(limit=6, run_exact=False)
    for placement in report.degraded:
        assert placement.optimal_tokens == {}


def test_single_relay_q1_some_placements_degrade():
    """With q = 1 even a single relay station can degrade (any channel
    on a reconvergent pair), unlike the q = 2 case."""
    report = run_exhaustive_insertion(
        queue=1, relays_per_placement=1, run_exact=False
    )
    assert report.degraded  # at least one of 30 placements
    base = cofdm_transmitter()
    assert ideal_mst(base).mst == actual_mst(base).mst == Fraction(1)

def test_simulation_verification_of_degraded_placements():
    """The batch simulator independently confirms the analytic rate of
    every degraded placement found by the sweep."""
    report = run_exhaustive_insertion(
        queue=1,
        relays_per_placement=1,
        limit=25,
        run_exact=False,
        simulate_clocks=200,
    )
    sim = report.simulation
    assert sim is not None
    assert sim["checked"] >= 1
    assert sim["mismatches"] == []
    assert report.summary()["simulation"]["checked"] == sim["checked"]


def test_simulation_skipped_by_default():
    report = run_exhaustive_insertion(limit=6, run_exact=False)
    assert report.simulation is None
    assert "simulation" not in report.summary()
