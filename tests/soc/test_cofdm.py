"""Tests pinning the COFDM reconstruction to the paper's published
structural facts (Section IX)."""

from fractions import Fraction

import pytest

from repro.core import (
    actual_mst,
    deficient_cycles,
    ideal_mst,
    size_queues,
)
from repro.graphs import is_strongly_connected, strongly_connected_components
from repro.graphs.cycles import count_edge_cycles
from repro.soc import (
    BLOCKS,
    CHANNELS,
    FIG19_DEGRADED_MST,
    FIG19_IDEAL_MST,
    FIG19_OPTIMAL_FIX,
    channel_id,
    cofdm_transmitter,
    fig19_scenario,
)


def test_block_and_channel_counts():
    lis = cofdm_transmitter()
    assert len(BLOCKS) == 12
    assert len(CHANNELS) == 30
    assert lis.system.number_of_nodes() == 12
    assert len(lis.channels()) == 30


def test_twenty_two_top_level_cycles():
    lis = cofdm_transmitter()
    assert count_edge_cycles(lis.system) == 22


def test_base_system_has_ideal_mst_one():
    lis = cofdm_transmitter()
    assert ideal_mst(lis).mst == 1
    assert actual_mst(lis).mst == 1  # no relay stations yet


def test_queue_parameter():
    lis = cofdm_transmitter(queue=2)
    assert all(lis.queue(cid) == 2 for cid in lis.channel_ids())


def test_channel_id_lookup():
    lis = cofdm_transmitter()
    cid = channel_id(lis, "FEC", "Spread")
    edge = lis.channel(cid)
    assert (edge.src, edge.dst) == ("FEC", "Spread")
    with pytest.raises(KeyError):
        channel_id(lis, "FEC", "tx_Filter")


def test_critical_feedback_loop_present():
    """The loop FEC -> Spread -> Pilot -> FFT_in -> FFT -> tx_Ctrl -> FEC."""
    lis = cofdm_transmitter()
    loop = ["FEC", "Spread", "Pilot", "FFT_in", "FFT", "tx_Ctrl"]
    for i, src in enumerate(loop):
        dst = loop[(i + 1) % len(loop)]
        assert lis.system.has_edge(src, dst), (src, dst)


def test_fig19_scenario_msts():
    scenario = fig19_scenario()
    assert ideal_mst(scenario).mst == FIG19_IDEAL_MST == Fraction(3, 4)
    assert actual_mst(scenario).mst == FIG19_DEGRADED_MST == Fraction(2, 3)


def test_fig19_six_deficient_cycles_match_table6():
    """Exactly six sub-0.75 cycles with the published means and block
    sequences, including the duplicated (Control, tx_Ctrl, ...) pair."""
    scenario = fig19_scenario()
    records = deficient_cycles(
        scenario.doubled_marked_graph(), FIG19_IDEAL_MST
    )
    assert len(records) == 6
    means = sorted(float(r.mean) for r in records)
    assert means[0] == pytest.approx(2 / 3, abs=1e-9)
    assert all(m == pytest.approx(5 / 7, abs=1e-9) for m in means[1:])

    def blocks_of(record):
        names = [n for n in record.node_path if not isinstance(n, tuple)]
        k = names.index("Control")
        return tuple(names[k:] + names[:k])

    sequences = sorted(blocks_of(r) for r in records)
    assert sequences == sorted(
        [
            ("Control", "FEC", "Spread", "Pilot"),
            ("Control", "FEC", "Spread", "Pilot", "FFT_in"),
            ("Control", "PI", "FEC", "Spread", "Pilot"),
            ("Control", "PO", "FEC", "Spread", "Pilot"),
            ("Control", "tx_Ctrl", "FEC", "Spread", "Pilot"),
            ("Control", "tx_Ctrl", "FEC", "Spread", "Pilot"),
        ]
    )


def test_fig19_each_cycle_deficit_is_one():
    scenario = fig19_scenario()
    for record in deficient_cycles(
        scenario.doubled_marked_graph(), FIG19_IDEAL_MST
    ):
        assert record.deficit(FIG19_IDEAL_MST) == 1


def test_fig19_published_fix_is_found_by_both_solvers():
    """Both solvers find the paper's two-token fix on the backedges
    (Pilot, Control) and (FFT_in, Control)."""
    scenario = fig19_scenario()
    expected = {
        channel_id(scenario, src, dst) for src, dst in FIG19_OPTIMAL_FIX
    }
    for method in ("heuristic", "exact"):
        solution = size_queues(scenario, method=method)
        assert solution.cost == 2
        assert set(solution.extra_tokens) == expected
        assert solution.achieved == FIG19_IDEAL_MST


def test_fig19_fix_verified_by_simulation():
    from repro.lis import crossvalidate

    scenario = fig19_scenario()
    fix = {
        channel_id(scenario, src, dst): 1 for src, dst in FIG19_OPTIMAL_FIX
    }
    report = crossvalidate(scenario, extra_tokens=fix)
    assert report["agreed"]
    assert report["analytic"] == Fraction(3, 4)


def test_transmitter_is_single_scc_plus_periphery():
    """The control/datapath core is one SCC; the doubled graph is
    strongly connected (every channel gains a backedge)."""
    lis = cofdm_transmitter()
    big = max(
        strongly_connected_components(lis.system), key=len
    )
    assert {"Control", "FEC", "Spread", "Pilot", "FFT_in", "FFT", "tx_Ctrl"} <= set(big)
    assert is_strongly_connected(lis.doubled_marked_graph().graph)


def test_doubled_cycle_count_same_order_as_paper():
    """The paper reports 2896 doubled-graph cycles; the reconstruction
    is in the same range (exact value depends on unpublished wiring)."""
    lis = cofdm_transmitter()
    count = count_edge_cycles(lis.doubled_marked_graph().graph)
    assert 1500 <= count <= 6000
