"""Shared hypothesis strategies for the test-suite."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graphs import Digraph


@st.composite
def digraphs(
    draw,
    max_nodes: int = 8,
    max_edges: int = 20,
    allow_self_loops: bool = True,
    allow_parallel: bool = True,
    min_nodes: int = 1,
):
    """A random :class:`Digraph` with integer nodes ``0..n-1``."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    g = Digraph()
    for i in range(n):
        g.add_node(i)
    seen: set[tuple[int, int]] = set()
    for _ in range(m):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if not allow_self_loops and src == dst:
            continue
        if not allow_parallel and (src, dst) in seen:
            continue
        seen.add((src, dst))
        g.add_edge(src, dst)
    return g


@st.composite
def weighted_digraphs(draw, max_nodes: int = 7, max_edges: int = 16):
    """A random Digraph whose edges carry small non-negative int weights."""
    g = draw(digraphs(max_nodes=max_nodes, max_edges=max_edges))
    for edge in g.edges:
        edge.data["w"] = draw(st.integers(min_value=0, max_value=4))
    return g
