"""Shared hypothesis strategies for the test-suite."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import LisGraph
from repro.graphs import Digraph
from repro.lis import ShellBehavior

#: Modulus keeping arithmetic core values bounded (deep pass-through
#: tuples are exponential to compare on cyclic systems; scalars are not).
PRIME = 1_000_003


@st.composite
def digraphs(
    draw,
    max_nodes: int = 8,
    max_edges: int = 20,
    allow_self_loops: bool = True,
    allow_parallel: bool = True,
    min_nodes: int = 1,
):
    """A random :class:`Digraph` with integer nodes ``0..n-1``.

    The edge count is drawn first and honoured exactly: edges come
    from filtered draws over the admissible endpoint pairs, so ``m``
    requested edges means ``m`` edges whenever the constraints make
    that feasible (no silent drop-on-conflict skew).
    """
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    pairs = [
        (src, dst)
        for src in range(n)
        for dst in range(n)
        if allow_self_loops or src != dst
    ]
    cap = max_edges if allow_parallel else min(max_edges, len(pairs))
    if not pairs:
        cap = 0
    m = draw(st.integers(min_value=0, max_value=cap))
    g = Digraph()
    for i in range(n):
        g.add_node(i)
    if m:
        chosen = draw(
            st.lists(
                st.sampled_from(pairs),
                min_size=m,
                max_size=m,
                unique=not allow_parallel,
            )
        )
        for src, dst in chosen:
            g.add_edge(src, dst)
    return g


@st.composite
def weighted_digraphs(draw, max_nodes: int = 7, max_edges: int = 16):
    """A random Digraph whose edges carry small non-negative int weights."""
    g = draw(digraphs(max_nodes=max_nodes, max_edges=max_edges))
    for edge in g.edges:
        edge.data["w"] = draw(st.integers(min_value=0, max_value=4))
    return g


@st.composite
def lis_graphs(
    draw,
    max_shells: int = 5,
    max_channels: int = 8,
    max_relays: int = 2,
    max_queue: int = 3,
    max_latency: int = 1,
    min_shells: int = 1,
    min_channels: int = 0,
    allow_self_loops: bool = True,
):
    """A random :class:`LisGraph`: topology plus relay stations, queue
    capacities, and (optionally) pipelined core latencies."""
    g = draw(
        digraphs(
            max_nodes=max_shells,
            max_edges=max_channels,
            min_nodes=min_shells,
            allow_self_loops=allow_self_loops,
            allow_parallel=True,
        )
    )
    lis = LisGraph()
    shells = [f"s{node}" for node in sorted(g.nodes)]
    for shell in shells:
        latency = (
            draw(st.integers(min_value=1, max_value=max_latency))
            if max_latency > 1
            else 1
        )
        lis.add_shell(shell, latency=latency)

    def add(src, dst):
        lis.add_channel(
            src,
            dst,
            queue=draw(st.integers(min_value=1, max_value=max_queue)),
            relays=draw(st.integers(min_value=0, max_value=max_relays)),
        )

    for edge in sorted(g.edges, key=lambda e: e.key):
        add(f"s{edge.src}", f"s{edge.dst}")
    pairs = [
        (a, b)
        for a in shells
        for b in shells
        if allow_self_loops or a != b
    ]
    while pairs and len(lis.channels()) < min_channels:
        src, dst = draw(st.sampled_from(pairs))
        add(src, dst)
    return lis


def arithmetic_behaviors(lis, params):
    """A fresh ``{shell: ShellBehavior}`` of scalar arithmetic cores.

    ``params`` maps each shell to ``(a, b, init)``: sources count
    ``a*k + b (mod PRIME)``, everything else computes
    ``(sum(inputs)*a + b) mod PRIME``.  Call once per simulator run --
    sources are stateful.
    """
    behaviors = {}
    for shell, (a, b, init) in params.items():
        if lis.system.in_degree(shell) == 0:
            state = {"k": 0}

            def fn(_inputs, a=a, b=b, state=state):
                state["k"] += 1
                return (a * state["k"] + b) % PRIME

            behaviors[shell] = ShellBehavior(initial=init, fn=fn)
        else:
            behaviors[shell] = ShellBehavior(
                initial=init,
                fn=lambda inputs, a=a, b=b: (
                    sum(inputs.values()) * a + b
                )
                % PRIME,
            )
    return behaviors


@st.composite
def stochastic_specs(
    draw,
    kinds: tuple[str, ...] = ("bernoulli", "burst", "periodic"),
    scopes: tuple[str, ...] = ("all", "global", "sources", "sinks"),
    deterministic: bool | None = None,
):
    """A random :class:`repro.stochastic.StochasticSpec`.

    ``deterministic=True`` draws only zero-variance processes (periodic
    patterns and rate-0/1 Bernoulli -- the degeneracy-pinning inputs);
    ``False`` only genuinely random ones; ``None`` either.
    """
    from repro.stochastic import StochasticSpec

    if deterministic is True:
        kinds = tuple(k for k in kinds if k != "burst")
    kind = draw(st.sampled_from(kinds))
    scope = draw(st.sampled_from(scopes))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    if kind == "bernoulli":
        if deterministic is True:
            rate = draw(st.sampled_from([0.0, 1.0]))
        elif deterministic is False:
            rate = draw(
                st.floats(min_value=0.05, max_value=0.6, allow_nan=False)
            )
        else:
            rate = draw(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
            )
        return StochasticSpec("bernoulli", scope=scope, rate=rate, seed=seed)
    if kind == "burst":
        if deterministic is True:  # pragma: no cover - filtered above
            raise AssertionError("burst processes are never deterministic")
        return StochasticSpec(
            "burst",
            scope=scope,
            burst=draw(st.floats(min_value=1.0, max_value=8.0)),
            gap=draw(st.floats(min_value=1.0, max_value=16.0)),
            seed=seed,
        )
    if deterministic is False:
        # Periodic patterns are always deterministic; substitute a
        # mid-rate Bernoulli to honour the request.
        return StochasticSpec(
            "bernoulli",
            scope=scope,
            rate=draw(st.floats(min_value=0.05, max_value=0.6)),
            seed=seed,
        )
    return StochasticSpec(
        "periodic",
        scope=scope,
        burst=float(draw(st.integers(min_value=1, max_value=4))),
        gap=float(draw(st.integers(min_value=1, max_value=6))),
        phase=draw(st.integers(min_value=0, max_value=5)),
    )


@st.composite
def lis_systems(draw, **kwargs):
    """A random LIS plus a behaviours *factory* (fresh stateful cores
    per call): ``(lis, make_behaviors)``."""
    lis = draw(lis_graphs(**kwargs))
    params = {
        shell: (
            draw(st.integers(min_value=1, max_value=7)),
            draw(st.integers(min_value=0, max_value=9)),
            draw(st.integers(min_value=0, max_value=9)),
        )
        for shell in lis.shells()
    }
    return lis, lambda: arithmetic_behaviors(lis, params)
