"""Tests for the wire model and the end-to-end physical flow."""

import random
from fractions import Fraction

import pytest

from repro.core import LisGraph, actual_mst, ideal_mst
from repro.physical import (
    Block,
    WireModel,
    design_flow,
    manhattan,
    pipeline_wires,
    shelf_placement,
)
from repro.soc import BLOCKS, cofdm_transmitter


def test_manhattan():
    assert manhattan((0, 0), (3, 4)) == 7
    assert manhattan((1.5, 2), (1.5, 2)) == 0


def test_wire_model_validation():
    with pytest.raises(ValueError):
        WireModel(clock_period_ns=0)
    with pytest.raises(ValueError):
        WireModel(clock_period_ns=1, delay_ns_per_mm=0)
    with pytest.raises(ValueError):
        WireModel(clock_period_ns=1, timing_margin=0)


def test_relays_needed_arithmetic():
    # reach = 1.0ns / 0.25ns/mm = 4mm
    model = WireModel(clock_period_ns=1.0, delay_ns_per_mm=0.25)
    assert model.reach_mm == 4.0
    assert model.relays_needed(0) == 0
    assert model.relays_needed(3.9) == 0
    assert model.relays_needed(4.0) == 0  # exactly one segment
    assert model.relays_needed(4.1) == 1
    assert model.relays_needed(8.0) == 1
    assert model.relays_needed(12.5) == 3
    with pytest.raises(ValueError):
        model.relays_needed(-1)


def test_timing_margin_shrinks_reach():
    tight = WireModel(clock_period_ns=1.0, delay_ns_per_mm=0.25, timing_margin=0.5)
    assert tight.reach_mm == 2.0
    assert tight.relays_needed(4.0) == 1


def test_pipeline_wires_sets_relays_from_distances():
    lis = LisGraph.from_edges([("a", "b"), ("b", "a")])
    plan = shelf_placement([Block("a", 1, 1), Block("b", 1, 1)])
    # Blocks are abutted: center distance 1.0mm.
    model = WireModel(clock_period_ns=1.0, delay_ns_per_mm=2.5)  # reach 0.4mm
    pipelined = pipeline_wires(lis, plan, model)
    for channel in pipelined.channels():
        assert channel.data["relays"] == 2  # ceil(1.0/0.4)-1
    # Original untouched.
    assert lis.total_relays() == 0


def test_pipeline_wires_overwrites_existing_relays():
    lis = LisGraph.from_edges([("a", "b")])
    lis.insert_relay(0, 5)
    plan = shelf_placement([Block("a", 1, 1), Block("b", 1, 1)])
    relaxed = WireModel(clock_period_ns=10.0)
    assert pipeline_wires(lis, plan, relaxed).total_relays() == 0


def cofdm_blocks(seed=1):
    rng = random.Random(seed)
    return [
        Block(name, round(rng.uniform(0.6, 2.2), 2), round(rng.uniform(0.6, 2.2), 2))
        for name in BLOCKS
    ]


def test_design_flow_requires_all_blocks():
    with pytest.raises(ValueError):
        design_flow(
            cofdm_transmitter(),
            [Block("FEC", 1, 1)],
            WireModel(clock_period_ns=1.0),
        )


def test_design_flow_end_to_end_on_cofdm():
    report = design_flow(
        cofdm_transmitter(),
        cofdm_blocks(),
        WireModel(clock_period_ns=0.6),
        seed=7,
        anneal_iterations=400,
    )
    report.floorplan.validate()
    assert report.relay_stations > 0
    assert report.degraded <= report.ideal
    assert report.sizing.restores_target
    assert report.recovered == report.ideal
    # Independent re-analysis agrees with the report.
    assert ideal_mst(report.pipelined).mst == report.ideal
    assert actual_mst(report.pipelined).mst == report.degraded
    rows = report.summary_rows()
    assert any("relay stations" in str(r[0]) for r in rows)


def test_slower_clock_needs_fewer_relays():
    blocks = cofdm_blocks()
    net = cofdm_transmitter()
    relays = []
    for clock in (0.4, 0.8, 1.6):
        report = design_flow(
            net,
            blocks,
            WireModel(clock_period_ns=clock),
            seed=7,
            anneal_iterations=200,
        )
        relays.append(report.relay_stations)
    assert relays[0] >= relays[1] >= relays[2]


def test_ideal_mst_monotone_in_clock_period():
    """Tighter clocks cannot raise the cycles-per-token of any loop."""
    blocks = cofdm_blocks()
    net = cofdm_transmitter()
    msts = []
    for clock in (0.35, 0.7, 2.0):
        report = design_flow(
            net, blocks, WireModel(clock_period_ns=clock), seed=7,
            anneal_iterations=200,
        )
        msts.append(report.ideal)
    assert msts[0] <= msts[1] <= msts[2]
    assert msts[-1] == Fraction(1)  # relaxed clock: no relays at all
