"""Tests for block placement."""

import pytest

from repro.core import LisGraph
from repro.physical import (
    Block,
    Floorplan,
    FloorplanError,
    anneal_placement,
    shelf_placement,
    total_wirelength,
)


def square_blocks(n, side=1.0):
    return [Block(f"b{i}", side, side) for i in range(n)]


def chain_netlist(n):
    return LisGraph.from_edges(
        [(f"b{i}", f"b{i+1}") for i in range(n - 1)]
    )


def test_block_validation():
    with pytest.raises(FloorplanError):
        Block("bad", 0, 1)
    with pytest.raises(FloorplanError):
        Block("bad", 1, -2)
    assert Block("ok", 2, 3).area == 6


def test_shelf_placement_no_overlap():
    plan = shelf_placement(square_blocks(9))
    plan.validate()  # raises on overlap
    width, height = plan.bounding_box()
    assert width > 0 and height > 0


def test_shelf_placement_rejects_empty_and_duplicates():
    with pytest.raises(FloorplanError):
        shelf_placement([])
    with pytest.raises(FloorplanError):
        shelf_placement([Block("x", 1, 1), Block("x", 2, 2)])


def test_shelf_roughly_square():
    plan = shelf_placement(square_blocks(16))
    width, height = plan.bounding_box()
    assert 0.4 <= width / height <= 2.5


def test_validate_detects_overlap():
    blocks = {b.name: b for b in square_blocks(2)}
    plan = Floorplan(blocks=blocks, positions={"b0": (0, 0), "b1": (0.5, 0.5)})
    with pytest.raises(FloorplanError):
        plan.validate()


def test_validate_detects_unplaced():
    blocks = {b.name: b for b in square_blocks(2)}
    plan = Floorplan(blocks=blocks, positions={"b0": (0, 0)})
    with pytest.raises(FloorplanError):
        plan.validate()


def test_center_and_wire_length():
    blocks = {b.name: b for b in square_blocks(2)}
    plan = Floorplan(
        blocks=blocks, positions={"b0": (0, 0), "b1": (3, 0)}
    )
    assert plan.center("b0") == (0.5, 0.5)
    assert plan.wire_length("b0", "b1") == 3.0


def test_total_wirelength():
    lis = chain_netlist(3)
    blocks = {b.name: b for b in square_blocks(3)}
    plan = Floorplan(
        blocks=blocks,
        positions={"b0": (0, 0), "b1": (1, 0), "b2": (2, 0)},
    )
    assert total_wirelength(plan, lis) == 2.0


def test_annealing_is_deterministic_and_valid():
    lis = chain_netlist(8)
    blocks = square_blocks(8)
    a = anneal_placement(blocks, lis, seed=3, iterations=300)
    b = anneal_placement(blocks, lis, seed=3, iterations=300)
    a.validate()
    assert a.positions == b.positions


def test_annealing_not_worse_than_shelf_baseline():
    lis = LisGraph.from_edges(
        [("b0", "b7"), ("b7", "b0"), ("b1", "b6"), ("b2", "b5")]
    )
    for i in range(8):
        lis.add_shell(f"b{i}")
    blocks = square_blocks(8)
    baseline = total_wirelength(shelf_placement(blocks), lis)
    annealed = anneal_placement(blocks, lis, seed=11, iterations=1500)
    assert total_wirelength(annealed, lis) <= baseline


def test_single_block_placement():
    plan = anneal_placement(
        [Block("only", 2, 1)], LisGraph.from_edges([]), seed=0
    )
    assert plan.positions == {"only": (0.0, 0.0)}
