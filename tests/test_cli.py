"""End-to-end tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def fig1_file(tmp_path, capsys):
    path = tmp_path / "fig1.json"
    assert main(["example", "fig1", "-o", str(path)]) == 0
    capsys.readouterr()
    return path


def test_example_to_stdout(capsys):
    assert main(["example", "fig15"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert len(doc["channels"]) == 7


def test_example_unknown_name_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["example", "figure-does-not-exist"])


def test_analyze(fig1_file, capsys):
    assert main(["analyze", str(fig1_file)]) == 0
    out = capsys.readouterr().out
    assert "practical MST:   2/3" in out
    assert "DEGRADED" in out
    assert "critical cycle" in out


def test_analyze_many_files_with_jobs_and_cache(
    fig1_file, tmp_path, capsys
):
    fig15 = tmp_path / "fig15.json"
    assert main(["example", "fig15", "-o", str(fig15)]) == 0
    capsys.readouterr()
    cache = tmp_path / "cache"
    args = [
        "analyze",
        str(fig1_file),
        str(fig15),
        "--jobs",
        "2",
        "--cache",
        str(cache),
        "--stats",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert f"== {fig1_file}" in out and f"== {fig15}" in out
    assert "practical MST:   2/3" in out  # fig1
    assert "practical MST:   3/4" in out  # fig15
    assert "hit rate" in out  # --stats footer
    assert (cache / "stats.json").exists()

    # A warm re-run serves everything from the cache.
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "hit rate: 100.0%" in out


def test_stats_command(fig1_file, tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["analyze", str(fig1_file), "--cache", str(cache)]) == 0
    capsys.readouterr()
    assert main(["stats", "--cache", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "actual_mst" in out
    assert "entries" in out


def test_stats_command_missing_cache_dir(tmp_path, capsys):
    assert main(["stats", "--cache", str(tmp_path / "nope")]) == 2
    err = capsys.readouterr().err
    assert "no cache directory" in err


def test_size_heuristic_and_exit_code(fig1_file, capsys):
    assert main(["size", str(fig1_file), "--method", "exact"]) == 0
    out = capsys.readouterr().out
    assert "total tokens: 1" in out
    assert "queue 1 -> 2" in out


def test_size_with_explicit_target(fig1_file, capsys):
    assert main(["size", str(fig1_file), "--target", "2/3"]) == 0
    out = capsys.readouterr().out
    assert "total tokens: 0" in out


def test_size_invalid_target_is_an_error(fig1_file, capsys):
    # Targets above 1 are rejected up front (no LIS can exceed rate 1).
    assert main(["size", str(fig1_file), "--target", "3/2"]) == 2
    assert "error:" in capsys.readouterr().err


def test_generate_and_analyze(tmp_path, capsys):
    out_file = tmp_path / "gen.json"
    assert (
        main(
            [
                "generate",
                "-o",
                str(out_file),
                "--vertices",
                "12",
                "--sccs",
                "2",
                "--cycles",
                "1",
                "--relays",
                "2",
                "--seed",
                "5",
            ]
        )
        == 0
    )
    assert out_file.exists()
    capsys.readouterr()
    assert main(["analyze", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "shells:          12" in out


def test_simulate(fig1_file, capsys):
    assert (
        main(
            [
                "simulate",
                str(fig1_file),
                "--clocks",
                "150",
                "--warmup",
                "30",
                "--shell",
                "B",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "analytic MST:    2/3" in out


def test_simulate_rtl_autoprobe(fig1_file, capsys):
    assert main(["simulate", str(fig1_file), "--backend", "rtl"]) == 0
    out = capsys.readouterr().out
    assert "simulator:       rtl" in out


def test_simulate_fast_backend(fig1_file, capsys):
    assert main(["simulate", str(fig1_file), "--backend", "fast"]) == 0
    out = capsys.readouterr().out
    assert "simulator:       fast" in out
    assert "analytic MST:    2/3" in out


def test_simulate_removed_simulator_alias_errors(fig1_file, capsys):
    args = ["simulate", str(fig1_file), "--simulator", "rtl"]
    assert main(args) == 2
    err = capsys.readouterr().err
    assert "--simulator was removed" in err
    assert "--backend" in err


def test_simulate_bad_backend_name_rejected(fig1_file, capsys):
    with pytest.raises(SystemExit) as exc:
        main(["simulate", str(fig1_file), "--backend", "verilog"])
    assert exc.value.code == 2


def test_simulate_batch(fig1_file, tmp_path, capsys):
    batch = tmp_path / "batch.json"
    batch.write_text(json.dumps([{}, {"1": 1}]))
    args = [
        "simulate", str(fig1_file),
        "--batch", str(batch),
        "--clocks", "300", "--warmup", "60",
        "--jobs", "2",
        "--cache", str(tmp_path / "cache"),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "backend:         fast (batched)" in out
    assert "assignments:     2" in out
    assert "measured=2/3" in out  # the as-built system
    assert "measured=1 " in out  # the repaired assignment
    assert "analytic=1 " in out

    # A warm re-run is served from the cache.
    assert main(args) == 0
    assert "measured=2/3" in capsys.readouterr().out


def test_simulate_batch_requires_fast_backend(fig1_file, tmp_path, capsys):
    batch = tmp_path / "batch.json"
    batch.write_text(json.dumps([{}]))
    args = [
        "simulate", str(fig1_file),
        "--batch", str(batch), "--backend", "rtl",
    ]
    assert main(args) == 2
    assert "requires the fast backend" in capsys.readouterr().err


def test_simulate_batch_bad_file(fig1_file, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["simulate", str(fig1_file), "--batch", str(bad)]) == 2
    assert "bad --batch file" in capsys.readouterr().err
    empty = tmp_path / "empty.json"
    empty.write_text("[]")
    assert main(["simulate", str(fig1_file), "--batch", str(empty)]) == 2
    assert "no assignments" in capsys.readouterr().err


def test_dot_views(fig1_file, capsys):
    for view in ("system", "ideal", "doubled"):
        assert main(["dot", str(fig1_file), "--view", view]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        if view == "doubled":
            assert "style=dashed" in out
            assert "shape=box" in out  # relay stations


def test_chaos_smoke(capsys):
    args = [
        "chaos", "--system", "fig15",
        "--schedules", "2", "--seed", "7", "--backends", "trace",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "2 schedules" in out
    assert "injected stalls:" in out


def test_chaos_json_output(capsys):
    args = [
        "chaos", "--system", "fig1",
        "--schedules", "2", "--seed", "3", "--backends", "trace", "--json",
    ]
    assert main(args) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["violations"] == 0
    assert doc["summary"]["ok"] is True
    assert len(doc["trials"]) == 2


def test_chaos_rejects_unknown_backend(capsys):
    args = ["chaos", "--backends", "warp", "--schedules", "1"]
    assert main(args) == 2
    assert "unknown backend" in capsys.readouterr().err


def test_chaos_on_a_system_file(fig1_file, capsys):
    args = [
        "chaos", "--system", str(fig1_file),
        "--schedules", "1", "--backends", "trace",
    ]
    assert main(args) == 0
    assert "PASS" in capsys.readouterr().out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_tail_smoke(capsys):
    args = [
        "tail", "--system", "fig15",
        "--rate", "0.1", "--seed", "3",
        "--clocks", "200", "--trials", "40", "--max-extra", "1",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "extra" in out and "an.p99" in out
    assert "ok" in out
    assert "cross-check" in out


def test_tail_json_output(capsys):
    args = [
        "tail", "--system", "fig15", "--kind", "burst",
        "--burst", "3", "--gap", "9", "--seed", "1",
        "--clocks", "150", "--trials", "30", "--max-extra", "1", "--json",
    ]
    assert main(args) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["system"] == "fig15"
    assert len(doc["points"]) == 2
    assert all(p["agreement"]["exact"] for p in doc["points"])


def test_tail_approximate_path_reports_bounds(capsys):
    """Per-node scopes have no exact analytic path; the CLI must show
    'bound' verdicts and still exit 0."""
    args = [
        "tail", "--system", "fig15", "--kind", "arrival",
        "--rho", "0.8", "--sigma", "4", "--seed", "2",
        "--clocks", "150", "--trials", "20", "--max-extra", "0",
    ]
    assert main(args) == 0
    assert "bound" in capsys.readouterr().out


def test_tail_no_analytic(capsys):
    args = [
        "tail", "--system", "fig15", "--no-analytic",
        "--clocks", "100", "--trials", "10", "--max-extra", "0",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    # No estimate: placeholder cells and no cross-check verdict line.
    assert "cross-check" not in out
    assert " - " in out or out.rstrip().endswith("-")


def test_tail_mesh_shorthand(capsys):
    args = [
        "tail", "--system", "mesh:2x2",
        "--clocks", "100", "--trials", "10", "--max-extra", "0",
    ]
    assert main(args) == 0
    capsys.readouterr()
    assert main(["tail", "--system", "mesh:bogus"]) == 2
    assert "bad NoC spec" in capsys.readouterr().err


def test_tail_rejects_bad_spec(capsys):
    args = ["tail", "--system", "fig15", "--rate", "1.5"]
    assert main(args) == 2
    assert "rate" in capsys.readouterr().err


def test_generate_mesh_and_torus(tmp_path, capsys):
    out_file = tmp_path / "mesh.json"
    args = [
        "generate", "--topology", "mesh", "--rows", "3", "--cols", "3",
        "-o", str(out_file),
    ]
    assert main(args) == 0
    capsys.readouterr()
    assert main(["analyze", str(out_file)]) == 0
    assert "shells:          9" in capsys.readouterr().out
    torus_file = tmp_path / "torus.json"
    args = [
        "generate", "--topology", "torus", "--rows", "2", "--cols", "3",
        "-o", str(torus_file),
    ]
    assert main(args) == 0
    capsys.readouterr()
    assert main(["analyze", str(torus_file)]) == 0
    assert "shells:          6" in capsys.readouterr().out
