"""Robustness and failure-injection tests across the library.

These exercise the error paths and determinism guarantees a downstream
user relies on: explosion budgets, solver determinism, graceful
rejection of malformed inputs, and resource-bounded behaviour.
"""

from fractions import Fraction

import pytest

from repro.core import (
    LisError,
    LisGraph,
    MarkingError,
    actual_mst,
    size_queues,
)
from repro.gen import fig15_lis, generate_lis, GeneratorConfig
from repro.graphs import CycleExplosionError


def dense_reconvergent_system(n=8):
    """A complete bipartite-ish LIS with a relay: many doubled cycles."""
    lis = LisGraph()
    for i in range(n):
        lis.add_channel("hub", f"spoke{i}", relays=1)
        lis.add_channel(f"spoke{i}", "hub")
    return lis


def test_size_queues_respects_cycle_budget():
    lis = dense_reconvergent_system()
    with pytest.raises(CycleExplosionError):
        size_queues(lis, max_cycles=5, collapse="never")


def test_size_queues_without_budget_completes():
    lis = dense_reconvergent_system(4)
    solution = size_queues(lis, collapse="never")
    assert solution.restores_target


def test_solvers_are_deterministic():
    lis = fig15_lis()
    runs = [size_queues(lis, method=m) for m in ("heuristic", "greedy")]
    reruns = [size_queues(lis, method=m) for m in ("heuristic", "greedy")]
    for a, b in zip(runs, reruns):
        assert a.extra_tokens == b.extra_tokens
        assert a.cost == b.cost


def test_exact_solver_deterministic_across_runs():
    lis = generate_lis(GeneratorConfig(v=24, s=3, c=2, rs=5, seed=9))
    a = size_queues(lis, method="exact")
    b = size_queues(lis, method="exact")
    assert a.extra_tokens == b.extra_tokens


def test_negative_marking_rejected_everywhere():
    from repro.core import MarkedGraph

    mg = MarkedGraph()
    key = mg.add_place("a", "b", tokens=1)
    with pytest.raises(MarkingError):
        mg.add_tokens(key, -5)


def test_queue_of_zero_rejected_via_set_all():
    lis = fig15_lis()
    with pytest.raises(LisError):
        lis.set_all_queues(0)


def test_actual_mst_rejects_malformed_extra_tokens():
    lis = fig15_lis()
    with pytest.raises(LisError):
        actual_mst(lis, extra_tokens={42_000: 1})
    with pytest.raises(LisError):
        actual_mst(lis, extra_tokens={0: -3})


def test_simulators_reject_bad_extra_tokens():
    from repro.lis import RtlSimulator, TraceSimulator

    with pytest.raises(LisError):
        TraceSimulator(fig15_lis(), extra_tokens={999: 1})
    # The RTL simulator expands channels itself, so unknown ids are a
    # silent no-op there -- but negative extras must not produce a
    # negative-capacity queue.
    sim = RtlSimulator(fig15_lis(), extra_tokens={0: 0})
    sim.run(5)


def test_cli_reports_missing_file(tmp_path, capsys):
    from repro.cli import main

    with pytest.raises(FileNotFoundError):
        main(["analyze", str(tmp_path / "missing.json")])


def test_generator_is_pure():
    """Two calls with the same config never interfere (no global RNG)."""
    import random

    random.seed(123)
    a = generate_lis(GeneratorConfig(seed=4))
    random.seed(999)
    b = generate_lis(GeneratorConfig(seed=4))
    assert sorted(
        (str(e.src), str(e.dst), e.data["relays"]) for e in a.channels()
    ) == sorted(
        (str(e.src), str(e.dst), e.data["relays"]) for e in b.channels()
    )


def test_long_chain_does_not_hit_recursion_limit():
    """All graph algorithms are iterative: a 3000-deep chain works."""
    lis = LisGraph.from_edges(
        [(f"n{i}", f"n{i+1}") for i in range(3000)]
    )
    from repro.core import ideal_mst

    assert ideal_mst(lis).mst == 1
    from repro.graphs import strongly_connected_components

    assert len(strongly_connected_components(lis.system)) == 3001


def test_deep_ring_analysis():
    from repro.gen import ring_lis

    lis = ring_lis(1200, relays=7)
    assert actual_mst(lis).mst == Fraction(1200, 1207)
