"""End-to-end tests of the HTTP/JSON-RPC front end.

Each test boots a real :class:`AnalysisServer` on an ephemeral port
and talks to it through :class:`ServerClient` -- the same loop, the
same bytes a remote caller would see.
"""

import asyncio
import json

import pytest

from repro.server import (
    AnalysisServer,
    ServerClient,
    ServerConfig,
    ServerError,
)
from repro.server.coalesce import InflightEntry
from repro.server.pool import ShardPool
from repro.server.protocol import (
    DEADLINE_EXCEEDED,
    INVALID_PARAMS,
    METHOD_NOT_FOUND,
    OVERLOADED,
    PARSE_ERROR,
    RpcError,
    parse_job,
)
from repro.server.qmodel import QueueModel


def run(coro):
    return asyncio.run(coro)


def serve(**overrides):
    config = ServerConfig(port=0, **overrides)
    return AnalysisServer(config)


class TestRpcSurface:
    def test_analyze_round_trip(self):
        async def scenario():
            async with serve() as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    assert await c.healthz()
                    result = await c.call(
                        "analyze", {"system": "fig15"}
                    )
            value, meta = result["value"], result["meta"]
            # Figure 15's classic degradation: practical MST 3/4.
            assert value["practical"] == "3/4"
            assert value["ideal"] == "5/6"
            assert meta["method"] == "analyze"
            assert len(meta["fingerprint"]) == 16
            assert meta["coalesced"] is False

        run(scenario())

    def test_size_queues_round_trip(self):
        async def scenario():
            async with serve() as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    result = await c.call(
                        "size_queues", {"system": "fig15"}
                    )
            value = result["value"]
            assert value["cost"] == 2
            assert set(value["extra_tokens"].values()) == {1}

        run(scenario())

    def test_method_not_found(self):
        async def scenario():
            async with serve() as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    with pytest.raises(ServerError) as excinfo:
                        await c.call("frobnicate", {"system": "fig1"})
            assert excinfo.value.code == METHOD_NOT_FOUND
            # JSON-RPC-over-HTTP: app-level errors are 200 envelopes.
            assert excinfo.value.http_status == 200

        run(scenario())

    def test_invalid_params_counted(self):
        async def scenario():
            async with serve() as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    with pytest.raises(ServerError) as excinfo:
                        await c.call("analyze", {"system": "/etc/passwd"})
                    stats = await c.stats()
            assert excinfo.value.code == INVALID_PARAMS
            assert stats["requests"]["invalid"] == 1

        run(scenario())

    def test_unparseable_body_is_400(self):
        async def scenario():
            async with serve() as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    status, _headers, payload = await c._request(
                        "POST", "/rpc", b"this is not json"
                    )
            assert status == 400
            envelope = json.loads(payload)
            assert envelope["error"]["code"] == PARSE_ERROR

        run(scenario())

    def test_unknown_route_is_404(self):
        async def scenario():
            async with serve() as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    status, _headers, _payload = await c._request(
                        "GET", "/nope"
                    )
            assert status == 404

        run(scenario())


class TestCoalescingEndToEnd:
    def test_identical_concurrent_requests_compute_once(self):
        """Ten identical concurrent calls: one engine miss, everyone
        served.  Latecomers that miss the in-flight window are cache
        hits on the same shard -- either way the op runs once."""

        async def scenario():
            async with serve() as server:
                clients = [
                    ServerClient("127.0.0.1", server.port)
                    for _ in range(10)
                ]
                for c in clients:
                    await c.connect()
                try:
                    params = {
                        "system": "cofdm",
                        "options": {"backend": "trace", "clocks": 4000},
                    }
                    results = await asyncio.gather(
                        *(c.call("measure", params) for c in clients)
                    )
                    stats = await clients[0].stats()
                finally:
                    for c in clients:
                        await c.aclose()

            values = [json.dumps(r["value"]) for r in results]
            assert len(set(values)) == 1  # bit-for-bit shared result
            # Exactly one computation: every other path was a
            # coalesced follower or an engine cache hit.
            assert stats["cache"]["engine_misses"] == 1
            coalescing = stats["coalescing"]
            assert coalescing["enabled"]
            assert coalescing["followers"] >= 1
            followers = coalescing["followers"]
            cached = stats["cache"]["cache_served"]
            assert followers + cached + 1 == 10
            assert stats["requests"]["completed"] == 10

        run(scenario())

    def test_repeat_request_is_cache_served(self):
        async def scenario():
            async with serve() as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    first = await c.call("analyze", {"system": "fig1"})
                    second = await c.call("analyze", {"system": "fig1"})
            assert first["meta"]["cache_served"] is False
            assert second["meta"]["cache_served"] is True
            assert first["value"] == second["value"]

        run(scenario())

    def test_coalescing_can_be_disabled(self):
        async def scenario():
            async with serve(coalesce=False) as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    await c.call("analyze", {"system": "fig1"})
                    await c.call("analyze", {"system": "fig1"})
                    stats = await c.stats()
            assert stats["coalescing"]["enabled"] is False
            assert stats["coalescing"]["followers"] == 0
            assert stats["coalescing"]["leaders"] == 2

        run(scenario())

    def test_deadline_expiry_does_not_kill_the_computation(self):
        """A subscriber timing out gets 504; the shared computation
        survives and serves the retry (coalesced or cached)."""

        async def scenario():
            async with serve() as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    params = {
                        "system": "cofdm",
                        "options": {"backend": "trace", "clocks": 4000},
                    }
                    with pytest.raises(ServerError) as excinfo:
                        await c.call(
                            "measure", params, deadline_ms=0.01
                        )
                    assert excinfo.value.code == DEADLINE_EXCEEDED
                    assert excinfo.value.http_status == 504
                    # Retry without a deadline: served by the still-
                    # running leader or by the cache it filled.
                    result = await c.call("measure", params)
                    stats = await c.stats()
            assert result["value"]["backend"] == "trace"
            assert stats["requests"]["deadline_exceeded"] == 1
            assert stats["cache"]["engine_misses"] == 1

        run(scenario())


class TestStreaming:
    def test_progress_events_then_result(self):
        async def scenario():
            async with serve() as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    events, result = await c.call_stream(
                        "analyze", {"system": "fig15"}
                    )
            names = [e["event"] for e in events]
            assert names == ["accepted", "started", "done"]
            assert events[-1]["ok"] is True
            assert result["value"]["practical"] == "3/4"

        run(scenario())


class TestAdmissionControl:
    """Deterministic shed/deadline decisions on a hand-built pool."""

    @staticmethod
    def _entry(job):
        return InflightEntry(
            job.key, asyncio.get_running_loop().create_future()
        )

    def test_full_queue_sheds_with_retry_after(self):
        async def scenario():
            pool = ShardPool(
                shards=1, queue_limit=1, qmodel=QueueModel()
            )
            pool._started = True
            backlog = asyncio.Queue(maxsize=1)
            backlog.put_nowait(object())
            pool._queues = [backlog]
            job = parse_job("analyze", {"system": "fig1"})
            with pytest.raises(RpcError) as excinfo:
                await pool.execute(job, self._entry(job))
            assert excinfo.value.code == OVERLOADED
            assert excinfo.value.retry_after >= 0.05

        run(scenario())

    def test_hopeless_deadline_refused_at_admission(self):
        async def scenario():
            qmodel = QueueModel()
            qmodel.record_departure(0.0, 1.0)  # mean service: 1s
            pool = ShardPool(shards=1, queue_limit=8, qmodel=qmodel)
            pool._started = True
            backlog = asyncio.Queue(maxsize=8)
            backlog.put_nowait(object())  # predicted wait: 1s
            pool._queues = [backlog]
            job = parse_job(
                "analyze", {"system": "fig1", "deadline_ms": 10}
            )
            with pytest.raises(RpcError) as excinfo:
                await pool.execute(job, self._entry(job))
            assert excinfo.value.code == DEADLINE_EXCEEDED
            assert "predicted" in excinfo.value.message

        run(scenario())

    def test_shard_routing_is_deterministic(self):
        pool = ShardPool(shards=4)
        job = parse_job("analyze", {"system": "fig15"})
        shard = pool.shard_of(job.key)
        assert shard == pool.shard_of(job.key)
        assert 0 <= shard < 4


class TestStats:
    def test_stats_document_shape(self):
        async def scenario():
            async with serve(shards=2) as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    await c.call("analyze", {"system": "fig1"})
                    stats = await c.stats()
            for section in (
                "requests",
                "cache",
                "engine",
                "queueing",
                "coalescing",
                "queue_depth",
                "server",
            ):
                assert section in stats
            queueing = stats["queueing"]
            assert queueing["servers"] == 2
            assert "predicted" in queueing and "observed" in queueing
            assert queueing["observed"]["completed"] == 1
            assert stats["server"]["shards"] == 2
            assert stats["requests"]["per_method"] == {"analyze": 1}

        run(scenario())

    def test_self_model_sees_the_traffic(self):
        async def scenario():
            async with serve() as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    for _ in range(3):
                        await c.call("analyze", {"system": "fig15"})
                    stats = await c.stats()
            queueing = stats["queueing"]
            assert queueing["arrivals_total"] == 3
            assert queueing["service_mean_ms"] > 0
            assert queueing["observed"]["mean_residence_ms"] > 0
            little = queueing["little"]
            assert little["observed_l"] >= 0

        run(scenario())


class TestDiskCacheIntegration:
    def test_shared_cache_dir_across_server_lifetimes(self, tmp_path):
        """A second server over the same cache directory serves the
        first server's work from disk."""

        async def scenario():
            cache = str(tmp_path / "cache")
            async with serve(cache_dir=cache) as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    await c.call("analyze", {"system": "fig15"})
            async with serve(cache_dir=cache) as server:
                async with ServerClient("127.0.0.1", server.port) as c:
                    result = await c.call("analyze", {"system": "fig15"})
                    stats = await c.stats()
            assert result["meta"]["cache_served"] is True
            assert stats["cache"]["engine_disk_hits"] >= 1
            assert stats["cache"]["engine_misses"] == 0

        run(scenario())
