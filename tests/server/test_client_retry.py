"""Client hardening: HTTP parsing edge cases and the retry loop.

These tests stand up *raw* asyncio socket servers speaking exactly
the bytes under test -- truncated status lines, chunk extensions,
dropped connections -- because the real server never emits them.
"""

import asyncio
import json

import pytest

from repro.server import ServerClient, ServerError
from repro.server.protocol import OVERLOADED, WORKER_CRASHED
from repro.server.resilience import RetryPolicy


def run(coro):
    return asyncio.run(coro)


async def _raw_server(handler):
    """Start a one-connection-at-a-time raw server; returns
    (server, port)."""
    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


def _http(body: bytes, extra: str = "") -> bytes:
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        "Connection: close\r\n\r\n"
    ).encode() + body


class TestParsingHardening:
    def test_malformed_status_line_raises_connection_error(self):
        async def scenario():
            async def handler(reader, writer):
                await reader.readline()
                writer.write(b"HTTP/1.1\r\n\r\n")  # no status code
                await writer.drain()
                writer.close()

            server, port = await _raw_server(handler)
            async with server:
                client = ServerClient("127.0.0.1", port)
                with pytest.raises(ConnectionError) as excinfo:
                    await client._request("GET", "/stats")
                assert "malformed" in str(excinfo.value)
                await client.aclose()

        run(scenario())

    def test_non_numeric_status_raises_connection_error(self):
        async def scenario():
            async def handler(reader, writer):
                await reader.readline()
                writer.write(b"HTTP/1.1 abc OK\r\n\r\n")
                await writer.drain()
                writer.close()

            server, port = await _raw_server(handler)
            async with server:
                client = ServerClient("127.0.0.1", port)
                with pytest.raises(ConnectionError):
                    await client._request("GET", "/stats")
                await client.aclose()

        run(scenario())

    def test_chunk_size_extensions_are_accepted(self):
        """RFC 9112 allows ``1a;name=value`` chunk sizes; the client
        must parse up to the ``;``."""

        async def scenario():
            payload = b'{"ok": true, "chunked": "with-extension"}'

            async def handler(reader, writer):
                while not (await reader.readline()).strip() == b"":
                    pass
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Transfer-Encoding: chunked\r\n"
                    b"Connection: close\r\n\r\n"
                )
                half = len(payload) // 2
                writer.write(
                    f"{half:x};chunk-ext=1\r\n".encode()
                    + payload[:half]
                    + b"\r\n"
                )
                rest = len(payload) - half
                writer.write(
                    f"{rest:x} ; another\r\n".encode()
                    + payload[half:]
                    + b"\r\n"
                )
                writer.write(b"0\r\n\r\n")
                await writer.drain()
                writer.close()

            server, port = await _raw_server(handler)
            async with server:
                client = ServerClient("127.0.0.1", port)
                _status, _headers, body = await client._request(
                    "GET", "/stats"
                )
                assert json.loads(body) == json.loads(payload)
                await client.aclose()

        run(scenario())

    def test_malformed_chunk_size_raises_connection_error(self):
        async def scenario():
            async def handler(reader, writer):
                while not (await reader.readline()).strip() == b"":
                    pass
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n"
                    b"zz\r\ngarbage\r\n"
                )
                await writer.drain()
                writer.close()

            server, port = await _raw_server(handler)
            async with server:
                client = ServerClient("127.0.0.1", port)
                with pytest.raises(ConnectionError) as excinfo:
                    await client._request("GET", "/stats")
                assert "chunk" in str(excinfo.value)
                await client.aclose()

        run(scenario())

    def test_eof_inside_chunked_stream_raises_connection_error(self):
        async def scenario():
            async def handler(reader, writer):
                while not (await reader.readline()).strip() == b"":
                    pass
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n"
                )
                await writer.drain()
                writer.close()  # die before any chunk

            server, port = await _raw_server(handler)
            async with server:
                client = ServerClient("127.0.0.1", port)
                with pytest.raises(ConnectionError):
                    await client._request("GET", "/stats")
                await client.aclose()

        run(scenario())


class TestRetryLoop:
    def test_reconnects_after_dropped_connection(self):
        """First connection dies mid-request; the retrying client
        must reconnect and succeed -- without a policy it must
        surface the transport error."""

        async def scenario():
            result = {"value": 42, "meta": {}}
            attempts = {"n": 0}

            async def handler(reader, writer):
                attempts["n"] += 1
                line = await reader.readline()
                if attempts["n"] == 1:
                    writer.close()  # sever mid-request
                    return
                while line.strip():
                    line = await reader.readline()
                # (ignore the body; headers were drained above)
                envelope = {"jsonrpc": "2.0", "id": 1, "result": result}
                writer.write(_http(json.dumps(envelope).encode()))
                await writer.drain()
                writer.close()

            server, port = await _raw_server(handler)
            async with server:
                client = ServerClient(
                    "127.0.0.1",
                    port,
                    retry=RetryPolicy(
                        retries=2, base_s=0.01, cap_s=0.02, seed=0
                    ),
                )
                got = await client.call("analyze", {"system": "fig1"})
                assert got == result
                assert client.retries_used == 1
                await client.aclose()

        run(scenario())

    def test_no_policy_fails_fast(self):
        async def scenario():
            async def handler(reader, writer):
                await reader.readline()
                writer.close()

            server, port = await _raw_server(handler)
            async with server:
                client = ServerClient("127.0.0.1", port)
                with pytest.raises(
                    (ConnectionError, asyncio.IncompleteReadError)
                ):
                    await client.call("analyze", {"system": "fig1"})
                assert client.retries_used == 0
                await client.aclose()

        run(scenario())

    def test_retries_transient_rpc_error_until_success(self):
        async def scenario():
            attempts = {"n": 0}

            async def handler(reader, writer):
                while True:
                    line = await reader.readline()
                    if not line:
                        writer.close()
                        return
                    if not line.strip():
                        attempts["n"] += 1
                        if attempts["n"] < 3:
                            envelope = {
                                "jsonrpc": "2.0",
                                "id": 1,
                                "error": {
                                    "code": WORKER_CRASHED,
                                    "message": "shard died",
                                },
                            }
                        else:
                            envelope = {
                                "jsonrpc": "2.0",
                                "id": 1,
                                "result": {"value": "ok"},
                            }
                        writer.write(
                            _http(json.dumps(envelope).encode())
                        )
                        await writer.drain()
                        writer.close()
                        return

            server, port = await _raw_server(handler)
            async with server:
                client = ServerClient(
                    "127.0.0.1",
                    port,
                    retry=RetryPolicy(
                        retries=5, base_s=0.01, cap_s=0.02, seed=3
                    ),
                )
                got = await client.call("analyze", {"system": "fig1"})
                assert got == {"value": "ok"}
                assert client.retries_used == 2
                await client.aclose()

        run(scenario())

    def test_non_retryable_error_is_not_retried(self):
        async def scenario():
            attempts = {"n": 0}

            async def handler(reader, writer):
                while True:
                    line = await reader.readline()
                    if not line:
                        writer.close()
                        return
                    if not line.strip():
                        attempts["n"] += 1
                        envelope = {
                            "jsonrpc": "2.0",
                            "id": 1,
                            "error": {
                                "code": -32602,
                                "message": "bad params",
                            },
                        }
                        writer.write(
                            _http(json.dumps(envelope).encode())
                        )
                        await writer.drain()
                        writer.close()
                        return

            server, port = await _raw_server(handler)
            async with server:
                client = ServerClient(
                    "127.0.0.1",
                    port,
                    retry=RetryPolicy(retries=5, base_s=0.01, seed=0),
                )
                with pytest.raises(ServerError):
                    await client.call("analyze", {"system": "fig1"})
                assert attempts["n"] == 1
                assert client.retries_used == 0
                await client.aclose()

        run(scenario())

    def test_budget_bounds_total_retry_time(self):
        """A server that always sheds with a large Retry-After: the
        budget must stop the retry chain before sleeping past it."""

        async def scenario():
            attempts = {"n": 0}

            async def handler(reader, writer):
                while True:
                    line = await reader.readline()
                    if not line:
                        writer.close()
                        return
                    if not line.strip():
                        attempts["n"] += 1
                        envelope = {
                            "jsonrpc": "2.0",
                            "id": 1,
                            "error": {
                                "code": OVERLOADED,
                                "message": "shed",
                            },
                        }
                        body = json.dumps(envelope).encode()
                        writer.write(
                            _http(body, extra="Retry-After: 30.0\r\n")
                        )
                        await writer.drain()
                        writer.close()
                        return

            server, port = await _raw_server(handler)
            async with server:
                client = ServerClient(
                    "127.0.0.1",
                    port,
                    retry=RetryPolicy(
                        retries=5, base_s=0.01, budget_s=0.2, seed=0
                    ),
                )
                t0 = asyncio.get_running_loop().time()
                with pytest.raises(ServerError) as excinfo:
                    await client.call("analyze", {"system": "fig1"})
                elapsed = asyncio.get_running_loop().time() - t0
                assert excinfo.value.code == OVERLOADED
                assert excinfo.value.retry_after == pytest.approx(30.0)
                assert elapsed < 1.0  # never slept toward 30s
                assert attempts["n"] == 1
                await client.aclose()

        run(scenario())

    def test_deadline_ms_acts_as_budget(self):
        async def scenario():
            async def handler(reader, writer):
                await reader.readline()
                writer.close()  # always sever

            server, port = await _raw_server(handler)
            async with server:
                client = ServerClient(
                    "127.0.0.1",
                    port,
                    retry=RetryPolicy(
                        retries=50, base_s=0.05, cap_s=0.05, seed=0
                    ),
                )
                t0 = asyncio.get_running_loop().time()
                with pytest.raises(
                    (ConnectionError, asyncio.IncompleteReadError)
                ):
                    await client.call(
                        "analyze", {"system": "fig1"}, deadline_ms=150
                    )
                elapsed = asyncio.get_running_loop().time() - t0
                assert elapsed < 2.0  # bounded by the deadline,
                assert client.retries_used < 10  # not by 50 retries
                await client.aclose()

        run(scenario())
