"""The queueing self-model, driven by a fake clock.

Deterministic scenarios whose M/M/1 / M/G/1 / Little's-Law answers
are known in closed form, so the online estimators can be checked
against theory exactly.
"""

import math

import pytest

from repro.server.qmodel import QueueModel, _percentile


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def loaded_model(
    cycles=100, service=0.1, gap=0.1, wait=0.0, servers=1
):
    """A D/D/1-style trace: every ``service + gap`` seconds one job
    arrives, waits ``wait``, is served for ``service``."""
    clock = FakeClock()
    model = QueueModel(servers=servers, clock=clock)
    for _ in range(cycles):
        model.record_arrival()
        clock.advance(wait + service)
        model.record_departure(wait, service)
        clock.advance(gap)
    return model, clock


class TestEstimators:
    def test_arrival_rate_and_service_mean(self):
        model, _clock = loaded_model(cycles=100, service=0.1, gap=0.1)
        # 100 arrivals over 20 simulated seconds.
        assert model.arrival_rate() == pytest.approx(5.0)
        assert model.service_mean() == pytest.approx(0.1)
        assert model.arrivals_total == 100

    def test_arrival_window_prunes_old_arrivals(self):
        clock = FakeClock()
        model = QueueModel(window=10.0, clock=clock)
        for _ in range(5):
            model.record_arrival()
            clock.advance(1.0)
        clock.advance(100.0)  # all five fall out of the window
        assert model.arrival_rate() == 0.0
        assert model.arrivals_total == 5

    def test_welford_mean_and_cv2(self):
        clock = FakeClock()
        model = QueueModel(clock=clock)
        for service in (0.1, 0.2, 0.3):
            model.record_arrival()
            clock.advance(service)
            model.record_departure(0.0, service)
        assert model.service_mean() == pytest.approx(0.2)
        # Sample variance 0.01 over mean^2 0.04.
        assert model.service_cv2() == pytest.approx(0.25)

    def test_deterministic_service_has_zero_cv2(self):
        model, _ = loaded_model()
        assert model.service_cv2() == pytest.approx(0.0)

    def test_utilization_is_busy_over_elapsed(self):
        model, _ = loaded_model(cycles=100, service=0.1, gap=0.1)
        assert model.utilization() == pytest.approx(0.5, rel=1e-6)


class TestPredictions:
    def test_mm1_formulas_at_half_load(self):
        # lambda = 5/s, S = 0.1s -> rho = 0.5.
        model, _ = loaded_model(cycles=100, service=0.1, gap=0.1)
        pred = model.predicted()
        assert pred["stable"]
        assert pred["rho"] == pytest.approx(0.5)
        # W = S / (1 - rho) = 0.2s; Wq = W - S = 0.1s.
        assert pred["mm1_residence_ms"] == pytest.approx(200.0)
        assert pred["mm1_wait_ms"] == pytest.approx(100.0)
        # Residence is exponential: percentiles at W * ln(1/(1-p)).
        assert pred["mm1_p50_ms"] == pytest.approx(200 * math.log(2))
        assert pred["mm1_p99_ms"] == pytest.approx(200 * math.log(100))

    def test_pollaczek_khinchine_uses_measured_variance(self):
        # Deterministic service (cv2 = 0): the M/G/1 wait must be
        # exactly half the M/M/1 wait (the M/D/1 classic).
        model, _ = loaded_model(cycles=100, service=0.1, gap=0.1)
        pred = model.predicted()
        assert pred["mg1_wait_ms"] == pytest.approx(
            pred["mm1_wait_ms"] / 2
        )
        assert pred["mg1_residence_ms"] == pytest.approx(
            100.0 + pred["mg1_wait_ms"]
        )

    def test_overload_reports_unstable(self):
        # Zero gap: lambda = 1/S -> rho = 1, formulas diverge.
        model, _ = loaded_model(cycles=50, service=0.1, gap=0.0)
        pred = model.predicted()
        assert not pred["stable"]
        assert pred["rho"] >= 1.0
        assert pred["mm1_wait_ms"] is None
        assert pred["mg1_wait_ms"] is None

    def test_multiserver_divides_the_arrival_stream(self):
        single, _ = loaded_model(cycles=100, servers=1)
        double, _ = loaded_model(cycles=100, servers=2)
        assert double.predicted()["rho"] == pytest.approx(
            single.predicted()["rho"] / 2
        )


class TestObservations:
    def test_observed_latencies(self):
        model, _ = loaded_model(
            cycles=100, service=0.1, gap=0.1, wait=0.05
        )
        obs = model.observed()
        assert obs["completed"] == 100
        assert obs["mean_wait_ms"] == pytest.approx(50.0)
        assert obs["mean_residence_ms"] == pytest.approx(150.0)
        assert obs["p50_ms"] == pytest.approx(150.0)
        assert obs["p99_ms"] == pytest.approx(150.0)

    def test_littles_law_closes_on_a_deterministic_trace(self):
        # In-system 0.1s of every 0.2s cycle -> L = 0.5; lambda * W =
        # 5/s * 0.1s = 0.5.  Little's Law must agree with itself.
        model, _ = loaded_model(cycles=100, service=0.1, gap=0.1)
        little = model.little()
        assert little["observed_l"] == pytest.approx(0.5, rel=1e-6)
        assert little["lambda_times_w"] == pytest.approx(0.5, rel=1e-6)

    def test_percentile_is_exact_order_statistic(self):
        samples = sorted(float(i) for i in range(1, 101))
        assert _percentile(samples, 0.50) == 50.0
        assert _percentile(samples, 0.99) == 99.0
        assert _percentile(samples, 1.0) == 100.0
        assert _percentile([], 0.5) == 0.0


class TestReporting:
    def test_as_dict_sections(self):
        model, _ = loaded_model(cycles=10)
        data = model.as_dict()
        for section in (
            "servers",
            "arrival_rate_hz",
            "service_mean_ms",
            "service_cv2",
            "utilization",
            "predicted",
            "observed",
            "little",
        ):
            assert section in data

    def test_render_mentions_littles_law(self):
        model, _ = loaded_model(cycles=10)
        text = model.render()
        assert "Little's Law" in text
        assert "predicted M/M/1" in text

    def test_render_survives_an_empty_model(self):
        assert QueueModel().render()


class TestDisruptions:
    def test_note_disruption_counts_and_ages(self):
        clock = FakeClock()
        model = QueueModel(clock=clock)
        assert model.as_dict()["disruptions"] == 0
        assert model.as_dict()["last_disruption_age_s"] is None
        model.note_disruption()
        model.note_disruption()
        clock.advance(2.5)
        data = model.as_dict()
        assert data["disruptions"] == 2
        assert data["last_disruption_age_s"] == pytest.approx(2.5)

    def test_disruption_does_not_touch_accounting(self):
        model, _ = loaded_model(cycles=10)
        arrivals = model.arrivals_total
        completed = model.observed()["completed"]
        model.note_disruption()
        assert model.arrivals_total == arrivals
        assert model.observed()["completed"] == completed


class TestPredictionError:
    def test_none_until_observations_exist(self):
        assert QueueModel().prediction_error() is None

    def test_converges_on_a_steady_trace(self):
        # Deterministic service, light load: M/G/1 (P-K with cv2=0)
        # predicts a small wait; the observed wait is zero, so the
        # relative error is bounded by the prediction itself over the
        # 1ms floor -- finite and stable, which is what the chaos
        # harness asserts post-recovery.
        model, _ = loaded_model(cycles=200, service=0.01, gap=0.19)
        error = model.prediction_error()
        assert error is not None
        assert math.isfinite(error)
