"""Request validation: JSON-RPC methods -> engine jobs."""

import json
from dataclasses import dataclass
from enum import Enum
from fractions import Fraction

import pytest

from repro.core.serialize import lis_to_json
from repro.gen import examples
from repro.server.protocol import (
    INVALID_PARAMS,
    METHOD_NOT_FOUND,
    METHODS,
    RpcError,
    jsonify,
    parse_job,
    resolve_named_system,
)


class TestParseJob:
    def test_unknown_method(self):
        with pytest.raises(RpcError) as excinfo:
            parse_job("frobnicate", {"system": "fig1"})
        assert excinfo.value.code == METHOD_NOT_FOUND
        # The message teaches the caller what exists.
        assert "analyze" in excinfo.value.message

    def test_exactly_one_system_source(self):
        for params in ({}, {"system": "fig1", "lis": "{}"}):
            with pytest.raises(RpcError) as excinfo:
                parse_job("analyze", params)
            assert excinfo.value.code == INVALID_PARAMS

    def test_params_must_be_object(self):
        with pytest.raises(RpcError) as excinfo:
            parse_job("analyze", [1, 2])
        assert excinfo.value.code == INVALID_PARAMS

    def test_unknown_option_rejected(self):
        with pytest.raises(RpcError) as excinfo:
            parse_job(
                "analyze",
                {"system": "fig1", "options": {"bogus": 1}},
            )
        assert excinfo.value.code == INVALID_PARAMS
        assert "bogus" in excinfo.value.message

    def test_required_option_enforced(self):
        # 'tail' requires stochastic specs to be meaningful.
        with pytest.raises(RpcError) as excinfo:
            parse_job("tail", {"system": "fig1"})
        assert excinfo.value.code == INVALID_PARAMS
        assert "specs" in excinfo.value.message

    def test_bad_inline_lis(self):
        with pytest.raises(RpcError) as excinfo:
            parse_job("analyze", {"lis": "not json at all"})
        assert excinfo.value.code == INVALID_PARAMS

    def test_deadline_validation(self):
        job = parse_job(
            "analyze", {"system": "fig1", "deadline_ms": 1500}
        )
        assert job.deadline_s == pytest.approx(1.5)
        for bad in (-5, 0, "soon"):
            with pytest.raises(RpcError):
                parse_job(
                    "analyze", {"system": "fig1", "deadline_ms": bad}
                )

    def test_job_maps_to_engine_op(self):
        job = parse_job("simulate", {"system": "fig15"})
        assert job.op == "simulate_batch"
        assert job.method == "simulate"
        assert job.options is None
        assert job.fingerprint == job.key


class TestFingerprintCanonicalization:
    """Every spelling of the same request must coalesce onto one key."""

    def test_named_vs_inline_spellings_share_a_key(self):
        canonical = lis_to_json(examples.fig15_lis())
        by_name = parse_job("analyze", {"system": "fig15"})
        by_text = parse_job("analyze", {"lis": canonical})
        by_dict = parse_job("analyze", {"lis": json.loads(canonical)})
        assert by_name.key == by_text.key == by_dict.key

    def test_option_order_does_not_matter(self):
        a = parse_job(
            "simulate",
            {"system": "fig1", "options": {"clocks": 400, "warmup": 16}},
        )
        b = parse_job(
            "simulate",
            {"system": "fig1", "options": {"warmup": 16, "clocks": 400}},
        )
        assert a.key == b.key

    def test_different_content_different_key(self):
        a = parse_job("analyze", {"system": "fig1"})
        b = parse_job("analyze", {"system": "fig15"})
        c = parse_job("size_queues", {"system": "fig1"})
        assert len({a.key, b.key, c.key}) == 3

    def test_stream_and_deadline_do_not_change_the_key(self):
        plain = parse_job("analyze", {"system": "fig1"})
        decorated = parse_job(
            "analyze",
            {"system": "fig1", "deadline_ms": 50, "stream": True},
        )
        assert plain.key == decorated.key
        assert decorated.stream and not plain.stream


class TestNamedSystems:
    def test_every_documented_name_resolves(self):
        for name in (
            "fig1",
            "fig2-right",
            "fig10",
            "fig15",
            "uplink-downlink",
            "cofdm",
            "fig19",
            "mesh:2x2",
            "torus:3x3",
        ):
            text = resolve_named_system(name)
            assert json.loads(text)  # canonical JSON

    def test_file_paths_rejected(self):
        # The server must never read local files for a network peer.
        for name in ("/etc/passwd", "../secrets.json", "foo.json"):
            with pytest.raises(RpcError) as excinfo:
                resolve_named_system(name)
            assert excinfo.value.code == INVALID_PARAMS

    def test_bad_noc_spec(self):
        with pytest.raises(RpcError) as excinfo:
            resolve_named_system("mesh:wide")
        assert excinfo.value.code == INVALID_PARAMS


class TestJsonify:
    def test_scalars_and_fractions(self):
        assert jsonify(Fraction(3, 4)) == "3/4"
        assert jsonify(None) is None
        assert jsonify(True) is True
        assert jsonify(2.5) == 2.5

    def test_containers(self):
        assert jsonify({1: Fraction(1, 2)}) == {"1": "1/2"}
        assert jsonify((1, {2})) == [1, [2]]
        assert jsonify({"b", "a"}) == ["a", "b"]

    def test_dataclass_and_enum(self):
        class Color(Enum):
            RED = "red"

        @dataclass
        class Point:
            x: int
            rate: Fraction

        assert jsonify(Color.RED) == "red"
        assert jsonify(Point(1, Fraction(2, 3))) == {
            "x": 1,
            "rate": "2/3",
        }

    def test_round_trips_through_json(self):
        value = {"mst": Fraction(2, 3), "cycles": [(1, 2), (3, 4)]}
        assert json.loads(json.dumps(jsonify(value)))


def test_method_table_is_self_consistent():
    for name, spec in METHODS.items():
        assert spec.name == name
        assert spec.required <= spec.allowed or not spec.required
        assert spec.description
