"""The server chaos harness: a reduced seeded campaign must hold all
four invariants, and the report machinery must round-trip."""

import json

from repro.server.chaos import (
    ServerChaosConfig,
    ServerChaosReport,
    _fingerprint,
    _scrub,
    run_server_campaign,
)


class TestFingerprint:
    def test_scrub_drops_timing_fields_recursively(self):
        value = {
            "mst": "3/4",
            "elapsed": 0.123,
            "enumeration_elapsed": 4.5,
            "wall_seconds": 9.0,
            "nested": [{"cost": 2, "elapsed": 7.0}],
        }
        assert _scrub(value) == {
            "mst": "3/4",
            "nested": [{"cost": 2}],
        }

    def test_fingerprint_ignores_timing_but_not_content(self):
        a = {"mst": "3/4", "elapsed": 1.0}
        b = {"mst": "3/4", "elapsed": 2.0}
        c = {"mst": "2/3", "elapsed": 1.0}
        assert _fingerprint(a) == _fingerprint(b)
        assert _fingerprint(a) != _fingerprint(c)


class TestCampaign:
    def test_reduced_campaign_holds_invariants(self):
        report = run_server_campaign(
            ServerChaosConfig(
                requests=24, seeds=(0,), shards=2, clients=4
            )
        )
        assert report.ok, report.render()
        (trial,) = report.trials
        assert trial["requests"] == 24
        assert trial["hung"] == 0
        assert trial["admitted"] == trial["terminals"]
        assert (
            trial["succeeded"] + trial["errored"] == trial["requests"]
        )
        # The campaign must actually have injected something.
        assert trial["kills"] + trial["drops"] > 0
        summary = report.summary
        assert summary["ok"] is True
        assert summary["violations"] == 0
        # The report is JSON-able end to end (the CLI --json path).
        json.dumps(report.as_dict(), sort_keys=True, default=str)
        assert "all invariants held" in report.render()

    def test_report_flags_violations(self):
        report = ServerChaosReport(config={})
        report.trials.append(
            {
                "seed": 0,
                "requests": 1,
                "succeeded": 0,
                "errored": 0,
                "hung": 1,
                "retries_used": 0,
                "kills": 0,
                "drops": 0,
                "pool_breaks": 0,
                "resilience": {
                    "worker_restarts": 0,
                    "watchdog_kills": 0,
                    "failovers": 0,
                },
                "recovery_s": 0.0,
            }
        )
        report.violations.append(
            {"seed": 0, "invariant": "termination", "detail": "hang"}
        )
        assert not report.ok
        assert report.summary["violations"] == 1
        assert "VIOLATIONS" in report.render()
