"""Single-flight coalescing semantics (the perf core of the server).

The ISSUE-level guarantees under test, deterministically (execution is
gated on an event so "concurrent" is exact, not timing-dependent):

* N identical concurrent jobs -> exactly one computation started, all
  N waiters observe the shared result;
* cancelling one subscriber cancels neither the computation nor any
  other subscriber.
"""

import asyncio

import pytest

from repro.server.coalesce import Coalescer


class Gate:
    """A controllable computation: counts starts, blocks on an event."""

    def __init__(self, result="shared-result", error=None):
        self.started = 0
        self.release = asyncio.Event()
        self.result = result
        self.error = error

    async def __call__(self, entry):
        self.started += 1
        await self.release.wait()
        if self.error is not None:
            raise self.error
        return self.result


def test_n_identical_requests_one_execution():
    async def scenario():
        coalescer = Coalescer()
        gate = Gate()
        admissions = [coalescer.admit("key", gate) for _ in range(8)]
        leaders = [entry for entry, is_leader in admissions if is_leader]
        assert len(leaders) == 1
        # Every admission shares the leader's entry (same future).
        assert all(e is admissions[0][0] for e, _ in admissions)
        waiters = [
            asyncio.ensure_future(coalescer.wait(entry))
            for entry, _ in admissions
        ]
        await asyncio.sleep(0)  # let the drive task reach the gate
        gate.release.set()
        results = await asyncio.gather(*waiters)
        assert gate.started == 1
        assert results == ["shared-result"] * 8
        assert coalescer.leaders == 1
        assert coalescer.followers == 7
        assert coalescer.coalesce_rate == pytest.approx(7 / 8)
        assert len(coalescer) == 0  # entry retired on resolution

    asyncio.run(scenario())


def test_cancelling_one_subscriber_keeps_the_computation():
    async def scenario():
        coalescer = Coalescer()
        gate = Gate()
        entry, _ = coalescer.admit("key", gate)
        coalescer.admit("key", gate)
        victim = asyncio.ensure_future(coalescer.wait(entry))
        survivor = asyncio.ensure_future(coalescer.wait(entry))
        await asyncio.sleep(0)
        victim.cancel()
        await asyncio.sleep(0)
        assert victim.cancelled()
        # The shared future is untouched by the cancellation...
        assert not entry.future.cancelled()
        gate.release.set()
        # ...and the other subscriber still gets the result.
        assert await survivor == "shared-result"
        assert gate.started == 1

    asyncio.run(scenario())


def test_wait_timeout_does_not_cancel_the_computation():
    async def scenario():
        coalescer = Coalescer()
        gate = Gate()
        entry, _ = coalescer.admit("key", gate)
        with pytest.raises(asyncio.TimeoutError):
            await coalescer.wait(entry, timeout=0.01)
        assert not entry.future.cancelled()
        gate.release.set()
        assert await coalescer.wait(entry) == "shared-result"

    asyncio.run(scenario())


def test_errors_fan_out_to_every_waiter():
    async def scenario():
        coalescer = Coalescer()
        gate = Gate(error=ValueError("op failed"))
        entry, _ = coalescer.admit("key", gate)
        coalescer.admit("key", gate)
        waiters = [
            asyncio.ensure_future(coalescer.wait(entry))
            for _ in range(2)
        ]
        await asyncio.sleep(0)
        gate.release.set()
        results = await asyncio.gather(*waiters, return_exceptions=True)
        assert all(isinstance(r, ValueError) for r in results)
        assert gate.started == 1
        assert len(coalescer) == 0

    asyncio.run(scenario())


def test_distinct_keys_do_not_coalesce():
    async def scenario():
        coalescer = Coalescer()
        gate = Gate()
        entry_a, lead_a = coalescer.admit("a", gate)
        entry_b, lead_b = coalescer.admit("b", gate)
        assert lead_a and lead_b
        assert entry_a is not entry_b
        await asyncio.sleep(0)
        gate.release.set()
        await asyncio.gather(
            coalescer.wait(entry_a), coalescer.wait(entry_b)
        )
        assert gate.started == 2
        assert coalescer.followers == 0

    asyncio.run(scenario())


def test_disabled_coalescer_always_executes():
    async def scenario():
        coalescer = Coalescer(enabled=False)
        gate = Gate()
        admissions = [coalescer.admit("key", gate) for _ in range(3)]
        assert all(is_leader for _, is_leader in admissions)
        await asyncio.sleep(0)
        gate.release.set()
        for entry, _ in admissions:
            assert await coalescer.wait(entry) == "shared-result"
        assert gate.started == 3
        assert coalescer.coalesce_rate == 0.0

    asyncio.run(scenario())


def test_resolved_entry_is_not_rejoined():
    """A later identical request starts fresh (by then the engine
    cache serves it, so this is the cheap path anyway)."""

    async def scenario():
        coalescer = Coalescer()
        first = Gate()
        entry, _ = coalescer.admit("key", first)
        first.release.set()
        await coalescer.wait(entry)
        second = Gate()
        entry2, is_leader = coalescer.admit("key", second)
        assert is_leader and entry2 is not entry
        second.release.set()
        await coalescer.wait(entry2)
        assert second.started == 1

    asyncio.run(scenario())


def test_progress_events_fan_out_to_subscribers():
    async def scenario():
        coalescer = Coalescer()

        async def start(entry):
            entry.publish({"event": "started"})
            return "done"

        entry, _ = coalescer.admit("key", start)
        queue_a, queue_b = asyncio.Queue(), asyncio.Queue()
        entry.subscribers += [queue_a, queue_b]
        await coalescer.wait(entry)
        assert queue_a.get_nowait() == {"event": "started"}
        assert queue_b.get_nowait() == {"event": "started"}

    asyncio.run(scenario())
