"""Supervision, breakers, failover, degraded mode, honest shutdown.

The unit half drives :class:`CircuitBreaker` / :class:`RetryPolicy`
with fake clocks and seeds; the integration half boots real servers
and injects real failures (killed worker tasks, wedged executor ops)
to verify the supervisor's contract: an admitted request always gets
a terminal answer, and the shard comes back.
"""

import asyncio
import time

import pytest

from repro.server import (
    AnalysisServer,
    ServerClient,
    ServerConfig,
    ServerError,
)
from repro.server.coalesce import InflightEntry
from repro.server.pool import ShardPool
from repro.server.protocol import (
    ALL_SHARDS_DOWN,
    OVERLOADED,
    SHUTTING_DOWN,
    WORKER_CRASHED,
    RpcError,
    parse_job,
)
from repro.server.qmodel import QueueModel
from repro.server.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    RetryPolicy,
    ShardSupervisor,
)


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_trips_at_threshold_and_cools_down(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=3, window=10.0, cooldown=5.0, clock=clock
        )
        assert breaker.state == BREAKER_CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert breaker.remaining() == pytest.approx(5.0)
        clock.tick(5.0)
        assert breaker.state == BREAKER_HALF_OPEN

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=1, cooldown=1.0, probes=1, clock=clock
        )
        breaker.record_failure()
        clock.tick(1.0)
        assert breaker.allow()  # consumes the probe slot
        assert not breaker.allow()  # only one probe
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.tick(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 2

    def test_window_prunes_stale_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=3, window=10.0, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        clock.tick(11.0)  # both age out of the window
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.as_dict()["recent_failures"] == 1

    def test_supervisor_trip_is_immediate(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=100, clock=clock)
        breaker.trip()
        assert breaker.state == BREAKER_OPEN
        assert breaker.as_dict()["opens"] == 1


class TestRetryPolicy:
    def test_seeded_delays_are_deterministic(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        assert [a.delay(i) for i in range(4)] == [
            b.delay(i) for i in range(4)
        ]

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_s=0.1, cap_s=0.5, multiplier=2.0, jitter=0.0
        )
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(10) == pytest.approx(0.5)  # capped

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            base_s=1.0, cap_s=1.0, jitter=0.5, seed=7
        )
        for attempt in range(32):
            delay = policy.delay(attempt)
            assert 0.5 <= delay <= 1.0

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(base_s=0.01, jitter=0.0)
        assert policy.delay(0, retry_after=2.5) == pytest.approx(2.5)

    def test_retryable_whitelist(self):
        policy = RetryPolicy()
        assert policy.retryable(ConnectionError("dropped"))
        assert policy.retryable(RpcError(OVERLOADED, "shed"))
        assert policy.retryable(RpcError(WORKER_CRASHED, "died"))
        assert policy.retryable(RpcError(SHUTTING_DOWN, "bye"))
        assert policy.retryable(RpcError(ALL_SHARDS_DOWN, "down"))
        assert not policy.retryable(RpcError(-32000, "op failed"))
        assert not policy.retryable(ValueError("nope"))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


def _entry(job):
    return InflightEntry(
        job.key, asyncio.get_running_loop().create_future()
    )


class TestWorkerHardening:
    """The ISSUE'd bug: an exception outside the engine call used to
    kill the drain loop silently."""

    def test_broken_subscriber_does_not_kill_the_worker(self):
        async def scenario():
            pool = ShardPool(shards=1, qmodel=QueueModel())
            pool.start()
            try:
                job = parse_job("analyze", {"system": "fig1"})
                entry = _entry(job)

                class Boom(asyncio.Queue):
                    def put_nowait(self, item):
                        raise RuntimeError("subscriber exploded")

                entry.subscribers.append(Boom())
                outcome = await pool.execute(job, entry)
                assert outcome.value is not None
                worker = pool.worker_task(0)
                assert worker is not None and not worker.done()
                # ...and the shard still serves afterwards.
                job2 = parse_job("analyze", {"system": "fig2-right"})
                outcome2 = await pool.execute(job2, _entry(job2))
                assert outcome2.value is not None
            finally:
                await pool.close()

        run(scenario())


class TestSupervisorRecovery:
    def test_killed_worker_is_restarted_and_orphan_failed(self):
        """Satellite: kill a shard worker mid-job; the supervisor
        must restart it, the orphan must get a terminal error, and
        the next request must succeed."""

        async def scenario():
            started = asyncio.Event()
            loop = asyncio.get_running_loop()

            pool = ShardPool(shards=1, qmodel=QueueModel())
            pool.start()
            supervisor = ShardSupervisor(pool, hang_timeout=0.0)

            def stall(shard, job):
                loop.call_soon_threadsafe(started.set)
                time.sleep(0.3)

            pool.chaos_hook = stall
            try:
                job = parse_job("analyze", {"system": "fig1"})
                pending = asyncio.ensure_future(
                    pool.execute(job, _entry(job))
                )
                await asyncio.wait_for(started.wait(), timeout=5.0)
                pool.kill_worker(0)
                await asyncio.sleep(0)  # let the cancellation land
                actions = supervisor.check()
                assert actions == [
                    {"shard": 0, "action": "restart-dead"}
                ]
                with pytest.raises(RpcError) as excinfo:
                    await asyncio.wait_for(pending, timeout=5.0)
                assert excinfo.value.code == WORKER_CRASHED
                assert pool.resilience.worker_crashes == 1
                assert pool.resilience.worker_restarts == 1
                assert pool.qmodel.disruptions == 1
                # The replacement worker serves (no stall this time).
                pool.chaos_hook = None
                job2 = parse_job("analyze", {"system": "fig15"})
                outcome = await asyncio.wait_for(
                    pool.execute(job2, _entry(job2)), timeout=10.0
                )
                assert outcome.value is not None
                assert pool.admitted == pool.terminals == 2
            finally:
                await pool.close()

        run(scenario())

    def test_end_to_end_recovery_through_the_server(self):
        """The same crash through real sockets: the supervisor task
        (not a manual check()) restarts the shard and the retrying
        client sees a result."""

        async def scenario():
            config = ServerConfig(
                port=0,
                shards=1,
                heartbeat_interval=0.02,
                breaker_cooldown=0.05,
            )
            async with AnalysisServer(config) as server:
                started = asyncio.Event()
                loop = asyncio.get_running_loop()

                calls = {"n": 0}

                def stall_once(shard, job):
                    calls["n"] += 1
                    if calls["n"] == 1:
                        loop.call_soon_threadsafe(started.set)
                        time.sleep(0.3)

                server.pool.chaos_hook = stall_once
                client = ServerClient(
                    "127.0.0.1",
                    server.port,
                    retry=RetryPolicy(
                        retries=4, base_s=0.05, cap_s=0.2, seed=1
                    ),
                )
                try:
                    task = asyncio.ensure_future(
                        client.call("analyze", {"system": "fig1"})
                    )
                    await asyncio.wait_for(started.wait(), timeout=5.0)
                    server.pool.kill_worker(0)
                    result = await asyncio.wait_for(task, timeout=15.0)
                    assert result["value"]["ideal"]
                    assert client.retries_used >= 1
                finally:
                    await client.aclose()
                assert server.pool.resilience.worker_restarts >= 1

        run(scenario())

    def test_watchdog_kills_wedged_op_and_rebuilds_engine(self):
        async def scenario():
            pool = ShardPool(
                shards=1, qmodel=QueueModel(), breaker_cooldown=0.05
            )
            pool.start()
            supervisor = ShardSupervisor(pool, hang_timeout=0.1)
            started = asyncio.Event()
            loop = asyncio.get_running_loop()

            def wedge(shard, job):
                loop.call_soon_threadsafe(started.set)
                time.sleep(0.5)

            pool.chaos_hook = wedge
            engine_before = pool.engines[0]
            try:
                job = parse_job("analyze", {"system": "fig1"})
                pending = asyncio.ensure_future(
                    pool.execute(job, _entry(job))
                )
                await asyncio.wait_for(started.wait(), timeout=5.0)
                await asyncio.sleep(0.15)  # exceed the hang timeout
                actions = supervisor.check()
                assert actions == [
                    {"shard": 0, "action": "watchdog-kill"}
                ]
                with pytest.raises(RpcError) as excinfo:
                    await asyncio.wait_for(pending, timeout=5.0)
                assert excinfo.value.code == -32005  # WATCHDOG_TIMEOUT
                assert pool.engines[0] is not engine_before
                assert pool.resilience.watchdog_kills == 1
                assert pool.resilience.engine_rebuilds == 1
                assert pool.states[0].breaker.state == BREAKER_OPEN
                # After the cooldown the half-open probe serves again.
                pool.chaos_hook = None
                await asyncio.sleep(0.06)
                job2 = parse_job("analyze", {"system": "fig15"})
                outcome = await asyncio.wait_for(
                    pool.execute(job2, _entry(job2)), timeout=10.0
                )
                assert outcome.value is not None
            finally:
                await pool.close()

        run(scenario())


class TestFailoverAndDegraded:
    def test_open_breaker_fails_over_to_sibling(self):
        async def scenario():
            pool = ShardPool(shards=2, qmodel=QueueModel())
            pool.start()
            try:
                job = parse_job("analyze", {"system": "fig1"})
                primary = pool.shard_of(job.key)
                pool.states[primary].breaker.trip()
                outcome = await asyncio.wait_for(
                    pool.execute(job, _entry(job)), timeout=10.0
                )
                assert outcome.shard == (primary + 1) % 2
                assert outcome.failover is True
                assert pool.resilience.failovers == 1
            finally:
                await pool.close()

        run(scenario())

    def test_failover_disabled_goes_all_shards_down(self):
        async def scenario():
            pool = ShardPool(
                shards=2, qmodel=QueueModel(), failover=False
            )
            pool.start()
            try:
                job = parse_job("analyze", {"system": "fig1"})
                pool.states[pool.shard_of(job.key)].breaker.trip()
                with pytest.raises(RpcError) as excinfo:
                    await pool.execute(job, _entry(job))
                assert excinfo.value.code == ALL_SHARDS_DOWN
                assert excinfo.value.retry_after is not None
            finally:
                await pool.close()

        run(scenario())

    def test_degraded_mode_serves_disk_cache_hits(self, tmp_path):
        async def scenario():
            pool = ShardPool(
                shards=1,
                qmodel=QueueModel(),
                cache_dir=str(tmp_path / "cache"),
            )
            pool.start()
            try:
                job = parse_job("analyze", {"system": "fig15"})
                warm = await asyncio.wait_for(
                    pool.execute(job, _entry(job)), timeout=10.0
                )
                pool.states[0].breaker.trip()
                served = await pool.execute(job, _entry(job))
                assert served.degraded is True
                assert served.shard == -1
                assert served.cache_served is True
                assert served.value == warm.value
                assert pool.resilience.degraded_served == 1
                # Unseen content cannot be served from the cache.
                other = parse_job("analyze", {"system": "fig1"})
                with pytest.raises(RpcError) as excinfo:
                    await pool.execute(other, _entry(other))
                assert excinfo.value.code == ALL_SHARDS_DOWN
                assert pool.resilience.all_shards_down == 1
            finally:
                await pool.close()

        run(scenario())


class TestHonestShutdown:
    def test_close_fails_queued_and_inflight_jobs(self):
        """Satellite regression: close() used to leave queued ``done``
        futures unresolved, hanging concurrent execute() awaiters."""

        async def scenario():
            pool = ShardPool(shards=1, qmodel=QueueModel())
            pool.start()
            started = asyncio.Event()
            loop = asyncio.get_running_loop()

            def stall(shard, job):
                loop.call_soon_threadsafe(started.set)
                time.sleep(0.3)

            pool.chaos_hook = stall
            jobs = [
                parse_job("analyze", {"system": name})
                for name in ("fig1", "fig2-right", "fig15")
            ]
            pending = [
                asyncio.ensure_future(pool.execute(j, _entry(j)))
                for j in jobs
            ]
            await asyncio.wait_for(started.wait(), timeout=5.0)
            t0 = time.monotonic()
            await asyncio.wait_for(pool.close(), timeout=5.0)
            assert time.monotonic() - t0 < 5.0
            results = await asyncio.gather(
                *pending, return_exceptions=True
            )
            assert len(results) == 3
            for result in results:
                assert isinstance(result, RpcError)
                assert result.code == SHUTTING_DOWN
            assert pool.admitted == pool.terminals == 3
            assert pool.resilience.shutdown_failed == 3

        run(scenario())

    def test_execute_after_close_is_refused(self):
        async def scenario():
            pool = ShardPool(shards=1, qmodel=QueueModel())
            pool.start()
            await pool.close()
            job = parse_job("analyze", {"system": "fig1"})
            with pytest.raises(RpcError) as excinfo:
                await pool.execute(job, _entry(job))
            assert excinfo.value.code == SHUTTING_DOWN

        run(scenario())


class TestHonestHealthz:
    def test_healthz_reports_per_shard_detail(self):
        async def scenario():
            config = ServerConfig(port=0, shards=2, supervise=False)
            async with AnalysisServer(config) as server:
                client = ServerClient("127.0.0.1", server.port)
                try:
                    health = await client.health()
                    assert health["ok"] is True
                    assert health["serving"] == 2
                    assert len(health["shards"]) == 2
                    for shard in health["shards"]:
                        assert shard["ok"] is True
                        assert shard["worker_alive"] is True
                        assert shard["breaker"] == BREAKER_CLOSED
                        assert shard["queue_depth"] == 0
                        assert shard["heartbeat_age_s"] >= 0.0
                    assert await client.healthz() is True
                finally:
                    await client.aclose()

        run(scenario())

    def test_healthz_503_when_no_shard_serving(self):
        async def scenario():
            # supervise=False so the dead workers *stay* dead.
            config = ServerConfig(port=0, shards=2, supervise=False)
            async with AnalysisServer(config) as server:
                for idx in range(2):
                    server.pool.kill_worker(idx)
                await asyncio.sleep(0)
                client = ServerClient("127.0.0.1", server.port)
                try:
                    status, _headers, payload = await client._request(
                        "GET", "/healthz"
                    )
                    assert status == 503
                    import json as _json

                    health = _json.loads(payload)
                    assert health["ok"] is False
                    assert all(
                        not s["worker_alive"] for s in health["shards"]
                    )
                    assert await client.healthz() is False
                finally:
                    await client.aclose()

        run(scenario())

    def test_stats_carries_resilience_section(self):
        async def scenario():
            async with AnalysisServer(ServerConfig(port=0)) as server:
                client = ServerClient("127.0.0.1", server.port)
                try:
                    stats = await client.stats()
                finally:
                    await client.aclose()
            resilience = stats["resilience"]
            assert resilience["worker_restarts"] == 0
            assert resilience["failovers"] == 0
            assert len(resilience["breakers"]) == 1
            assert resilience["breakers"][0]["state"] == BREAKER_CLOSED
            queueing = stats["queueing"]
            assert queueing["disruptions"] == 0
            assert "prediction_error" in queueing

        run(scenario())
