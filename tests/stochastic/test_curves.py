"""Tail-vs-sizing curves and their engine-op surface: the sweep loop,
common-random-number monotonicity, rendering, and parity between
direct calls and the ``tail_point`` / ``tail_curves`` ops."""

import json

import numpy as np
import pytest

from repro.analysis import get_context
from repro.engine import AnalysisEngine
from repro.gen import fig15_lis
from repro.stochastic import (
    bernoulli_stalls,
    run_monte_carlo,
    tail_curve,
    uniform_sizings,
)

SPEC = bernoulli_stalls(rate=0.15, scope="global", seed=13)
CLOCKS = 200
TRIALS = 40


def test_uniform_sizings_ladder():
    lis = fig15_lis()
    ladder = uniform_sizings(lis, max_extra=2)
    channels = set(lis.channel_ids())
    assert ladder[0] == {}
    assert ladder[1] == {cid: 1 for cid in channels}
    assert ladder[2] == {cid: 2 for cid in channels}
    with pytest.raises(ValueError, match="max_extra"):
        uniform_sizings(lis, max_extra=-1)


def test_curve_is_deterministic_and_monotone():
    curve = tail_curve(
        fig15_lis(), SPEC, clocks=CLOCKS, trials=TRIALS, sizings=None
    )
    again = tail_curve(
        fig15_lis(), SPEC, clocks=CLOCKS, trials=TRIALS, sizings=None
    )
    assert curve.as_dict() == again.as_dict()
    assert len(curve.points) == 4  # default max_extra=3 ladder
    # Common random numbers: extra slots can only help, per trial.
    base = curve.points[0].mc
    for point in curve.points[1:]:
        assert (point.mc.counts >= base.counts).all()
    # Every point measures the same quantity.
    assert all(p.mc.node == curve.node for p in curve.points)
    assert all(p.mc.work == curve.work for p in curve.points)


def test_curve_base_point_equals_single_run():
    curve = tail_curve(fig15_lis(), SPEC, clocks=CLOCKS, trials=TRIALS)
    solo = run_monte_carlo(
        fig15_lis(),
        SPEC,
        clocks=CLOCKS,
        trials=TRIALS,
        node=curve.node,
        work=curve.work,
    )
    assert np.array_equal(curve.points[0].mc.counts, solo.counts)
    assert np.array_equal(curve.points[0].mc.completion, solo.completion)


def test_curve_exact_cross_check_passes():
    curve = tail_curve(fig15_lis(), SPEC, clocks=CLOCKS, trials=TRIALS)
    for point in curve.points:
        assert point.check is not None
        assert point.check["exact"]
        assert point.check["ok"], point.check
    # analytic=False suppresses both estimate and check.
    bare = tail_curve(
        fig15_lis(), SPEC, clocks=CLOCKS, trials=TRIALS, analytic=False
    )
    assert all(p.estimate is None and p.check is None for p in bare.points)


def test_render_and_as_dict():
    curve = tail_curve(
        fig15_lis(), SPEC, clocks=CLOCKS, trials=TRIALS, sizings=[{}]
    )
    text = curve.render()
    lines = text.splitlines()
    assert lines[0].split() == [
        "extra", "p50", "p99", "p999", "an.p99", "occ.p99", "rate",
    ]
    assert len(lines) == 2
    d = curve.as_dict()
    json.dumps(d, allow_nan=False)  # strict JSON end to end
    assert d["trials"] == TRIALS
    assert [p["extra_tokens"] for p in d["points"]] == [{}]
    assert "agreement" in d["points"][0]


# ----------------------------------------------------------------------
# Engine-op parity
# ----------------------------------------------------------------------


@pytest.fixture()
def engine():
    return AnalysisEngine(jobs=1)


def test_tail_curves_op_matches_direct_call(engine):
    lis = fig15_lis()
    options = {
        "specs": [SPEC.as_dict()],
        "clocks": CLOCKS,
        "trials": TRIALS,
        "max_extra": 1,
    }
    (op_result,) = engine.run([("tail_curves", lis, options)])
    direct = tail_curve(
        lis,
        SPEC,
        clocks=CLOCKS,
        trials=TRIALS,
        sizings=uniform_sizings(lis, 1),
    ).as_dict()
    assert op_result == direct


def test_tail_point_op_matches_monte_carlo(engine):
    lis = fig15_lis()
    extra = {cid: 1 for cid in lis.channel_ids()}
    options = {
        "specs": [SPEC.as_dict()],
        "clocks": CLOCKS,
        "trials": TRIALS,
        "extra_tokens": {str(c): x for c, x in extra.items()},
    }
    (op_result,) = engine.run([("tail_point", lis, options)])
    mc = run_monte_carlo(
        lis, SPEC, clocks=CLOCKS, trials=TRIALS, extra_tokens=extra
    )
    for key, value in mc.summary().items():
        assert op_result[key] == value
    assert op_result["agreement"]["ok"]


def test_tail_op_rejects_missing_specs(engine):
    with pytest.raises(Exception):
        engine.run([("tail_point", fig15_lis(), {})])
