"""The order-statistic quantile machinery and the Monte-Carlo result
surface: type-1 quantiles, honest (open-ended) confidence bands,
strict-JSON summaries, and common-random-number batching."""

import json
import math

import numpy as np
import pytest

from repro.gen import fig15_lis
from repro.stochastic import (
    bernoulli_stalls,
    empirical_quantile,
    quantile_band,
    run_monte_carlo,
    run_monte_carlo_batch,
)
from repro.stochastic.montecarlo import quantile_name


# ----------------------------------------------------------------------
# Quantile primitives
# ----------------------------------------------------------------------


def test_empirical_quantile_type1():
    xs = np.array([3.0, 1.0, 2.0, 4.0])
    # min{x : F_n(x) >= q}
    assert empirical_quantile(xs, 0.25) == 1.0
    assert empirical_quantile(xs, 0.26) == 2.0
    assert empirical_quantile(xs, 0.5) == 2.0
    assert empirical_quantile(xs, 1.0) == 4.0
    # Agrees with numpy's inverted-CDF convention across levels.
    rng = np.random.default_rng(1)
    data = rng.integers(0, 50, size=101).astype(float)
    for q in (0.1, 0.5, 0.9, 0.99):
        assert empirical_quantile(data, q) == float(
            np.quantile(data, q, method="inverted_cdf")
        )
    with pytest.raises(ValueError, match="quantile level"):
        empirical_quantile(xs, 0.0)
    with pytest.raises(ValueError, match="no samples"):
        empirical_quantile(np.array([]), 0.5)


def test_quantile_band_brackets_the_point():
    rng = np.random.default_rng(2)
    xs = rng.normal(size=400)
    for q in (0.25, 0.5, 0.9):
        lo, hi = quantile_band(xs, q)
        assert lo <= empirical_quantile(xs, q) <= hi
        assert math.isfinite(lo) and math.isfinite(hi)


def test_quantile_band_opens_at_the_extremes():
    """When no order statistic bounds the requested tail the band side
    is +-inf, never silently clamped to the sample extremes."""
    rng = np.random.default_rng(3)
    xs = rng.normal(size=200)
    lo, hi = quantile_band(xs, 0.999)  # 0.999^200 ~ 0.82 >> alpha/2
    assert math.isfinite(lo) and hi == math.inf
    lo, hi = quantile_band(xs, 0.001)
    assert lo == -math.inf and math.isfinite(hi)
    # A p99 band from 200 trials is one-sided too (0.99^200 ~ 0.13).
    _, hi = quantile_band(xs, 0.99)
    assert hi == math.inf
    with pytest.raises(ValueError, match="confidence"):
        quantile_band(xs, 0.5, confidence=1.0)


def test_quantile_band_coverage_on_known_distribution():
    """Monte-Carlo check of the construction itself: the 95% band for
    the median of U(0,1) must cover 0.5 in ~95% of resamples."""
    rng = np.random.default_rng(4)
    covered = 0
    reps = 300
    for _ in range(reps):
        xs = rng.random(99)
        lo, hi = quantile_band(xs, 0.5, confidence=0.95)
        covered += lo <= 0.5 <= hi
    assert covered / reps >= 0.90


def test_quantile_name():
    assert quantile_name(0.5) == "p50"
    assert quantile_name(0.9) == "p90"
    assert quantile_name(0.99) == "p99"
    assert quantile_name(0.999) == "p999"
    assert quantile_name(0.25) == "p25"


# ----------------------------------------------------------------------
# MonteCarloResult surface
# ----------------------------------------------------------------------


def test_result_metrics_and_summary_are_strict_json():
    mc = run_monte_carlo(
        fig15_lis(),
        bernoulli_stalls(rate=0.15, scope="global", seed=9),
        clocks=200,
        trials=50,
    )
    assert mc.trials == 50
    assert mc.samples("throughput").shape == (50,)
    with pytest.raises(ValueError, match="unknown metric"):
        mc.samples("latency")
    summary = mc.summary()
    # Strict JSON even with open band edges (no NaN/inf leaks).
    text = json.dumps(summary, allow_nan=False, sort_keys=True)
    assert "p999_ci" in summary["completion"]
    assert summary["trials"] == 50
    assert json.loads(text)["node"] == str(mc.node)


def test_unreachable_work_marks_incomplete_trials():
    mc = run_monte_carlo(
        fig15_lis(),
        bernoulli_stalls(rate=0.5, scope="global", seed=1),
        clocks=60,
        trials=10,
        work=10_000,
    )
    assert np.isinf(mc.completion).all()
    block = mc.summary()["completion"]
    assert block["incomplete_trials"] == 10
    assert block["p50"] is None  # inf -> None for strict JSON


def test_work_validation():
    with pytest.raises(ValueError, match="work must be"):
        run_monte_carlo(
            fig15_lis(),
            bernoulli_stalls(rate=0.1),
            clocks=50,
            trials=4,
            work=0,
        )


def test_schedule_shape_mismatch_rejected():
    from repro.stochastic import compile_stochastic

    lis = fig15_lis()
    schedule = compile_stochastic(lis, bernoulli_stalls(0.1), 40, trials=4)
    with pytest.raises(ValueError, match="compiled for"):
        run_monte_carlo(
            lis,
            bernoulli_stalls(0.1),
            clocks=50,
            trials=4,
            schedule=schedule,
        )


# ----------------------------------------------------------------------
# Batched sweeps: common random numbers
# ----------------------------------------------------------------------


def test_batch_shares_random_numbers_across_assignments():
    """Every assignment sees the identical stall samples, so the
    sizing-0 cell of a batch equals a standalone single run."""
    lis = fig15_lis()
    spec = bernoulli_stalls(rate=0.2, scope="global", seed=21)
    sizings = [{}, {cid: 1 for cid in lis.channel_ids()}]
    batch = run_monte_carlo_batch(
        lis, spec, clocks=150, trials=30, assignments=sizings
    )
    assert len(batch) == 2
    solo = run_monte_carlo(lis, spec, clocks=150, trials=30)
    # Same node/work defaults? Force comparability via explicit fields.
    assert batch[0].node == solo.node
    assert np.array_equal(batch[0].counts, solo.counts)
    assert np.array_equal(batch[0].occupancy, solo.occupancy)
    # Extra queue slots never hurt: per-trial domination, not just means
    # (this is what common random numbers buy).
    assert (batch[1].counts >= batch[0].counts).all()
    assert batch[1].extra_tokens == sizings[1]
