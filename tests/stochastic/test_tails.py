"""The analytic tail layer: exponents, effective-bandwidth dilation,
and the exact/approximate split of :func:`estimate_tails`."""

import math

import pytest

from repro.analysis import get_context
from repro.gen import fig15_lis, mesh_lis
from repro.stochastic import (
    arrival_envelope,
    bernoulli_stalls,
    burst_stalls,
    estimate_tails,
    periodic_stalls,
)
from repro.stochastic.tails import (
    default_work,
    effective_rate,
    tail_exponent,
)


# ----------------------------------------------------------------------
# Large-deviations exponents
# ----------------------------------------------------------------------


def test_tail_exponent_values():
    # Bernoulli: each extra delay clock costs a factor p -> -ln p.
    assert tail_exponent(bernoulli_stalls(rate=0.1)) == pytest.approx(
        -math.log(0.1)
    )
    # Burst: the stalled run must persist -> -ln(1 - 1/burst).
    assert tail_exponent(burst_stalls(burst=4.0, gap=12.0)) == pytest.approx(
        -math.log1p(-0.25)
    )
    # Degenerate burst length 1: every stalled run ends immediately.
    assert tail_exponent(burst_stalls(burst=1.0, gap=3.0)) == math.inf
    # arrival_envelope may clamp burst to 1.0 -- must not raise.
    assert tail_exponent(arrival_envelope(0.8, sigma=3.0)) == math.inf
    # Periodic: bounded delay, no tail.
    assert tail_exponent(periodic_stalls(burst=2, gap=6)) == math.inf
    # Limits.
    assert tail_exponent(bernoulli_stalls(rate=0.0)) == math.inf
    assert tail_exponent(bernoulli_stalls(rate=1.0)) == 0.0


def test_exponents_order_heavier_tails():
    """A heavier service process must have a smaller decay exponent."""
    light = tail_exponent(bernoulli_stalls(rate=0.05))
    heavy = tail_exponent(bernoulli_stalls(rate=0.5))
    assert heavy < light
    short = tail_exponent(burst_stalls(burst=2.0, gap=6.0))
    long_ = tail_exponent(burst_stalls(burst=8.0, gap=24.0))
    assert long_ < short


# ----------------------------------------------------------------------
# Effective-bandwidth rate bound
# ----------------------------------------------------------------------


def test_effective_rate_dilations():
    ctx = get_context(fig15_lis())
    r0 = float(ctx.schedule_oracle().min_rate())
    # No specs / zero-stall spec: the deterministic rate.
    assert effective_rate(ctx, []) == pytest.approx(r0)
    assert effective_rate(
        ctx, [bernoulli_stalls(rate=0.0)]
    ) == pytest.approx(r0)
    # A global Bernoulli dilates every cycle by exactly (1 - p).
    dilated = effective_rate(ctx, [bernoulli_stalls(rate=0.2, scope="global")])
    assert dilated == pytest.approx(r0 * 0.8)
    # Two independent processes compound; the bound is monotone.
    both = effective_rate(
        ctx,
        [
            bernoulli_stalls(rate=0.2, scope="global"),
            bernoulli_stalls(rate=0.1, scope="all"),
        ],
    )
    assert both <= dilated + 1e-12
    assert both == pytest.approx(r0 * 0.8 * 0.9)


def test_effective_rate_scoped_specs_spare_untouched_cycles():
    """A source-only envelope cannot slow a cycle that avoids the
    sources more than a cycle through them."""
    ctx = get_context(mesh_lis(3, 3))
    r0 = float(ctx.schedule_oracle().min_rate())
    scoped = effective_rate(ctx, [arrival_envelope(0.5, sigma=4.0)])
    everywhere = effective_rate(
        ctx, [burst_stalls(burst=4.0, gap=4.0, scope="all")]
    )
    assert 0.0 <= everywhere <= scoped <= r0


# ----------------------------------------------------------------------
# estimate_tails: the exact path
# ----------------------------------------------------------------------


def test_exact_path_zero_variance_is_the_oracle():
    ctx = get_context(fig15_lis())
    oracle = ctx.schedule_oracle()
    est = estimate_tails(
        ctx, bernoulli_stalls(rate=0.0), clocks=200, quantiles=(0.5, 0.99)
    )
    assert est.exact and est.method == "dilation-exact"
    assert est.rate == pytest.approx(float(oracle.throughput(est.node)))
    # All quantiles coincide on the deterministic completion time.
    assert est.completion[0.5] == est.completion[0.99]
    assert est.throughput[0.5] == pytest.approx(
        oracle.firings(est.node, 200) / 200
    )


def test_exact_path_periodic_is_deterministic():
    ctx = get_context(fig15_lis())
    est = estimate_tails(
        ctx,
        periodic_stalls(burst=1, gap=3, scope="global"),
        clocks=200,
        quantiles=(0.5, 0.999),
    )
    assert est.exact
    assert est.completion[0.5] == est.completion[0.999]
    # Dilated by exactly the 25% stall fraction.
    r0 = float(ctx.schedule_oracle().throughput(est.node))
    assert est.rate == pytest.approx(r0 * 0.75)


def test_exact_quantiles_are_monotone_in_q_and_work():
    ctx = get_context(fig15_lis())
    spec = bernoulli_stalls(rate=0.2, scope="global", seed=1)
    est = estimate_tails(
        ctx, spec, clocks=300, quantiles=(0.5, 0.9, 0.99, 0.999)
    )
    qs = sorted(est.completion)
    values = [est.completion[q] for q in qs]
    assert values == sorted(values)
    # Higher q -> worse (lower) throughput quantile.
    tps = [est.throughput[q] for q in qs]
    assert tps == sorted(tps, reverse=True)
    # More work takes longer.
    more = estimate_tails(
        ctx, spec, clocks=300, work=est.work * 2, node=est.node
    )
    assert more.completion[0.5] > est.completion[0.5]


def test_multiple_global_bernoullis_stay_exact():
    ctx = get_context(fig15_lis())
    est = estimate_tails(
        ctx,
        [
            bernoulli_stalls(rate=0.1, scope="global", seed=1),
            bernoulli_stalls(rate=0.1, scope="global", seed=2),
        ],
        clocks=200,
    )
    assert est.exact  # independent Bernoulli globals union to one
    r0 = float(ctx.schedule_oracle().throughput(est.node))
    assert est.rate == pytest.approx(r0 * 0.9 * 0.9)


# ----------------------------------------------------------------------
# The approximate path
# ----------------------------------------------------------------------


def test_per_node_scope_falls_back_to_effective_bandwidth():
    ctx = get_context(fig15_lis())
    est = estimate_tails(ctx, bernoulli_stalls(rate=0.2, scope="all"), 200)
    assert not est.exact
    assert est.method == "effective-bandwidth"
    # Mixed global kinds have no closed form either.
    mixed = estimate_tails(
        ctx,
        [
            bernoulli_stalls(rate=0.1, scope="global"),
            burst_stalls(burst=2.0, gap=6.0, scope="global"),
        ],
        clocks=200,
    )
    assert not mixed.exact


def test_unreachable_work_hits_the_cap():
    ctx = get_context(fig15_lis())
    est = estimate_tails(
        ctx,
        bernoulli_stalls(rate=0.5, scope="global"),
        clocks=50,
        work=10_000,
        quantiles=(0.5,),
        cap=100,
    )
    assert est.completion[0.5] == math.inf
    assert est.as_dict()["completion"]["p50"] is None


def test_as_dict_cleans_infinities():
    est = estimate_tails(
        get_context(fig15_lis()),
        periodic_stalls(burst=1, gap=3, scope="global"),
        clocks=100,
    )
    d = est.as_dict()
    assert d["exponent"] is None  # periodic: bounded delay
    assert d["method"] == "dilation-exact"
    assert set(d["completion"]) == {"p50", "p99", "p999"}


def test_default_work_discounts_stalls():
    ctx = get_context(fig15_lis())
    oracle = ctx.schedule_oracle()
    node = max(
        oracle.shell_throughputs(),
        key=lambda s: (oracle.shell_throughputs()[s], repr(s)),
    )
    idle = default_work(oracle, node, 200, [bernoulli_stalls(rate=0.0)])
    busy = default_work(oracle, node, 200, [bernoulli_stalls(rate=0.5)])
    assert idle == oracle.firings(node, 200) // 2
    assert 1 <= busy <= idle
