"""The issue's acceptance differential: on Fig. 15 and the COFDM
transmitter, the analytic tail estimates under global modulated
service are exact quantiles and must land inside the Monte-Carlo
confidence band at p50/p99/p999.

Trial count / confidence note: completion times are discrete with
large point masses, so a quantile level can land on a CDF jump (on
fig15 at this spec, ``P(T <= 287) = 0.495``) where a 95% band's 5%
miss rate is a real flake risk for a fixed seed.  The test therefore
uses a 99% band -- still distribution-free and exact -- and 540
trials, the minimum keeping the p99 band two-sided
(``0.99^n < alpha/2 = 0.005`` needs ``n >= 528``).
"""

import pytest

from repro.analysis import get_context
from repro.gen import fig15_lis
from repro.soc import cofdm_transmitter
from repro.stochastic import (
    agreement,
    bernoulli_stalls,
    burst_stalls,
    estimate_tails,
    run_monte_carlo,
)

QUANTILES = (0.5, 0.99, 0.999)
CLOCKS = 600
TRIALS = 540
CONFIDENCE = 0.99


def _check(lis, spec):
    ctx = get_context(lis)
    mc = run_monte_carlo(ctx, spec, clocks=CLOCKS, trials=TRIALS)
    estimate = estimate_tails(
        ctx,
        spec,
        clocks=CLOCKS,
        node=mc.node,
        work=mc.work,
        quantiles=QUANTILES,
    )
    assert estimate.exact and estimate.method == "dilation-exact"
    report = agreement(mc, estimate, QUANTILES, confidence=CONFIDENCE)
    assert report["exact"]
    assert report["ok"], report
    assert len(report["rows"]) == len(QUANTILES)
    # The p99 band really was two-sided at this trial count.
    p99 = next(r for r in report["rows"] if r["q"] == 0.99)
    assert p99["band"][0] is not None and p99["band"][1] is not None
    return report


@pytest.mark.parametrize(
    "name,make",
    [("fig15", fig15_lis), ("cofdm", cofdm_transmitter)],
)
def test_bernoulli_global_analytic_inside_mc_band(name, make):
    _check(make(), bernoulli_stalls(rate=0.1, scope="global", seed=3))


@pytest.mark.parametrize(
    "name,make",
    [("fig15", fig15_lis), ("cofdm", cofdm_transmitter)],
)
def test_burst_global_analytic_inside_mc_band(name, make):
    _check(
        make(), burst_stalls(burst=3.0, gap=9.0, scope="global", seed=17)
    )


@pytest.mark.parametrize(
    "name,make",
    [("fig15", fig15_lis), ("cofdm", cofdm_transmitter)],
)
def test_zero_variance_equals_schedule_oracle(name, make):
    """The other acceptance leg: zero-variance stochastic runs equal
    the deterministic schedule oracle exactly."""
    ctx = get_context(make())
    mc = run_monte_carlo(
        ctx,
        bernoulli_stalls(rate=0.0, scope="global"),
        clocks=CLOCKS,
        trials=4,
    )
    oracle = ctx.schedule_oracle()
    expected = oracle.firings(mc.node, CLOCKS)
    assert [int(c) for c in mc.counts] == [expected] * 4
    estimate = estimate_tails(
        ctx,
        bernoulli_stalls(rate=0.0, scope="global"),
        clocks=CLOCKS,
        node=mc.node,
        work=mc.work,
        quantiles=QUANTILES,
    )
    # No randomness: every quantile is the deterministic value, and the
    # MC samples hit it exactly.
    for q in QUANTILES:
        assert estimate.completion[q] == mc.quantile("completion", q)
