"""Degeneracy pinning: the stochastic layer collapses onto the
deterministic toolchain exactly when the randomness does.

* Zero-variance specs (periodic patterns, rate-0/1 Bernoulli) make
  every Monte-Carlo trial identical and equal to one reference
  simulation under the same gate.
* Zero stalls reproduce the ``schedule`` oracle's exact firing counts,
  rates, and peak occupancies.
* A fixed seed is bit-for-bit reproducible, and the batched fast run
  matches trace/rtl through the same :meth:`StochasticSchedule.gate`.
"""

import numpy as np
from hypothesis import assume, given, settings

from repro.analysis import get_context
from repro.gen import fig15_lis
from repro.lis import RtlSimulator, TraceSimulator, get_backend
from repro.sim import FastSimulator
from repro.stochastic import (
    bernoulli_stalls,
    compile_stochastic,
    periodic_stalls,
    run_monte_carlo,
)
from tests.strategies import lis_graphs, stochastic_specs

CLOCKS = 40
TRIALS = 3


def _fired_counts(trace, clocks):
    return {node: sum(flags[:clocks]) for node, flags in trace.fired.items()}


# ----------------------------------------------------------------------
# Zero-variance specs = one deterministic reference run
# ----------------------------------------------------------------------


@given(
    lis=lis_graphs(max_shells=4, max_channels=6, max_relays=2),
    spec=stochastic_specs(deterministic=True),
)
@settings(max_examples=40, deadline=None)
def test_zero_variance_trials_equal_reference_sim(lis, spec):
    schedule = compile_stochastic(lis, spec, CLOCKS, trials=TRIALS)
    assert schedule.is_deterministic()
    # Every trial drew the identical stall pattern...
    assert np.array_equal(
        schedule.stalled,
        np.broadcast_to(
            schedule.stalled[:, :1, :], schedule.stalled.shape
        ),
    )
    mc = run_monte_carlo(
        lis, spec, clocks=CLOCKS, trials=TRIALS, schedule=schedule
    )
    assert len(set(mc.counts.tolist())) == 1
    assert len(set(mc.occupancy.tolist())) == 1

    # ...and it equals one FastSimulator run under the same gate,
    # firing count and peak occupancy alike.
    sim = FastSimulator(lis, faults=schedule.gate(0))
    trace = sim.run(CLOCKS)
    assert int(mc.counts[0]) == sum(trace.fired[mc.node])
    occ = sim.max_queue_occupancy()
    assert int(mc.occupancy[0]) == (max(occ.values()) if occ else 0)


@given(lis=lis_graphs(max_shells=4, max_channels=6, max_relays=2))
@settings(max_examples=40, deadline=None)
def test_zero_stalls_reproduce_schedule_oracle(lis):
    """rate-0 Bernoulli is the deterministic system: counts, rates and
    peak occupancy must equal the analytic oracle exactly."""
    assume(get_backend("schedule").supports(lis))
    ctx = get_context(lis)
    spec = bernoulli_stalls(rate=0.0, scope="global")
    mc = run_monte_carlo(ctx, spec, clocks=CLOCKS, trials=2)
    oracle = ctx.schedule_oracle()
    expected = oracle.firings(mc.node, CLOCKS)
    assert [int(c) for c in mc.counts] == [expected, expected]
    assert all(
        rate == expected / CLOCKS for rate in mc.throughput.tolist()
    )
    occ = oracle.max_queue_occupancy()
    assert int(mc.occupancy[0]) == (max(occ.values()) if occ else 0)


def test_rate_one_stalls_everything():
    mc = run_monte_carlo(
        fig15_lis(),
        bernoulli_stalls(rate=1.0, scope="global"),
        clocks=20,
        trials=2,
        work=1,
    )
    assert mc.counts.tolist() == [0, 0]
    assert np.isinf(mc.completion).all()


# ----------------------------------------------------------------------
# The dilation identity, pinned directly
# ----------------------------------------------------------------------


def test_global_periodic_dilation_identity():
    """Global stalls freeze the marking, so the stochastic count is the
    oracle count on the active-clock subsequence: N(t) = F(A(t))."""
    ctx = get_context(fig15_lis())
    spec = periodic_stalls(burst=2, gap=5, scope="global")
    schedule = compile_stochastic(ctx.lis, spec, 60, trials=2)
    mc = run_monte_carlo(ctx, spec, clocks=60, trials=2, schedule=schedule)
    active = int((~schedule.stalled[:, 0, 0]).sum())
    oracle = ctx.schedule_oracle()
    assert [int(c) for c in mc.counts] == [
        oracle.firings(mc.node, active)
    ] * 2


# ----------------------------------------------------------------------
# Fixed seeds: bit-for-bit across backends and runs
# ----------------------------------------------------------------------


def test_fixed_seed_runs_are_bit_for_bit_reproducible():
    lis = fig15_lis()
    spec = bernoulli_stalls(rate=0.2, scope="all", seed=5)
    a = run_monte_carlo(lis, spec, clocks=50, trials=8)
    b = run_monte_carlo(lis, spec, clocks=50, trials=8)
    assert a.node == b.node and a.work == b.work
    for metric in ("counts", "throughput", "completion", "occupancy"):
        assert np.array_equal(getattr(a, metric), getattr(b, metric))


def test_cross_backend_firings_identical_under_shared_schedule():
    """trace, rtl and fast, driven by the same sampled trial, fire the
    same transitions on the same clocks -- so the batched Monte-Carlo
    counts are exactly what the reference simulators would measure."""
    lis = fig15_lis()
    spec = bernoulli_stalls(rate=0.2, scope="all", seed=5)
    clocks, trials = 48, 2
    schedule = compile_stochastic(lis, spec, clocks, trials=trials)
    mc = run_monte_carlo(
        lis, spec, clocks=clocks, trials=trials, schedule=schedule
    )
    for trial in range(trials):
        gate = schedule.gate(trial)
        fast = FastSimulator(lis, faults=gate).run(clocks)
        trace = TraceSimulator(lis, faults=gate).run(clocks)
        rtl = RtlSimulator(lis, faults=gate).run(clocks)
        assert fast.fired == trace.fired == rtl.fired
        assert int(mc.counts[trial]) == sum(fast.fired[mc.node])
