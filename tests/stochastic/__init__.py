"""Differential and degeneracy-pinning suite for repro.stochastic."""
