"""StochasticSpec semantics: validation, JSON round trips, sampling
determinism, and the mask/gate equivalence that makes cross-backend
runs bit-for-bit comparable."""

import json

import numpy as np
import pytest
from hypothesis import given, settings

from repro.gen import fig15_lis
from repro.sim.compile import compile_lis
from repro.stochastic import (
    KINDS,
    SCOPES,
    StochasticSpec,
    arrival_envelope,
    bernoulli_stalls,
    burst_stalls,
    compile_stochastic,
    periodic_stalls,
)
from tests.strategies import stochastic_specs


# ----------------------------------------------------------------------
# Validation and round trips
# ----------------------------------------------------------------------


def test_kind_and_scope_validated():
    with pytest.raises(ValueError, match="unknown stochastic kind"):
        StochasticSpec("poisson")
    with pytest.raises(ValueError, match="unknown scope"):
        StochasticSpec("bernoulli", scope="everywhere")
    with pytest.raises(ValueError, match="requires a non-empty node list"):
        StochasticSpec("bernoulli", scope="nodes")
    with pytest.raises(ValueError, match=r"rate must be within \[0, 1\]"):
        StochasticSpec("bernoulli", rate=1.5)
    with pytest.raises(ValueError, match="burst and gap"):
        StochasticSpec("burst", burst=0.5)
    with pytest.raises(ValueError, match="phase"):
        StochasticSpec("periodic", phase=-1)
    assert set(KINDS) == {"bernoulli", "burst", "periodic"}
    assert set(SCOPES) == {"all", "global", "sources", "sinks", "nodes"}


@given(spec=stochastic_specs())
@settings(max_examples=50, deadline=None)
def test_dict_round_trip(spec):
    again = StochasticSpec.from_dict(
        json.loads(json.dumps(spec.as_dict()))
    )
    assert again == spec
    assert again._digest() == spec._digest()


def test_stall_fractions():
    assert bernoulli_stalls(rate=0.3).stall_fraction == pytest.approx(0.3)
    assert burst_stalls(burst=4, gap=12).stall_fraction == pytest.approx(0.25)
    assert periodic_stalls(burst=1, gap=3).stall_fraction == pytest.approx(
        0.25
    )


def test_is_deterministic():
    assert periodic_stalls().is_deterministic()
    assert bernoulli_stalls(rate=0.0).is_deterministic()
    assert bernoulli_stalls(rate=1.0).is_deterministic()
    assert not bernoulli_stalls(rate=0.5).is_deterministic()
    assert not burst_stalls().is_deterministic()


def test_arrival_envelope():
    # Unclamped: the long-run stall fraction is exactly 1 - rho.
    spec = arrival_envelope(0.25, sigma=4.0)
    assert spec.kind == "burst" and spec.scope == "sources"
    assert spec.stall_fraction == pytest.approx(0.75)
    # rho = 1 degenerates to the zero-stall process.
    full = arrival_envelope(1.0)
    assert full.is_deterministic() and full.stall_fraction == 0.0
    with pytest.raises(ValueError, match="rho"):
        arrival_envelope(0.0)
    with pytest.raises(ValueError, match="sigma"):
        arrival_envelope(0.5, sigma=0.0)


# ----------------------------------------------------------------------
# Sampling determinism
# ----------------------------------------------------------------------


def test_compile_is_deterministic_and_seeded():
    lis = fig15_lis()
    a = compile_stochastic(lis, bernoulli_stalls(0.2, seed=1), 40, trials=4)
    b = compile_stochastic(lis, bernoulli_stalls(0.2, seed=1), 40, trials=4)
    assert np.array_equal(a.stalled, b.stalled)
    other = compile_stochastic(
        lis, bernoulli_stalls(0.2, seed=2), 40, trials=4
    )
    assert not np.array_equal(a.stalled, other.stalled)
    assert a.stalled.shape == (40, 4, len(a.nodes))
    assert 0.0 < a.stall_fraction < 1.0
    assert a.total_stalls == int(a.stalled.sum())


def test_global_scope_shares_one_process():
    lis = fig15_lis()
    schedule = compile_stochastic(
        lis, bernoulli_stalls(0.3, scope="global"), 50, trials=3
    )
    # Every node column carries the same shared draw.
    first = schedule.stalled[:, :, :1]
    assert np.array_equal(
        schedule.stalled, np.broadcast_to(first, schedule.stalled.shape)
    )


def test_compile_argument_validation():
    lis = fig15_lis()
    with pytest.raises(ValueError, match="clocks"):
        compile_stochastic(lis, bernoulli_stalls(), 0)
    with pytest.raises(ValueError, match="trials"):
        compile_stochastic(lis, bernoulli_stalls(), 10, trials=0)


def test_mask_and_gate_views_agree():
    """mask() (fast backend) and gate() (reference backends) are two
    views of the same sampled array -- slot for slot."""
    lis = fig15_lis()
    schedule = compile_stochastic(
        lis, burst_stalls(burst=2, gap=3, seed=7), 24, trials=2
    )
    compiled = compile_lis(lis)
    mask = schedule.mask(compiled)
    assert mask.shape == (24, 2, compiled.n_nodes)
    for trial in range(2):
        gate = schedule.gate(trial)
        for t in range(24):
            for i, node in enumerate(compiled.node_names):
                assert mask[t, trial, i] == gate(node, t)
        # Out-of-horizon and unknown nodes never stall.
        assert not gate(compiled.node_names[0], 24)
        assert not gate("no-such-node", 0)
    with pytest.raises(IndexError):
        schedule.gate(2)


def test_mask_tiles_trials_innermost():
    """With A assignments the batch layout is b = a * trials + trial --
    the common-random-numbers contract of run_monte_carlo_batch."""
    lis = fig15_lis()
    schedule = compile_stochastic(lis, bernoulli_stalls(0.4, seed=3), 16, 3)
    compiled = compile_lis(lis)
    one = schedule.mask(compiled)
    tiled = schedule.mask(compiled, assignments=2)
    assert tiled.shape == (16, 6, compiled.n_nodes)
    assert np.array_equal(tiled[:, :3], one)
    assert np.array_equal(tiled[:, 3:], one)


def test_as_dicts_round_trip():
    specs = (bernoulli_stalls(0.1), periodic_stalls(2, 2))
    schedule = compile_stochastic(fig15_lis(), specs, 10)
    assert [StochasticSpec.from_dict(d) for d in schedule.as_dicts()] == list(
        specs
    )
