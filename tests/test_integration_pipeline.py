"""End-to-end integration tests: the full workflow, one scenario each.

These tests intentionally chain many subsystems -- generation,
analysis, all four solvers, both simulators, scheduling, serialization
and the CLI -- the way a real user session would, catching interface
drift that unit tests cannot see.
"""

import json
from fractions import Fraction

from repro.core import (
    actual_mst,
    analyze,
    bottleneck_channels,
    ideal_mst,
    schedule_lis,
    size_queues,
)
from repro.core.serialize import lis_from_json, lis_to_json
from repro.gen import GeneratorConfig, generate_lis
from repro.lis import crossvalidate
from repro.soc import run_exhaustive_insertion


def test_full_pipeline_on_generated_system():
    # 1. Generate a degraded system.
    lis = generate_lis(
        GeneratorConfig(v=30, s=4, c=2, rs=6, rp=True, policy="scc", seed=2)
    )
    ideal = ideal_mst(lis).mst
    practical = actual_mst(lis).mst
    assert practical < ideal == 1

    # 2. Full analysis report agrees with the raw calls.
    report = analyze(lis, method="heuristic")
    assert report.ideal == ideal and report.practical == practical
    assert report.bottlenecks == bottleneck_channels(lis)
    assert report.fix is not None and report.fix.restores_target

    # 3. All four solvers restore the target; exact is the cheapest.
    solutions = {
        method: size_queues(lis, method=method, timeout=60)
        for method in ("heuristic", "greedy", "exact", "milp")
    }
    for solution in solutions.values():
        assert solution.restores_target
    exact_cost = solutions["exact"].cost
    assert solutions["milp"].cost == exact_cost
    assert solutions["heuristic"].cost >= exact_cost
    assert solutions["greedy"].cost >= exact_cost

    # 4. Both simulators confirm the repaired throughput.
    fix = solutions["exact"].extra_tokens
    sim_report = crossvalidate(lis, clocks=300, warmup=100, extra_tokens=fix)
    assert sim_report["agreed"]
    assert sim_report["analytic"] == 1

    # 5. The repaired system has a periodic schedule at full rate.
    repaired = lis.copy()
    for cid, tokens in fix.items():
        repaired.set_queue(cid, repaired.queue(cid) + tokens)
    schedule = schedule_lis(repaired, practical=True)
    probe = repaired.shells()[0]
    assert schedule.rate(probe) == 1

    # 6. Serialization round-trips the repaired system faithfully.
    clone = lis_from_json(lis_to_json(repaired))
    assert actual_mst(clone).mst == 1


def test_full_pipeline_through_cli(tmp_path, capsys):
    from repro.cli import main

    system = tmp_path / "system.json"
    assert (
        main(
            [
                "generate",
                "-o",
                str(system),
                "--vertices",
                "20",
                "--sccs",
                "3",
                "--cycles",
                "1",
                "--relays",
                "4",
                "--seed",
                "2",
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["analyze", str(system), "--full"]) == 0
    full = capsys.readouterr().out
    assert "Throughput" in full and "Channels" in full
    assert main(["size", str(system), "--method", "exact"]) == 0
    sized = capsys.readouterr().out
    assert "achieved MST: 1" in sized
    assert main(["simulate", str(system), "--clocks", "250"]) == 0
    sim_out = capsys.readouterr().out
    assert "measured rate" in sim_out


def test_cofdm_csv_export():
    report = run_exhaustive_insertion(limit=8, run_exact=False)
    csv_text = report.to_csv()
    lines = csv_text.strip().splitlines()
    assert lines[0].startswith("channel_a,channel_b,ideal,actual")
    assert len(lines) == 1 + 8
    # Degraded rows carry heuristic numbers; clean rows leave them empty.
    for line, placement in zip(lines[1:], report.placements):
        cells = line.split(",")
        assert abs(float(cells[2]) - float(placement.ideal)) < 1e-5
        if placement.degraded:
            assert cells[4] != ""
        else:
            assert cells[4] == ""
