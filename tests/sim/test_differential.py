"""Differential cross-validation: the vectorized kernel is cycle-exact
against both reference simulators, and measured throughput converges
to the analytic MST.

The two `@given` properties below each run 100 examples under the
default ``dev`` Hypothesis profile, so one full run checks well over
200 generated systems (plus every paper example) for exact agreement
of firing patterns, data values, throughput, and queue occupancy.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import actual_mst, size_queues
from repro.gen import (
    GeneratorConfig,
    fig1_lis,
    fig2_right_lis,
    fig10_limiter_lis,
    fig15_lis,
    generate_lis,
    ring_lis,
    tree_lis,
    uplink_downlink_lis,
)
from repro.lis import crossvalidate, measured_throughput
from repro.sim import differential_check
from tests.strategies import arithmetic_behaviors, lis_systems

PAPER_EXAMPLES = {
    "fig1": fig1_lis,
    "fig2_right": fig2_right_lis,
    "fig10": fig10_limiter_lis,
    "fig15": fig15_lis,
    "uplink_downlink": uplink_downlink_lis,
    "ring5": lambda: ring_lis(5, relays=3),
    "tree": lambda: tree_lis(depth=2, relays_per_channel=2),
}


@pytest.mark.parametrize("name", sorted(PAPER_EXAMPLES))
def test_paper_examples_cycle_exact(name):
    lis = PAPER_EXAMPLES[name]()
    params = {
        shell: (3 + i, i, i) for i, shell in enumerate(lis.shells())
    }
    report = differential_check(
        lis, clocks=120, behaviors=lambda: arithmetic_behaviors(lis, params)
    )
    assert report.agreed, (name, report.failures)
    assert len(set(report.throughput.values())) == 1


def test_fig15_with_queue_sizing_fix_cycle_exact():
    lis = fig15_lis()
    fix = size_queues(lis, method="exact").extra_tokens
    report = differential_check(lis, clocks=200, extra_tokens=fix)
    assert report.agreed, report.failures
    # Whole-run rate (no warmup skipped): O(1/clocks) from the MST.
    assert abs(report.throughput["fast"] - Fraction(5, 6)) < Fraction(1, 40)


@given(system=lis_systems(max_shells=5, max_channels=8))
@settings(deadline=None)
def test_generated_systems_cycle_exact(system):
    """Traces, values, throughput, occupancy: all three backends equal."""
    lis, make_behaviors = system
    report = differential_check(lis, clocks=50, behaviors=make_behaviors)
    assert report.agreed, report.failures


@given(
    system=lis_systems(
        max_shells=4, max_channels=6, max_relays=1, max_queue=2, max_latency=3
    )
)
@settings(deadline=None)
def test_pipelined_cores_cycle_exact(system):
    """Multi-cycle shells expand identically in all three backends."""
    lis, make_behaviors = system
    report = differential_check(lis, clocks=50, behaviors=make_behaviors)
    assert report.agreed, report.failures


@given(
    seed=st.integers(min_value=0, max_value=9999),
    v=st.integers(min_value=12, max_value=24),
)
@settings(max_examples=20, deadline=None)
def test_measured_throughput_converges_to_mst(seed, v):
    """On generator-scale systems the fast backend's long-run rate
    lands within O(1/clocks) of the analytic MST -- and matches the
    trace simulator's measurement exactly."""
    lis = generate_lis(
        GeneratorConfig(
            v=v, s=3, c=2, rs=4, rp=True, policy="scc", seed=seed
        )
    )
    probe = lis.shells()[0]
    fast = measured_throughput(
        lis, probe, clocks=400, warmup=100, backend="fast"
    )
    trace = measured_throughput(
        lis, probe, clocks=400, warmup=100, backend="trace"
    )
    assert fast == trace
    assert abs(fast - actual_mst(lis).mst) <= Fraction(1, 20)


def test_crossvalidate_includes_fast_backend():
    report = crossvalidate(fig15_lis(), clocks=300, warmup=100)
    assert report["agreed"]
    assert report["fast"] == report["trace"]
    assert report["analytic"] == Fraction(3, 4)
