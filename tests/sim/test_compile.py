"""The LIS -> flat-array compiler behind the vectorized kernel."""

import numpy as np
import pytest

from repro.core import LisGraph
from repro.core.lis_graph import LisError
from repro.gen import fig1_lis, fig15_lis
from repro.sim import compile_lis


def test_columns_cover_every_place():
    lis = fig15_lis()
    mg = lis.doubled_marked_graph()
    compiled = compile_lis(lis)
    assert compiled.n_places == len(mg.places)
    assert int(compiled.tokens0.sum()) == mg.total_tokens()
    assert compiled.n_nodes == len(mg.transitions)
    assert set(compiled.node_names) == set(mg.transitions)


def test_columns_grouped_by_consumer():
    compiled = compile_lis(fig15_lis())
    starts = compiled.group_starts
    assert starts[0] == 0
    assert np.all(np.diff(starts) >= 1)
    # Every column's consumer matches its reduceat group.
    bounds = list(starts) + [compiled.n_places]
    for g, node in enumerate(compiled.group_nodes):
        for col in range(bounds[g], bounds[g + 1]):
            assert compiled.dst[col] == node


def test_sizable_columns_match_lis_backedges():
    lis = fig15_lis()
    compiled = compile_lis(lis)
    assert set(compiled.sizable_col) == set(lis.channel_ids())
    # Each sizable column starts with the channel's queue capacity.
    for cid, col in compiled.sizable_col.items():
        assert compiled.tokens0[col] == lis.queue(cid)


def test_occupancy_columns_are_the_shell_queues():
    lis = fig15_lis()
    compiled = compile_lis(lis)
    assert sorted(compiled.occ_channels) == lis.channel_ids()
    # Shell-side forward places start with one token (the latched datum).
    assert np.all(compiled.tokens0[compiled.occ_cols] == 1)


def test_initial_tokens_batch_and_validation():
    lis = fig1_lis()
    compiled = compile_lis(lis)
    tokens = compiled.initial_tokens([{}, {1: 2}])
    assert tokens.shape == (2, compiled.n_places)
    col = compiled.sizable_col[1]
    assert tokens[1, col] - tokens[0, col] == 2
    with pytest.raises(LisError):
        compiled.initial_tokens([{99: 1}])
    with pytest.raises(LisError):
        compiled.initial_tokens([{1: -1}])
    with pytest.raises(ValueError):
        compiled.initial_tokens([])


def test_single_shell_no_channels_compiles():
    lis = LisGraph()
    lis.add_shell("only")
    compiled = compile_lis(lis)
    assert compiled.n_places == 0
    assert compiled.group_starts.size == 0


def test_pipelined_core_expands_stages():
    lis = LisGraph()
    lis.add_shell("A", latency=3)
    lis.add_channel("A", "A")
    compiled = compile_lis(lis)
    assert compiled.n_nodes == 3  # core + two stages
    assert sum(compiled.is_shell) == 1
    # The self-channel is the only occupancy column.
    assert compiled.occ_channels == (0,)
