"""The vectorized kernel front-ends: FastSimulator and BatchSimulator."""

from fractions import Fraction

import pytest

from repro.core import actual_mst, relay_name
from repro.gen import fig1_lis, fig15_lis, uplink_downlink_lis
from repro.lis import TAU, ShellBehavior, TraceSimulator, adder
from repro.sim import BatchSimulator, FastSimulator, simulate_fast


def table1_behaviors():
    state = {"k": 0}

    def a_fn(_inputs):
        state["k"] += 1
        return {0: 2 * state["k"], 1: 2 * state["k"] + 1}

    return {
        "A": ShellBehavior(initial={0: 0, 1: 1}, fn=a_fn),
        "B": adder(initial=0),
    }


def test_fast_reproduces_table1():
    lis = fig1_lis()
    lis.set_queue(1, 2)
    trace = simulate_fast(lis, 4, table1_behaviors())
    assert trace.row("A") == [0, 2, 4, 6]
    assert trace.row(relay_name(0, 0)) == [TAU, 0, 2, 4]
    assert trace.row("B") == [0, TAU, 1, 5]


def test_incremental_runs_accumulate():
    sim = FastSimulator(fig1_lis(), table1_behaviors())
    sim.run(3)
    trace = sim.run(3)
    assert trace.clocks == sim.clocks == 6
    reference = TraceSimulator(fig1_lis(), table1_behaviors()).run(6)
    assert trace.outputs == reference.outputs


def test_throughput_and_occupancy_match_trace_sim():
    lis = uplink_downlink_lis()
    fast = FastSimulator(lis)
    fast.run(300)
    ref = TraceSimulator(lis)
    ref.run(300)
    for shell in lis.shells():
        assert fast.throughput(shell, skip=50) == ref.trace.throughput(
            shell, skip=50
        )
    assert fast.max_queue_occupancy() == ref.max_queue_occupancy()


def test_extra_tokens_restore_throughput():
    lis = fig15_lis()
    fast = FastSimulator(lis, extra_tokens={5: 1, 6: 1})
    fast.run(420)
    assert abs(fast.throughput("A", skip=20) - Fraction(5, 6)) < Fraction(
        1, 40
    )


def test_batch_evaluates_assignments_independently():
    res = BatchSimulator(fig1_lis(), [{}, {1: 1}]).run(400, warmup=100)
    assert res.width == 2
    assert res.throughput(0, "A") == Fraction(2, 3)
    assert res.throughput(1, "A") == Fraction(1)
    # Each configuration's rates equal a dedicated reference run.
    for b, extra in enumerate(res.assignments):
        ref = TraceSimulator(fig1_lis(), extra_tokens=extra)
        ref.run(400)
        for shell in ("A", "B"):
            assert res.throughput(b, shell) == ref.trace.throughput(
                shell, skip=100
            )
        assert res.max_queue_occupancy(b) == ref.max_queue_occupancy()


def test_batch_throughput_dict_covers_all_nodes():
    res = BatchSimulator(fig1_lis()).run(60)
    rates = res.throughput(0)
    assert set(rates) == set(res.compiled.node_names)
    assert rates["A"] == res.throughput(0, "A")


def test_batch_record_history_and_replay():
    res = BatchSimulator(fig1_lis(), [{}, {1: 1}]).run(40, record=True)
    ref = TraceSimulator(fig1_lis(), table1_behaviors()).run(40)
    assert res.fired(0) == ref.fired
    assert res.to_trace(0, table1_behaviors()).outputs == ref.outputs
    # The repaired configuration fires every clock after startup.
    assert all(res.fired(1)["A"][3:])


def test_history_required_for_replay():
    res = BatchSimulator(fig1_lis()).run(10)
    with pytest.raises(ValueError):
        res.fired(0)
    with pytest.raises(ValueError):
        res.to_trace(0)


def test_run_argument_validation():
    sim = BatchSimulator(fig1_lis())
    with pytest.raises(ValueError):
        sim.run(0)
    with pytest.raises(ValueError):
        sim.run(10, warmup=10)
    with pytest.raises(ValueError):
        BatchSimulator(fig1_lis(), [])
    with pytest.raises(ValueError):
        FastSimulator(fig1_lis()).run(0)


def test_fast_rate_matches_static_mst():
    lis = fig15_lis()
    rate = FastSimulator(lis).run(420).throughput("A", skip=20)
    assert abs(rate - actual_mst(lis).mst) < Fraction(1, 40)
