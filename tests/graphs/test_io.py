"""Tests for graph serialization."""

from hypothesis import given

from repro.graphs import Digraph, from_edgelist, to_dot, to_edgelist
from tests.strategies import digraphs


def test_edgelist_roundtrip_simple():
    g = Digraph()
    g.add_node("a", role="shell")
    g.add_edge("a", "b", tokens=1, kind="fwd")
    g.add_edge("b", "a", tokens=2, kind="back")
    h = from_edgelist(to_edgelist(g))
    assert set(h.nodes) == {"a", "b"}
    assert h.node_data("a") == {"role": "shell"}
    assert h.number_of_edges() == 2
    kinds = sorted(e.data["kind"] for e in h.edges)
    assert kinds == ["back", "fwd"]


def test_edgelist_empty_graph():
    assert from_edgelist(to_edgelist(Digraph())).number_of_nodes() == 0


def test_edgelist_preserves_parallel_edges():
    g = Digraph()
    g.add_edge("a", "b", tokens=0)
    g.add_edge("a", "b", tokens=1)
    h = from_edgelist(to_edgelist(g))
    assert len(h.edges_between("a", "b")) == 2


@given(digraphs(max_nodes=6, max_edges=12))
def test_edgelist_roundtrip_preserves_structure(g):
    h = from_edgelist(to_edgelist(g))
    assert h.number_of_nodes() == g.number_of_nodes()
    assert h.number_of_edges() == g.number_of_edges()
    ours = sorted((str(e.src), str(e.dst)) for e in g.edges)
    theirs = sorted((str(e.src), str(e.dst)) for e in h.edges)
    assert ours == theirs


def test_dot_output_marks_backedges_dashed():
    g = Digraph()
    g.add_edge("a", "b", tokens=1)
    g.add_edge("b", "a", tokens=2, kind="back")
    dot = to_dot(g)
    assert dot.startswith("digraph")
    assert "style=dashed" in dot
    assert '"a" -> "b"' in dot
    assert 'label="2"' in dot


def test_dot_custom_label_and_shape():
    g = Digraph()
    g.add_node("rs1")
    g.add_edge("rs1", "rs1")
    dot = to_dot(
        g,
        edge_label=lambda e: "loop",
        node_shape=lambda n: "box",
    )
    assert "shape=box" in dot
    assert 'label="loop"' in dot
