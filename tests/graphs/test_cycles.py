"""Tests for elementary cycle enumeration on multigraphs."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.graphs import (
    CycleExplosionError,
    Digraph,
    count_edge_cycles,
    cycle_edges_to_nodes,
    elementary_edge_cycles,
    elementary_node_cycles,
)
from tests.strategies import digraphs


def to_nx(g: Digraph) -> nx.MultiDiGraph:
    h = nx.MultiDiGraph()
    h.add_nodes_from(g.nodes)
    h.add_edges_from((e.src, e.dst) for e in g.edges)
    return h


def canonical(nodes):
    """Rotation-invariant canonical form of a node cycle."""
    nodes = list(nodes)
    k = min(range(len(nodes)), key=lambda i: repr(nodes[i]))
    return tuple(nodes[k:] + nodes[:k])


def test_triangle_has_one_cycle():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    cycles = list(elementary_node_cycles(g))
    assert len(cycles) == 1
    assert canonical(cycles[0]) == ("a", "b", "c")


def test_two_node_cycle_with_parallel_edges_expands():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    g.add_edge("b", "a")
    node_cycles = list(elementary_node_cycles(g))
    assert len(node_cycles) == 1
    edge_cycles = list(elementary_edge_cycles(g))
    assert len(edge_cycles) == 4  # 2 x 2 parallel choices
    assert count_edge_cycles(g) == 4
    for cycle in edge_cycles:
        assert len(cycle) == 2
        assert cycle[0].dst == cycle[1].src
        assert cycle[1].dst == cycle[0].src


def test_self_loops_are_length_one_cycles():
    g = Digraph()
    g.add_edge("a", "a")
    g.add_edge("a", "a")
    g.add_edge("a", "b")
    assert list(elementary_node_cycles(g)) == [["a"]]
    edge_cycles = list(elementary_edge_cycles(g))
    assert len(edge_cycles) == 2  # one per parallel self-loop edge
    assert count_edge_cycles(g) == 2


def test_dag_has_no_cycles():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("a", "c")
    assert list(elementary_edge_cycles(g)) == []
    assert count_edge_cycles(g) == 0


def test_overlapping_cycles():
    # a->b->a and b->c->b share node b.
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    g.add_edge("b", "c")
    g.add_edge("c", "b")
    found = {canonical(c) for c in elementary_node_cycles(g)}
    assert found == {canonical(["a", "b"]), canonical(["b", "c"])}


def test_edge_cycles_are_closed_walks():
    g = Digraph()
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(2, 0)
    g.add_edge(1, 0)
    for cycle in elementary_edge_cycles(g):
        for i, edge in enumerate(cycle):
            assert edge.dst == cycle[(i + 1) % len(cycle)].src


def test_max_cycles_budget():
    g = Digraph()
    for i in range(4):
        for j in range(4):
            if i != j:
                g.add_edge(i, j)
    with pytest.raises(CycleExplosionError):
        list(elementary_edge_cycles(g, max_cycles=3))


def test_cycle_edges_to_nodes():
    g = Digraph()
    g.add_edge("x", "y")
    g.add_edge("y", "x")
    (cycle,) = list(elementary_edge_cycles(g))
    nodes = cycle_edges_to_nodes(cycle)
    assert set(nodes) == {"x", "y"}
    assert len(nodes) == 2


@given(digraphs(max_nodes=6, max_edges=12))
@settings(max_examples=60)
def test_node_cycles_match_networkx(g):
    theirs = set()
    for cyc in nx.simple_cycles(nx.DiGraph(to_nx(g))):
        theirs.add(canonical(cyc))
    ours = {canonical(c) for c in elementary_node_cycles(g)}
    assert ours == theirs


@given(digraphs(max_nodes=5, max_edges=10))
@settings(max_examples=60)
def test_edge_cycle_count_matches_enumeration(g):
    cycles = list(elementary_edge_cycles(g))
    assert len(cycles) == count_edge_cycles(g)
    # Every edge cycle is node-simple.
    for cycle in cycles:
        nodes = cycle_edges_to_nodes(cycle)
        assert len(nodes) == len(set(nodes))


@given(digraphs(max_nodes=5, max_edges=10))
@settings(max_examples=40)
def test_edge_cycles_match_networkx_multigraph(g):
    theirs = set()
    h = to_nx(g)
    for cyc in nx.simple_cycles(h):
        # networkx yields node lists for multigraphs too; count expansions.
        theirs.add(canonical(cyc))
    ours = {canonical(cycle_edges_to_nodes(c)) for c in elementary_edge_cycles(g)}
    assert ours == theirs
