"""Tests for traversal primitives, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given

from repro.graphs import (
    Digraph,
    GraphError,
    bfs_order,
    co_reachable_to,
    dfs_preorder,
    has_path,
    is_acyclic,
    reachable_from,
    topological_sort,
)
from tests.strategies import digraphs


def to_nx(g: Digraph) -> nx.MultiDiGraph:
    h = nx.MultiDiGraph()
    h.add_nodes_from(g.nodes)
    h.add_edges_from((e.src, e.dst) for e in g.edges)
    return h


def chain(n):
    g = Digraph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def test_dfs_preorder_chain():
    assert list(dfs_preorder(chain(4), 0)) == [0, 1, 2, 3]


def test_dfs_preorder_explores_first_successor_first():
    g = Digraph()
    g.add_edge("r", "a")
    g.add_edge("r", "b")
    g.add_edge("a", "c")
    assert list(dfs_preorder(g, "r")) == ["r", "a", "c", "b"]


def test_dfs_missing_start_raises():
    with pytest.raises(GraphError):
        list(dfs_preorder(Digraph(), "x"))


def test_bfs_order_levels():
    g = Digraph()
    g.add_edge("r", "a")
    g.add_edge("r", "b")
    g.add_edge("a", "c")
    g.add_edge("b", "c")
    order = list(bfs_order(g, "r"))
    assert order[0] == "r"
    assert set(order[1:3]) == {"a", "b"}
    assert order[3] == "c"


def test_reachable_and_coreachable():
    g = chain(4)
    assert reachable_from(g, 1) == {1, 2, 3}
    assert co_reachable_to(g, 1) == {0, 1}


def test_has_path():
    g = chain(3)
    assert has_path(g, 0, 2)
    assert not has_path(g, 2, 0)
    assert has_path(g, 1, 1)  # trivially
    assert not has_path(g, 0, "missing")


def test_topological_sort_respects_edges():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("a", "c")
    g.add_edge("b", "d")
    g.add_edge("c", "d")
    order = topological_sort(g)
    pos = {n: i for i, n in enumerate(order)}
    for e in g.edges:
        assert pos[e.src] < pos[e.dst]


def test_topological_sort_cycle_raises():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    with pytest.raises(GraphError):
        topological_sort(g)


def test_is_acyclic_counts_self_loop_as_cycle():
    g = Digraph()
    g.add_edge("a", "a")
    assert not is_acyclic(g)


@given(digraphs())
def test_is_acyclic_matches_networkx(g):
    assert is_acyclic(g) == nx.is_directed_acyclic_graph(to_nx(g))


@given(digraphs())
def test_reachability_matches_networkx(g):
    h = to_nx(g)
    for start in g.nodes:
        expected = set(nx.descendants(h, start)) | {start}
        assert reachable_from(g, start) == expected
        break  # one start per example keeps the test fast
