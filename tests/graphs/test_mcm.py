"""Tests for minimum-cycle-mean algorithms (Karp, Howard, witness cycles)."""

from fractions import Fraction

from hypothesis import given, settings

from repro.graphs import (
    Digraph,
    critical_cycle,
    elementary_edge_cycles,
    howard_minimum_cycle_mean,
    karp_minimum_cycle_mean,
    minimum_cycle_mean,
)
from tests.strategies import weighted_digraphs

W = lambda e: e.data["w"]  # noqa: E731


def brute_force_mcm(g):
    best = None
    for cycle in elementary_edge_cycles(g):
        mean = Fraction(sum(W(e) for e in cycle), len(cycle))
        if best is None or mean < best:
            best = mean
    return best


def ring(weights):
    g = Digraph()
    n = len(weights)
    for i, w in enumerate(weights):
        g.add_edge(i, (i + 1) % n, w=w)
    return g


def test_single_ring_mean():
    g = ring([1, 0, 1])
    assert karp_minimum_cycle_mean(g, W) == Fraction(2, 3)
    assert howard_minimum_cycle_mean(g, W) == Fraction(2, 3)


def test_acyclic_returns_none():
    g = Digraph()
    g.add_edge("a", "b", w=1)
    g.add_edge("b", "c", w=1)
    assert karp_minimum_cycle_mean(g, W) is None
    assert howard_minimum_cycle_mean(g, W) is None
    assert minimum_cycle_mean(g, W) is None


def test_self_loop_mean():
    g = Digraph()
    g.add_edge("a", "a", w=3)
    assert karp_minimum_cycle_mean(g, W) == Fraction(3)
    assert howard_minimum_cycle_mean(g, W) == Fraction(3)


def test_parallel_edges_pick_cheaper():
    g = Digraph()
    g.add_edge("a", "b", w=5)
    g.add_edge("a", "b", w=1)
    g.add_edge("b", "a", w=1)
    assert karp_minimum_cycle_mean(g, W) == Fraction(1)
    assert howard_minimum_cycle_mean(g, W) == Fraction(1)


def test_min_over_multiple_sccs():
    g = Digraph()
    # SCC 1: mean 1; SCC 2: mean 1/2; connected by a bridge edge.
    g.add_edge("a", "b", w=1)
    g.add_edge("b", "a", w=1)
    g.add_edge("b", "c", w=0)
    g.add_edge("c", "d", w=0)
    g.add_edge("d", "c", w=1)
    assert karp_minimum_cycle_mean(g, W) == Fraction(1, 2)


def test_critical_cycle_attains_mean():
    g = Digraph()
    g.add_edge(0, 1, w=1)
    g.add_edge(1, 2, w=0)
    g.add_edge(2, 0, w=1)  # ring mean 2/3
    g.add_edge(0, 3, w=0)
    g.add_edge(3, 0, w=0)  # 2-cycle mean 0 <- critical
    result = minimum_cycle_mean(g, W)
    assert result.mean == Fraction(0)
    assert sum(W(e) for e in result.cycle) == 0
    assert len(result.cycle) == 2
    # The witness is a closed walk.
    for i, edge in enumerate(result.cycle):
        assert edge.dst == result.cycle[(i + 1) % len(result.cycle)].src


def test_critical_cycle_on_known_mean():
    g = ring([1, 0, 1])
    cycle = critical_cycle(g, W, Fraction(2, 3))
    assert len(cycle) == 3
    assert sum(W(e) for e in cycle) == 2


def test_cycle_mean_result_tokens_property():
    g = ring([1, 0, 1])
    result = minimum_cycle_mean(g, W)
    assert result.tokens == 2


@given(weighted_digraphs())
@settings(max_examples=80)
def test_karp_matches_brute_force(g):
    assert karp_minimum_cycle_mean(g, W) == brute_force_mcm(g)


@given(weighted_digraphs())
@settings(max_examples=80)
def test_howard_matches_karp(g):
    assert howard_minimum_cycle_mean(g, W) == karp_minimum_cycle_mean(g, W)


@given(weighted_digraphs())
@settings(max_examples=60)
def test_witness_cycle_is_valid_and_attains_minimum(g):
    result = minimum_cycle_mean(g, W)
    if result is None:
        assert brute_force_mcm(g) is None
        return
    cycle = result.cycle
    assert Fraction(sum(W(e) for e in cycle), len(cycle)) == result.mean
    nodes = [e.src for e in cycle]
    assert len(nodes) == len(set(nodes))  # elementary
    for i, edge in enumerate(cycle):
        assert edge.dst == cycle[(i + 1) % len(cycle)].src
