"""Unit tests for the edge-keyed directed multigraph."""

import pytest

from repro.graphs import Digraph, GraphError


def test_add_node_idempotent_merges_attrs():
    g = Digraph()
    g.add_node("a", color="red")
    g.add_node("a", size=3)
    assert g.node_data("a") == {"color": "red", "size": 3}
    assert g.number_of_nodes() == 1


def test_add_edge_creates_endpoints():
    g = Digraph()
    key = g.add_edge("u", "v", tokens=1)
    assert g.has_node("u") and g.has_node("v")
    edge = g.edge(key)
    assert edge.src == "u" and edge.dst == "v"
    assert edge.data["tokens"] == 1


def test_parallel_edges_have_distinct_keys():
    g = Digraph()
    k1 = g.add_edge("u", "v")
    k2 = g.add_edge("u", "v")
    assert k1 != k2
    assert len(g.edges_between("u", "v")) == 2
    assert g.out_degree("u") == 2
    assert g.successors("u") == ["v"]  # collapsed


def test_self_loop():
    g = Digraph()
    g.add_edge("u", "u")
    assert g.self_loops()[0].src == "u"
    assert g.in_degree("u") == 1 and g.out_degree("u") == 1


def test_remove_edge():
    g = Digraph()
    key = g.add_edge("u", "v")
    g.remove_edge(key)
    assert g.number_of_edges() == 0
    assert not g.has_edge("u", "v")
    with pytest.raises(GraphError):
        g.remove_edge(key)


def test_edge_keys_not_reused_after_removal():
    g = Digraph()
    k1 = g.add_edge("u", "v")
    g.remove_edge(k1)
    k2 = g.add_edge("u", "v")
    assert k2 != k1


def test_remove_node_removes_incident_edges():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    g.remove_node("b")
    assert g.number_of_edges() == 1
    assert g.has_edge("c", "a")


def test_remove_missing_node_raises():
    g = Digraph()
    with pytest.raises(GraphError):
        g.remove_node("ghost")


def test_in_out_edges_and_degrees():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    assert [e.dst for e in g.out_edges("a")] == ["b", "b"]
    assert [e.src for e in g.in_edges("a")] == ["b"]
    assert g.in_degree("b") == 2
    assert g.predecessors("b") == ["a"]


def test_copy_is_independent():
    g = Digraph()
    key = g.add_edge("a", "b", tokens=1)
    h = g.copy()
    h.edge(key).data["tokens"] = 99
    h.add_edge("b", "a")
    assert g.edge(key).data["tokens"] == 1
    assert g.number_of_edges() == 1
    assert h.number_of_edges() == 2


def test_copy_preserves_edge_keys():
    g = Digraph()
    keys = [g.add_edge("a", "b"), g.add_edge("b", "c")]
    h = g.copy()
    for key in keys:
        assert h.edge(key).src == g.edge(key).src


def test_subgraph_induced():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("a", "c")
    sub = g.subgraph(["a", "b"])
    assert sub.number_of_nodes() == 2
    assert sub.number_of_edges() == 1
    assert sub.has_edge("a", "b")


def test_subgraph_missing_node_raises():
    g = Digraph()
    g.add_node("a")
    with pytest.raises(GraphError):
        g.subgraph(["a", "zzz"])


def test_edge_subgraph():
    g = Digraph()
    k1 = g.add_edge("a", "b")
    g.add_edge("b", "c")
    sub = g.edge_subgraph([k1])
    assert sub.number_of_edges() == 1
    assert set(sub.nodes) == {"a", "b"}


def test_reversed_flips_all_edges():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    r = g.reversed()
    assert r.has_edge("b", "a")
    assert r.has_edge("c", "b")
    assert not r.has_edge("a", "b")


def test_sources_and_sinks():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    assert g.sources() == ["a"]
    assert g.sinks() == ["c"]


def test_contains_len_iter():
    g = Digraph()
    g.add_node(1)
    g.add_node(2)
    assert 1 in g and 3 not in g
    assert len(g) == 2
    assert sorted(g) == [1, 2]


def test_node_data_missing_raises():
    g = Digraph()
    with pytest.raises(GraphError):
        g.node_data("missing")


def test_edges_between_missing_source_is_empty():
    g = Digraph()
    assert g.edges_between("x", "y") == []
