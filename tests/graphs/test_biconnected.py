"""Tests for articulation points / biconnected components.

networkx has no multigraph biconnectivity, so the oracle comparisons run
on simple graphs; multigraph behaviour (parallel edges forming an
undirected cycle) is covered by hand-written cases, since that exact
property drives the paper's reconvergent-path classification.
"""

import networkx as nx
from hypothesis import given

from repro.graphs import (
    Digraph,
    articulation_points,
    biconnected_components,
    bridges,
)
from tests.strategies import digraphs


def to_nx_undirected(g: Digraph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.nodes)
    h.add_edges_from((e.src, e.dst) for e in g.edges)
    return h


def has_multi_or_loops(g: Digraph) -> bool:
    seen = set()
    for e in g.edges:
        if e.src == e.dst:
            return True
        pair = frozenset((e.src, e.dst))
        if pair in seen:
            return True
        seen.add(pair)
    return False


def test_two_triangles_sharing_a_node():
    g = Digraph()
    # Triangle 1: a-b-c; triangle 2: c-d-e (directed arbitrarily).
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    g.add_edge("c", "d")
    g.add_edge("d", "e")
    g.add_edge("e", "c")
    assert articulation_points(g) == {"c"}
    comps = biconnected_components(g)
    assert len(comps) == 2
    sizes = sorted(len(c) for c in comps)
    assert sizes == [3, 3]


def test_chain_is_all_bridges():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    assert {e.key for e in bridges(g)} == {e.key for e in g.edges}
    assert articulation_points(g) == {"b"}


def test_parallel_edges_form_biconnected_component_not_bridge():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("a", "b")
    assert bridges(g) == []
    assert articulation_points(g) == set()
    comps = biconnected_components(g)
    assert len(comps) == 1
    assert len(comps[0]) == 2


def test_antiparallel_edges_are_an_undirected_cycle():
    # a->b plus b->a is a 2-cycle in the underlying undirected multigraph.
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    assert bridges(g) == []
    assert len(biconnected_components(g)) == 1


def test_self_loop_is_singleton_component():
    g = Digraph()
    g.add_edge("a", "a")
    g.add_edge("a", "b")
    comps = biconnected_components(g)
    assert any(len(c) == 1 and c[0].src == c[0].dst for c in comps)
    assert len(bridges(g)) == 1  # only the a->b edge


def test_isolated_node_has_no_components():
    g = Digraph()
    g.add_node("lonely")
    assert biconnected_components(g) == []
    assert articulation_points(g) == set()


@given(digraphs(allow_self_loops=False, allow_parallel=True))
def test_articulation_points_match_networkx_on_simple_graphs(g):
    if has_multi_or_loops(g):
        return  # networkx oracle only valid on simple graphs
    expected = set(nx.articulation_points(to_nx_undirected(g)))
    assert articulation_points(g) == expected


@given(digraphs(allow_self_loops=False))
def test_biconnected_edge_partition_matches_networkx(g):
    if has_multi_or_loops(g):
        return
    ours = {
        frozenset(frozenset((e.src, e.dst)) for e in comp)
        for comp in biconnected_components(g)
    }
    theirs = {
        frozenset(frozenset(pair) for pair in comp)
        for comp in nx.biconnected_component_edges(to_nx_undirected(g))
    }
    assert ours == theirs


@given(digraphs())
def test_components_partition_all_edges(g):
    comps = biconnected_components(g)
    all_keys = [e.key for comp in comps for e in comp]
    assert sorted(all_keys) == sorted(e.key for e in g.edges)
