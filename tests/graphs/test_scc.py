"""Tests for Tarjan SCC and condensation, cross-checked against networkx."""

import networkx as nx
from hypothesis import given

from repro.graphs import (
    Digraph,
    condensation,
    is_acyclic,
    is_strongly_connected,
    scc_of,
    strongly_connected_components,
)
from tests.strategies import digraphs


def to_nx(g: Digraph) -> nx.MultiDiGraph:
    h = nx.MultiDiGraph()
    h.add_nodes_from(g.nodes)
    h.add_edges_from((e.src, e.dst) for e in g.edges)
    return h


def test_single_cycle_is_one_scc():
    g = Digraph()
    for i in range(5):
        g.add_edge(i, (i + 1) % 5)
    comps = strongly_connected_components(g)
    assert len(comps) == 1
    assert set(comps[0]) == set(range(5))
    assert is_strongly_connected(g)


def test_two_sccs_joined_by_bridge():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    g.add_edge("b", "c")
    g.add_edge("c", "d")
    g.add_edge("d", "c")
    comps = {frozenset(c) for c in strongly_connected_components(g)}
    assert comps == {frozenset({"a", "b"}), frozenset({"c", "d"})}
    assert not is_strongly_connected(g)


def test_empty_graph_not_strongly_connected():
    assert not is_strongly_connected(Digraph())


def test_singleton_graph_is_strongly_connected():
    g = Digraph()
    g.add_node("only")
    assert is_strongly_connected(g)


def test_sccs_in_reverse_topological_order():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    g.add_edge("b", "c")  # {a,b} feeds {c}
    comps = strongly_connected_components(g)
    assert set(comps[0]) == {"c"}
    assert set(comps[1]) == {"a", "b"}


def test_condensation_is_dag_with_members():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    g.add_edge("b", "c")
    g.add_edge("c", "d")
    g.add_edge("d", "c")
    dag, mapping = condensation(g)
    assert is_acyclic(dag)
    assert dag.number_of_nodes() == 2
    assert dag.number_of_edges() == 1
    assert mapping["a"] == mapping["b"]
    assert mapping["c"] == mapping["d"]
    members = {
        frozenset(dag.node_data(n)["members"]) for n in dag.nodes
    }
    assert members == {frozenset({"a", "b"}), frozenset({"c", "d"})}


def test_condensation_preserves_parallel_inter_scc_edges():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("a", "b")  # two parallel channels
    dag, mapping = condensation(g)
    assert dag.number_of_edges() == 2
    origins = {e.data["origin"] for e in dag.edges}
    assert len(origins) == 2


@given(digraphs())
def test_scc_partition_matches_networkx(g):
    ours = {frozenset(c) for c in strongly_connected_components(g)}
    theirs = {
        frozenset(c) for c in nx.strongly_connected_components(to_nx(g))
    }
    assert ours == theirs


@given(digraphs())
def test_scc_of_consistent_with_components(g):
    mapping = scc_of(g)
    comps = strongly_connected_components(g)
    for idx, comp in enumerate(comps):
        for node in comp:
            assert mapping[node] == idx


@given(digraphs())
def test_condensation_always_acyclic(g):
    dag, _ = condensation(g)
    assert is_acyclic(dag)
