"""Property suite: every cached Context artifact equals the fresh
direct computation on the raw :class:`LisGraph` it snapshots."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Context
from repro.core.cycles import cycle_records as fresh_cycle_records
from repro.core.cycles import deficient_cycles as fresh_deficient_cycles
from repro.core.throughput import mst

from ..strategies import lis_systems


def record_key(record):
    return (record.places, record.tokens, record.channels)


@settings(max_examples=60)
@given(lis_systems(max_shells=4, max_channels=6))
def test_cached_msts_match_fresh_computation(system):
    lis, _behaviors = system
    ctx = Context(lis)
    assert ctx.ideal_mst().mst == mst(lis.ideal_marked_graph()).mst
    assert ctx.actual_mst().mst == mst(lis.doubled_marked_graph()).mst
    # Serving again (now from cache) must not change the answer.
    assert ctx.ideal_mst().mst == mst(lis.ideal_marked_graph()).mst
    assert ctx.actual_mst().mst == mst(lis.doubled_marked_graph()).mst


@settings(max_examples=60)
@given(
    lis_systems(max_shells=4, max_channels=6),
    st.data(),
)
def test_cached_cycle_records_match_fresh_enumeration(system, data):
    lis, _behaviors = system
    ctx = Context(lis)
    assert [record_key(r) for r in ctx.cycle_records()] == [
        record_key(r) for r in fresh_cycle_records(lis.doubled_marked_graph())
    ]
    # An arbitrary extra-token assignment: the cached structural pass
    # plus token re-summing must agree with a from-scratch enumeration
    # of the re-marked doubled graph.
    cids = lis.channel_ids()
    extra = {
        cid: data.draw(st.integers(min_value=0, max_value=3))
        for cid in cids
        if data.draw(st.booleans())
    }
    assert [record_key(r) for r in ctx.cycle_records(extra)] == [
        record_key(r)
        for r in fresh_cycle_records(lis.doubled_marked_graph(extra))
    ]
    assert ctx.actual_mst(extra).mst == mst(lis.doubled_marked_graph(extra)).mst


@settings(max_examples=60)
@given(lis_systems(max_shells=4, max_channels=6))
def test_cached_deficient_cycles_match_fresh_computation(system):
    lis, _behaviors = system
    ctx = Context(lis)
    goal = ctx.ideal_mst().mst
    assert [record_key(r) for r in ctx.deficient_cycles(goal)] == [
        record_key(r)
        for r in fresh_deficient_cycles(lis.doubled_marked_graph(), goal)
    ]


@settings(max_examples=30)
@given(lis_systems(max_shells=4, max_channels=6))
def test_cached_compile_matches_direct_compile(system):
    import numpy as np

    from repro.sim.compile import compile_lis

    lis, _behaviors = system
    if not lis.channels():
        return  # nothing to compile
    ctx = Context(lis)
    cached = ctx.compiled()
    fresh = compile_lis(lis)
    assert cached.node_names == fresh.node_names
    assert cached.is_shell == fresh.is_shell
    assert np.array_equal(cached.src, fresh.src)
    assert np.array_equal(cached.dst, fresh.dst)
    assert np.array_equal(cached.tokens0, fresh.tokens0)
    assert cached.occ_channels == fresh.occ_channels
    assert dict(cached.sizable_col) == dict(fresh.sizable_col)
