"""Unit coverage for :mod:`repro.analysis` -- the shared Context."""

from fractions import Fraction

import pytest

from repro.analysis import (
    Context,
    clear_registry,
    context_from_json,
    get_context,
    global_stats,
)
from repro.core import LisGraph, actual_mst, ideal_mst, size_queues
from repro.core.lis_graph import LisError
from repro.core.serialize import lis_to_json
from repro.gen import examples


def fig1() -> LisGraph:
    return examples.fig1_lis()


# ----------------------------------------------------------------------
# Freezing
# ----------------------------------------------------------------------


def test_freeze_blocks_every_mutator():
    lis = fig1().freeze()
    assert lis.frozen
    with pytest.raises(LisError, match="frozen"):
        lis.add_shell("X")
    with pytest.raises(LisError, match="frozen"):
        lis.add_channel("A", "B")
    with pytest.raises(LisError, match="frozen"):
        lis.set_queue(0, 3)
    with pytest.raises(LisError, match="frozen"):
        lis.set_all_queues(2)
    with pytest.raises(LisError, match="frozen"):
        lis.insert_relay(0)
    with pytest.raises(LisError, match="frozen"):
        lis.remove_relay(0)


def test_copy_of_frozen_graph_is_mutable():
    lis = fig1().freeze()
    clone = lis.copy()
    assert not clone.frozen
    clone.set_all_queues(2)  # must not raise
    assert lis.fingerprint() != clone.fingerprint()


def test_fingerprint_matches_canonical_json_hash():
    from repro.core.serialize import lis_fingerprint

    lis = fig1()
    assert lis.fingerprint() == lis_fingerprint(lis_to_json(lis))
    ctx = Context(lis)
    assert ctx.fingerprint == lis.fingerprint()
    assert ctx.lis_json == lis_to_json(lis)


def test_context_snapshots_the_input_graph():
    lis = fig1()
    ctx = Context(lis)
    before = ctx.actual_mst().mst
    lis.set_all_queues(5)  # caller keeps mutating their own graph
    assert ctx.actual_mst().mst == before
    assert ctx.fingerprint != Context(lis).fingerprint


# ----------------------------------------------------------------------
# Satellite 1: the mutable-aliasing hazard
# ----------------------------------------------------------------------


def test_mutating_returned_marked_graph_does_not_poison_cache():
    ctx = Context(fig1())
    degraded = ctx.actual_mst().mst
    mg = ctx.doubled_marked_graph()
    # Simulate abuse: drain and overload every place of the copy.
    for place in list(mg.graph.edges):
        place.data["tokens"] = 99
    again = ctx.doubled_marked_graph()
    assert all(p.data["tokens"] != 99 for p in again.graph.edges)
    assert ctx.actual_mst().mst == degraded

    ideal = ctx.ideal_marked_graph()
    for place in list(ideal.graph.edges):
        place.data["tokens"] = 99
    assert all(
        p.data["tokens"] != 99 for p in ctx.ideal_marked_graph().graph.edges
    )


def test_mutating_returned_throughput_result_is_harmless():
    ctx = Context(fig1())
    first = ctx.actual_mst()
    assert first.critical  # fig1 degrades, so there is a witness cycle
    for edge in first.critical:
        edge.data["tokens"] = 1_000_000
    second = ctx.actual_mst()
    assert second.mst == first.mst
    assert all(e.data["tokens"] < 1_000_000 for e in second.critical)


def test_td_instances_are_fresh_per_call():
    ctx = Context(fig1())
    a = ctx.td_instance(simplify=False)
    b = ctx.td_instance(simplify=False)
    assert a is not b
    a.simplify()  # in-place mutation of one must not leak into the next
    c = ctx.td_instance(simplify=False)
    assert len(c.cycles) == len(b.cycles)


# ----------------------------------------------------------------------
# Satellite 2: the artifact counters
# ----------------------------------------------------------------------


def test_counters_report_single_lowering_across_consumers():
    stats = global_stats()
    ctx = get_context(fig1())
    assert ideal_mst(ctx).mst == Fraction(1)
    assert actual_mst(ctx).mst == Fraction(2, 3)
    assert actual_mst(ctx).mst == Fraction(2, 3)
    solution = size_queues(ctx)
    assert solution.extra_tokens == {1: 1}
    assert stats.count("ideal_mg", "miss") == 1
    assert stats.count("cycles", "miss") == 1
    # Three *distinct* doubled contents, each lowered exactly once:
    # the base marking, the rule-4 collapsed system, and the
    # solution-verification marking.
    assert stats.count("doubled_mg", "miss") == 3
    # Re-running the whole bundle computes nothing new.
    before = {
        k: v for k, v in stats.snapshot().items() if k.endswith(".miss")
    }
    ideal_mst(ctx)
    actual_mst(ctx)
    size_queues(ctx)
    after = {
        k: v for k, v in stats.snapshot().items() if k.endswith(".miss")
    }
    assert after == before


def test_counter_render_lists_artifacts():
    ctx = Context(fig1())
    ctx.ideal_mst()
    ctx.ideal_mst()
    text = global_stats().render()
    assert "artifact" in text
    assert "ideal_mst" in text


def test_stats_delta_and_merge():
    stats = global_stats()
    ctx = Context(fig1())
    before = stats.snapshot()
    ctx.actual_mst()
    ctx.actual_mst()
    delta = stats.delta(before)
    assert delta["actual_mst.miss"] == 1
    assert delta["actual_mst.hit"] == 1
    stats.merge({"actual_mst.hit": 5})
    assert stats.count("actual_mst", "hit") == 6


# ----------------------------------------------------------------------
# Cycle enumeration: one structural pass serves every variant
# ----------------------------------------------------------------------


def test_extra_token_records_match_fresh_enumeration():
    from repro.core.cycles import cycle_records

    lis = fig1()
    ctx = Context(lis)
    extra = {1: 2}
    cached = ctx.cycle_records(extra)
    fresh = cycle_records(lis.doubled_marked_graph(extra))
    assert [(r.places, r.tokens, r.channels) for r in cached] == [
        (r.places, r.tokens, r.channels) for r in fresh
    ]
    assert global_stats().count("cycles", "miss") == 1


def test_cached_enumeration_still_honours_budget():
    from repro.core.cycles import CycleExplosionError

    ctx = Context(fig1())
    full = ctx.cycle_records()
    assert len(full) > 1
    with pytest.raises(CycleExplosionError):
        ctx.cycle_records(max_cycles=1)
    # And a generous budget is served from the same cached pass.
    assert ctx.cycle_records(max_cycles=10_000) == full
    assert global_stats().count("cycles", "miss") == 1


def test_extra_key_validation():
    ctx = Context(fig1())
    with pytest.raises(LisError, match="unknown"):
        ctx.cycle_records({99: 1})
    with pytest.raises(LisError, match="negative"):
        ctx.actual_mst({0: -1})
    # Zero entries share the base artifact slot.
    base = ctx.actual_mst()
    assert ctx.actual_mst({0: 0}).mst == base.mst
    assert global_stats().count("actual_mst", "miss") == 1


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------


def test_registry_shares_one_context_per_content():
    a = get_context(fig1())
    b = get_context(fig1())
    assert a is b
    assert get_context(a) is a  # idempotent
    c = context_from_json(lis_to_json(fig1()))
    assert c is a


def test_registry_distinguishes_mutated_content():
    a = get_context(fig1())
    changed = fig1()
    changed.set_all_queues(2)
    b = get_context(changed)
    assert a is not b
    assert a.fingerprint != b.fingerprint


def test_registry_guards_against_name_type_aliasing():
    ints = LisGraph()
    ints.add_channel(1, 2)
    strs = LisGraph()
    strs.add_channel("1", "2")
    a = get_context(ints)
    b = get_context(strs)
    # str() aliasing gives both the same canonical JSON...
    assert a.fingerprint == b.fingerprint
    # ...but they must not share artifacts.
    assert a is not b
    assert list(b.system.nodes) == ["1", "2"]


def test_clear_registry_forgets_contexts():
    a = get_context(fig1())
    clear_registry()
    assert get_context(fig1()) is not a


# ----------------------------------------------------------------------
# Collapse and compile
# ----------------------------------------------------------------------


def test_collapsed_is_a_shared_context():
    from repro.soc import cofdm_transmitter

    lis = cofdm_transmitter(queue=1)
    ctx = Context(lis)
    assert ctx.is_collapsible()
    first, map_a = ctx.collapsed()
    second, map_b = ctx.collapsed()
    assert first is second
    assert map_a == map_b
    assert map_a is not map_b  # the mapping itself is handed out fresh
    assert global_stats().count("collapsed", "miss") == 1
    assert global_stats().count("collapsed", "hit") == 1


def test_compiled_arrays_match_direct_compile():
    np = pytest.importorskip("numpy")
    from repro.sim.compile import compile_lis

    lis = fig1()
    ctx = Context(lis)
    cached = ctx.compiled()
    assert compile_lis(ctx) is cached  # dispatch hits the cache
    fresh = compile_lis(lis)
    assert cached.node_names == fresh.node_names
    assert np.array_equal(cached.tokens0, fresh.tokens0)
    assert np.array_equal(cached.src, fresh.src)
    assert np.array_equal(cached.dst, fresh.dst)
    assert global_stats().count("compiled", "miss") == 1
