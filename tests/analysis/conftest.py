"""Isolation for the process-global analysis state.

The context registry and the global artifact counters are deliberately
process-wide (that is the sharing being tested), so every test in this
package starts and ends from a clean slate.
"""

import pytest

from repro.analysis import clear_registry, reset_global_stats


@pytest.fixture(autouse=True)
def _fresh_analysis_state():
    clear_registry()
    reset_global_stats()
    yield
    clear_registry()
    reset_global_stats()
