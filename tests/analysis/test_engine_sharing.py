"""Engine ops on the same serialized system share one Context."""

from fractions import Fraction

from repro.core.serialize import lis_to_json
from repro.engine import AnalysisEngine
from repro.engine.ops import run_op
from repro.gen import examples


def test_two_ops_on_same_serialized_system_lower_once():
    lis_json = lis_to_json(examples.fig1_lis())
    with AnalysisEngine(jobs=1) as engine:
        base = engine.run([("actual_mst", lis_json, None)])[0]
        # Different options -> different cache key, so this is a second
        # genuine op execution -- but the same fingerprint, so the
        # registry serves the already-lowered context.
        again = engine.run(
            [("actual_mst", lis_json, {"extra_tokens": {}})]
        )[0]
        assert base.mst == again.mst == Fraction(2, 3)
        # One doubled lowering and one Karp run total: the second op
        # found the MST already cached on the shared context and never
        # touched the marked graph again.
        assert engine.stats.context == {
            "doubled_mg.miss": 1,
            "actual_mst.miss": 1,
            "actual_mst.hit": 1,
        }


def test_run_op_meta_carries_context_delta():
    lis_json = lis_to_json(examples.fig15_lis())
    result, meta = run_op("actual_mst", lis_json, None)
    assert result.mst == Fraction(3, 4)
    assert meta["context"]["doubled_mg.miss"] == 1
    # A second op run on the same text reuses the registry context.
    _result, meta2 = run_op("ideal_mst", lis_json, None)
    assert "doubled_mg.miss" not in meta2["context"]
    assert meta2["context"]["ideal_mg.miss"] == 1


def test_table4_trial_enumerates_cycles_exactly_once():
    from repro.gen import GeneratorConfig, generate_lis

    lis = generate_lis(
        GeneratorConfig(v=50, s=10, c=2, rs=10, rp=True, policy="scc", seed=3)
    )
    result, meta = run_op(
        "table4_trial", lis_to_json(lis), {"exact_timeout": 30.0}
    )
    assert result["heuristic_cost"] >= (result["exact_cost"] or 0)
    delta = meta["context"]
    # The whole trial -- cycle count, deficient filter, heuristic and
    # exact TD instances -- runs on ONE enumeration of the collapsed
    # system.
    assert delta.get("cycles.miss") == 1
    assert delta.get("cycles.hit", 0) >= 1


def test_engine_stats_render_includes_artifact_table():
    lis_json = lis_to_json(examples.fig1_lis())
    with AnalysisEngine(jobs=1) as engine:
        engine.run([("actual_mst", lis_json, None)])
        text = engine.stats.render()
    assert "artifact" in text
    assert "doubled_mg" in text


def test_stats_json_accumulates_context_counters(tmp_path):
    lis_json = lis_to_json(examples.fig1_lis())
    with AnalysisEngine(jobs=1, cache_dir=tmp_path) as engine:
        engine.run([("actual_mst", lis_json, None)])
    from repro.engine import DiskCache

    stats = DiskCache(tmp_path).read_stats()
    assert stats["context"]["doubled_mg.miss"] == 1
