"""Seed-stability regression: the generators are part of the repo's
reproducibility contract, so a seed must keep producing the *same*
system forever.  Each golden entry is the content fingerprint of the
generated graph (:attr:`Context.fingerprint` hashes shells, channels,
relays and initial tokens); any change to generator sampling, node
naming, or channel ordering shows up here before it silently
invalidates published experiment seeds."""

import pytest

from repro.analysis import get_context
from repro.gen import GeneratorConfig, generate_lis, mesh_lis, torus_lis

# Golden table.  If an entry changes, the generator's output for that
# seed changed -- bump deliberately, never casually.
RANDOM_GOLDEN = {
    0: "2030d1efe312b97c8edf7d76367055280dab545348d0f3d12a9e5bfacd3fa786",
    1: "01e5db8048aa3e7e5f611ccb268ff9eca6dc9e87db8f246de0a5ad6bdaa9048c",
    7: "42d2161166d5e03fd32254772611ae8aea325abf3015472a8573bb24f7e634cb",
    42: "071250c2fab00406b7ec2ebfae954550a9d970a0ce377a9ce3b2fe721cc553e9",
}

MESH_GOLDEN = {
    (2, 2): "053f82e78db915d22f27dccf3704d323dc24716f2f365f35eaf0de11bf5274ff",
    (3, 3): "aeb0576395a7dc23012635a700780326dd264dddb8acd1993891749862248d74",
    (4, 4): "a08049c4a7c223f82a3c998e0980dd16e584d70179c2af2da5a0cae684ae5f36",
    (2, 5): "a394f39eeba8797f3e267211d1388bae977f3b24d8e83138321f41c57bbed6b7",
}

TORUS_GOLDEN = {
    (3, 3): "31e3e16750266672a0ccced1a05787a8660501d3bba91b07d079220268690e4b",
    (4, 4): "0d42f7e156d5fdcd0a3a1de2909a73735d5c5bdd9ba9653c182c498d8492d7d8",
    (2, 5): "5d4f440335480d479777c364bf5a8fbb5dc11df547a3060dba65a80f4c31908e",
}

# Declarative twins: every named system in repro.gen.declarative must
# keep lowering -- from BOTH spellings, hand-built factory and
# repro.dsl declaration -- to exactly this fingerprint.
DSL_GOLDEN = {
    "fig1": "846881a41bd0aa5a88c327c8238ecea1516ac350e05afb1115873e885e000572",
    "fig2_right": "766b9561e797ffacce0e3a415f4ae2a0abb74e37c00a5aa198092ab6b5620a34",
    "fig15": "de97bf675059f222cd09c0af423bdce42e703ee26918ed39b89c0b2e4f462fd6",
    "uplink_downlink": "48c216285ddbc5662f777779d9108ea25a95a0bb99c7a6966932c3f87a6db625",
    "cofdm": "d8f48656286dcc59dffccf02c532c7e0c30d564b1d2606c12544676ae00eebc4",
    "cofdm_fig19": "669c4bff5c9888f641010ed2bcb5abbe359663efc3b926cd70e9d1d03bcf69c0",
    "mesh3x3": "aeb0576395a7dc23012635a700780326dd264dddb8acd1993891749862248d74",
    "torus4x4": "0d42f7e156d5fdcd0a3a1de2909a73735d5c5bdd9ba9653c182c498d8492d7d8",
    "ring8": "c492a88d8e988bfcf0b6d4907c74520e13c9ab5c3d74d2f0c38859ff86b64758",
}

VARIANT_GOLDEN = {
    "mesh-3x3-relays2-seed5": (
        "84d9db38a3f92708151901639c7230f27e68d30664b039243e45bae2d54c5398"
    ),
    "mesh-3x3-queue2": (
        "2cedd1a51370cda6c5f5ffb4c8946cd1a975f2f9fe1e3180cc86ef8a8bab947b"
    ),
}


def _fingerprint(lis):
    return get_context(lis).fingerprint


@pytest.mark.parametrize("seed", sorted(RANDOM_GOLDEN))
def test_random_generator_fingerprints_are_stable(seed):
    config = GeneratorConfig(
        v=30, s=6, c=2, rs=5, rp=True, policy="scc", seed=seed
    )
    assert _fingerprint(generate_lis(config)) == RANDOM_GOLDEN[seed]
    # And a second call with the same config is identical.
    assert _fingerprint(generate_lis(config)) == RANDOM_GOLDEN[seed]


def test_random_seeds_actually_differ():
    assert len(set(RANDOM_GOLDEN.values())) == len(RANDOM_GOLDEN)


@pytest.mark.parametrize("shape", sorted(MESH_GOLDEN))
def test_mesh_fingerprints_are_stable(shape):
    assert _fingerprint(mesh_lis(*shape)) == MESH_GOLDEN[shape]


@pytest.mark.parametrize("shape", sorted(TORUS_GOLDEN))
def test_torus_fingerprints_are_stable(shape):
    assert _fingerprint(torus_lis(*shape)) == TORUS_GOLDEN[shape]


def test_2x2_torus_collapses_onto_the_mesh():
    """On a 2x2 grid the wraparound links duplicate the mesh links, so
    the torus *is* the mesh -- pinned so a dedup change is noticed."""
    assert _fingerprint(torus_lis(2, 2)) == MESH_GOLDEN[(2, 2)]


@pytest.mark.parametrize("name", sorted(DSL_GOLDEN))
def test_declarative_twin_fingerprints_are_stable(name):
    from repro.gen.declarative import DECLARATIVE_TWINS, twin_fingerprints

    assert set(DSL_GOLDEN) == set(DECLARATIVE_TWINS)
    hand, decl = twin_fingerprints(name)
    assert hand == DSL_GOLDEN[name]
    assert decl == DSL_GOLDEN[name]


def test_dsl_golden_agrees_with_generator_golden():
    """The mesh/torus rows appear in both tables -- keep them equal."""
    assert DSL_GOLDEN["mesh3x3"] == MESH_GOLDEN[(3, 3)]
    assert DSL_GOLDEN["torus4x4"] == TORUS_GOLDEN[(4, 4)]


def test_mesh_variants_fingerprints_are_stable():
    assert (
        _fingerprint(mesh_lis(3, 3, relays=2, seed=5))
        == VARIANT_GOLDEN["mesh-3x3-relays2-seed5"]
    )
    assert (
        _fingerprint(mesh_lis(3, 3, queue=2))
        == VARIANT_GOLDEN["mesh-3x3-queue2"]
    )
    # Options change the system: distinct from the plain 3x3 mesh.
    assert len(set(VARIANT_GOLDEN.values()) | {MESH_GOLDEN[(3, 3)]}) == 3
