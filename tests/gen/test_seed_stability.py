"""Seed-stability regression: the generators are part of the repo's
reproducibility contract, so a seed must keep producing the *same*
system forever.  Each golden entry is the content fingerprint of the
generated graph (:attr:`Context.fingerprint` hashes shells, channels,
relays and initial tokens); any change to generator sampling, node
naming, or channel ordering shows up here before it silently
invalidates published experiment seeds."""

import pytest

from repro.analysis import get_context
from repro.gen import GeneratorConfig, generate_lis, mesh_lis, torus_lis

# Golden table.  If an entry changes, the generator's output for that
# seed changed -- bump deliberately, never casually.
RANDOM_GOLDEN = {
    0: "2030d1efe312b97c8edf7d76367055280dab545348d0f3d12a9e5bfacd3fa786",
    1: "01e5db8048aa3e7e5f611ccb268ff9eca6dc9e87db8f246de0a5ad6bdaa9048c",
    7: "42d2161166d5e03fd32254772611ae8aea325abf3015472a8573bb24f7e634cb",
    42: "071250c2fab00406b7ec2ebfae954550a9d970a0ce377a9ce3b2fe721cc553e9",
}

MESH_GOLDEN = {
    (2, 2): "053f82e78db915d22f27dccf3704d323dc24716f2f365f35eaf0de11bf5274ff",
    (3, 3): "aeb0576395a7dc23012635a700780326dd264dddb8acd1993891749862248d74",
    (4, 4): "a08049c4a7c223f82a3c998e0980dd16e584d70179c2af2da5a0cae684ae5f36",
    (2, 5): "a394f39eeba8797f3e267211d1388bae977f3b24d8e83138321f41c57bbed6b7",
}

TORUS_GOLDEN = {
    (3, 3): "31e3e16750266672a0ccced1a05787a8660501d3bba91b07d079220268690e4b",
    (4, 4): "0d42f7e156d5fdcd0a3a1de2909a73735d5c5bdd9ba9653c182c498d8492d7d8",
    (2, 5): "5d4f440335480d479777c364bf5a8fbb5dc11df547a3060dba65a80f4c31908e",
}

VARIANT_GOLDEN = {
    "mesh-3x3-relays2-seed5": (
        "84d9db38a3f92708151901639c7230f27e68d30664b039243e45bae2d54c5398"
    ),
    "mesh-3x3-queue2": (
        "2cedd1a51370cda6c5f5ffb4c8946cd1a975f2f9fe1e3180cc86ef8a8bab947b"
    ),
}


def _fingerprint(lis):
    return get_context(lis).fingerprint


@pytest.mark.parametrize("seed", sorted(RANDOM_GOLDEN))
def test_random_generator_fingerprints_are_stable(seed):
    config = GeneratorConfig(
        v=30, s=6, c=2, rs=5, rp=True, policy="scc", seed=seed
    )
    assert _fingerprint(generate_lis(config)) == RANDOM_GOLDEN[seed]
    # And a second call with the same config is identical.
    assert _fingerprint(generate_lis(config)) == RANDOM_GOLDEN[seed]


def test_random_seeds_actually_differ():
    assert len(set(RANDOM_GOLDEN.values())) == len(RANDOM_GOLDEN)


@pytest.mark.parametrize("shape", sorted(MESH_GOLDEN))
def test_mesh_fingerprints_are_stable(shape):
    assert _fingerprint(mesh_lis(*shape)) == MESH_GOLDEN[shape]


@pytest.mark.parametrize("shape", sorted(TORUS_GOLDEN))
def test_torus_fingerprints_are_stable(shape):
    assert _fingerprint(torus_lis(*shape)) == TORUS_GOLDEN[shape]


def test_2x2_torus_collapses_onto_the_mesh():
    """On a 2x2 grid the wraparound links duplicate the mesh links, so
    the torus *is* the mesh -- pinned so a dedup change is noticed."""
    assert _fingerprint(torus_lis(2, 2)) == MESH_GOLDEN[(2, 2)]


def test_mesh_variants_fingerprints_are_stable():
    assert (
        _fingerprint(mesh_lis(3, 3, relays=2, seed=5))
        == VARIANT_GOLDEN["mesh-3x3-relays2-seed5"]
    )
    assert (
        _fingerprint(mesh_lis(3, 3, queue=2))
        == VARIANT_GOLDEN["mesh-3x3-queue2"]
    )
    # Options change the system: distinct from the plain 3x3 mesh.
    assert len(set(VARIANT_GOLDEN.values()) | {MESH_GOLDEN[(3, 3)]}) == 3
