"""Tests for the Section VIII random LIS generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RelayPlacement,
    actual_mst,
    ideal_mst,
    relay_placement,
)
from repro.gen.generator import GeneratorConfig, GeneratorError, generate_lis
from repro.graphs import (
    scc_of,
    strongly_connected_components,
)
from repro.graphs.cycles import count_edge_cycles


def nontrivial_sccs(lis):
    return [
        c for c in strongly_connected_components(lis.system) if len(c) > 1
    ]


def test_default_config_shape():
    lis = generate_lis(GeneratorConfig(seed=0))
    assert len(lis.shells()) == 50
    assert len(nontrivial_sccs(lis)) == 5
    assert lis.total_relays() == 10


def test_validation_errors():
    with pytest.raises(GeneratorError):
        generate_lis(GeneratorConfig(v=5, s=3))  # v < 2s
    with pytest.raises(GeneratorError):
        generate_lis(GeneratorConfig(s=0))
    with pytest.raises(GeneratorError):
        generate_lis(GeneratorConfig(c=-1))
    with pytest.raises(GeneratorError):
        generate_lis(GeneratorConfig(policy="everywhere"))
    with pytest.raises(GeneratorError):
        generate_lis(GeneratorConfig(v=4, s=1, policy="scc", rs=1))
    with pytest.raises(GeneratorError):
        generate_lis(GeneratorConfig(queue=0))


def test_seed_reproducibility():
    a = generate_lis(GeneratorConfig(seed=42))
    b = generate_lis(GeneratorConfig(seed=42))
    ea = sorted((str(e.src), str(e.dst), e.data["relays"]) for e in a.channels())
    eb = sorted((str(e.src), str(e.dst), e.data["relays"]) for e in b.channels())
    assert ea == eb


def test_different_seeds_differ():
    a = generate_lis(GeneratorConfig(seed=1))
    b = generate_lis(GeneratorConfig(seed=2))
    ea = sorted((str(e.src), str(e.dst)) for e in a.channels())
    eb = sorted((str(e.src), str(e.dst)) for e in b.channels())
    assert ea != eb


def test_scc_policy_places_relays_between_sccs_only():
    lis = generate_lis(GeneratorConfig(policy="scc", seed=3))
    assert relay_placement(lis) is RelayPlacement.INTER_SCC


def test_scc_policy_keeps_ideal_mst_at_one():
    """With no relay stations inside SCCs, no forward cycle carries a
    relay station, so the ideal MST is exactly 1 (Section VIII-A)."""
    for seed in range(5):
        lis = generate_lis(GeneratorConfig(policy="scc", seed=seed))
        assert ideal_mst(lis).mst == 1


def test_any_policy_typically_degrades_ideal_mst():
    degraded = 0
    for seed in range(8):
        lis = generate_lis(
            GeneratorConfig(policy="any", rs=15, seed=seed)
        )
        if ideal_mst(lis).mst < 1:
            degraded += 1
    assert degraded >= 6  # relays land inside SCC cycles almost surely


def test_queue_parameter_applies_to_all_channels():
    lis = generate_lis(GeneratorConfig(queue=4, seed=5))
    assert all(lis.queue(cid) == 4 for cid in lis.channel_ids())


def test_minimum_cycles_per_scc():
    """Each SCC holds its Hamiltonian cycle plus >= 1 chord cycle
    (exact chord count may be capped only in tiny SCCs)."""
    lis = generate_lis(GeneratorConfig(v=30, s=3, c=4, rs=0, seed=7))
    mapping = scc_of(lis.system)
    for comp in nontrivial_sccs(lis):
        sub = lis.system.subgraph(comp)
        assert count_edge_cycles(sub) >= 1 + 1  # Hamiltonian + chords


def test_no_inter_scc_cycles():
    """The auxiliary graph is a DAG: exactly s nontrivial SCCs."""
    for rp in (False, True):
        lis = generate_lis(GeneratorConfig(rp=rp, seed=11))
        assert len(nontrivial_sccs(lis)) == 5


def test_rp_zero_gives_tree_of_sccs():
    """Without reconvergent paths, collapsed inter-SCC structure is a
    tree: exactly s - 1 inter-SCC channels."""
    lis = generate_lis(GeneratorConfig(rp=False, rs=0, seed=13))
    mapping = scc_of(lis.system)
    inter = [
        e
        for e in lis.channels()
        if mapping[e.src] != mapping[e.dst]
    ]
    assert len(inter) == 4  # s - 1


def test_rp_one_adds_extra_inter_scc_channels():
    lis = generate_lis(GeneratorConfig(rp=True, rs=0, seed=13))
    mapping = scc_of(lis.system)
    inter = [
        e for e in lis.channels() if mapping[e.src] != mapping[e.dst]
    ]
    assert len(inter) >= 5  # tree + at least one extra


@given(
    v=st.integers(min_value=6, max_value=24),
    s=st.integers(min_value=1, max_value=3),
    c=st.integers(min_value=0, max_value=3),
    rs=st.integers(min_value=0, max_value=5),
    rp=st.booleans(),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_generator_postconditions(v, s, c, rs, rp, seed):
    if v < 2 * s:
        return
    policy = "scc" if s >= 2 else "any"
    lis = generate_lis(
        GeneratorConfig(v=v, s=s, c=c, rs=rs, rp=rp, policy=policy, seed=seed)
    )
    assert len(lis.shells()) == v
    assert len(nontrivial_sccs(lis)) == s
    assert lis.total_relays() == rs
    # The system is weakly connected (the auxiliary graph is connected).
    from repro.graphs import reachable_from
    from repro.graphs.biconnected import undirected_adjacency

    adj = undirected_adjacency(lis.system)
    seen = set()
    stack = [next(iter(lis.system.nodes))]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        for edge in adj[node]:
            stack.append(edge.src)
            stack.append(edge.dst)
    assert seen == set(lis.system.nodes)
    # Backpressure never raises the MST above ideal.
    assert actual_mst(lis).mst <= ideal_mst(lis).mst
