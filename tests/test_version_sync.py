"""The package version is declared twice -- ``pyproject.toml`` and
``repro.__version__`` -- and they have drifted before.  Pin them to
each other so a bump to one without the other fails CI."""

import tomllib
from pathlib import Path

import repro


def test_pyproject_and_package_versions_match():
    pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
    with pyproject.open("rb") as handle:
        declared = tomllib.load(handle)["project"]["version"]
    assert declared == repro.__version__


def test_version_is_exported():
    assert "__version__" in repro.__all__
