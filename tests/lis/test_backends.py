"""The simulation-backend registry: lookup, capability flags, fallback
resolution, the removed ``simulator=`` keyword, and probe-shell
selection."""

from fractions import Fraction

import pytest

from repro.core import LisGraph, actual_mst
from repro.core.throughput import ThroughputResult
from repro.faults import BACKENDS as FAULT_BACKENDS
from repro.faults import build_schedule, random_stalls
from repro.gen import fig15_lis
from repro.lis import (
    BACKENDS,
    Backend,
    available_backends,
    crossvalidate,
    get_backend,
    measured_throughput,
    register_backend,
    resolve_backend,
    select_probe_shell,
)


def disconnected_lis():
    """Two weakly connected components -- the doubled graph is not
    strongly connected, so the ``schedule`` backend must fall back."""
    lis = LisGraph()
    for shell in ("A", "B", "C", "D"):
        lis.add_shell(shell)
    lis.add_channel("A", "B")
    lis.add_channel("B", "A")
    lis.add_channel("C", "D", relays=1)
    lis.add_channel("D", "C")
    return lis


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------


def test_builtin_backends_registered_in_order():
    assert available_backends() == ("trace", "rtl", "fast", "schedule")
    assert tuple(BACKENDS) == available_backends()


def test_capability_flags():
    for name in ("trace", "rtl", "fast"):
        backend = get_backend(name)
        assert backend.supports_faults
        assert backend.supports_values
        assert not backend.exact
        assert not backend.requires_scc
        assert backend.fallback is None
    schedule = get_backend("schedule")
    assert schedule.exact
    assert schedule.requires_scc
    assert not schedule.supports_faults
    assert not schedule.supports_values
    assert schedule.fallback == "fast"


def test_get_backend_unknown_name():
    with pytest.raises(ValueError, match="unknown backend 'verilog'"):
        get_backend("verilog")


def test_register_duplicate_rejected_without_overwrite():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("trace", lambda *a, **k: Fraction(1))


def test_register_unknown_fallback_rejected():
    with pytest.raises(ValueError, match="fallback backend 'nope'"):
        register_backend(
            "temp-bad", lambda *a, **k: Fraction(1), fallback="nope"
        )
    assert "temp-bad" not in BACKENDS


def test_registered_backend_is_crossvalidated():
    """A new registration is immediately picked up everywhere a backend
    name is accepted -- including crossvalidate's registry sweep."""
    calls = []

    def constant(lis, shell, *, clocks, warmup, extra_tokens, faults):
        calls.append(shell)
        return Fraction(3, 4)  # fig15's actual MST

    backend = register_backend(
        "temp-const", constant, description="test double"
    )
    try:
        assert backend is get_backend("temp-const")
        assert "temp-const" in available_backends()
        lis = fig15_lis()
        rate = measured_throughput(lis, "A", backend="temp-const")
        assert rate == Fraction(3, 4)
        report = crossvalidate(lis, clocks=200, warmup=60)
        assert report["temp-const"] == Fraction(3, 4)
        assert report["agreed"]
        assert calls
    finally:
        del BACKENDS["temp-const"]


def test_register_overwrite():
    register_backend("temp-ow", lambda *a, **k: Fraction(1))
    try:
        with pytest.raises(ValueError, match="already registered"):
            register_backend("temp-ow", lambda *a, **k: Fraction(0))
        replaced = register_backend(
            "temp-ow", lambda *a, **k: Fraction(0), overwrite=True
        )
        assert get_backend("temp-ow") is replaced
    finally:
        del BACKENDS["temp-ow"]


# ----------------------------------------------------------------------
# Capability checks and fallback resolution
# ----------------------------------------------------------------------


def test_schedule_supports_connected_not_disconnected():
    schedule = get_backend("schedule")
    assert schedule.supports(fig15_lis())
    assert not schedule.supports(disconnected_lis())
    assert get_backend("fast").supports(disconnected_lis())


def test_resolve_backend_identity_when_supported():
    assert resolve_backend("schedule", fig15_lis()).name == "schedule"
    assert resolve_backend("trace", disconnected_lis()).name == "trace"


def test_resolve_backend_falls_back_on_disconnected_system():
    assert resolve_backend("schedule", disconnected_lis()).name == "fast"


def test_resolve_backend_falls_back_under_faults():
    lis = fig15_lis()
    faults = build_schedule(lis, random_stalls(seed=3, horizon=16))
    assert resolve_backend("schedule", lis, faults=faults).name == "fast"
    assert resolve_backend("fast", lis, faults=faults).name == "fast"


def test_resolve_backend_accepts_backend_instance():
    chosen = resolve_backend(get_backend("schedule"), fig15_lis())
    assert chosen.name == "schedule"


def test_resolve_backend_without_fallback_raises():
    register_backend(
        "temp-scc", lambda *a, **k: Fraction(1), requires_scc=True
    )
    try:
        with pytest.raises(ValueError, match="no fallback"):
            resolve_backend("temp-scc", disconnected_lis())
    finally:
        del BACKENDS["temp-scc"]


def test_measure_rejects_faults_on_analytic_backend():
    lis = fig15_lis()
    faults = build_schedule(lis, random_stalls(seed=3, horizon=16))
    with pytest.raises(ValueError, match="does not support fault"):
        get_backend("schedule").measure(lis, "A", faults=faults)


def test_faults_backend_tuple_derived_from_registry():
    assert FAULT_BACKENDS == ("trace", "rtl", "fast")
    assert all(BACKENDS[name].supports_faults for name in FAULT_BACKENDS)


# ----------------------------------------------------------------------
# measured_throughput: backend= (simulator= removed in 1.7)
# ----------------------------------------------------------------------


def test_schedule_backend_measures_exact_mst():
    lis = fig15_lis()
    rate = measured_throughput(lis, "A", backend="schedule")
    assert rate == actual_mst(lis).mst == Fraction(3, 4)


def test_measured_throughput_falls_back_silently():
    lis = disconnected_lis()
    rate = measured_throughput(lis, "C", backend="schedule", clocks=120)
    expected = measured_throughput(lis, "C", backend="fast", clocks=120)
    assert rate == expected


def test_simulator_keyword_removed():
    """The 1.6 deprecation shim is gone: simulator= is now a TypeError
    whose message points at backend=."""
    with pytest.raises(TypeError, match=r"use backend="):
        measured_throughput(fig15_lis(), "A", simulator="schedule")


def test_simulator_keyword_rejected_even_with_backend():
    with pytest.raises(TypeError, match="no longer accepts simulator="):
        measured_throughput(
            fig15_lis(), "A", backend="fast", simulator="fast"
        )


def test_positional_backend_argument_still_works(recwarn):
    """``backend`` kept the old positional slot through the removal, so
    positional callers are unaffected."""
    lis = fig15_lis()
    rate = measured_throughput(lis, "A", 200, 60, "schedule")
    assert rate == Fraction(3, 4)
    assert not [
        w for w in recwarn if issubclass(w.category, DeprecationWarning)
    ]


# ----------------------------------------------------------------------
# Probe-shell selection
# ----------------------------------------------------------------------


def test_select_probe_shell_prefers_limiting_shell():
    lis = fig15_lis()
    analysis = actual_mst(lis)
    probe = select_probe_shell(lis, analysis)
    assert probe in analysis.limiting_scc
    assert not (isinstance(probe, tuple) and probe and probe[0] == "rs")


def test_select_probe_shell_relay_only_scc_falls_back_to_member():
    """When the limiting SCC holds only relay stations, the first
    member is probed rather than crashing on an empty candidate list."""
    lis = fig15_lis()
    fake = ThroughputResult(
        mst=Fraction(1, 2),
        critical=None,
        limiting_scc=frozenset({("rs", 0, 1)}),
    )
    assert select_probe_shell(lis, fake) == ("rs", 0, 1)


def test_select_probe_shell_without_limiting_scc():
    lis = fig15_lis()
    fake = ThroughputResult(mst=Fraction(1), critical=None, limiting_scc=None)
    assert select_probe_shell(lis, fake) == lis.shells()[0]


def test_crossvalidate_backend_subset_and_skip():
    """crossvalidate honours an explicit subset and silently skips
    backends that do not support the system."""
    report = crossvalidate(
        fig15_lis(), clocks=200, warmup=60, backends=("fast", "schedule")
    )
    assert report["agreed"]
    assert report["schedule"] == report["analytic"] == Fraction(3, 4)
    assert "trace" not in report and "rtl" not in report

    disc = crossvalidate(
        disconnected_lis(), clocks=200, warmup=60, backends=("fast", "schedule")
    )
    assert "schedule" not in disc  # unsupported -> skipped, not failed
    assert "fast" in disc
