"""Latency-equivalence property tests (the paper's correctness core)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LisGraph, size_queues
from repro.gen import fig1_lis, fig15_lis
from repro.lis import ShellBehavior, adder
from repro.lis.equivalence import (
    check_latency_equivalence,
    valid_stream,
)
from repro.lis.trace_sim import simulate_trace
from repro.lis.protocol import TAU
from tests.strategies import lis_systems


def counting_behaviors():
    """Factory: fresh stateful sources per instantiation."""

    def make():
        state = {"k": 0}

        def a_fn(_inputs):
            state["k"] += 1
            return {0: 2 * state["k"], 1: 2 * state["k"] + 1}

        return {
            "A": ShellBehavior(initial={0: 0, 1: 1}, fn=a_fn),
            "B": adder(initial=0),
        }

    return make


def test_valid_stream_extraction():
    trace = simulate_trace(fig1_lis(), 12, counting_behaviors()())
    stream = valid_stream(trace, "B")
    assert TAU not in stream
    assert stream[0] == 0  # the initial latched output


def test_queue_sizing_preserves_streams():
    left = fig1_lis()
    right = fig1_lis()
    right.set_queue(1, 4)
    report = check_latency_equivalence(
        left, right, counting_behaviors(), clocks=120
    )
    assert report.equivalent
    assert report.compared["B"] >= 10


def test_relay_insertion_preserves_streams():
    left = fig1_lis()
    right = fig1_lis()
    right.insert_relay(1, 2)  # extra pipelining on the lower channel
    report = check_latency_equivalence(
        left, right, counting_behaviors(), clocks=150
    )
    assert report.equivalent


def test_extra_tokens_argument_preserves_streams():
    lis = fig1_lis()
    fix = size_queues(lis, method="exact").extra_tokens
    report = check_latency_equivalence(
        lis,
        lis,
        counting_behaviors(),
        clocks=150,
        right_extra=fix,
    )
    assert report.equivalent


def test_different_logic_is_detected():
    """A genuinely different core must be flagged, with a witness."""
    left = fig1_lis()
    right = fig1_lis()

    def left_behaviors():
        base = counting_behaviors()()
        return base

    def right_behaviors():
        base = counting_behaviors()()
        base["B"] = ShellBehavior(
            initial=0, fn=lambda inputs: sum(inputs.values()) + 1
        )
        return base

    trace_kwargs = dict(clocks=120)
    a = simulate_trace(left, 120, left_behaviors())
    b = simulate_trace(right, 120, right_behaviors())
    sa, sb = valid_stream(a, "B"), valid_stream(b, "B")
    assert sa[0] == sb[0] == 0  # same reset value...
    assert sa[1] != sb[1]  # ...but diverging computation

    # And through the checker API:
    class SwapBehaviors:
        """Callable returning left behaviours once, then right ones."""

        def __init__(self):
            self.calls = 0

        def __call__(self):
            self.calls += 1
            return left_behaviors() if self.calls == 1 else right_behaviors()

    report = check_latency_equivalence(
        left, right, SwapBehaviors(), **trace_kwargs
    )
    assert not report.equivalent
    shell, index, lv, rv = report.mismatch
    assert shell == "B" and index >= 1 and lv != rv


def test_no_shared_shells_raises():
    with pytest.raises(ValueError):
        check_latency_equivalence(
            LisGraph.from_edges([("x", "y")]),
            LisGraph.from_edges([("p", "q")]),
        )


def test_insufficient_items_raises():
    with pytest.raises(ValueError):
        check_latency_equivalence(
            fig1_lis(), fig1_lis(), counting_behaviors(), clocks=3
        )


@given(
    upper=st.integers(min_value=0, max_value=3),
    lower=st.integers(min_value=0, max_value=3),
    q=st.integers(min_value=1, max_value=3),
    latency=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_any_reconfiguration_is_latency_equivalent(upper, lower, q, latency):
    """Relays, queues, and core pipelining never change valid streams."""

    def build(u, lo, queue, lat):
        lis = LisGraph(default_queue=queue)
        lis.add_shell("A")
        lis.add_shell("B", latency=lat)
        lis.add_channel("A", "B", relays=u)
        lis.add_channel("A", "B", relays=lo)
        return lis

    baseline = build(1, 0, 1, 1)
    variant = build(upper, lower, q, latency)
    report = check_latency_equivalence(
        baseline, variant, counting_behaviors(), clocks=200, min_items=8
    )
    assert report.equivalent


@given(
    system=lis_systems(max_shells=4, max_channels=5, min_channels=1),
    bump=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=25, deadline=None)
def test_generated_requeue_is_latency_equivalent(system, bump):
    """On arbitrary generated topologies, growing every queue leaves
    each shell's valid output stream unchanged (Theorem 1 territory)."""
    lis, make_behaviors = system
    variant = lis.copy()
    for cid in variant.channel_ids():
        variant.set_queue(cid, variant.queue(cid) + bump)
    report = check_latency_equivalence(
        lis, variant, make_behaviors, clocks=200, min_items=5
    )
    assert report.equivalent


def fig15_behaviors():
    """Scalar arithmetic cores for the five-shell Fig. 15 system.

    (The default pass-through behaviour would build exponentially deep
    nested tuples around the feedback loops -- cheap to *construct*
    thanks to structural sharing, but exponential to *compare* -- so
    equivalence checks on cyclic systems need scalar cores.)
    """
    M = 1_000_003

    def make():
        return {
            name: ShellBehavior(
                initial=ord(name),
                fn=lambda inputs, k=i: (
                    sum(inputs.values()) * (3 + k) + k
                ) % M,
            )
            for i, name in enumerate("ABCDE")
        }

    return make


def test_fig15_sized_vs_unsized_equivalence():
    lis = fig15_lis()
    fix = size_queues(lis, method="exact").extra_tokens
    report = check_latency_equivalence(
        lis,
        lis,
        fig15_behaviors(),
        clocks=250,
        right_extra=fix,
        min_items=20,
    )
    assert report.equivalent
