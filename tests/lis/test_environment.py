"""Tests for environment gates on open systems."""

from fractions import Fraction

import pytest

from repro.core import LisGraph
from repro.gen import fig1_lis
from repro.lis import (
    RtlSimulator,
    always_ready,
    bursty,
    periodic_stall,
    rate_limited,
)


def pipeline():
    return LisGraph.from_edges([("src", "mid"), ("mid", "dst")])


def test_always_ready_never_blocks():
    gate = always_ready()
    assert all(gate(c, k) for c in range(5) for k in range(5))


def test_rate_limited_validation():
    with pytest.raises(ValueError):
        rate_limited(Fraction(0))
    with pytest.raises(ValueError):
        rate_limited(Fraction(3, 2))


def test_rate_limited_schedule_density():
    gate = rate_limited(Fraction(1, 3))
    fired = 0
    for clock in range(30):
        if gate(clock, fired):
            fired += 1
    assert fired == 10  # exactly rate * clocks


def test_periodic_stall_pattern():
    gate = periodic_stall(period=4, stall_len=1)
    pattern = [gate(c, 0) for c in range(8)]
    assert pattern == [False, True, True, True, False, True, True, True]
    with pytest.raises(ValueError):
        periodic_stall(period=0)
    with pytest.raises(ValueError):
        periodic_stall(period=2, stall_len=3)


def test_bursty_pattern():
    gate = bursty(burst=2, gap=1)
    assert [gate(c, 0) for c in range(6)] == [
        True,
        True,
        False,
        True,
        True,
        False,
    ]
    with pytest.raises(ValueError):
        bursty(burst=0, gap=1)


def test_environment_limits_pipeline_throughput():
    """A rate-2/3 source drives the whole pipeline at 2/3."""
    sim = RtlSimulator(
        pipeline(), gates={"src": rate_limited(Fraction(2, 3))}
    )
    sim.run(300)
    assert abs(sim.throughput("dst", skip=30) - Fraction(2, 3)) < Fraction(
        1, 30
    )


def test_environment_backpressure_from_stalling_sink():
    """A sink that accepts 1-in-2 throttles the source via backpressure."""
    sim = RtlSimulator(
        pipeline(), gates={"dst": rate_limited(Fraction(1, 2))}
    )
    sim.run(300)
    assert abs(sim.throughput("src", skip=30) - Fraction(1, 2)) < Fraction(
        1, 30
    )


def test_system_runs_at_min_of_mst_and_environment():
    """Fig. 1 with q=1 has MST 2/3; a 1/2-rate environment dominates,
    while a 9/10-rate environment leaves the internal MST limiting."""
    slow_env = RtlSimulator(
        fig1_lis(), gates={"A": rate_limited(Fraction(1, 2))}
    )
    slow_env.run(400)
    assert abs(slow_env.throughput("B", skip=40) - Fraction(1, 2)) < Fraction(
        1, 30
    )

    fast_env = RtlSimulator(
        fig1_lis(), gates={"A": rate_limited(Fraction(9, 10))}
    )
    fast_env.run(400)
    assert abs(fast_env.throughput("B", skip=40) - Fraction(2, 3)) < Fraction(
        1, 30
    )
