"""Tests for the data-carrying marked-graph simulator (Table I etc.)."""

from fractions import Fraction

from repro.core import actual_mst, relay_name
from repro.gen import fig1_lis, fig15_lis, ring_lis
from repro.lis import TAU, ShellBehavior, TraceSimulator, adder, simulate_trace


def table1_behaviors():
    """Module A emits evens upper / odds lower; module B is an adder."""
    state = {"k": 0}

    def a_fn(_inputs):
        state["k"] += 1
        return {0: 2 * state["k"], 1: 2 * state["k"] + 1}

    return {
        "A": ShellBehavior(initial={0: 0, 1: 1}, fn=a_fn),
        "B": adder(initial=0),
    }


def test_table1_output_traces():
    """The paper's Table I, clock by clock."""
    lis = fig1_lis()
    lis.set_queue(1, 2)  # enough buffering: behaves like the ideal LIS
    trace = simulate_trace(lis, 4, table1_behaviors())
    rs = relay_name(0, 0)
    assert trace.row("A") == [0, 2, 4, 6]
    assert trace.row(rs) == [TAU, 0, 2, 4]
    assert trace.row("B") == [0, TAU, 1, 5]


def test_table1_with_backpressure_q1_degrades():
    """With q = 1 the same system periodically stalls A as well."""
    trace = simulate_trace(fig1_lis(), 31, table1_behaviors())
    rate = trace.throughput("B", skip=1)
    assert abs(rate - Fraction(2, 3)) <= Fraction(1, 15)
    # A is throttled by backpressure to the same rate.
    assert abs(trace.throughput("A", skip=1) - Fraction(2, 3)) <= Fraction(1, 15)


def test_latency_equivalence_valid_streams_match():
    """Latency equivalence: the q=1 system emits the same *valid* value
    sequence as the well-buffered system, just interleaved with tau."""
    lis_fast = fig1_lis()
    lis_fast.set_queue(1, 2)
    fast = simulate_trace(lis_fast, 30, table1_behaviors())
    slow = simulate_trace(fig1_lis(), 45, table1_behaviors())
    fast_values = [v for v in fast.row("B") if v is not TAU]
    slow_values = [v for v in slow.row("B") if v is not TAU]
    n = min(len(fast_values), len(slow_values))
    assert n > 10
    assert fast_values[:n] == slow_values[:n]


def test_measured_rate_matches_static_mst_on_fig15():
    lis = fig15_lis()
    sim = TraceSimulator(lis)
    sim.run(420)
    expected = actual_mst(lis).mst  # 3/4
    rate = sim.trace.throughput("A", skip=20)
    assert abs(rate - expected) < Fraction(1, 40)


def test_extra_tokens_raise_measured_rate():
    lis = fig15_lis()
    sim = TraceSimulator(lis, extra_tokens={5: 1, 6: 1})
    sim.run(420)
    rate = sim.trace.throughput("A", skip=20)
    assert abs(rate - Fraction(5, 6)) < Fraction(1, 40)


def test_max_queue_occupancy_tracks_buffering():
    lis = fig1_lis()
    lis.set_queue(1, 3)
    sim = TraceSimulator(lis, table1_behaviors())
    sim.run(30)
    occupancy = sim.max_queue_occupancy()
    # The lower channel needs 2 slots (one in-flight datum waits one
    # clock for its partner); the upper channel stays at 1.
    assert occupancy[1] == 2
    assert occupancy[0] == 1


def test_ring_simulation_matches_mst():
    lis = ring_lis(4, relays=2)  # MST 4/6 = 2/3
    sim = TraceSimulator(lis)
    sim.run(303)
    assert abs(sim.trace.throughput("s0", skip=3) - Fraction(2, 3)) < Fraction(
        1, 30
    )


def test_relay_station_forwards_values_in_order():
    lis = fig1_lis()
    lis.set_queue(1, 2)
    trace = simulate_trace(lis, 10, table1_behaviors())
    rs = relay_name(0, 0)
    upstream = [v for v in trace.row("A") if v is not TAU]
    forwarded = [v for v in trace.row(rs) if v is not TAU]
    # The relay station replays A's upper-channel stream (evens) intact.
    assert forwarded == [2 * k for k in range(len(forwarded))]
    assert len(forwarded) >= len(upstream) - 2


def test_sink_shell_records_scalar_output():
    from repro.core import LisGraph

    lis = LisGraph()
    lis.add_channel("src", "sink")
    trace = simulate_trace(
        lis, 5, {"src": ShellBehavior(initial=1, fn=lambda i: 9)}
    )
    assert trace.row("sink")[0] is not TAU
