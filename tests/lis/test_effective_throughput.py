"""Tests for analytic open-system throughput vs simulation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen import fig1_lis, fig15_lis
from repro.lis import RtlSimulator, effective_throughput, rate_limited


def test_effective_without_environment_is_mst():
    assert effective_throughput(fig1_lis()) == Fraction(2, 3)
    assert effective_throughput(fig1_lis(), extra_tokens={1: 1}) == 1


def test_effective_min_of_mst_and_rates():
    lis = fig1_lis()  # MST 2/3
    assert effective_throughput(
        lis, {"A": Fraction(1, 2)}
    ) == Fraction(1, 2)
    assert effective_throughput(
        lis, {"A": Fraction(9, 10)}
    ) == Fraction(2, 3)
    assert effective_throughput(
        lis, {"A": Fraction(9, 10), "B": Fraction(1, 4)}
    ) == Fraction(1, 4)


def test_effective_validates_inputs():
    with pytest.raises(ValueError):
        effective_throughput(fig1_lis(), {"ghost": Fraction(1, 2)})
    with pytest.raises(ValueError):
        effective_throughput(fig1_lis(), {"A": Fraction(3, 2)})
    with pytest.raises(ValueError):
        effective_throughput(fig1_lis(), {"A": Fraction(0)})


@given(
    num=st.integers(min_value=1, max_value=5),
    den=st.integers(min_value=5, max_value=9),
    probe=st.sampled_from(["A", "B"]),
)
@settings(max_examples=15, deadline=None)
def test_effective_matches_simulation_on_fig1(num, den, probe):
    rate = Fraction(num, den)
    lis = fig1_lis()
    expected = effective_throughput(lis, {"A": rate})
    sim = RtlSimulator(lis, gates={"A": rate_limited(rate)})
    sim.run(600)
    measured = sim.throughput(probe, skip=100)
    assert abs(measured - expected) < Fraction(1, 25)


def test_effective_matches_simulation_on_fig15():
    lis = fig15_lis()  # doubled MST 3/4
    rate = Fraction(3, 5)
    expected = effective_throughput(lis, {"B": rate})
    assert expected == rate
    sim = RtlSimulator(lis, gates={"B": rate_limited(rate)})
    sim.run(700)
    assert abs(sim.throughput("A", skip=100) - rate) < Fraction(1, 25)
