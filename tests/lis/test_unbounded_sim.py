"""Tests for the unbounded (ideal-system) simulation mode."""

from fractions import Fraction

import pytest

from repro.gen import fig1_lis, fig15_lis, uplink_downlink_lis
from repro.lis import TraceSimulator


def test_unbounded_fig1_runs_at_full_rate():
    sim = TraceSimulator(fig1_lis(), bounded=False)
    sim.run(120)
    assert sim.trace.throughput("B", skip=20) == 1
    assert sim.trace.throughput("A", skip=20) == 1


def test_unbounded_occupancy_is_lu_koh_big_enough():
    """Peak occupancy of the ideal run tells how big 'big enough' is."""
    sim = TraceSimulator(fig1_lis(), bounded=False)
    sim.run(120)
    occupancy = sim.max_queue_occupancy()
    assert occupancy[1] == 2  # the short channel buffers one extra
    assert occupancy[0] == 1


def test_unbounded_fig15_runs_at_ideal_rate():
    sim = TraceSimulator(fig15_lis(), bounded=False)
    sim.run(360)
    rate = sim.trace.throughput("A", skip=60)
    assert abs(rate - Fraction(5, 6)) < Fraction(1, 40)


def test_unbounded_accumulation_on_rate_mismatch():
    """The intro example: a 3/4 uplink feeding a 2/3 downlink needs
    unbounded buffering -- occupancy keeps growing with the horizon."""
    short = TraceSimulator(uplink_downlink_lis(), bounded=False)
    short.run(120)
    long = TraceSimulator(uplink_downlink_lis(), bounded=False)
    long.run(480)
    bridge_channel = 5  # the u0 -> d0 link (last channel added)
    assert (
        long.max_queue_occupancy()[bridge_channel]
        > short.max_queue_occupancy()[bridge_channel]
    )


def test_unbounded_rejects_extra_tokens():
    with pytest.raises(ValueError):
        TraceSimulator(fig1_lis(), extra_tokens={1: 1}, bounded=False)


def test_bounded_vs_unbounded_latency_equivalent_streams():
    from repro.lis import ShellBehavior, adder
    from repro.lis.equivalence import valid_stream

    def behaviors():
        state = {"k": 0}

        def a_fn(_inputs):
            state["k"] += 1
            return {0: 2 * state["k"], 1: 2 * state["k"] + 1}

        return {
            "A": ShellBehavior(initial={0: 0, 1: 1}, fn=a_fn),
            "B": adder(initial=0),
        }

    bounded = TraceSimulator(fig1_lis(), behaviors())
    bounded.run(90)
    unbounded = TraceSimulator(fig1_lis(), behaviors(), bounded=False)
    unbounded.run(60)
    a = valid_stream(bounded.trace, "B")
    b = valid_stream(unbounded.trace, "B")
    n = min(len(a), len(b))
    assert n > 20 and a[:n] == b[:n]
