"""Tests for the protocol vocabulary: tau, behaviours, traces."""

from fractions import Fraction

import pytest

from repro.lis import TAU, ShellBehavior, Tau, Trace, adder, counter


def test_tau_singleton_and_falsy():
    assert Tau() is TAU
    assert not TAU
    assert repr(TAU) == "τ"


def test_behavior_initial_broadcast_and_mapping():
    broadcast = ShellBehavior(initial=7)
    assert broadcast.initial_for(0) == 7
    assert broadcast.initial_for(99) == 7
    mapped = ShellBehavior(initial={0: 1, 1: 2})
    assert mapped.initial_for(1) == 2
    with pytest.raises(KeyError):
        mapped.initial_for(5)


def test_behavior_default_fn_is_passthrough():
    b = ShellBehavior()
    assert b.compute({3: "x"}) == "x"
    assert b.compute({1: "a", 2: "b"}) == ("a", "b")


def test_outputs_for():
    b = ShellBehavior()
    assert b.outputs_for(5, [1, 2]) == {1: 5, 2: 5}
    assert b.outputs_for({1: "a", 2: "b"}, [1, 2]) == {1: "a", 2: "b"}


def test_adder_behavior():
    b = adder(initial=0)
    assert b.initial_for(0) == 0
    assert b.compute({0: 2, 1: 3}) == 5


def test_counter_behavior():
    b = counter(start=0, step=2)
    assert b.initial_for(0) == 0
    assert b.compute({}) == 2
    assert b.compute({}) == 4  # stateful


def test_trace_recording_and_throughput():
    trace = Trace()
    for value, fired in [(1, True), (TAU, False), (2, True), (3, True)]:
        trace.record("n", value, fired)
    trace.clocks = 4
    assert trace.row("n") == [1, TAU, 2, 3]
    assert trace.throughput("n") == Fraction(3, 4)
    assert trace.throughput("n", skip=1) == Fraction(2, 3)
    with pytest.raises(ValueError):
        trace.throughput("n", skip=4)


def test_trace_format_table():
    trace = Trace()
    trace.record("A", 1, True)
    trace.record("A", TAU, False)
    trace.clocks = 2
    text = trace.format_table(["A"])
    assert "t0" in text and "t1" in text
    assert "τ" in text
