"""Tests for the structural RTL-style simulator and its equivalence to
the marked-graph trace simulator."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core import actual_mst, relay_name
from tests.strategies import lis_graphs
from repro.gen import fig1_lis, fig15_lis, ring_lis, tree_lis
from repro.lis import (
    TAU,
    RtlShell,
    RtlSimulator,
    ShellBehavior,
    TraceSimulator,
    adder,
    simulate_rtl,
)


def table1_behaviors():
    state = {"k": 0}

    def a_fn(_inputs):
        state["k"] += 1
        return {0: 2 * state["k"], 1: 2 * state["k"] + 1}

    return {
        "A": ShellBehavior(initial={0: 0, 1: 1}, fn=a_fn),
        "B": adder(initial=0),
    }


def test_rtl_reproduces_table1():
    lis = fig1_lis()
    lis.set_queue(1, 2)
    trace = simulate_rtl(lis, 4, table1_behaviors())
    rs = relay_name(0, 0)
    assert trace.row("A") == [0, 2, 4, 6]
    assert trace.row(rs) == [TAU, 0, 2, 4]
    assert trace.row("B") == [0, TAU, 1, 5]


def test_stop_asserted_when_queue_full():
    """A q=1 channel segment accepts the latched reset datum plus one
    queued item; stop rises when both slots are occupied."""
    sim = RtlSimulator(fig1_lis(), table1_behaviors())
    (lower_final,) = [
        seg
        for seg in sim.segments
        if seg.channel == 1 and isinstance(seg.consumer, RtlShell)
    ]
    assert lower_final.capacity == 2  # q + input latch
    assert not lower_final.stop  # reset placeholder alone
    lower_final.queue.append("in-flight")
    assert lower_final.stop


def test_stop_throttles_producer():
    """With q=1 on Fig. 1, A must periodically stall (rate 2/3)."""
    sim = RtlSimulator(fig1_lis(), table1_behaviors())
    sim.run(30)
    assert abs(sim.throughput("A", skip=3) - Fraction(2, 3)) < Fraction(1, 15)


def test_relay_station_capacity_two():
    from repro.lis import RtlRelayStation

    sim = RtlSimulator(fig1_lis())
    rs_hops = [
        seg
        for seg in sim.segments
        if isinstance(seg.consumer, RtlRelayStation)
    ]
    assert len(rs_hops) == 1  # the hop A -> rs on the upper channel
    assert rs_hops[0].capacity == 2
    assert rs_hops[0].channel == 0
    assert not rs_hops[0].queue  # relay stations reset void


def test_rtl_rate_matches_static_mst():
    lis = fig15_lis()
    sim = RtlSimulator(lis)
    sim.run(420)
    assert abs(
        sim.throughput("A", skip=20) - actual_mst(lis).mst
    ) < Fraction(1, 40)


def test_rtl_extra_tokens_grow_queues():
    lis = fig15_lis()
    sim = RtlSimulator(lis, extra_tokens={5: 1, 6: 1})
    sim.run(420)
    assert abs(sim.throughput("A", skip=20) - Fraction(5, 6)) < Fraction(1, 40)


def test_unknown_backend_name_rejected():
    from repro.lis import measured_throughput

    with pytest.raises(ValueError, match="unknown backend"):
        measured_throughput(fig1_lis(), "A", backend="verilog")
    # The removed simulator= alias fails before backend validation.
    with pytest.raises(TypeError, match="use backend="):
        measured_throughput(fig1_lis(), "A", simulator="verilog")


# ----------------------------------------------------------------------
# Cross-validation: the two simulators are cycle-for-cycle equivalent
# ----------------------------------------------------------------------
def assert_equivalent(lis, clocks=60):
    trace_a = TraceSimulator(lis).run(clocks)
    trace_b = RtlSimulator(lis).run(clocks)
    assert trace_a.fired == trace_b.fired


def test_equivalence_fig1():
    assert_equivalent(fig1_lis())


def test_equivalence_fig15():
    assert_equivalent(fig15_lis())


def test_equivalence_tree():
    assert_equivalent(tree_lis(depth=2, relays_per_channel=2))


def test_equivalence_ring():
    assert_equivalent(ring_lis(5, relays=3))


@given(lis=lis_graphs(max_shells=4, max_channels=6, max_relays=3))
@settings(max_examples=25, deadline=None)
def test_equivalence_on_random_small_systems(lis):
    """Firing patterns of both simulators coincide exactly."""
    assert_equivalent(lis, clocks=50)


@given(lis=lis_graphs(max_shells=4, max_channels=5, max_queue=3))
@settings(max_examples=25, deadline=None)
def test_max_queue_occupancy_matches_trace_sim(lis):
    trace = TraceSimulator(lis)
    trace.run(50)
    rtl = RtlSimulator(lis)
    rtl.run(50)
    assert rtl.max_queue_occupancy() == trace.max_queue_occupancy()


def test_crossvalidate_helper():
    from repro.lis import crossvalidate

    report = crossvalidate(fig15_lis(), clocks=400, warmup=100)
    assert report["agreed"]
    assert report["analytic"] == Fraction(3, 4)
    report2 = crossvalidate(tree_lis(depth=2), clocks=200, warmup=50)
    assert report2["agreed"]
    assert report2["analytic"] == 1
