"""Latency equivalence checking.

The correctness guarantee of latency-insensitive design (and the
reason all of this analysis is *allowed*): however many relay stations
are inserted and however the queues are sized, every channel presents
exactly the same sequence of **valid** data items as the original
synchronous system -- only the interleaving of void items changes.
Two systems related this way are *latency equivalent*.

This module makes the notion executable: it extracts per-shell valid
output streams from simulation traces and compares them between two
configurations of the same logical netlist.  The test-suite uses it as
a property: queue sizing, relay insertion, pipelining depth, and the
choice of simulator must never change any valid stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Mapping

from ..core.lis_graph import LisGraph
from .protocol import TAU, ShellBehavior, Trace
from .trace_sim import TraceSimulator

__all__ = [
    "valid_stream",
    "EquivalenceReport",
    "check_latency_equivalence",
]


def valid_stream(trace: Trace, node: Hashable) -> list[Any]:
    """The sequence of valid (non-tau) outputs of ``node`` in a trace."""
    return [value for value in trace.row(node) if value is not TAU]


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of a latency-equivalence check.

    Attributes:
        equivalent: True when every compared shell's valid streams
            match on their common prefix (of at least ``min_items``).
        compared: Shell -> number of common valid items compared.
        mismatch: The first differing (shell, index, left, right), or
            ``None``.
    """

    equivalent: bool
    compared: dict[Hashable, int]
    mismatch: tuple | None = None


def check_latency_equivalence(
    left: LisGraph,
    right: LisGraph,
    behaviors: Mapping[Hashable, ShellBehavior] | None = None,
    clocks: int = 200,
    min_items: int = 10,
    left_extra: dict[int, int] | None = None,
    right_extra: dict[int, int] | None = None,
) -> EquivalenceReport:
    """Simulate both systems and compare every shared shell's valid
    output stream.

    The two systems must implement the same logical netlist (same shell
    names and behaviours); they may differ arbitrarily in queue sizes,
    relay stations, and core pipelining.  Behaviours are instantiated
    *fresh* for each side via the factory below, because stateful
    sources must not leak state across runs -- pass a dict of
    :class:`ShellBehavior` only if the behaviours are stateless, or a
    callable returning the dict otherwise.

    Raises ``ValueError`` when fewer than ``min_items`` valid items are
    available for some shell (run longer or lower ``min_items``).
    """
    def instantiate(side_behaviors):
        if callable(side_behaviors):
            return side_behaviors()
        return side_behaviors

    shells = set(left.shells()) & set(right.shells())
    if not shells:
        raise ValueError("the systems share no shells to compare")

    trace_left = TraceSimulator(
        left, instantiate(behaviors), extra_tokens=left_extra
    ).run(clocks)
    trace_right = TraceSimulator(
        right, instantiate(behaviors), extra_tokens=right_extra
    ).run(clocks)

    compared: dict[Hashable, int] = {}
    for shell in sorted(shells, key=repr):
        a = valid_stream(trace_left, shell)
        b = valid_stream(trace_right, shell)
        n = min(len(a), len(b))
        if n < min_items:
            raise ValueError(
                f"only {n} common valid items for shell {shell!r}; "
                f"need {min_items} (simulate longer)"
            )
        compared[shell] = n
        for i in range(n):
            if a[i] != b[i]:
                return EquivalenceReport(
                    equivalent=False,
                    compared=compared,
                    mismatch=(shell, i, a[i], b[i]),
                )
    return EquivalenceReport(equivalent=True, compared=compared)
