"""Protocol-level vocabulary of latency-insensitive design.

A LIS channel carries *valid* (informative) data items or *void*
(stalling) items, written tau in the paper.  This module defines the
void sentinel, trace containers shared by both simulators, and the
behavioural description of a core that both simulators execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Hashable, Mapping

__all__ = ["TAU", "Tau", "ShellBehavior", "Trace", "adder", "counter"]


class Tau:
    """The void data item (tau): a stalling event on a channel."""

    _instance: "Tau | None" = None

    def __new__(cls) -> "Tau":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "τ"

    def __bool__(self) -> bool:
        return False


#: The singleton void item.
TAU = Tau()


@dataclass
class ShellBehavior:
    """What a shell's core computes and what it latches at reset.

    Attributes:
        initial: Per-output-channel initial latched outputs: either a
            mapping ``{channel id: value}`` or a single value broadcast
            to every output channel.  This is the data the shell
            transfers during the first clock period (firing 0).
        fn: The core function, called on firings 1, 2, ...: receives
            the consumed input values as ``{input channel id: value}``
            and returns either a mapping ``{output channel id: value}``
            or a single broadcast value.  Sources (no input channels)
            receive an empty mapping; stateful sources may close over
            mutable state.  ``None`` means "broadcast the tuple of
            inputs" -- a simple pass-through useful in tests.
    """

    initial: Any = 0
    fn: Callable[[Mapping[int, Any]], Any] | None = None

    def initial_for(self, channel: int) -> Any:
        if isinstance(self.initial, Mapping):
            return self.initial[channel]
        return self.initial

    def outputs_for(
        self, result: Any, out_channels: list[int]
    ) -> dict[int, Any]:
        if isinstance(result, Mapping):
            return {cid: result[cid] for cid in out_channels}
        return {cid: result for cid in out_channels}

    def compute(self, inputs: Mapping[int, Any]) -> Any:
        if self.fn is None:
            values = tuple(inputs[k] for k in sorted(inputs))
            if len(values) == 1:
                return values[0]
            return values
        return self.fn(inputs)


def adder(initial: Any = 0) -> ShellBehavior:
    """A core that sums its inputs (the paper's module B in Table I)."""
    return ShellBehavior(
        initial=initial, fn=lambda inputs: sum(inputs.values())
    )


def counter(start: int = 0, step: int = 1, initial=None) -> ShellBehavior:
    """A source that emits ``start, start+step, ...`` (module A emits the
    even numbers on one channel with ``counter(0, 2)``).

    Firing 0 emits ``start`` (the initial latched output); firing k
    emits ``start + k*step``.
    """
    state = {"next": start + step}

    def fn(_inputs):
        value = state["next"]
        state["next"] += step
        return value

    return ShellBehavior(initial=start if initial is None else initial, fn=fn)


@dataclass
class Trace:
    """Per-clock output traces of every node in a simulated LIS.

    ``outputs[node]`` is a list indexed by clock period; each entry is
    the value produced that clock (on the node's first output channel)
    or :data:`TAU` when the node stalled.  Relay stations appear under
    their expanded names.
    """

    outputs: dict[Hashable, list[Any]] = field(default_factory=dict)
    fired: dict[Hashable, list[bool]] = field(default_factory=dict)
    clocks: int = 0

    def record(self, node: Hashable, value: Any, did_fire: bool) -> None:
        self.outputs.setdefault(node, []).append(value)
        self.fired.setdefault(node, []).append(did_fire)

    def row(self, node: Hashable) -> list[Any]:
        return self.outputs[node]

    def throughput(self, node: Hashable, skip: int = 0) -> Fraction:
        """Valid-output rate of ``node``: firings / clocks after ``skip``."""
        flags = self.fired[node][skip:]
        if not flags:
            raise ValueError("no clocks recorded after skip")
        return Fraction(sum(flags), len(flags))

    def format_table(self, nodes: list[Hashable] | None = None) -> str:
        """ASCII rendering in the style of the paper's Table I."""
        chosen = nodes if nodes is not None else sorted(
            self.outputs, key=repr
        )
        header = ["output"] + [f"t{i}" for i in range(self.clocks)]
        rows = [header]
        for node in chosen:
            rows.append([str(node)] + [repr(v) for v in self.outputs[node]])
        widths = [
            max(len(row[i]) for row in rows) for i in range(len(header))
        ]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            for row in rows
        ]
        return "\n".join(lines)
