"""Structural (RTL-style) simulator of a latency-insensitive system.

An independent second implementation of LIS semantics, used to
cross-validate :mod:`repro.lis.trace_sim` and the static analysis.
Instead of executing a marked graph, it instantiates the protocol
hardware the paper describes:

* :class:`RtlShell` -- a shell with one bypassable input queue per
  channel and AND-firing: the core fires only when every input queue
  holds valid data *and* every downstream consumer can accept a new
  item; otherwise the core is stalled (clock-gated) and emits void.
  A shell asserts ``stop`` on an input channel exactly when that
  queue is full.
* :class:`RtlRelayStation` -- the twofold buffer (main + auxiliary
  register): it forwards one item per cycle while the downstream
  accepts, absorbs one extra in-flight item when stopped, and asserts
  ``stop`` upstream when both registers are occupied.
* :class:`Environment` gates -- optional per-shell firing gates that
  model an environment supplying valid data at a limited rate or a
  consumer stalling the system, the paper's "interaction with the
  environment" factor.

All fire/stop decisions are functions of start-of-cycle state
(registered stop semantics), which is exactly the step semantics of
the marked-graph model; absent environment gates, the two simulators
agree cycle-for-cycle, and the test-suite asserts it.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import Any, Callable, Hashable, Mapping

from ..core.lis_graph import LisGraph
from ..core.naming import relay_name, stage_name
from .protocol import TAU, ShellBehavior, Trace

__all__ = [
    "RtlSimulator",
    "RtlShell",
    "RtlRelayStation",
    "RtlPipelineStage",
    "simulate_rtl",
]

#: A firing gate: (clock, firing_index) -> may the shell fire this cycle?
Gate = Callable[[int, int], bool]

#: A fault gate: (node, clock) -> must the node stall this cycle?
#: Unlike environment ``gates`` (shells only), a fault gate addresses
#: every structural node: shells, relay stations (``("rs", cid, i)``)
#: and pipeline stages (``("stage", shell, i)``).
FaultGate = Callable[[Hashable, int], bool]

_RESET = object()  # placeholder occupying shell queues at reset


class _Segment:
    """One hop of a channel: producer -> consumer with a receive queue.

    The queue lives at the consumer: depth ``capacity`` (the shell's
    queue for final hops, 2 for hops into relay stations).  ``stop`` is
    asserted to the producer when the queue is full at cycle start.
    """

    __slots__ = ("channel", "producer", "consumer", "capacity", "queue")

    def __init__(self, channel: int, producer, consumer, capacity: int):
        self.channel = channel
        self.producer = producer
        self.consumer = consumer
        self.capacity = capacity
        self.queue: deque = deque()

    @property
    def stop(self) -> bool:
        return len(self.queue) >= self.capacity

    @property
    def has_data(self) -> bool:
        return bool(self.queue)


def _value_for(segment: "_Segment", value: Any) -> Any:
    """Per-channel unwrap when forwarding a multi-channel mapping."""
    if isinstance(value, Mapping) and segment.channel in value:
        return value[segment.channel]
    return value


class RtlShell:
    """A shell-encapsulated core with AND-firing and backpressure.

    For multi-cycle cores (latency > 1), ``outputs`` is the single
    internal segment into the first pipeline stage and
    ``out_channels`` lists the real output channel ids the core's
    result mapping is keyed by.
    """

    def __init__(self, name: Hashable, behavior: ShellBehavior, gate: Gate | None):
        self.name = name
        self.behavior = behavior
        self.gate = gate
        self.inputs: list[_Segment] = []
        self.outputs: list[_Segment] = []
        self.out_channels: list[int] = []
        self.firing_index = 0

    def can_fire(self, clock: int) -> bool:
        if any(not seg.has_data for seg in self.inputs):
            return False  # AND-firing: a missing input stalls the core
        if any(seg.stop for seg in self.outputs):
            return False  # backpressure from downstream
        if self.gate is not None and not self.gate(clock, self.firing_index):
            return False  # environment withholds data / stalls us
        return True

    def consume(self) -> dict[int, Any]:
        return {seg.channel: seg.queue.popleft() for seg in self.inputs}

    def produce(self, consumed: dict[int, Any]) -> tuple[list[Any], Any]:
        """Returns ``(values aligned with self.outputs, display value)``.

        The display value is what the shell's core emitted this firing
        -- recorded in the trace even for sink shells with no output
        channels.
        """
        if self.firing_index == 0:
            if self.out_channels:
                result: Any = {
                    cid: self.behavior.initial_for(cid)
                    for cid in self.out_channels
                }
            else:
                result = self.behavior.initial
        else:
            result = self.behavior.compute(consumed)
        self.firing_index += 1
        if isinstance(result, Mapping):
            keyed: Any = {cid: result[cid] for cid in self.out_channels}
            display = keyed[min(keyed)] if keyed else TAU
        else:
            keyed = result
            display = result
        return [_value_for(seg, keyed) for seg in self.outputs], display


class RtlRelayStation:
    """The relay station: main + auxiliary register on a wire segment."""

    def __init__(self, name: Hashable):
        self.name = name
        self.inputs: list[_Segment] = []  # exactly one
        self.outputs: list[_Segment] = []  # exactly one

    def can_fire(self, clock: int) -> bool:
        return self.inputs[0].has_data and not self.outputs[0].stop

    def consume(self) -> dict[int, Any]:
        seg = self.inputs[0]
        return {seg.channel: seg.queue.popleft()}

    def produce(self, consumed: dict[int, Any]) -> tuple[list[Any], Any]:
        (value,) = consumed.values()
        return [value], value


class RtlPipelineStage:
    """One internal register stage of a multi-cycle core's pipeline.

    Holds one datum, advances when the downstream (next stage, or the
    shell's output channels at the tail) can accept, and fans a
    multi-channel result mapping out to the real channels at the tail.
    """

    def __init__(self, name: Hashable):
        self.name = name
        self.inputs: list[_Segment] = []  # exactly one
        self.outputs: list[_Segment] = []  # one, or the fan-out at the tail

    def can_fire(self, clock: int) -> bool:
        return self.inputs[0].has_data and not any(
            seg.stop for seg in self.outputs
        )

    def consume(self) -> dict[int, Any]:
        seg = self.inputs[0]
        return {seg.channel: seg.queue.popleft()}

    def produce(self, consumed: dict[int, Any]) -> tuple[list[Any], Any]:
        (value,) = consumed.values()
        values = [_value_for(seg, value) for seg in self.outputs]
        if isinstance(value, Mapping):
            display = value[min(value)] if value else TAU
        else:
            display = value
        return values, display


class RtlSimulator:
    """Structural simulation of a practical LIS.

    Args:
        lis: The system; every channel is expanded into its relay
            stations and per-hop receive queues.
        behaviors: ``{shell name: ShellBehavior}`` (defaults like
            :class:`~repro.lis.trace_sim.TraceSimulator`).
        extra_tokens: Optional queue-sizing solution; adds slots to the
            consumer shells' queues.
        gates: Optional ``{shell name: Gate}`` environment model.
        faults: Optional fault gate ``(node, clock) -> bool``; any node
            for which it returns True is clock-gated that cycle (see
            :mod:`repro.faults`).  Stalling is protocol-legal, so every
            fault schedule yields a valid LIS execution.
    """

    def __init__(
        self,
        lis: LisGraph,
        behaviors: Mapping[Hashable, ShellBehavior] | None = None,
        extra_tokens: dict[int, int] | None = None,
        gates: Mapping[Hashable, Gate] | None = None,
        faults: FaultGate | None = None,
    ) -> None:
        self.lis = lis
        self._faults = faults
        behaviors = dict(behaviors or {})
        gates = dict(gates or {})
        extra = dict(extra_tokens or {})

        self.nodes: dict[Hashable, RtlShell | RtlRelayStation | RtlPipelineStage] = {}
        self.segments: list[_Segment] = []
        tails: dict[Hashable, Hashable] = {}
        for shell in lis.shells():
            self.nodes[shell] = RtlShell(
                shell,
                behaviors.get(shell, ShellBehavior()),
                gates.get(shell),
            )
            self.nodes[shell].out_channels = sorted(
                e.key for e in lis.system.out_edges(shell)
            )
            # Expand multi-cycle cores into internal pipeline stages,
            # each a one-deep register segment.
            previous: Hashable = shell
            for i in range(lis.latency(shell) - 1):
                stage = stage_name(shell, i)
                self.nodes[stage] = RtlPipelineStage(stage)
                # Two-slot elastic stage, mirroring the marked-graph
                # lowering (a one-deep register would halve the rate).
                seg = _Segment(
                    ("latency", shell, i),
                    self.nodes[previous],
                    self.nodes[stage],
                    capacity=2,
                )
                self.segments.append(seg)
                self.nodes[previous].outputs.append(seg)
                self.nodes[stage].inputs.append(seg)
                previous = stage
            tails[shell] = previous

        for channel in lis.channels():
            hops: list[Hashable] = [tails[channel.src]]
            for i in range(channel.data["relays"]):
                rs = relay_name(channel.key, i)
                self.nodes[rs] = RtlRelayStation(rs)
                hops.append(rs)
            hops.append(channel.dst)
            for i in range(len(hops) - 1):
                consumer = self.nodes[hops[i + 1]]
                final = i == len(hops) - 2
                # A shell accepts q queued items plus the one in its
                # input latch (the marked graph's initial token, which
                # occupies the queue at reset as the placeholder below):
                # forward tokens + backedge tokens = q + 1 per channel.
                # A relay station is its own two-slot buffer.
                capacity = (
                    channel.data["queue"] + extra.get(channel.key, 0) + 1
                    if final
                    else 2
                )
                seg = _Segment(
                    channel.key, self.nodes[hops[i]], consumer, capacity
                )
                self.segments.append(seg)
                self.nodes[hops[i]].outputs.append(seg)
                consumer.inputs.append(seg)

        # Reset state.  The marked-graph model puts one initial token on
        # every place entering a shell: the data the shell transfers in
        # the first clock period is already latched, so its firing 0
        # emits the initial latched outputs without reading real input
        # data.  Each final receive queue therefore starts with a reset
        # placeholder (its value is never read: RtlShell.produce ignores
        # consumed values on firing 0), while hops into relay stations
        # start empty (relay stations reset to void).
        for seg in self.segments:
            if isinstance(seg.consumer, RtlShell):
                seg.queue.append(_RESET)

        self._shell_segments = [
            seg
            for seg in self.segments
            if isinstance(seg.consumer, RtlShell)
        ]
        self._max_occupancy: dict[int, int] = {
            seg.channel: len(seg.queue) for seg in self._shell_segments
        }
        self.clock = 0
        self.trace = Trace()

    # ------------------------------------------------------------------
    def step(self) -> set[Hashable]:
        """One clock period with registered-stop semantics."""
        firing = {
            name: node.can_fire(self.clock)
            for name, node in self.nodes.items()
        }
        if self._faults is not None:
            gate = self._faults
            clock = self.clock
            for name in firing:
                if firing[name] and gate(name, clock):
                    firing[name] = False
        consumed = {
            name: self.nodes[name].consume()
            for name, fired in firing.items()
            if fired
        }
        displays: dict[Hashable, Any] = {}
        for name, fired in firing.items():
            if not fired:
                continue
            values, display = self.nodes[name].produce(consumed[name])
            displays[name] = display
            for seg, value in zip(self.nodes[name].outputs, values):
                seg.queue.append(value)

        for seg in self._shell_segments:
            if len(seg.queue) > self._max_occupancy[seg.channel]:
                self._max_occupancy[seg.channel] = len(seg.queue)

        for name in self.nodes:
            if firing[name]:
                self.trace.record(name, displays[name], True)
            else:
                self.trace.record(name, TAU, False)
        self.trace.clocks += 1
        self.clock += 1
        return {name for name, fired in firing.items() if fired}

    def run(self, clocks: int) -> Trace:
        for _ in range(clocks):
            self.step()
        return self.trace

    def throughput(self, shell: Hashable, skip: int = 0) -> Fraction:
        return self.trace.throughput(shell, skip=skip)

    def max_queue_occupancy(self) -> dict[int, int]:
        """Peak occupancy per channel's shell input queue, counting the
        reset placeholder as one item -- the same accounting as
        ``TraceSimulator.max_queue_occupancy`` (the placeholder is the
        marked graph's initial token)."""
        return dict(self._max_occupancy)


def simulate_rtl(
    lis: LisGraph,
    clocks: int,
    behaviors: Mapping[Hashable, ShellBehavior] | None = None,
    extra_tokens: dict[int, int] | None = None,
    gates: Mapping[Hashable, Gate] | None = None,
    faults: FaultGate | None = None,
) -> Trace:
    """Convenience wrapper: build an :class:`RtlSimulator` and run it."""
    return RtlSimulator(lis, behaviors, extra_tokens, gates, faults).run(
        clocks
    )
