"""The simulation-backend registry.

Every throughput-measurement backend is registered under a short name
with one normalized signature::

    fn(lis, shell, *, clocks, warmup, extra_tokens, faults) -> Fraction

:func:`get_backend` is the one lookup used by
:func:`~repro.lis.measurement.measured_throughput`, ``crossvalidate``,
the engine ops and the CLI; a backend registered through
:func:`register_backend` is immediately cross-checked by
``crossvalidate`` and accepted everywhere a backend name is.

Capability flags make the differences first-class instead of
hardcoded:

* ``supports_faults`` -- the backend honours a fault gate
  (:mod:`repro.faults`); :data:`repro.faults.BACKENDS` is derived from
  this flag.
* ``supports_values`` -- the backend replays data values (it is a real
  simulator, not an analytic oracle).
* ``exact`` -- the returned rate is the exact asymptotic ``Fraction``
  (no O(1/clocks) horizon error), so cross-validation may demand exact
  equality with the analytic MST.
* ``vectorized`` -- the backend runs on the compiled batch kernel and
  can evaluate many configurations (or Monte-Carlo trials) per compile;
  :mod:`repro.stochastic` requires this flag to push trials through as
  the batch axis.
* ``requires_scc`` -- the backend needs the doubled marked graph to be
  strongly connected (equivalently: the LIS weakly connected).
* ``fallback`` -- the backend to substitute when a capability check
  fails (:func:`resolve_backend` follows the chain), e.g.
  ``schedule`` -> ``fast`` on disconnected systems or under a fault
  schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Hashable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.lis_graph import LisGraph

__all__ = [
    "Backend",
    "BACKENDS",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

MeasureFn = Callable[..., Fraction]


@dataclass(frozen=True)
class Backend:
    """A named throughput-measurement backend (see module docstring)."""

    name: str
    fn: MeasureFn = field(repr=False)
    description: str = ""
    supports_faults: bool = False
    supports_values: bool = False
    exact: bool = False
    vectorized: bool = False
    requires_scc: bool = False
    fallback: str | None = None

    def measure(
        self,
        lis: "LisGraph",
        shell: Hashable,
        clocks: int = 400,
        warmup: int = 100,
        extra_tokens: dict[int, int] | None = None,
        faults=None,
    ) -> Fraction:
        """Long-run firing rate of ``shell`` under this backend.

        Simulation backends measure over ``clocks`` post-``warmup``
        cycles; ``exact`` backends return the asymptotic rate and
        ignore the horizon.
        """
        if faults is not None and not self.supports_faults:
            raise ValueError(
                f"backend {self.name!r} does not support fault schedules"
            )
        return self.fn(
            lis,
            shell,
            clocks=clocks,
            warmup=warmup,
            extra_tokens=extra_tokens,
            faults=faults,
        )

    def supports(self, lis: "LisGraph", faults=None) -> bool:
        """Whether this backend can handle ``lis`` as configured."""
        if faults is not None and not self.supports_faults:
            return False
        if self.requires_scc and not _doubled_strongly_connected(lis):
            return False
        return True


def _doubled_strongly_connected(lis: "LisGraph") -> bool:
    """Whether the doubled marked graph is strongly connected.

    True for every weakly connected LIS (each channel contributes a
    backedge), so this only rejects multi-component systems, whose
    shells need not share a common rate.
    """
    from ..analysis import get_context
    from ..graphs.scc import is_strongly_connected

    ctx = get_context(lis)
    return is_strongly_connected(ctx.doubled_marked_graph().graph)


#: Registered backends in registration order (the order ``crossvalidate``
#: and diagnostics iterate them).
BACKENDS: dict[str, Backend] = {}


def register_backend(
    name: str,
    fn: MeasureFn,
    description: str = "",
    supports_faults: bool = False,
    supports_values: bool = False,
    exact: bool = False,
    vectorized: bool = False,
    requires_scc: bool = False,
    fallback: str | None = None,
    overwrite: bool = False,
) -> Backend:
    """Register ``fn`` under ``name``; returns the :class:`Backend`."""
    if name in BACKENDS and not overwrite:
        raise ValueError(f"backend {name!r} already registered")
    if fallback is not None and fallback not in BACKENDS:
        raise ValueError(f"fallback backend {fallback!r} not registered")
    backend = Backend(
        name=name,
        fn=fn,
        description=description,
        supports_faults=supports_faults,
        supports_values=supports_values,
        exact=exact,
        vectorized=vectorized,
        requires_scc=requires_scc,
        fallback=fallback,
    )
    BACKENDS[name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a registered backend by name (ValueError when unknown)."""
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(BACKENDS)
        raise ValueError(
            f"unknown backend {name!r} (available: {known})"
        ) from None


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(BACKENDS)


def resolve_backend(
    backend: str | Backend,
    lis: "LisGraph",
    faults=None,
) -> Backend:
    """The backend that will actually measure ``lis``: ``backend``
    itself when it supports the system, else its ``fallback`` chain
    (e.g. ``schedule`` silently degrades to ``fast`` on disconnected
    systems or when a fault schedule is active)."""
    chosen = backend if isinstance(backend, Backend) else get_backend(backend)
    seen = {chosen.name}
    while not chosen.supports(lis, faults=faults):
        if chosen.fallback is None or chosen.fallback in seen:
            raise ValueError(
                f"backend {chosen.name!r} cannot handle this system "
                f"and has no fallback"
            )
        chosen = get_backend(chosen.fallback)
        seen.add(chosen.name)
    return chosen


# ----------------------------------------------------------------------
# The built-in backends
# ----------------------------------------------------------------------


def _measure_trace(
    lis, shell, *, clocks, warmup, extra_tokens, faults
) -> Fraction:
    from .trace_sim import TraceSimulator

    sim = TraceSimulator(lis, extra_tokens=extra_tokens, faults=faults)
    sim.run(warmup + clocks)
    return sim.trace.throughput(shell, skip=warmup)


def _measure_rtl(
    lis, shell, *, clocks, warmup, extra_tokens, faults
) -> Fraction:
    from .rtl_sim import RtlSimulator

    sim = RtlSimulator(lis, extra_tokens=extra_tokens, faults=faults)
    sim.run(warmup + clocks)
    return sim.trace.throughput(shell, skip=warmup)


def _measure_fast(
    lis, shell, *, clocks, warmup, extra_tokens, faults
) -> Fraction:
    if faults is None:
        # Token counting only -- no per-clock value replay needed.
        from ..sim import BatchSimulator

        result = BatchSimulator(lis, [dict(extra_tokens or {})]).run(
            warmup + clocks, warmup=warmup
        )
        return result.throughput(0, shell)
    from ..sim import FastSimulator

    sim = FastSimulator(lis, extra_tokens=extra_tokens, faults=faults)
    sim.run(warmup + clocks)
    return sim.throughput(shell, skip=warmup)


def _measure_schedule(
    lis, shell, *, clocks, warmup, extra_tokens, faults
) -> Fraction:
    from ..analysis import get_context

    return get_context(lis).schedule_oracle(extra_tokens).throughput(shell)


register_backend(
    "trace",
    _measure_trace,
    description="data-carrying marked-graph stepper (reference)",
    supports_faults=True,
    supports_values=True,
)
register_backend(
    "rtl",
    _measure_rtl,
    description="structural RTL-style model (independent reference)",
    supports_faults=True,
    supports_values=True,
)
register_backend(
    "fast",
    _measure_fast,
    description="vectorized numpy kernel (cycle-exact, token counting)",
    supports_faults=True,
    supports_values=True,
    vectorized=True,
)
register_backend(
    "schedule",
    _measure_schedule,
    description="analytic eventually-periodic oracle (exact Fraction rates)",
    exact=True,
    requires_scc=True,
    fallback="fast",
)
