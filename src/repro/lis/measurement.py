"""Empirical throughput measurement and analytic cross-validation.

The static analysis (:func:`repro.core.throughput.actual_mst`) and the
two simulators must agree: for a closed, live LIS the long-run valid
output rate of every shell in the slowest SCC converges to the MST.
This module packages that comparison; it backs both the test-suite's
cross-validation properties and the ``sim_xval`` benchmark.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable

from ..core.lis_graph import LisGraph
from ..core.throughput import ThroughputResult, actual_mst
from .backends import BACKENDS, get_backend, resolve_backend

__all__ = [
    "measured_throughput",
    "crossvalidate",
    "effective_throughput",
    "select_probe_shell",
]


def effective_throughput(
    lis: LisGraph,
    environment_rates: dict[Hashable, Fraction] | None = None,
    extra_tokens: dict[int, int] | None = None,
) -> Fraction:
    """Analytic long-run rate of a (weakly connected) practical LIS in
    an environment that gates some shells to long-run rates.

    The doubled graph of a weakly connected LIS is strongly connected
    (every channel contributes a backedge), so all shells settle to a
    single common rate; an environment gate at rate ``r`` on any shell
    paces the whole system through the same token-conservation
    argument.  Hence::

        effective = min(MST(d[G]),  min over gated shells of r)

    Validated against both simulators by the test-suite.
    """
    rate = actual_mst(lis, extra_tokens).mst
    for shell, gate_rate in (environment_rates or {}).items():
        if shell not in lis.system:
            raise ValueError(f"no shell {shell!r} in the system")
        if not 0 < gate_rate <= 1:
            raise ValueError(f"environment rate must be in (0, 1]: {gate_rate}")
        rate = min(rate, Fraction(gate_rate))
    return rate


def measured_throughput(
    lis: LisGraph,
    shell: Hashable,
    clocks: int = 400,
    warmup: int = 100,
    backend: str | None = None,
    extra_tokens: dict[int, int] | None = None,
    *,
    faults=None,
    simulator: str | None = None,
) -> Fraction:
    """Long-run firing rate of ``shell`` under the chosen backend
    (any :func:`repro.lis.backends.get_backend` name; default
    ``"trace"``).

    ``"trace"``, ``"rtl"`` and ``"fast"`` simulate ``clocks`` measured
    cycles after ``warmup``; ``"schedule"`` returns the exact
    asymptotic ``Fraction`` rate from the analytic oracle, ignoring the
    horizon -- and falls back to ``"fast"`` automatically when the
    system is not weakly connected or a fault gate is supplied
    (:func:`~repro.lis.backends.resolve_backend`).

    ``lis`` may be a :class:`~repro.core.LisGraph` or an
    :class:`repro.analysis.Context`; with a context, every backend
    reuses its cached lowering / compiled arrays (and the ``schedule``
    oracle is memoized outright).

    The ``simulator=`` keyword was deprecated in 1.6 and removed in
    1.7; passing it raises ``TypeError`` pointing at ``backend=``.
    """
    if simulator is not None:
        raise TypeError(
            "measured_throughput() no longer accepts simulator= "
            "(removed in 1.7 after deprecation in 1.6); "
            "use backend= (same values)"
        )
    chosen = resolve_backend(backend or "trace", lis, faults=faults)
    return chosen.measure(
        lis,
        shell,
        clocks=clocks,
        warmup=warmup,
        extra_tokens=extra_tokens,
        faults=faults,
    )


def select_probe_shell(
    lis: LisGraph,
    analysis: ThroughputResult | None = None,
    extra_tokens: dict[int, int] | None = None,
) -> Hashable:
    """The shell whose rate cross-validation probes.

    Prefers a *shell* on the limiting critical cycle (its rate is
    pinned to the MST even before the rest of the system settles);
    relay stations are filtered out because they are implementation
    detail, not system nodes.  When the limiting SCC consists solely of
    relay stations -- possible on heavily pipelined degenerate cycles
    -- the first SCC member is probed; with no limiting SCC at all
    (MST = 1) any shell does.
    """
    if analysis is None:
        analysis = actual_mst(lis, extra_tokens)
    if analysis.limiting_scc:
        candidates = [
            node
            for node in analysis.limiting_scc
            if not (isinstance(node, tuple) and node and node[0] == "rs")
        ]
        return candidates[0] if candidates else next(iter(analysis.limiting_scc))
    return lis.shells()[0]


def crossvalidate(
    lis: LisGraph,
    clocks: int = 400,
    warmup: int = 100,
    tolerance: Fraction = Fraction(1, 25),
    extra_tokens: dict[int, int] | None = None,
    backends=None,
) -> dict:
    """Compare the analytic MST against every registered backend.

    Measures the rate of a shell on the limiting critical cycle (see
    :func:`select_probe_shell`) through each backend of the
    :mod:`repro.lis.backends` registry (or the given subset of names)
    that supports the system, and returns a report dict with
    ``analytic``, one rate per backend name, and ``agreed``.

    Agreement demands:

    * every *simulation* backend within ``tolerance`` of the analytic
      MST (the finite horizon makes measured rates O(1/clocks) off);
    * every ``exact`` backend (e.g. ``schedule``) **equal** to the
      analytic MST -- no tolerance;
    * the vectorized and reference simulators cycle-exactly equal
      (``fast == trace``), since they implement the same semantics.

    A backend registered later is cross-checked here for free.

    The system is wrapped in one shared
    :class:`repro.analysis.Context`, so the analytic MST, the trace
    backend's doubled lowering, the fast backend's compiled arrays and
    the schedule oracle all derive from a single lowering pass.
    """
    from ..analysis import get_context

    lis = get_context(lis)
    analysis = actual_mst(lis, extra_tokens)
    probe = select_probe_shell(lis, analysis)
    names = tuple(backends) if backends is not None else tuple(BACKENDS)
    rates: dict[str, Fraction] = {}
    agreed = True
    for name in names:
        chosen = get_backend(name)
        if not chosen.supports(lis):
            continue
        rate = chosen.measure(
            lis, probe, clocks=clocks, warmup=warmup, extra_tokens=extra_tokens
        )
        rates[chosen.name] = rate
        if chosen.exact:
            agreed = agreed and rate == analysis.mst
        else:
            agreed = agreed and abs(rate - analysis.mst) <= tolerance
    if "fast" in rates and "trace" in rates:
        # Same semantics: exactly equal.
        agreed = agreed and rates["fast"] == rates["trace"]
    return {
        "probe": probe,
        "analytic": analysis.mst,
        **rates,
        "agreed": agreed,
    }
