"""Empirical throughput measurement and analytic cross-validation.

The static analysis (:func:`repro.core.throughput.actual_mst`) and the
two simulators must agree: for a closed, live LIS the long-run valid
output rate of every shell in the slowest SCC converges to the MST.
This module packages that comparison; it backs both the test-suite's
cross-validation properties and the ``sim_xval`` benchmark.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable

from ..core.lis_graph import LisGraph
from ..core.throughput import actual_mst
from .rtl_sim import RtlSimulator
from .trace_sim import TraceSimulator

__all__ = ["measured_throughput", "crossvalidate", "effective_throughput"]


def effective_throughput(
    lis: LisGraph,
    environment_rates: dict[Hashable, Fraction] | None = None,
    extra_tokens: dict[int, int] | None = None,
) -> Fraction:
    """Analytic long-run rate of a (weakly connected) practical LIS in
    an environment that gates some shells to long-run rates.

    The doubled graph of a weakly connected LIS is strongly connected
    (every channel contributes a backedge), so all shells settle to a
    single common rate; an environment gate at rate ``r`` on any shell
    paces the whole system through the same token-conservation
    argument.  Hence::

        effective = min(MST(d[G]),  min over gated shells of r)

    Validated against both simulators by the test-suite.
    """
    rate = actual_mst(lis, extra_tokens).mst
    for shell, gate_rate in (environment_rates or {}).items():
        if shell not in lis.system:
            raise ValueError(f"no shell {shell!r} in the system")
        if not 0 < gate_rate <= 1:
            raise ValueError(f"environment rate must be in (0, 1]: {gate_rate}")
        rate = min(rate, Fraction(gate_rate))
    return rate


def measured_throughput(
    lis: LisGraph,
    shell: Hashable,
    clocks: int = 400,
    warmup: int = 100,
    simulator: str = "trace",
    extra_tokens: dict[int, int] | None = None,
) -> Fraction:
    """Long-run firing rate of ``shell`` under the chosen backend
    (``"trace"``, ``"rtl"``, or the vectorized ``"fast"`` kernel).

    ``lis`` may be a :class:`~repro.core.LisGraph` or an
    :class:`repro.analysis.Context`; with a context, every backend
    reuses its cached lowering / compiled arrays.
    """
    if simulator == "fast":
        # Token counting only -- no per-clock value replay needed.
        from ..sim import BatchSimulator

        result = BatchSimulator(lis, [dict(extra_tokens or {})]).run(
            warmup + clocks, warmup=warmup
        )
        return result.throughput(0, shell)
    if simulator == "trace":
        sim: TraceSimulator | RtlSimulator = TraceSimulator(
            lis, extra_tokens=extra_tokens
        )
    elif simulator == "rtl":
        sim = RtlSimulator(lis, extra_tokens=extra_tokens)
    else:
        raise ValueError(f"unknown simulator {simulator!r}")
    sim.run(warmup + clocks)
    return sim.trace.throughput(shell, skip=warmup)


def crossvalidate(
    lis: LisGraph,
    clocks: int = 400,
    warmup: int = 100,
    tolerance: Fraction = Fraction(1, 25),
    extra_tokens: dict[int, int] | None = None,
) -> dict:
    """Compare analytic MST against all three simulation backends.

    Measures the rate of a shell on the limiting critical cycle (or an
    arbitrary shell when the MST is 1) and returns a report dict with
    ``analytic``, ``trace``, ``rtl``, ``fast`` rates and ``agreed``
    (True when every empirical rate is within ``tolerance`` of the
    analytic MST).

    The finite-horizon rate of a periodic system differs from the
    asymptotic rate by O(1/clocks), hence the tolerance.

    The system is wrapped in one shared
    :class:`repro.analysis.Context`, so the analytic MST, the trace
    backend's doubled lowering, and the fast backend's compiled arrays
    all derive from a single lowering pass.
    """
    from ..analysis import get_context

    lis = get_context(lis)
    analysis = actual_mst(lis, extra_tokens)
    if analysis.limiting_scc:
        candidates = [
            node
            for node in analysis.limiting_scc
            if not (isinstance(node, tuple) and node and node[0] == "rs")
        ]
        probe = candidates[0] if candidates else next(iter(analysis.limiting_scc))
    else:
        probe = lis.shells()[0]
    trace_rate = measured_throughput(
        lis, probe, clocks, warmup, "trace", extra_tokens
    )
    rtl_rate = measured_throughput(
        lis, probe, clocks, warmup, "rtl", extra_tokens
    )
    fast_rate = measured_throughput(
        lis, probe, clocks, warmup, "fast", extra_tokens
    )
    agreed = (
        abs(trace_rate - analysis.mst) <= tolerance
        and abs(rtl_rate - analysis.mst) <= tolerance
        and fast_rate == trace_rate  # same semantics: exactly equal
    )
    return {
        "probe": probe,
        "analytic": analysis.mst,
        "trace": trace_rate,
        "rtl": rtl_rate,
        "fast": fast_rate,
        "agreed": agreed,
    }
