"""Environment models for open latency-insensitive systems.

The paper's performance model separates two throughput factors: the
internal structure of the LIS (captured by the MST) and the behaviour
of the environment, which can slow the system below its MST either by
withholding valid data at the inputs or by stalling consumption at the
outputs.  This module provides firing *gates* -- predicates plugged
into :class:`~repro.lis.rtl_sim.RtlSimulator` -- that model common
environments, so examples and tests can exercise the "LIS runs at
min(MST, environment rate)" behaviour.
"""

from __future__ import annotations

from fractions import Fraction

from .rtl_sim import Gate

__all__ = [
    "always_ready",
    "rate_limited",
    "periodic_stall",
    "bursty",
]


def always_ready() -> Gate:
    """An environment that never constrains the shell."""
    return lambda clock, firing_index: True


def rate_limited(rate: Fraction) -> Gate:
    """Valid data arrives at the given long-run rate (0 < rate <= 1).

    Implemented as the evenly-spread token schedule: the k-th firing is
    allowed from clock ``ceil(k / rate)`` on, which yields exactly
    ``floor(rate * t)`` firings in any prefix of ``t`` clocks when the
    rest of the system keeps up.
    """
    rate = Fraction(rate)
    if not 0 < rate <= 1:
        raise ValueError(f"rate must be in (0, 1], got {rate}")

    def gate(clock: int, firing_index: int) -> bool:
        # Allow firing k at the first clock where k+1 <= rate * (clock+1).
        return (firing_index + 1) * rate.denominator <= rate.numerator * (
            clock + 1
        )

    return gate


def periodic_stall(period: int, stall_len: int = 1, offset: int = 0) -> Gate:
    """The environment stalls ``stall_len`` clocks out of every ``period``."""
    if period <= 0 or not 0 <= stall_len <= period:
        raise ValueError("need 0 <= stall_len <= period and period > 0")

    def gate(clock: int, firing_index: int) -> bool:
        return (clock - offset) % period >= stall_len

    return gate


def bursty(burst: int, gap: int) -> Gate:
    """``burst`` ready clocks followed by ``gap`` stalled clocks."""
    if burst <= 0 or gap < 0:
        raise ValueError("burst must be positive and gap non-negative")
    period = burst + gap

    def gate(clock: int, firing_index: int) -> bool:
        return clock % period < burst

    return gate
