"""Data-carrying marked-graph simulator.

This simulator executes a LIS at the protocol level by running the
*doubled marked graph* under step semantics, but with every forward
place carrying a FIFO of actual data values rather than anonymous
tokens.  It regenerates the paper's Table I output traces and provides
empirical throughput and queue-occupancy measurements that the static
analysis (:mod:`repro.core.throughput`) is validated against.

Value semantics, following the paper's initialization convention: the
initial token on a place entering shell ``v`` stands for the data
``v`` transfers during the first clock period, so

* a shell's firing 0 emits its **initial latched outputs** (the values
  consumed from its input places at firing 0 are reset placeholders);
* a shell's firing k >= 1 emits ``fn(values consumed at firing k)``;
* a relay station simply forwards the value it consumes (it has no
  initial data: its input place starts empty, hence its first output
  is tau).

Backedge places carry capacity tokens, not data; they gate firings
exactly as in the analytical model, which is why the measured
throughput converges to the computed MST.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Hashable, Mapping

from ..core.lis_graph import LisGraph
from .protocol import TAU, ShellBehavior, Trace

__all__ = ["TraceSimulator", "simulate_trace"]

#: A fault gate: (node, clock) -> must the node stall this cycle?
#: Stalling a transition is always protocol-legal (it is exactly a
#: clock-gate), so any gate yields a valid LIS execution.
FaultGate = Callable[[Hashable, int], bool]

_INIT = object()  # placeholder value carried by initial tokens


class TraceSimulator:
    """Cycle-accurate, data-carrying simulation of a practical LIS.

    Args:
        lis: The system to simulate (queues/relays as configured) -- a
            :class:`~repro.core.LisGraph`, or an
            :class:`repro.analysis.Context` whose cached lowering is
            then reused (the simulator receives a defensive copy, so
            the stepping below never touches the shared master).
        behaviors: ``{shell name: ShellBehavior}``; shells without an
            entry get the default pass-through behaviour with initial
            output 0.
        extra_tokens: Optional queue-sizing solution applied on top of
            the configured queues (channel id -> extra slots).
        bounded: With ``False``, simulate the *ideal* LIS -- infinite
            queues, no backpressure.  Its :meth:`max_queue_occupancy`
            then reports the true buffering demand of the ideal
            execution (unbounded for rate-mismatched compositions).
        faults: Optional fault gate ``(node, clock) -> bool``; a node
            for which it returns True is clock-gated that cycle even
            when its marking enables it (see :mod:`repro.faults`).
    """

    def __init__(
        self,
        lis: LisGraph,
        behaviors: Mapping[Hashable, ShellBehavior] | None = None,
        extra_tokens: dict[int, int] | None = None,
        bounded: bool = True,
        faults: FaultGate | None = None,
    ) -> None:
        self.lis = lis
        self.behaviors = dict(behaviors or {})
        self._faults = faults
        self.clock = 0
        if bounded:
            self.mg = lis.doubled_marked_graph(extra_tokens)
        else:
            if extra_tokens:
                raise ValueError(
                    "extra_tokens is meaningless for the unbounded "
                    "(ideal) simulation"
                )
            self.mg = lis.ideal_marked_graph()
        graph = self.mg.graph

        self._is_shell = {
            node: graph.node_data(node).get("kind") not in ("relay", "stage")
            for node in graph.nodes
        }
        # FIFO of data values per forward place; backedges keep plain
        # integer token counts inside the marked graph itself.
        self._fifo: dict[int, deque] = {}
        for place in self.mg.places:
            if place.data["kind"] != "fwd":
                continue
            self._fifo[place.key] = deque(
                [_INIT] * place.data["tokens"]
            )
        self._firing_index: dict[Hashable, int] = {
            node: 0 for node in graph.nodes
        }
        # Output channel ids per shell (for behaviour output mapping);
        # relay stations and pipeline stages forward values as-is.  A
        # multi-cycle shell's core drives internal places, so its real
        # output channels come from the system graph, not from the
        # marked graph's out-edges.
        self._out_channels: dict[Hashable, list[int]] = {}
        for node in graph.nodes:
            if self._is_shell[node]:
                self._out_channels[node] = sorted(
                    e.key for e in lis.system.out_edges(node)
                )
            else:
                self._out_channels[node] = []
        self.trace = Trace()
        self._max_occupancy: dict[int, int] = {
            key: len(fifo) for key, fifo in self._fifo.items()
        }

    # ------------------------------------------------------------------
    def behavior_of(self, node: Hashable) -> ShellBehavior:
        return self.behaviors.setdefault(node, ShellBehavior())

    def _fire_value(self, node: Hashable, consumed: dict[int, Any]) -> Any:
        """The value(s) a node emits at its current firing."""
        if not self._is_shell[node]:
            # Relay station / pipeline stage: forward the consumed value.
            (value,) = consumed.values()
            return value
        behavior = self.behavior_of(node)
        k = self._firing_index[node]
        if k == 0:
            return {
                cid: behavior.initial_for(cid)
                for cid in self._out_channels[node]
            } if self._out_channels[node] else behavior.initial
        clean = {
            cid: val for cid, val in consumed.items() if val is not _INIT
        }
        return behavior.compute(clean)

    def step(self) -> set[Hashable]:
        """One clock period; returns the set of nodes that fired."""
        graph = self.mg.graph
        fired = set(self.mg.enabled_transitions())
        if self._faults is not None:
            gate = self._faults
            clock = self.clock
            fired = {node for node in fired if not gate(node, clock)}

        # Consume: pop data values and backedge tokens.
        consumed: dict[Hashable, dict[int, Any]] = {}
        for node in fired:
            taken: dict[int, Any] = {}
            for place in graph.in_edges(node):
                place.data["tokens"] -= 1
                if place.data["kind"] == "fwd":
                    taken[place.data["channel"]] = self._fifo[
                        place.key
                    ].popleft()
            consumed[node] = taken

        # Produce: push output values and return backedge tokens.
        emitted: dict[Hashable, Any] = {}
        for node in fired:
            value = self._fire_value(node, consumed[node])
            emitted[node] = value
            for place in graph.out_edges(node):
                place.data["tokens"] += 1
                if place.data["kind"] != "fwd":
                    continue
                # Per-channel unwrap: a Mapping keyed by the place's
                # channel resolves to that channel's value; internal
                # pipeline places (whose channel key is the synthetic
                # ("latency", shell) marker) carry the whole mapping
                # down the pipe until the tail stage fans it out.
                channel = place.data["channel"]
                if isinstance(value, Mapping) and channel in value:
                    out_value = value[channel]
                else:
                    out_value = value
                fifo = self._fifo[place.key]
                fifo.append(out_value)
                if len(fifo) > self._max_occupancy[place.key]:
                    self._max_occupancy[place.key] = len(fifo)
            self._firing_index[node] += 1

        # Record the trace row for this clock.
        for node in graph.nodes:
            if node in fired:
                value = emitted[node]
                if isinstance(value, Mapping):
                    display = value[min(value)] if value else TAU
                else:
                    display = value
                self.trace.record(node, display, True)
            else:
                self.trace.record(node, TAU, False)
        self.trace.clocks += 1
        self.clock += 1
        return fired

    def run(self, clocks: int) -> Trace:
        for _ in range(clocks):
            self.step()
        return self.trace

    # ------------------------------------------------------------------
    def max_queue_occupancy(self) -> dict[int, int]:
        """Peak occupancy per channel's shell input queue.

        This is the empirical buffer requirement: the largest number of
        data items simultaneously waiting on each channel's final
        segment (the consumer shell's queue).
        """
        out: dict[int, int] = {}
        for place in self.mg.places:
            if place.data["kind"] != "fwd" or place.data.get("internal"):
                continue
            if self._is_shell[place.dst]:
                out[place.data["channel"]] = self._max_occupancy[place.key]
        return out


def simulate_trace(
    lis: LisGraph,
    clocks: int,
    behaviors: Mapping[Hashable, ShellBehavior] | None = None,
    extra_tokens: dict[int, int] | None = None,
    faults: FaultGate | None = None,
) -> Trace:
    """Convenience wrapper: build a :class:`TraceSimulator` and run it."""
    return TraceSimulator(lis, behaviors, extra_tokens, faults=faults).run(
        clocks
    )
