"""Cycle-accurate executable models of latency-insensitive systems.

Two independent simulators (a data-carrying marked-graph stepper and a
structural RTL-style model), environment gates for open systems, and
measurement helpers that cross-validate the static MST analysis.
"""

from .protocol import TAU, ShellBehavior, Tau, Trace, adder, counter
from .trace_sim import TraceSimulator, simulate_trace
from .rtl_sim import RtlRelayStation, RtlShell, RtlSimulator, simulate_rtl
from .environment import always_ready, bursty, periodic_stall, rate_limited
from .measurement import crossvalidate, effective_throughput, measured_throughput
from .equivalence import (
    EquivalenceReport,
    check_latency_equivalence,
    valid_stream,
)

__all__ = [
    "TAU",
    "Tau",
    "ShellBehavior",
    "Trace",
    "adder",
    "counter",
    "TraceSimulator",
    "simulate_trace",
    "RtlRelayStation",
    "RtlShell",
    "RtlSimulator",
    "simulate_rtl",
    "always_ready",
    "bursty",
    "periodic_stall",
    "rate_limited",
    "crossvalidate",
    "EquivalenceReport",
    "check_latency_equivalence",
    "valid_stream",
    "measured_throughput",
    "effective_throughput",
]
