"""Cycle-accurate executable models of latency-insensitive systems.

Two independent simulators (a data-carrying marked-graph stepper and a
structural RTL-style model), environment gates for open systems, and
measurement helpers that cross-validate the static MST analysis.
"""

from .protocol import TAU, ShellBehavior, Tau, Trace, adder, counter
from .trace_sim import TraceSimulator, simulate_trace
from .rtl_sim import RtlRelayStation, RtlShell, RtlSimulator, simulate_rtl
from .environment import always_ready, bursty, periodic_stall, rate_limited
from .backends import (
    BACKENDS,
    Backend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from .measurement import (
    crossvalidate,
    effective_throughput,
    measured_throughput,
    select_probe_shell,
)
from .equivalence import (
    EquivalenceReport,
    check_latency_equivalence,
    valid_stream,
)

__all__ = [
    "TAU",
    "Tau",
    "ShellBehavior",
    "Trace",
    "adder",
    "counter",
    "TraceSimulator",
    "simulate_trace",
    "RtlRelayStation",
    "RtlShell",
    "RtlSimulator",
    "simulate_rtl",
    "always_ready",
    "bursty",
    "periodic_stall",
    "rate_limited",
    "BACKENDS",
    "Backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "select_probe_shell",
    "crossvalidate",
    "EquivalenceReport",
    "check_latency_equivalence",
    "valid_stream",
    "measured_throughput",
    "effective_throughput",
]
