"""repro.server -- analysis-as-a-service on top of the engine.

A long-running asyncio HTTP/JSON-RPC front end for the
:class:`~repro.engine.AnalysisEngine`: request validation into engine
ops, **request coalescing by content fingerprint** (identical
in-flight requests collapse onto one future; completed results are
served from the engine's memo/disk cache under the very same SHA-256
key), sharded engine workers with bounded queues and load shedding
(``Retry-After``), per-request deadlines, streamed progress events,
and a queueing **self-model** -- the server tracks its own arrival
rate and service times and reports Little's Law / M/M/1 predicted
latency beside what it actually measured (``GET /stats``,
``repro serve --report``).

Start one from the CLI::

    python -m repro serve --port 8787 --shards 4 --cache .repro-cache

or in-process::

    from repro.server import AnalysisServer, ServerConfig

    async with AnalysisServer(ServerConfig(port=0)) as server:
        ...  # server.port is bound

Resilience: a :mod:`~repro.server.resilience` layer supervises the
shard workers (restarts + hung-op watchdog), gates each shard behind
a circuit breaker with healthy-sibling failover (content ops are
pure, so re-routing is safe), serves disk-cache hits when every shard
is down, and gives clients a jittered-backoff
:class:`~repro.server.resilience.RetryPolicy`.  A seeded server-level
chaos harness (:mod:`~repro.server.chaos`, ``repro chaos --server``)
validates the whole stack against termination / exactly-once /
agreement / recovery invariants.

See :mod:`repro.server.app` for the HTTP surface,
:mod:`repro.server.protocol` for the method table,
:mod:`repro.server.coalesce` for single-flight semantics,
:mod:`repro.server.pool` for sharding/admission,
:mod:`repro.server.resilience` for supervision/breakers/retries, and
:mod:`repro.server.qmodel` for the self-model.
"""

from .app import AnalysisServer, ServerConfig
from .chaos import (
    ServerChaosConfig,
    ServerChaosReport,
    run_server_campaign,
)
from .client import ServerClient, ServerError
from .coalesce import Coalescer
from .metrics import ServerMetrics
from .pool import ExecutionOutcome, ShardPool
from .protocol import METHODS, Job, RpcError, jsonify, parse_job
from .qmodel import QueueModel
from .resilience import CircuitBreaker, RetryPolicy, ShardSupervisor

__all__ = [
    "AnalysisServer",
    "ServerConfig",
    "ServerClient",
    "ServerError",
    "Coalescer",
    "ServerMetrics",
    "ExecutionOutcome",
    "ShardPool",
    "METHODS",
    "Job",
    "RpcError",
    "jsonify",
    "parse_job",
    "QueueModel",
    "CircuitBreaker",
    "RetryPolicy",
    "ShardSupervisor",
    "ServerChaosConfig",
    "ServerChaosReport",
    "run_server_campaign",
]
