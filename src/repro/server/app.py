"""The asyncio HTTP/JSON-RPC front end.

Analysis-as-a-service over stdlib :mod:`asyncio` streams -- no web
framework.  The surface:

* ``POST /rpc`` -- one JSON-RPC 2.0 call (``analyze``, ``size_queues``,
  ``simulate``, ``measure``, ``tail``); with ``params.stream: true``
  the response is chunked NDJSON progress events ending in the normal
  JSON-RPC envelope;
* ``GET /stats`` -- counters, coalescing/cache rates, resilience
  counters, and the queueing self-model (predicted vs observed
  latency);
* ``GET /healthz`` -- honest per-shard health (worker liveness,
  breaker state, queue depth, heartbeat age); ``503`` when no shard
  is serving, so load balancers can gate on it.

Request lifecycle: parse -> validate into a :class:`~.protocol.Job`
(whose content key *is* the engine cache key) -> coalesce in-flight
duplicates -> bounded shard queue (shed with ``Retry-After`` when
full) -> engine execution -> shared result fan-out.  Overload responds
``503``, an admission- or wait-deadline ``504``; everything else is a
``200`` JSON-RPC envelope, errors included, per JSON-RPC-over-HTTP
convention.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass

from .coalesce import Coalescer, InflightEntry
from .metrics import ServerMetrics
from .pool import ExecutionOutcome, ShardPool
from .protocol import (
    ALL_SHARDS_DOWN,
    DEADLINE_EXCEEDED,
    INVALID_REQUEST,
    OVERLOADED,
    PARSE_ERROR,
    Job,
    RpcError,
    jsonify,
    parse_job,
)
from .qmodel import QueueModel
from .resilience import ShardSupervisor

__all__ = ["AnalysisServer", "ServerConfig"]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServerConfig:
    """Tunables for one :class:`AnalysisServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (read back from .port after start)
    shards: int = 1
    engine_jobs: int = 1
    cache_dir: str | None = None
    cache_bytes: int | None = None
    #: In-memory memo entries per shard engine (0 disables caching --
    #: used by the load benchmark's uncached baseline).
    memo_size: int = 4096
    queue_limit: int = 64
    op_timeout: float | None = None
    coalesce: bool = True
    window: float = 60.0
    max_body: int = 16 * 1024 * 1024
    prewarm: bool = False
    #: Route around shards whose breaker is open (content ops are
    #: pure and content-keyed, so any shard can serve any key).
    failover: bool = True
    #: Run the :class:`~.resilience.ShardSupervisor` (worker restarts
    #: + hung-op watchdog).
    supervise: bool = True
    #: Supervisor check cadence in seconds.
    heartbeat_interval: float = 0.25
    #: Hung-op watchdog threshold in seconds (0 disables).
    hang_timeout: float = 30.0
    #: Per-shard circuit-breaker tuning.
    breaker_threshold: int = 5
    breaker_window: float = 30.0
    breaker_cooldown: float = 5.0


class AnalysisServer:
    """The analysis service (see module docstring).  Use::

        server = AnalysisServer(ServerConfig(port=0))
        await server.start()
        ...
        await server.close()
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.qmodel = QueueModel(
            servers=self.config.shards, window=self.config.window
        )
        self.metrics = ServerMetrics(self.qmodel)
        self.coalescer = Coalescer(enabled=self.config.coalesce)
        self.pool = ShardPool(
            shards=self.config.shards,
            engine_jobs=self.config.engine_jobs,
            cache_dir=self.config.cache_dir,
            cache_bytes=self.config.cache_bytes,
            memo_size=self.config.memo_size,
            op_timeout=self.config.op_timeout,
            queue_limit=self.config.queue_limit,
            qmodel=self.qmodel,
            failover=self.config.failover,
            breaker_threshold=self.config.breaker_threshold,
            breaker_window=self.config.breaker_window,
            breaker_cooldown=self.config.breaker_cooldown,
        )
        self.supervisor = ShardSupervisor(
            self.pool,
            interval=self.config.heartbeat_interval,
            hang_timeout=self.config.hang_timeout,
        )
        self._server: asyncio.base_events.Server | None = None
        self._started_at: float | None = None

    # -- lifecycle ----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with the ephemeral ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self.pool.start(prewarm=self.config.prewarm)
        if self.config.supervise:
            self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_at = time.monotonic()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # The supervisor must stop before the pool: a shutdown is not
        # a crash it should "fix" by restarting workers.
        await self.supervisor.close()
        await self.pool.close()

    async def __aenter__(self) -> "AnalysisServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- HTTP plumbing ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._route(*request, writer=writer)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One HTTP/1.1 request -> (method, path, headers, body), or
        None at EOF / on an unparseable preamble."""
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > self.config.max_body:
            return method, path, headers, None  # routed to 413
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        keep_alive: bool,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body
        )

    def _json_response(
        self,
        writer: asyncio.StreamWriter,
        payload: object,
        status: int = 200,
        keep_alive: bool = True,
        extra_headers: dict[str, str] | None = None,
    ) -> bool:
        body = json.dumps(payload).encode("utf-8")
        self._write_response(
            writer, status, body, keep_alive, extra_headers
        )
        return keep_alive

    # -- routing ------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        headers: dict[str, str],
        body: bytes | None,
        writer: asyncio.StreamWriter,
    ) -> bool:
        keep_alive = headers.get("connection", "").lower() != "close"
        path = path.split("?", 1)[0]
        if body is None:
            return self._json_response(
                writer,
                {"error": "request body too large"},
                status=413,
                keep_alive=False,
            )
        if method == "GET" and path == "/healthz":
            health = self.pool.health()
            return self._json_response(
                writer,
                health,
                status=200 if health["ok"] else 503,
                keep_alive=keep_alive,
            )
        if method == "GET" and path == "/stats":
            return self._json_response(
                writer, self.stats(), keep_alive=keep_alive
            )
        if method == "POST" and path == "/rpc":
            return await self._handle_rpc(body, writer, keep_alive)
        return self._json_response(
            writer,
            {"error": f"no route for {method} {path}"},
            status=404,
            keep_alive=keep_alive,
        )

    def stats(self) -> dict:
        """The ``/stats`` document."""
        out = self.metrics.as_dict(
            coalescer=self.coalescer,
            queue_depth=self.pool.depth(),
            resilience={
                **self.pool.resilience.as_dict(),
                "breakers": [
                    state.breaker.as_dict() for state in self.pool.states
                ],
            },
        )
        out["server"] = {
            "shards": self.config.shards,
            "engine_jobs": self.config.engine_jobs,
            "queue_limit": self.config.queue_limit,
            "coalesce": self.config.coalesce,
            "uptime_s": (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
        }
        return out

    # -- the RPC path -------------------------------------------------

    @staticmethod
    def _envelope(request_id, result=None, error: RpcError | None = None):
        if error is not None:
            return {
                "jsonrpc": "2.0",
                "id": request_id,
                "error": error.as_dict(),
            }
        return {"jsonrpc": "2.0", "id": request_id, "result": result}

    def _http_status(self, error: RpcError) -> tuple[int, dict]:
        if error.code in (OVERLOADED, ALL_SHARDS_DOWN):
            headers = {}
            if error.retry_after is not None:
                headers["Retry-After"] = f"{error.retry_after:.3f}"
            return 503, headers
        if error.code == DEADLINE_EXCEEDED:
            return 504, {}
        return 200, {}

    async def _handle_rpc(
        self, body: bytes, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> bool:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self.metrics.invalid += 1
            return self._json_response(
                writer,
                self._envelope(
                    None, error=RpcError(PARSE_ERROR, f"bad JSON: {exc}")
                ),
                status=400,
                keep_alive=keep_alive,
            )
        if not isinstance(payload, dict) or "method" not in payload:
            self.metrics.invalid += 1
            return self._json_response(
                writer,
                self._envelope(
                    None,
                    error=RpcError(
                        INVALID_REQUEST,
                        "expected a JSON-RPC object with a 'method'",
                    ),
                ),
                status=400,
                keep_alive=keep_alive,
            )
        request_id = payload.get("id")
        try:
            job = parse_job(
                str(payload["method"]), payload.get("params")
            )
        except RpcError as exc:
            self.metrics.invalid += 1
            return self._json_response(
                writer,
                self._envelope(request_id, error=exc),
                keep_alive=keep_alive,
            )

        self.metrics.record_request(job.method)
        if job.stream:
            return await self._run_streaming(
                job, request_id, writer, keep_alive
            )
        try:
            result = await self._run(job)
        except RpcError as exc:
            status, headers = self._http_status(exc)
            return self._json_response(
                writer,
                self._envelope(request_id, error=exc),
                status=status,
                keep_alive=keep_alive,
                extra_headers=headers,
            )
        return self._json_response(
            writer,
            self._envelope(request_id, result=result),
            keep_alive=keep_alive,
        )

    async def _start(self, job: Job, entry: InflightEntry):
        """The leader's computation: runs detached from any one HTTP
        connection, and folds the engine-stats delta into the metrics
        the moment the execution finishes -- even if every subscriber
        (the leader's connection included) timed out or went away."""
        outcome = await self.pool.execute(job, entry)
        self.metrics.record_execution(outcome.delta)
        return outcome

    async def _run(self, job: Job) -> dict:
        """Coalesce + execute one job; shared-outcome fan-out."""
        entry, leader = self.coalescer.admit(
            job.key, lambda e: self._start(job, e)
        )
        try:
            outcome = await self.coalescer.wait(
                entry, timeout=job.deadline_s
            )
        except asyncio.TimeoutError:
            self.metrics.deadline_exceeded += 1
            raise RpcError(
                DEADLINE_EXCEEDED,
                f"result not ready within "
                f"{(job.deadline_s or 0) * 1e3:.0f}ms "
                "(the computation continues for other subscribers)",
            ) from None
        except RpcError as exc:
            if exc.code in (OVERLOADED, ALL_SHARDS_DOWN):
                self.metrics.shed += 1
            elif exc.code == DEADLINE_EXCEEDED:
                self.metrics.deadline_exceeded += 1
            else:
                self.metrics.failed += 1
            raise
        assert isinstance(outcome, ExecutionOutcome)
        self.metrics.completed += 1
        if outcome.rendered is None:
            outcome.rendered = jsonify(outcome.value)
        return {
            "value": outcome.rendered,
            "meta": {
                "method": job.method,
                "fingerprint": job.key[:16],
                "coalesced": not leader,
                "shard": outcome.shard,
                "cache_served": outcome.cache_served,
                "queued_ms": outcome.queued_s * 1e3,
                "service_ms": outcome.service_s * 1e3,
            },
        }

    async def _run_streaming(
        self,
        job: Job,
        request_id,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> bool:
        """Chunked NDJSON: progress events, then the final envelope."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )

        def chunk(obj: object) -> None:
            data = (json.dumps(obj) + "\n").encode("utf-8")
            writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")

        events: asyncio.Queue = asyncio.Queue()
        entry, leader = self.coalescer.admit(
            job.key, lambda e: self._start(job, e)
        )
        entry.subscribers.append(events)
        if not leader:
            chunk({"event": "joined", "coalesced": True})
        waiter = asyncio.ensure_future(
            self.coalescer.wait(entry, timeout=job.deadline_s)
        )
        try:
            while not waiter.done():
                getter = asyncio.ensure_future(events.get())
                await asyncio.wait(
                    {getter, waiter},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if getter.done():
                    chunk(getter.result())
                    await writer.drain()
                else:
                    getter.cancel()
            while not events.empty():
                chunk(events.get_nowait())
            try:
                outcome = waiter.result()
            except asyncio.TimeoutError:
                self.metrics.deadline_exceeded += 1
                chunk(
                    self._envelope(
                        request_id,
                        error=RpcError(
                            DEADLINE_EXCEEDED, "deadline exceeded"
                        ),
                    )
                )
            except RpcError as exc:
                if exc.code == OVERLOADED:
                    self.metrics.shed += 1
                else:
                    self.metrics.failed += 1
                chunk(self._envelope(request_id, error=exc))
            else:
                assert isinstance(outcome, ExecutionOutcome)
                self.metrics.completed += 1
                if outcome.rendered is None:
                    outcome.rendered = jsonify(outcome.value)
                chunk(
                    self._envelope(
                        request_id,
                        result={
                            "value": outcome.rendered,
                            "meta": {
                                "method": job.method,
                                "coalesced": not leader,
                                "shard": outcome.shard,
                                "cache_served": outcome.cache_served,
                            },
                        },
                    )
                )
        finally:
            if events in entry.subscribers:
                entry.subscribers.remove(events)
            if not waiter.done():
                waiter.cancel()
        writer.write(b"0\r\n\r\n")
        return False  # streaming responses close the connection
