"""Request validation: JSON-RPC methods -> engine operations.

The server speaks JSON-RPC 2.0 over HTTP.  Each exposed *method* maps
onto one registered engine op with a whitelist of option keys; the
request's LIS payload is canonicalized through
:func:`repro.core.serialize` so that every spelling of the same system
-- a dict, pre-serialized JSON text, or a named example -- produces the
identical canonical text, the identical
:func:`~repro.engine.cache.content_key`, and therefore lands in the
same coalescing slot and cache entry.  The SHA-256 digests the engine
already uses as memo keys double as the dedup keys: request coalescing
costs nothing beyond the hash the cache needed anyway.

Security note: the server never touches the filesystem on behalf of a
request -- ``system`` names resolve against the built-in example/NoC
registry only, and LIS payloads must be inline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, is_dataclass
from enum import Enum
from fractions import Fraction
from typing import Any, Mapping

from ..core.serialize import lis_from_json, lis_to_json
from ..engine.cache import canonical_options, content_key

__all__ = [
    "METHODS",
    "MethodSpec",
    "RpcError",
    "Job",
    "parse_job",
    "jsonify",
    "resolve_named_system",
    "PARSE_ERROR",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "INVALID_PARAMS",
    "INTERNAL_ERROR",
    "OP_FAILED",
    "OVERLOADED",
    "DEADLINE_EXCEEDED",
    "SHUTTING_DOWN",
    "WORKER_CRASHED",
    "WATCHDOG_TIMEOUT",
    "ALL_SHARDS_DOWN",
]

# JSON-RPC 2.0 pre-defined error codes...
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
# ...and the server-defined range.
OP_FAILED = -32000
OVERLOADED = -32001
DEADLINE_EXCEEDED = -32002
SHUTTING_DOWN = -32003
#: The shard worker running the job died before finishing it; the job
#: produced no result and is safe to retry (content ops are pure).
WORKER_CRASHED = -32004
#: The hung-op watchdog killed the job's worker; safe to retry.
WATCHDOG_TIMEOUT = -32005
#: Every shard breaker is open and the disk cache had no answer.
ALL_SHARDS_DOWN = -32006


class RpcError(Exception):
    """A JSON-RPC error response carried as an exception.

    ``data`` rides in the error object's ``data`` member;
    ``retry_after`` (seconds) additionally surfaces as an HTTP
    ``Retry-After`` header on overload responses.
    """

    def __init__(
        self,
        code: int,
        message: str,
        data: object = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.data = data
        self.retry_after = retry_after

    def as_dict(self) -> dict:
        error: dict = {"code": self.code, "message": self.message}
        if self.data is not None:
            error["data"] = self.data
        return error


@dataclass(frozen=True)
class MethodSpec:
    """One exposed JSON-RPC method and the engine op behind it."""

    name: str
    op: str
    description: str
    #: Option keys forwarded verbatim into the engine op's options.
    allowed: frozenset[str] = field(default_factory=frozenset)
    #: Option keys that must be present.
    required: frozenset[str] = field(default_factory=frozenset)


METHODS: dict[str, MethodSpec] = {
    spec.name: spec
    for spec in (
        MethodSpec(
            "analyze",
            "analyze",
            "full analysis report (MST, bottlenecks, recommended fix)",
            allowed=frozenset({"method", "max_cycles"}),
        ),
        MethodSpec(
            "size_queues",
            "size_queues",
            "queue sizing through any registered solver",
            allowed=frozenset(
                {
                    "method",
                    "target",
                    "collapse",
                    "timeout",
                    "max_cycles",
                    "verify",
                }
            ),
        ),
        MethodSpec(
            "simulate",
            "simulate_batch",
            "batched simulation (fast kernel or schedule oracle)",
            allowed=frozenset(
                {
                    "assignments",
                    "clocks",
                    "warmup",
                    "check_feasible",
                    "backend",
                }
            ),
        ),
        MethodSpec(
            "measure",
            "measure",
            "single-shell throughput via a measurement backend",
            allowed=frozenset(
                {"backend", "shell", "clocks", "warmup", "extra_tokens"}
            ),
        ),
        MethodSpec(
            "tail",
            "tail_point",
            "Monte-Carlo + analytic tail-latency estimate",
            allowed=frozenset(
                {
                    "specs",
                    "clocks",
                    "trials",
                    "warmup",
                    "extra_tokens",
                    "node",
                    "work",
                    "quantiles",
                    "analytic",
                }
            ),
            required=frozenset({"specs"}),
        ),
    )
}


@dataclass(frozen=True)
class Job:
    """A validated request, normalized to its engine task.

    ``key`` is the engine's own content hash of ``(op, lis_json,
    options)`` -- the memo/disk-cache key -- so two jobs with equal
    keys are *provably* the same computation: they coalesce onto one
    in-flight future and one cache entry.
    """

    method: str
    op: str
    lis_json: str
    options: dict | None
    key: str
    deadline_s: float | None = None
    stream: bool = False

    @property
    def fingerprint(self) -> str:
        """The content key (used for shard routing)."""
        return self.key


def resolve_named_system(name: str) -> str:
    """Canonical LIS JSON for a built-in system name.

    Accepts the paper examples (``fig1``, ``fig15``, ...), the SoC
    case studies (``cofdm``, ``fig19``), and NoC shorthands
    (``mesh:RxC`` / ``torus:RxC``).  File paths are deliberately
    rejected -- the server must not read local files on behalf of a
    network peer.
    """
    from ..gen import examples as _examples
    from ..gen import generator as _generator

    named = {
        "fig1": _examples.fig1_lis,
        "fig2-right": _examples.fig2_right_lis,
        "fig15": _examples.fig15_lis,
        "fig10": _examples.fig10_limiter_lis,
        "uplink-downlink": _examples.uplink_downlink_lis,
    }
    if name in named:
        return lis_to_json(named[name]())
    if name == "cofdm":
        from ..soc import cofdm_transmitter

        return lis_to_json(cofdm_transmitter())
    if name == "fig19":
        from ..soc import fig19_scenario

        return lis_to_json(fig19_scenario())
    for prefix, torus in (("mesh:", False), ("torus:", True)):
        if name.startswith(prefix):
            rows, _, cols = name[len(prefix):].partition("x")
            try:
                return lis_to_json(
                    _generator.mesh_lis(int(rows), int(cols), torus=torus)
                )
            except (ValueError, _generator.GeneratorError) as exc:
                raise RpcError(
                    INVALID_PARAMS,
                    f"bad NoC spec {name!r} (want e.g. {prefix}4x4): {exc}",
                ) from None
    raise RpcError(
        INVALID_PARAMS,
        f"unknown system {name!r} (named systems: fig1, fig2-right, "
        f"fig10, fig15, uplink-downlink, cofdm, fig19, mesh:RxC, "
        f"torus:RxC; or pass the LIS inline via 'lis')",
    )


def _canonical_lis(params: Mapping) -> str:
    """The canonical serialized system named by ``params``: either an
    inline ``lis`` (dict or JSON text) or a built-in ``system`` name.
    Round-trips through :class:`~repro.core.lis_graph.LisGraph` so any
    spelling of the same content hashes identically."""
    lis = params.get("lis")
    system = params.get("system")
    if (lis is None) == (system is None):
        raise RpcError(
            INVALID_PARAMS,
            "params must carry exactly one of 'lis' "
            "(inline description) or 'system' (built-in name)",
        )
    if system is not None:
        if not isinstance(system, str):
            raise RpcError(INVALID_PARAMS, "'system' must be a string")
        return resolve_named_system(system)
    if isinstance(lis, Mapping):
        text = json.dumps(lis)
    elif isinstance(lis, str):
        text = lis
    else:
        raise RpcError(
            INVALID_PARAMS,
            "'lis' must be a serialized LIS object or its JSON text",
        )
    try:
        return lis_to_json(lis_from_json(text))
    except Exception as exc:
        raise RpcError(
            INVALID_PARAMS, f"invalid LIS description: {exc}"
        ) from None


def parse_job(method: str, params: object) -> Job:
    """Validate one JSON-RPC call into a :class:`Job` (or raise
    :class:`RpcError`)."""
    spec = METHODS.get(method)
    if spec is None:
        raise RpcError(
            METHOD_NOT_FOUND,
            f"unknown method {method!r} "
            f"(available: {', '.join(sorted(METHODS))})",
        )
    if params is None:
        params = {}
    if not isinstance(params, Mapping):
        raise RpcError(INVALID_PARAMS, "params must be an object")
    lis_json = _canonical_lis(params)

    options = params.get("options") or {}
    if not isinstance(options, Mapping):
        raise RpcError(INVALID_PARAMS, "'options' must be an object")
    unknown = set(options) - set(spec.allowed)
    if unknown:
        raise RpcError(
            INVALID_PARAMS,
            f"unknown option(s) for {method!r}: "
            f"{', '.join(sorted(unknown))} "
            f"(allowed: {', '.join(sorted(spec.allowed)) or 'none'})",
        )
    missing = set(spec.required) - set(options)
    if missing:
        raise RpcError(
            INVALID_PARAMS,
            f"{method!r} requires option(s): "
            f"{', '.join(sorted(missing))}",
        )
    # Round-trip the options through their canonical JSON so logically
    # equal spellings ({"clocks": 400} vs {"clocks": 400.0} stay
    # distinct, but key order never matters) hash identically.
    try:
        options = json.loads(canonical_options(dict(options)))
    except (TypeError, ValueError) as exc:
        raise RpcError(
            INVALID_PARAMS, f"options are not JSON-able: {exc}"
        ) from None

    deadline = params.get("deadline_ms")
    deadline_s: float | None = None
    if deadline is not None:
        try:
            deadline_s = float(deadline) / 1e3
        except (TypeError, ValueError):
            raise RpcError(
                INVALID_PARAMS, "'deadline_ms' must be a number"
            ) from None
        if deadline_s <= 0:
            raise RpcError(
                INVALID_PARAMS, "'deadline_ms' must be positive"
            )
    stream = bool(params.get("stream", False))

    options_or_none = options or None
    return Job(
        method=method,
        op=spec.op,
        lis_json=lis_json,
        options=options_or_none,
        key=content_key(spec.op, lis_json, options_or_none),
        deadline_s=deadline_s,
        stream=stream,
    )


def jsonify(value: Any) -> Any:
    """Engine results -> JSON-able structures.

    Fractions render as ``"p/q"`` strings (matching the benchmark
    JSONs and :func:`~repro.engine.cache.canonical_options`), enums as
    their values, dataclasses as field dicts, sets as sorted lists;
    anything else unrecognized falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonify(v) for v in value)
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonify(getattr(value, f.name))
            for f in fields(value)
        }
    return str(value)
