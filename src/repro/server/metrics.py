"""Server observability: request counters + engine-stat aggregation.

Bridges the three observability layers into one ``/stats`` document:

* request-level counters (received/completed/failed/shed/deadline),
* the engine's own per-request :class:`~repro.engine.EngineStats`
  *deltas* (snapshot/delta, so a long-lived server can attribute
  hits/misses per request instead of only cumulatively), and
* the :class:`~repro.server.qmodel.QueueModel` self-model.
"""

from __future__ import annotations

from ..engine.core import EngineStats
from .qmodel import QueueModel

__all__ = ["ServerMetrics"]


class ServerMetrics:
    """Mutable counter block owned by the server event loop (asyncio
    single-threaded, so plain attributes suffice)."""

    def __init__(self, qmodel: QueueModel) -> None:
        self.qmodel = qmodel
        self.received = 0
        self.completed = 0
        self.failed = 0
        self.invalid = 0
        self.shed = 0
        self.deadline_exceeded = 0
        self.per_method: dict[str, int] = {}
        #: Sum of every per-request engine-stats delta.
        self.engine = EngineStats()
        #: Requests whose engine delta was pure cache (no misses).
        self.cache_served = 0
        #: Executions actually run on a shard (coalescing leaders).
        self.executed = 0

    def record_request(self, method: str) -> None:
        self.received += 1
        self.per_method[method] = self.per_method.get(method, 0) + 1

    def record_execution(self, delta: EngineStats) -> None:
        """Fold one executed job's engine-stats delta in."""
        self.executed += 1
        if delta.misses == 0 and (delta.hits + delta.disk_hits) > 0:
            self.cache_served += 1
        agg = self.engine
        agg.batches += delta.batches
        agg.tasks += delta.tasks
        agg.wall_seconds += delta.wall_seconds
        agg.serialize_seconds += delta.serialize_seconds
        agg.retries += delta.retries
        agg.op_timeouts += delta.op_timeouts
        agg.pool_rebuilds += delta.pool_rebuilds
        agg.serial_fallbacks += delta.serial_fallbacks
        agg.failures += delta.failures
        agg.corrupt_entries += delta.corrupt_entries
        agg.checkpoint_hits += delta.checkpoint_hits
        for name, stats in delta.ops.items():
            into = agg.op(name)
            for field_name, value in stats.as_dict().items():
                setattr(
                    into, field_name, getattr(into, field_name) + value
                )
        agg.merge_context(delta.context)
        agg.merge_solver(delta.solver)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of executed jobs answered entirely from the
        engine's memo/disk cache."""
        return self.cache_served / self.executed if self.executed else 0.0

    def as_dict(
        self,
        coalescer=None,
        queue_depth: int | None = None,
        resilience: dict | None = None,
    ) -> dict:
        out: dict = {
            "requests": {
                "received": self.received,
                "completed": self.completed,
                "failed": self.failed,
                "invalid": self.invalid,
                "shed": self.shed,
                "deadline_exceeded": self.deadline_exceeded,
                "per_method": dict(self.per_method),
            },
            "cache": {
                "executed": self.executed,
                "cache_served": self.cache_served,
                "hit_rate": self.cache_hit_rate,
                "engine_hits": self.engine.hits,
                "engine_disk_hits": self.engine.disk_hits,
                "engine_misses": self.engine.misses,
            },
            "engine": self.engine.as_dict(),
            "queueing": self.qmodel.as_dict(),
        }
        if coalescer is not None:
            out["coalescing"] = {
                "enabled": coalescer.enabled,
                "leaders": coalescer.leaders,
                "followers": coalescer.followers,
                "rate": coalescer.coalesce_rate,
                "inflight": len(coalescer),
            }
        if queue_depth is not None:
            out["queue_depth"] = queue_depth
        if resilience is not None:
            out["resilience"] = resilience
        return out
