"""Sharded engine workers with admission control and supervision.

Execution substrate of the server: ``shards`` long-lived
:class:`~repro.engine.AnalysisEngine` handles, each owning a bounded
queue, a single dedicated executor thread, and (optionally) a process
pool for its ops.  Jobs are routed by content fingerprint, so repeated
content always lands on the shard whose in-memory LRU already holds it
-- the disk cache (shared, multi-process safe) backs all shards.

Admission control is load-shedding, not buffering: when a shard's
queue is full the request is rejected *immediately* with a
``Retry-After`` hint computed from the server's own queue model
(backlog x mean service time), because a bounded wait with an honest
retry hint beats an unbounded queue every time.  A request with a
deadline shorter than the predicted wait is likewise refused up front
-- the self-model (Little's Law) acting as the admission controller.

Resilience (see :mod:`~repro.server.resilience`): every shard carries
a :class:`~repro.server.resilience.CircuitBreaker` and per-job
heartbeat/in-flight records for the
:class:`~repro.server.resilience.ShardSupervisor`.  Routing fails
over to a healthy sibling while the primary's breaker is open
(content ops are pure and content-keyed, so re-routing is always
safe); with *every* breaker open the pool degrades to serving disk
cache hits only.  Shutdown and supervision share one guarantee: an
admitted job's ``done`` future always resolves -- with the result,
or with an honest :class:`~.protocol.RpcError` -- never by hanging.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..engine.core import AnalysisEngine, EngineStats
from .protocol import (
    ALL_SHARDS_DOWN,
    DEADLINE_EXCEEDED,
    OP_FAILED,
    OVERLOADED,
    SHUTTING_DOWN,
    WORKER_CRASHED,
    Job,
    RpcError,
)
from .qmodel import QueueModel
from .resilience import CircuitBreaker, ResilienceStats

if TYPE_CHECKING:  # pragma: no cover
    from .coalesce import InflightEntry

__all__ = ["ExecutionOutcome", "InflightJob", "ShardPool", "ShardState"]


@dataclass
class ExecutionOutcome:
    """The shared result of one executed (possibly coalesced) job."""

    value: object
    delta: EngineStats
    shard: int
    queued_s: float
    service_s: float
    #: Lazily cached JSON-able rendering (set by the app on first
    #: serialization so N coalesced subscribers serialize once).
    rendered: object = None
    #: True when the job ran on a shard other than its content-hash
    #: primary (the primary's breaker was open).
    failover: bool = False
    #: True when the result came straight off the disk cache with no
    #: shard serving (all breakers open).
    degraded: bool = False

    @property
    def cache_served(self) -> bool:
        return self.delta.misses == 0 and (
            self.delta.hits + self.delta.disk_hits > 0
        )


@dataclass
class InflightJob:
    """The job a shard worker is executing right now (watchdog food)."""

    job: Job
    entry: "InflightEntry"
    done: asyncio.Future
    t_arrival: float
    t_start: float


@dataclass
class ShardState:
    """Per-shard health record read by the supervisor and ``/healthz``."""

    index: int
    breaker: CircuitBreaker
    last_heartbeat: float
    inflight: InflightJob | None = None
    restarts: int = 0


class ShardPool:
    """``shards`` engine workers behind bounded queues.

    Args:
        shards: Engine workers (and executor threads).
        engine_jobs: Process-pool width per shard engine (1 = run ops
            in the shard thread; the engine's own timeout/retry
            machinery still applies to pooled ops).
        cache_dir: Shared disk-cache directory (multi-process safe).
        cache_bytes: Optional disk-cache size cap (oldest evicted).
        memo_size: In-memory memo entries per shard engine (0 turns
            result caching off entirely -- benchmark baselines).
        op_timeout: Per-op wall-clock budget handed to each engine.
        queue_limit: Bounded queue depth per shard; a full queue sheds.
        qmodel: The server's queue model (arrivals/departures are
            recorded here so the self-model sees exactly the admitted
            executions).
        failover: Route around shards whose breaker is open (content
            ops are pure, so any shard can serve any key).
        breaker_threshold / breaker_window / breaker_cooldown:
            Per-shard :class:`~.resilience.CircuitBreaker` tuning.
    """

    def __init__(
        self,
        shards: int = 1,
        engine_jobs: int = 1,
        cache_dir=None,
        cache_bytes: int | None = None,
        memo_size: int = 4096,
        op_timeout: float | None = None,
        queue_limit: int = 64,
        qmodel: QueueModel | None = None,
        failover: bool = True,
        breaker_threshold: int = 5,
        breaker_window: float = 30.0,
        breaker_cooldown: float = 5.0,
    ) -> None:
        self.shards = max(1, int(shards))
        self.engine_jobs = max(1, int(engine_jobs))
        self.cache_dir = cache_dir
        self.cache_bytes = cache_bytes
        self.memo_size = max(0, int(memo_size))
        self.op_timeout = op_timeout
        self.queue_limit = max(1, int(queue_limit))
        self.qmodel = qmodel or QueueModel(servers=self.shards)
        self.failover = bool(failover)
        self.resilience = ResilienceStats()
        self.states: list[ShardState] = [
            ShardState(
                index=idx,
                breaker=CircuitBreaker(
                    threshold=breaker_threshold,
                    window=breaker_window,
                    cooldown=breaker_cooldown,
                ),
                last_heartbeat=time.monotonic(),
            )
            for idx in range(self.shards)
        ]
        self.engines: list[AnalysisEngine] = []
        self._queues: list[asyncio.Queue] = []
        self._executors: list[ThreadPoolExecutor] = []
        self._workers: list[asyncio.Task | None] = []
        self._started = False
        self._closing = False
        #: Jobs admitted to a shard queue (qmodel arrivals).
        self.admitted = 0
        #: Admitted jobs whose ``done`` future was resolved -- result
        #: or error.  The chaos invariant: after drain, equals
        #: ``admitted``; no admitted request may hang.
        self.terminals = 0
        #: Chaos seam: called as ``hook(shard, job)`` in the worker
        #: thread right before the engine runs -- raising injects an
        #: executor exception, sleeping injects executor latency.
        self.chaos_hook: Callable[[int, Job], None] | None = None

    # -- lifecycle ----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._started and not self._closing

    def start(self, prewarm: bool = False) -> None:
        """Build engines, queues, and worker tasks (event loop
        required).  ``prewarm`` spins each engine's process pool up
        before the first request."""
        if self._started:
            return
        self._started = True
        now = time.monotonic()
        for idx in range(self.shards):
            self.engines.append(self._build_engine(prewarm=prewarm))
            self._queues.append(asyncio.Queue(maxsize=self.queue_limit))
            self._executors.append(self._build_executor(idx))
            self.states[idx].last_heartbeat = now
            self._workers.append(self._spawn_worker(idx))

    def _build_engine(self, prewarm: bool = False) -> AnalysisEngine:
        engine = AnalysisEngine(
            jobs=self.engine_jobs,
            cache_size=self.memo_size,
            cache_dir=self.cache_dir,
            op_timeout=self.op_timeout,
        )
        if self.cache_bytes is not None and engine._disk is not None:
            engine._disk.max_bytes = self.cache_bytes
        if prewarm:
            engine.prewarm()
        return engine

    def _build_executor(self, idx: int) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-{idx}"
        )

    def _spawn_worker(self, idx: int) -> asyncio.Task:
        return asyncio.get_running_loop().create_task(
            self._worker(idx), name=f"repro-shard-worker-{idx}"
        )

    def worker_task(self, idx: int) -> asyncio.Task | None:
        if not self._started or idx >= len(self._workers):
            return None
        return self._workers[idx]

    def kill_worker(self, idx: int) -> None:
        """Chaos helper: make shard ``idx``'s drain loop die exactly
        the way an escaped exception would -- the task ends, any
        in-flight record is left orphaned for the supervisor."""
        task = self.worker_task(idx)
        if task is not None and not task.done():
            task.cancel()

    def restart_shard(
        self,
        idx: int,
        rebuild_engine: bool = False,
        abandon_executor: bool = False,
    ) -> None:
        """Replace shard ``idx``'s worker task (supervisor action).

        ``abandon_executor`` swaps in a fresh executor thread, leaving
        a wedged one to finish (or never finish) unobserved;
        ``rebuild_engine`` replaces the engine handle too -- the stuck
        op may be wedged *inside* the engine's process pool, and a
        fresh worker must not inherit it.
        """
        if not self._started or self._closing:
            return
        state = self.states[idx]
        task = self._workers[idx]
        if task is not None and not task.done():
            task.cancel()
        if abandon_executor:
            self._executors[idx].shutdown(wait=False, cancel_futures=True)
            self._executors[idx] = self._build_executor(idx)
        if rebuild_engine:
            old = self.engines[idx]
            self.engines[idx] = self._build_engine()
            self.resilience.engine_rebuilds += 1
            try:
                old.close()
            except Exception:  # pragma: no cover - defensive
                pass
        state.inflight = None
        state.restarts += 1
        state.last_heartbeat = time.monotonic()
        self.resilience.worker_restarts += 1
        self._workers[idx] = self._spawn_worker(idx)

    async def close(self) -> None:
        """Stop accepting, stop the workers, and fail every job that
        never got an answer -- queued or in flight -- with an honest
        ``SHUTTING_DOWN`` error.  Concurrent ``execute()`` awaiters
        must *never* hang on shutdown."""
        self._closing = True
        for task in self._workers:
            if task is not None:
                task.cancel()
        for task in self._workers:
            if task is None:
                continue
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        # Orphans first (jobs a worker had in flight)...
        for idx in range(len(self.states)):
            self.fail_inflight(
                idx,
                RpcError(
                    SHUTTING_DOWN,
                    "server shut down while the job was running",
                ),
                counter="shutdown_failed",
            )
        # ...then everything still queued and never started.
        for queue in self._queues:
            while not queue.empty():
                job, entry, done, t_arrival = queue.get_nowait()
                if done.done():
                    continue
                self.qmodel.record_departure(
                    time.monotonic() - t_arrival, 0.0
                )
                self.terminals += 1
                self.resilience.shutdown_failed += 1
                self._publish(
                    entry,
                    {"event": "done", "ok": False, "shard": None},
                )
                done.set_exception(
                    RpcError(
                        SHUTTING_DOWN,
                        "server shut down before the job ran",
                    )
                )
        # A wedged executor thread must not block shutdown; abandoned
        # ops resolve nothing (their futures are already failed).
        for executor in self._executors:
            executor.shutdown(wait=False, cancel_futures=True)
        for engine in self.engines:
            engine.close()
        self._workers.clear()
        self._started = False

    # -- routing & admission ------------------------------------------

    def shard_of(self, key: str) -> int:
        """Deterministic content-hash routing: equal content, equal
        shard (and therefore one warm in-memory LRU entry)."""
        return int(key[:8], 16) % self.shards

    def route(self, key: str) -> tuple[int | None, bool]:
        """Pick the serving shard: the content-hash primary, or --
        when its breaker is open and failover is on -- the first
        healthy sibling walking up from it.  ``(None, False)`` means
        every breaker refused (degraded mode decides next)."""
        primary = self.shard_of(key)
        if self.states[primary].breaker.allow():
            return primary, False
        if not self.failover or self.shards == 1:
            return None, False
        for step in range(1, self.shards):
            idx = (primary + step) % self.shards
            if self.states[idx].breaker.allow():
                self.resilience.failovers += 1
                return idx, True
        return None, False

    def depth(self) -> int:
        return sum(queue.qsize() for queue in self._queues)

    def predicted_wait(self, shard: int) -> float:
        """Self-modeled queue wait for a new arrival on ``shard``:
        backlog x mean service time (Little's Law's drain estimate)."""
        backlog = self._queues[shard].qsize()
        return backlog * max(self.qmodel.service_mean(), 0.0)

    def retry_after(self, shard: int) -> float:
        """An honest Retry-After hint: time for the full backlog to
        drain, clamped to something a client can act on."""
        service = self.qmodel.service_mean() or 0.05
        return min(max(self._queues[shard].qsize() * service, 0.05), 30.0)

    def health(self) -> dict:
        """Per-shard health for ``/healthz``: worker liveness, breaker
        state, queue depth, heartbeat age.  ``ok`` iff at least one
        shard is serving."""
        now = time.monotonic()
        shards = []
        serving = 0
        for idx, state in enumerate(self.states):
            worker = self.worker_task(idx)
            alive = worker is not None and not worker.done()
            breaker = state.breaker.state
            ok = alive and breaker != "open" and self.running
            serving += bool(ok)
            shards.append(
                {
                    "shard": idx,
                    "ok": ok,
                    "worker_alive": alive,
                    "breaker": breaker,
                    "queue_depth": (
                        self._queues[idx].qsize()
                        if idx < len(self._queues)
                        else 0
                    ),
                    "heartbeat_age_s": now - state.last_heartbeat,
                    "inflight": state.inflight is not None,
                    "restarts": state.restarts,
                }
            )
        return {
            "ok": serving > 0,
            "serving": serving,
            "shards": shards,
            "degraded": serving == 0 and self.cache_dir is not None,
        }

    async def execute(
        self, job: Job, entry: "InflightEntry"
    ) -> ExecutionOutcome:
        """Admit and run one leader job; the awaited outcome resolves
        the coalescer's shared future via the caller."""
        if not self.running:
            raise RpcError(SHUTTING_DOWN, "server is not running")
        shard, failed_over = self.route(job.key)
        if shard is None:
            outcome = self._degraded_lookup(job)
            if outcome is not None:
                self.resilience.degraded_served += 1
                self._publish(
                    entry,
                    {"event": "done", "ok": True, "shard": None,
                     "degraded": True},
                )
                return outcome
            self.resilience.all_shards_down += 1
            raise RpcError(
                ALL_SHARDS_DOWN,
                f"all {self.shards} shard(s) are unavailable and the "
                "disk cache has no answer; retry after the breaker "
                "cooldown",
                data={"shards": self.shards},
                retry_after=self._min_cooldown(),
            )
        queue = self._queues[shard]
        if queue.full():
            raise RpcError(
                OVERLOADED,
                f"shard {shard} queue is full "
                f"({self.queue_limit} jobs deep); retry later",
                data={"shard": shard, "queue_depth": queue.qsize()},
                retry_after=self.retry_after(shard),
            )
        predicted = self.predicted_wait(shard)
        if job.deadline_s is not None and predicted > job.deadline_s:
            raise RpcError(
                DEADLINE_EXCEEDED,
                f"deadline {job.deadline_s * 1e3:.0f}ms is shorter than "
                f"the predicted queue wait {predicted * 1e3:.0f}ms; "
                "shedding at admission",
                data={
                    "predicted_wait_ms": predicted * 1e3,
                    "shard": shard,
                },
                retry_after=self.retry_after(shard),
            )
        done: asyncio.Future = asyncio.get_running_loop().create_future()
        self.qmodel.record_arrival()
        self.admitted += 1
        self._publish(
            entry,
            {
                "event": "accepted",
                "shard": shard,
                "failover": failed_over,
                "position": queue.qsize(),
                "predicted_wait_ms": predicted * 1e3,
            },
        )
        queue.put_nowait((job, entry, done, time.monotonic()))
        outcome = await done
        if failed_over and isinstance(outcome, ExecutionOutcome):
            outcome.failover = True
        return outcome

    def _min_cooldown(self) -> float:
        remaining = [s.breaker.remaining() for s in self.states]
        return min(max(min(remaining), 0.05), 30.0) if remaining else 1.0

    def _degraded_lookup(self, job: Job) -> ExecutionOutcome | None:
        """All-shards-down fallback: a pure disk-cache read, no engine
        involved.  Content keys are the disk-cache keys, so a prior
        execution of the identical job anywhere serves this one."""
        seen = set()
        for engine in self.engines:
            disk = engine._disk
            if disk is None or id(disk) in seen:
                continue
            seen.add(id(disk))
            try:
                value = disk.get(job.op, job.key)
            except KeyError:
                continue
            delta = EngineStats()
            op_stats = delta.op(job.op)
            op_stats.calls += 1
            op_stats.disk_hits += 1
            return ExecutionOutcome(
                value=value,
                delta=delta,
                shard=-1,
                queued_s=0.0,
                service_s=0.0,
                degraded=True,
            )
        return None

    # -- terminal accounting ------------------------------------------

    @staticmethod
    def _publish(entry: "InflightEntry", event: dict) -> None:
        """Publish a progress event; a broken subscriber must never
        take the worker (or shutdown) down with it."""
        try:
            entry.publish(event)
        except Exception:  # pragma: no cover - defensive
            pass

    def fail_inflight(
        self, idx: int, error: RpcError, counter: str = "orphans_failed"
    ) -> bool:
        """Resolve shard ``idx``'s orphaned in-flight future with
        ``error`` (supervisor/shutdown path).  Exactly-once: a future
        the worker already resolved is left alone."""
        state = self.states[idx]
        inflight, state.inflight = state.inflight, None
        if inflight is None or inflight.done.done():
            return False
        now = time.monotonic()
        self.qmodel.record_departure(
            max(inflight.t_start - inflight.t_arrival, 0.0),
            max(now - inflight.t_start, 0.0),
        )
        self.terminals += 1
        setattr(
            self.resilience,
            counter,
            getattr(self.resilience, counter) + 1,
        )
        self._publish(
            inflight.entry,
            {
                "event": "done",
                "shard": idx,
                "ok": False,
                "orphaned": True,
            },
        )
        inflight.done.set_exception(error)
        return True

    # -- the shard worker ---------------------------------------------

    async def _worker(self, idx: int) -> None:
        """The drain loop.  Hardened: *nothing* a job does -- not the
        engine, not a progress subscriber, not result bookkeeping --
        may kill the loop silently.  An unexpected error resolves the
        job's future with an honest error and the loop keeps
        draining; a genuinely dying loop is the supervisor's problem
        (it restarts the worker and fails the orphan)."""
        queue = self._queues[idx]
        state = self.states[idx]
        while True:
            job, entry, done, t_arrival = await queue.get()
            state.last_heartbeat = time.monotonic()
            try:
                await self._run_one(idx, job, entry, done, t_arrival)
            except asyncio.CancelledError:
                queue.task_done()
                raise
            except Exception as exc:
                # The legacy failure mode: an exception outside the
                # engine call (e.g. in entry.publish) used to kill
                # this loop and hang every subscriber.
                self._settle(
                    idx,
                    job,
                    entry,
                    done,
                    t_arrival,
                    time.monotonic(),
                    None,
                    error=RpcError(
                        WORKER_CRASHED,
                        f"shard {idx} worker error outside the engine: "
                        f"{type(exc).__name__}: {exc}",
                    ),
                )
                queue.task_done()
            else:
                queue.task_done()

    async def _run_one(
        self,
        idx: int,
        job: Job,
        entry: "InflightEntry",
        done: asyncio.Future,
        t_arrival: float,
    ) -> None:
        loop = asyncio.get_running_loop()
        state = self.states[idx]
        engine = self.engines[idx]
        executor = self._executors[idx]
        t_start = time.monotonic()
        state.inflight = InflightJob(job, entry, done, t_arrival, t_start)
        self._publish(
            entry,
            {
                "event": "started",
                "shard": idx,
                "queued_ms": (t_start - t_arrival) * 1e3,
            },
        )
        before = engine.stats.snapshot()
        try:
            value = await loop.run_in_executor(
                executor, self._run_engine, idx, engine, job
            )
            error: RpcError | None = None
        except RpcError as exc:
            value, error = None, exc
        except Exception as exc:
            value, error = None, RpcError(OP_FAILED, str(exc))
        delta = engine.stats.delta(before)
        self._settle(
            idx,
            job,
            entry,
            done,
            t_arrival,
            t_start,
            value,
            delta=delta,
            error=error,
        )

    def _settle(
        self,
        idx: int,
        job: Job,
        entry: "InflightEntry",
        done: asyncio.Future,
        t_arrival: float,
        t_start: float,
        value: object,
        delta: EngineStats | None = None,
        error: RpcError | None = None,
    ) -> None:
        """Resolve one job's future exactly once, with the departure
        recorded and the shard's breaker fed."""
        state = self.states[idx]
        state.inflight = None
        state.last_heartbeat = time.monotonic()
        if done.done():
            # The supervisor (or shutdown) already answered the
            # subscribers; this late result must not double-count.
            return
        queued_s = max(t_start - t_arrival, 0.0)
        service_s = max(time.monotonic() - t_start, 0.0)
        self.qmodel.record_departure(queued_s, service_s)
        self.terminals += 1
        if error is None:
            state.breaker.record_success()
        else:
            state.breaker.record_failure()
        outcome = ExecutionOutcome(
            value=value,
            delta=delta if delta is not None else EngineStats(),
            shard=idx,
            queued_s=queued_s,
            service_s=service_s,
        )
        self._publish(
            entry,
            {
                "event": "done",
                "shard": idx,
                "ok": error is None,
                "service_ms": service_s * 1e3,
                "cache_served": outcome.cache_served,
            },
        )
        if error is not None:
            done.set_exception(error)
        else:
            done.set_result(outcome)

    def _run_engine(
        self, idx: int, engine: AnalysisEngine, job: Job
    ) -> object:
        """Thread body: one engine batch of one task; op failures
        (including engine-level timeouts after retries) surface as
        :class:`RpcError`."""
        hook = self.chaos_hook
        if hook is not None:
            hook(idx, job)
        result = engine.run(
            [(job.op, job.lis_json, job.options)], return_exceptions=True
        )[0]
        if isinstance(result, BaseException):
            raise RpcError(
                OP_FAILED,
                f"{job.op} failed: "
                f"{type(result).__name__}: {result}",
            )
        return result
