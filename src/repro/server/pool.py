"""Sharded engine workers with admission control.

Execution substrate of the server: ``shards`` long-lived
:class:`~repro.engine.AnalysisEngine` handles, each owning a bounded
queue, a single dedicated executor thread, and (optionally) a process
pool for its ops.  Jobs are routed by content fingerprint, so repeated
content always lands on the shard whose in-memory LRU already holds it
-- the disk cache (shared, multi-process safe) backs all shards.

Admission control is load-shedding, not buffering: when a shard's
queue is full the request is rejected *immediately* with a
``Retry-After`` hint computed from the server's own queue model
(backlog x mean service time), because a bounded wait with an honest
retry hint beats an unbounded queue every time.  A request with a
deadline shorter than the predicted wait is likewise refused up front
-- the self-model (Little's Law) acting as the admission controller.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..engine.core import AnalysisEngine, EngineStats
from .protocol import (
    DEADLINE_EXCEEDED,
    OP_FAILED,
    OVERLOADED,
    SHUTTING_DOWN,
    Job,
    RpcError,
)
from .qmodel import QueueModel

if TYPE_CHECKING:  # pragma: no cover
    from .coalesce import InflightEntry

__all__ = ["ExecutionOutcome", "ShardPool"]


@dataclass
class ExecutionOutcome:
    """The shared result of one executed (possibly coalesced) job."""

    value: object
    delta: EngineStats
    shard: int
    queued_s: float
    service_s: float
    #: Lazily cached JSON-able rendering (set by the app on first
    #: serialization so N coalesced subscribers serialize once).
    rendered: object = None

    @property
    def cache_served(self) -> bool:
        return self.delta.misses == 0 and (
            self.delta.hits + self.delta.disk_hits > 0
        )


class ShardPool:
    """``shards`` engine workers behind bounded queues.

    Args:
        shards: Engine workers (and executor threads).
        engine_jobs: Process-pool width per shard engine (1 = run ops
            in the shard thread; the engine's own timeout/retry
            machinery still applies to pooled ops).
        cache_dir: Shared disk-cache directory (multi-process safe).
        cache_bytes: Optional disk-cache size cap (oldest evicted).
        memo_size: In-memory memo entries per shard engine (0 turns
            result caching off entirely -- benchmark baselines).
        op_timeout: Per-op wall-clock budget handed to each engine.
        queue_limit: Bounded queue depth per shard; a full queue sheds.
        qmodel: The server's queue model (arrivals/departures are
            recorded here so the self-model sees exactly the admitted
            executions).
    """

    def __init__(
        self,
        shards: int = 1,
        engine_jobs: int = 1,
        cache_dir=None,
        cache_bytes: int | None = None,
        memo_size: int = 4096,
        op_timeout: float | None = None,
        queue_limit: int = 64,
        qmodel: QueueModel | None = None,
    ) -> None:
        self.shards = max(1, int(shards))
        self.engine_jobs = max(1, int(engine_jobs))
        self.cache_dir = cache_dir
        self.cache_bytes = cache_bytes
        self.memo_size = max(0, int(memo_size))
        self.op_timeout = op_timeout
        self.queue_limit = max(1, int(queue_limit))
        self.qmodel = qmodel or QueueModel(servers=self.shards)
        self.engines: list[AnalysisEngine] = []
        self._queues: list[asyncio.Queue] = []
        self._executors: list[ThreadPoolExecutor] = []
        self._workers: list[asyncio.Task] = []
        self._started = False

    # -- lifecycle ----------------------------------------------------

    def start(self, prewarm: bool = False) -> None:
        """Build engines, queues, and worker tasks (event loop
        required).  ``prewarm`` spins each engine's process pool up
        before the first request."""
        if self._started:
            return
        self._started = True
        for idx in range(self.shards):
            engine = AnalysisEngine(
                jobs=self.engine_jobs,
                cache_size=self.memo_size,
                cache_dir=self.cache_dir,
                op_timeout=self.op_timeout,
            )
            if self.cache_bytes is not None and engine._disk is not None:
                engine._disk.max_bytes = self.cache_bytes
            if prewarm:
                engine.prewarm()
            self.engines.append(engine)
            self._queues.append(asyncio.Queue(maxsize=self.queue_limit))
            self._executors.append(
                ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix=f"repro-shard-{idx}",
                )
            )
            self._workers.append(
                asyncio.get_running_loop().create_task(
                    self._worker(idx), name=f"repro-shard-worker-{idx}"
                )
            )

    async def close(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for executor in self._executors:
            executor.shutdown(wait=True, cancel_futures=True)
        for engine in self.engines:
            engine.close()
        self._workers.clear()

    # -- routing & admission ------------------------------------------

    def shard_of(self, key: str) -> int:
        """Deterministic content-hash routing: equal content, equal
        shard (and therefore one warm in-memory LRU entry)."""
        return int(key[:8], 16) % self.shards

    def depth(self) -> int:
        return sum(queue.qsize() for queue in self._queues)

    def predicted_wait(self, shard: int) -> float:
        """Self-modeled queue wait for a new arrival on ``shard``:
        backlog x mean service time (Little's Law's drain estimate)."""
        backlog = self._queues[shard].qsize()
        return backlog * max(self.qmodel.service_mean(), 0.0)

    def retry_after(self, shard: int) -> float:
        """An honest Retry-After hint: time for the full backlog to
        drain, clamped to something a client can act on."""
        service = self.qmodel.service_mean() or 0.05
        return min(max(self._queues[shard].qsize() * service, 0.05), 30.0)

    async def execute(
        self, job: Job, entry: "InflightEntry"
    ) -> ExecutionOutcome:
        """Admit and run one leader job; the awaited outcome resolves
        the coalescer's shared future via the caller."""
        if not self._started:
            raise RpcError(SHUTTING_DOWN, "server is not running")
        shard = self.shard_of(job.key)
        queue = self._queues[shard]
        if queue.full():
            raise RpcError(
                OVERLOADED,
                f"shard {shard} queue is full "
                f"({self.queue_limit} jobs deep); retry later",
                data={"shard": shard, "queue_depth": queue.qsize()},
                retry_after=self.retry_after(shard),
            )
        predicted = self.predicted_wait(shard)
        if job.deadline_s is not None and predicted > job.deadline_s:
            raise RpcError(
                DEADLINE_EXCEEDED,
                f"deadline {job.deadline_s * 1e3:.0f}ms is shorter than "
                f"the predicted queue wait {predicted * 1e3:.0f}ms; "
                "shedding at admission",
                data={
                    "predicted_wait_ms": predicted * 1e3,
                    "shard": shard,
                },
                retry_after=self.retry_after(shard),
            )
        done: asyncio.Future = asyncio.get_running_loop().create_future()
        self.qmodel.record_arrival()
        entry.publish(
            {
                "event": "accepted",
                "shard": shard,
                "position": queue.qsize(),
                "predicted_wait_ms": predicted * 1e3,
            }
        )
        queue.put_nowait((job, entry, done, time.monotonic()))
        return await done

    # -- the shard worker ---------------------------------------------

    async def _worker(self, idx: int) -> None:
        loop = asyncio.get_running_loop()
        engine = self.engines[idx]
        executor = self._executors[idx]
        queue = self._queues[idx]
        while True:
            job, entry, done, t_arrival = await queue.get()
            t_start = time.monotonic()
            queued_s = t_start - t_arrival
            entry.publish(
                {
                    "event": "started",
                    "shard": idx,
                    "queued_ms": queued_s * 1e3,
                }
            )
            before = engine.stats.snapshot()
            try:
                value = await loop.run_in_executor(
                    executor, self._run_engine, engine, job
                )
                error: BaseException | None = None
            except RpcError as exc:
                value, error = None, exc
            except Exception as exc:  # pragma: no cover - defensive
                value, error = None, RpcError(OP_FAILED, str(exc))
            service_s = time.monotonic() - t_start
            delta = engine.stats.delta(before)
            self.qmodel.record_departure(queued_s, service_s)
            outcome = ExecutionOutcome(
                value=value,
                delta=delta,
                shard=idx,
                queued_s=queued_s,
                service_s=service_s,
            )
            entry.publish(
                {
                    "event": "done",
                    "shard": idx,
                    "ok": error is None,
                    "service_ms": service_s * 1e3,
                    "cache_served": outcome.cache_served,
                }
            )
            if not done.done():
                if error is not None:
                    done.set_exception(error)
                else:
                    done.set_result(outcome)
            queue.task_done()

    @staticmethod
    def _run_engine(engine: AnalysisEngine, job: Job) -> object:
        """Thread body: one engine batch of one task; op failures
        (including engine-level timeouts after retries) surface as
        :class:`RpcError`."""
        result = engine.run(
            [(job.op, job.lis_json, job.options)], return_exceptions=True
        )[0]
        if isinstance(result, BaseException):
            raise RpcError(
                OP_FAILED,
                f"{job.op} failed: "
                f"{type(result).__name__}: {result}",
            )
        return result
