"""The server's self-model: Little's Law and M/M/1 applied to itself.

Hill's "Three Other Models of Computer System Performance" argues that
bottleneck analysis, Little's Law, and M/M/1 belong in every systems
engineer's working set; here the analysis server *is* the queueing
system and carries its own model.  Online it tracks

* the arrival rate ``lambda`` (admitted executions per second over a
  sliding window),
* the service-time distribution ``S`` (mean and coefficient of
  variation, by Welford's algorithm),
* observed waiting/residence latencies (bounded reservoir; exact
  order-statistic percentiles over the retained samples), and
* the time-integral of the in-system request count (for Little's Law).

From ``lambda`` and ``S`` it predicts, per M/M/1 (and its
measured-variance refinement M/G/1 via Pollaczek-Khinchine):

* utilization ``rho = lambda * E[S] / servers``,
* mean queue wait ``Wq = rho * E[S] / (1 - rho)``,
* mean residence ``W = E[S] / (1 - rho)``, and
* residence percentiles ``W_p = W * ln(1/(1-p))`` (M/M/1 residence is
  exponential with rate ``mu - lambda``).

``/stats`` reports the predictions beside the observations, so a load
test reads as a direct predicted-vs-observed experiment -- the repo
analyzed by its own theory.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Callable

__all__ = ["QueueModel"]

_MS = 1e3


def _percentile(sorted_samples: list[float], q: float) -> float:
    """Type-1 (inverse-CDF) percentile of pre-sorted samples."""
    if not sorted_samples:
        return 0.0
    rank = max(0, math.ceil(q * len(sorted_samples)) - 1)
    return sorted_samples[min(rank, len(sorted_samples) - 1)]


class QueueModel:
    """Online arrival/service/latency tracker with queueing-theoretic
    predictions (see module docstring).

    Args:
        servers: Effective number of parallel servers (shards); the
            M/M/1 formulas are applied per server at ``lambda /
            servers``, exact for 1 and the standard independence
            approximation above.
        window: Sliding window in seconds for the arrival-rate
            estimate.
        sample_limit: Latency samples retained for percentiles.
        clock: Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        servers: int = 1,
        window: float = 60.0,
        sample_limit: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.servers = max(1, int(servers))
        self.window = float(window)
        self._clock = clock
        self._t0 = clock()
        # Arrivals (admitted executions).
        self._arrivals: deque[float] = deque()
        self.arrivals_total = 0
        # Service times: Welford mean/variance.
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.busy_seconds = 0.0
        # Latency reservoirs (most recent ``sample_limit``).
        self._waits: deque[float] = deque(maxlen=sample_limit)
        self._residences: deque[float] = deque(maxlen=sample_limit)
        # Time-integral of the in-system count (Little's Law's L).
        self._inflight = 0
        self._area = 0.0
        self._last_change = self._t0
        # Supervisor disruptions (worker restarts, watchdog kills):
        # markers for reading predicted-vs-observed across failures.
        self.disruptions = 0
        self._last_disruption: float | None = None

    # -- recording ----------------------------------------------------

    def _advance(self) -> float:
        now = self._clock()
        self._area += self._inflight * (now - self._last_change)
        self._last_change = now
        return now

    def record_arrival(self) -> None:
        """An execution was admitted (leader entering a shard queue)."""
        now = self._advance()
        self._inflight += 1
        self.arrivals_total += 1
        self._arrivals.append(now)
        cutoff = now - self.window
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()

    def record_departure(self, wait_s: float, service_s: float) -> None:
        """An admitted execution finished: ``wait_s`` in queue,
        ``service_s`` on an engine shard."""
        self._advance()
        self._inflight = max(0, self._inflight - 1)
        self._n += 1
        delta = service_s - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (service_s - self._mean)
        self.busy_seconds += service_s
        self._waits.append(wait_s)
        self._residences.append(wait_s + service_s)

    def note_disruption(self) -> None:
        """The supervisor restarted a worker or killed a hung op.
        The model's state survives (waits recorded for orphans keep
        the exactly-once accounting honest); the marker lets readers
        correlate prediction error with failure events."""
        self.disruptions += 1
        self._last_disruption = self._clock()

    # -- estimates ----------------------------------------------------

    @property
    def elapsed(self) -> float:
        return max(self._clock() - self._t0, 1e-9)

    def arrival_rate(self) -> float:
        """``lambda``: admitted executions per second over the
        sliding window (or the whole lifetime when younger)."""
        now = self._clock()
        cutoff = now - self.window
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()
        span = min(self.window, max(now - self._t0, 1e-9))
        return len(self._arrivals) / span

    def service_mean(self) -> float:
        return self._mean

    def service_cv2(self) -> float:
        """Squared coefficient of variation of the service time
        (1 for exponential, 0 for deterministic)."""
        if self._n < 2 or self._mean <= 0:
            return 0.0
        variance = self._m2 / (self._n - 1)
        return variance / (self._mean * self._mean)

    def utilization(self) -> float:
        """Measured utilization: busy time over capacity time."""
        return self.busy_seconds / (self.elapsed * self.servers)

    def predicted(self) -> dict:
        """The M/M/1 (and P-K / M/G/1) forecast at the current
        ``lambda`` and ``S``.  ``stable`` is False at ``rho >= 1``
        (the formulas diverge; waits are reported as None)."""
        lam = self.arrival_rate() / self.servers
        s = self._mean
        rho = lam * s
        out: dict = {
            "rho": rho,
            "stable": rho < 1.0,
            "mm1_wait_ms": None,
            "mm1_residence_ms": None,
            "mm1_p50_ms": None,
            "mm1_p99_ms": None,
            "mg1_wait_ms": None,
            "mg1_residence_ms": None,
        }
        if s <= 0 or rho >= 1.0:
            return out
        residence = s / (1.0 - rho)
        out["mm1_wait_ms"] = (residence - s) * _MS
        out["mm1_residence_ms"] = residence * _MS
        out["mm1_p50_ms"] = residence * math.log(2.0) * _MS
        out["mm1_p99_ms"] = residence * math.log(100.0) * _MS
        # Pollaczek-Khinchine with the *measured* service variance.
        wq = rho * s * (1.0 + self.service_cv2()) / (2.0 * (1.0 - rho))
        out["mg1_wait_ms"] = wq * _MS
        out["mg1_residence_ms"] = (s + wq) * _MS
        return out

    def observed(self) -> dict:
        """Measured latencies and occupancy over the reservoir."""
        residences = sorted(self._residences)
        waits = sorted(self._waits)
        mean_res = (
            sum(residences) / len(residences) if residences else 0.0
        )
        mean_wait = sum(waits) / len(waits) if waits else 0.0
        self._advance()
        mean_inflight = self._area / self.elapsed
        return {
            "completed": self._n,
            "mean_wait_ms": mean_wait * _MS,
            "mean_residence_ms": mean_res * _MS,
            "p50_ms": _percentile(residences, 0.50) * _MS,
            "p99_ms": _percentile(residences, 0.99) * _MS,
            "mean_in_system": mean_inflight,
        }

    def prediction_error(self) -> float | None:
        """Relative error of the M/G/1 mean-wait forecast against the
        observed mean wait: ``|pred - obs| / max(obs, 1ms)``.  None
        until both sides exist.  The chaos harness asserts this
        re-converges after recovery -- the self-model must keep
        predicting *through* degraded modes."""
        pred = self.predicted().get("mg1_wait_ms")
        if pred is None or not self._waits:
            return None
        obs = sum(self._waits) / len(self._waits) * _MS
        return abs(pred - obs) / max(obs, 1.0)

    def little(self) -> dict:
        """Little's Law cross-check: the time-averaged in-system count
        ``L`` against ``lambda * W`` from independent measurements."""
        observed = self.observed()
        lam = self.arrival_rate()
        lw = lam * observed["mean_residence_ms"] / _MS
        return {
            "observed_l": observed["mean_in_system"],
            "lambda_times_w": lw,
        }

    def as_dict(self) -> dict:
        return {
            "servers": self.servers,
            "arrival_rate_hz": self.arrival_rate(),
            "arrivals_total": self.arrivals_total,
            "service_mean_ms": self._mean * _MS,
            "service_cv2": self.service_cv2(),
            "utilization": self.utilization(),
            "predicted": self.predicted(),
            "observed": self.observed(),
            "little": self.little(),
            "disruptions": self.disruptions,
            "last_disruption_age_s": (
                None
                if self._last_disruption is None
                else self._clock() - self._last_disruption
            ),
            "prediction_error": self.prediction_error(),
        }

    def render(self) -> str:
        """Human-readable predicted-vs-observed block (the
        ``repro serve --report`` view)."""
        data = self.as_dict()
        pred, obs = data["predicted"], data["observed"]

        def ms(value: float | None) -> str:
            return "-" if value is None else f"{value:8.2f}ms"

        lines = [
            f"arrivals: {data['arrivals_total']}   "
            f"lambda: {data['arrival_rate_hz']:.2f}/s   "
            f"S: {data['service_mean_ms']:.2f}ms "
            f"(cv2 {data['service_cv2']:.2f})   "
            f"rho: {pred['rho']:.3f}   "
            f"util: {data['utilization']:.3f}",
            f"{'':14}{'predicted M/M/1':>18}{'predicted M/G/1':>18}"
            f"{'observed':>12}",
            f"{'mean wait':<14}{ms(pred['mm1_wait_ms']):>18}"
            f"{ms(pred['mg1_wait_ms']):>18}"
            f"{ms(obs['mean_wait_ms']):>12}",
            f"{'mean resid.':<14}{ms(pred['mm1_residence_ms']):>18}"
            f"{ms(pred['mg1_residence_ms']):>18}"
            f"{ms(obs['mean_residence_ms']):>12}",
            f"{'p50 resid.':<14}{ms(pred['mm1_p50_ms']):>18}"
            f"{'':>18}{ms(obs['p50_ms']):>12}",
            f"{'p99 resid.':<14}{ms(pred['mm1_p99_ms']):>18}"
            f"{'':>18}{ms(obs['p99_ms']):>12}",
        ]
        little = data["little"]
        lines.append(
            f"Little's Law: L = {little['observed_l']:.3f} vs "
            f"lambda*W = {little['lambda_times_w']:.3f}"
        )
        return "\n".join(lines)
