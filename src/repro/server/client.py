"""A minimal asyncio client for the analysis server.

Used by the test suite, the load-generator benchmark, and the CI smoke
job; it speaks exactly the subset of HTTP/1.1 the server emits
(Content-Length bodies and chunked NDJSON streams) over one keep-alive
connection per instance.  Open one client per concurrent task::

    async with ServerClient("127.0.0.1", port) as client:
        result = await client.call("analyze", {"system": "fig15"})

Resilience: pass a :class:`~.resilience.RetryPolicy` and the client
retries *transient* failures -- dropped keep-alive connections
(automatic reconnect), overload sheds, crashed/wedged workers,
shutdowns -- with jittered exponential backoff that honors the
server's ``Retry-After`` hint and an optional total-time budget.
Retries are safe by construction: content-keyed coalescing and caching
on the server make a re-sent request land on the same in-flight
future or cache entry, never a duplicated computation.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import AsyncIterator

from .protocol import RpcError
from .resilience import RetryPolicy

__all__ = ["ServerClient", "ServerError"]


class ServerError(RpcError):
    """A JSON-RPC error returned by the server, annotated with the
    HTTP status (and Retry-After for 503 shedding)."""

    def __init__(
        self,
        code: int,
        message: str,
        data: object = None,
        retry_after: float | None = None,
        http_status: int = 200,
    ) -> None:
        super().__init__(code, message, data, retry_after)
        self.http_status = http_status


class ServerClient:
    """One keep-alive connection; calls are serial per client.

    Args:
        host / port: The server address.
        retry: Optional :class:`~.resilience.RetryPolicy`; None (the
            default) preserves fail-fast semantics -- every transport
            or transient server error surfaces immediately.
    """

    def __init__(
        self, host: str, port: int, retry: RetryPolicy | None = None
    ) -> None:
        self.host = host
        self.port = port
        self.retry = retry
        #: Transparent retries performed (tests / benchmarks).
        self.retries_used = 0
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0

    async def __aenter__(self) -> "ServerClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = self._writer = None

    # -- raw HTTP -----------------------------------------------------

    async def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        await self.connect()
        assert self._reader is not None and self._writer is not None
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
        ]
        if body is not None:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(body)}")
        request = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
        self._writer.write(request + (body or b""))
        await self._writer.drain()
        status, headers = await self._read_head()
        payload = await self._read_body(headers)
        if headers.get("connection", "").lower() == "close":
            await self.aclose()
        return status, headers, payload

    async def _read_head(self) -> tuple[int, dict[str, str]]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(
                f"malformed HTTP status line: {status_line!r}"
            )
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    async def _read_body(self, headers: dict[str, str]) -> bytes:
        assert self._reader is not None
        if headers.get("transfer-encoding", "").lower() == "chunked":
            chunks = []
            async for chunk in self._iter_chunks():
                chunks.append(chunk)
            return b"".join(chunks)
        length = int(headers.get("content-length", 0) or 0)
        return await self._reader.readexactly(length) if length else b""

    async def _iter_chunks(self) -> AsyncIterator[bytes]:
        assert self._reader is not None
        while True:
            size_line = await self._reader.readline()
            if not size_line.strip():
                raise ConnectionError(
                    "connection dropped inside a chunked stream"
                )
            # RFC 9112: a chunk size may carry extensions after ';'.
            size_field = size_line.split(b";", 1)[0].strip()
            try:
                size = int(size_field, 16)
            except ValueError:
                raise ConnectionError(
                    f"malformed chunk size: {size_line!r}"
                ) from None
            if size == 0:
                await self._reader.readline()  # trailing CRLF
                return
            data = await self._reader.readexactly(size)
            await self._reader.readexactly(2)  # chunk CRLF
            yield data

    # -- the JSON-RPC surface -----------------------------------------

    def _rpc_body(
        self,
        method: str,
        params: dict,
        deadline_ms: float | None,
        stream: bool = False,
    ) -> bytes:
        self._next_id += 1
        params = dict(params)
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        if stream:
            params["stream"] = True
        return json.dumps(
            {
                "jsonrpc": "2.0",
                "id": self._next_id,
                "method": method,
                "params": params,
            }
        ).encode("utf-8")

    @staticmethod
    def _unwrap(envelope: dict, status: int, headers: dict) -> dict:
        if "error" in envelope:
            error = envelope["error"]
            retry_after = headers.get("retry-after")
            raise ServerError(
                int(error.get("code", 0)),
                str(error.get("message", "")),
                data=error.get("data"),
                retry_after=(
                    float(retry_after) if retry_after else None
                ),
                http_status=status,
            )
        return envelope["result"]

    async def call(
        self,
        method: str,
        params: dict,
        deadline_ms: float | None = None,
    ) -> dict:
        """One JSON-RPC call; the ``result`` object (``{"value": ...,
        "meta": ...}``) on success, :class:`ServerError` otherwise.
        With a :class:`~.resilience.RetryPolicy` set, transient
        failures are retried (see the class docstring)."""
        policy = self.retry
        if policy is None:
            return await self._call_once(method, params, deadline_ms)
        t0 = time.monotonic()
        budget = policy.budget_s
        if deadline_ms is not None:
            client_budget = deadline_ms / 1e3
            budget = (
                client_budget if budget is None
                else min(budget, client_budget)
            )
        attempt = 0
        while True:
            try:
                return await self._call_once(method, params, deadline_ms)
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                EOFError,
                ServerError,
            ) as exc:
                # The connection state is unknown after a transport
                # error; drop it so the retry reconnects cleanly.
                if not isinstance(exc, ServerError):
                    await self.aclose()
                if attempt >= policy.retries or not policy.retryable(exc):
                    raise
                delay = policy.delay(
                    attempt, getattr(exc, "retry_after", None)
                )
                if (
                    budget is not None
                    and time.monotonic() - t0 + delay >= budget
                ):
                    raise  # a retry could not finish inside the budget
                attempt += 1
                self.retries_used += 1
                await asyncio.sleep(delay)

    async def _call_once(
        self,
        method: str,
        params: dict,
        deadline_ms: float | None,
    ) -> dict:
        body = self._rpc_body(method, params, deadline_ms)
        status, headers, payload = await self._request(
            "POST", "/rpc", body
        )
        return self._unwrap(
            json.loads(payload.decode("utf-8")), status, headers
        )

    async def call_stream(
        self,
        method: str,
        params: dict,
        deadline_ms: float | None = None,
    ) -> tuple[list[dict], dict]:
        """A streaming call: ``(progress_events, result)``.  Streams
        are not retried -- progress events are not idempotent to
        re-deliver."""
        body = self._rpc_body(method, params, deadline_ms, stream=True)
        status, headers, payload = await self._request(
            "POST", "/rpc", body
        )
        events: list[dict] = []
        final: dict | None = None
        for line in payload.decode("utf-8").splitlines():
            if not line.strip():
                continue
            obj = json.loads(line)
            if "jsonrpc" in obj:
                final = obj
            else:
                events.append(obj)
        if final is None:
            raise ConnectionError("stream ended without a result")
        return events, self._unwrap(final, status, headers)

    async def stats(self) -> dict:
        _status, _headers, payload = await self._request("GET", "/stats")
        return json.loads(payload.decode("utf-8"))

    async def healthz(self) -> bool:
        status, _headers, payload = await self._request(
            "GET", "/healthz"
        )
        return status == 200 and json.loads(payload).get("ok") is True

    async def health(self) -> dict:
        """The full per-shard ``/healthz`` document (any status)."""
        _status, _headers, payload = await self._request(
            "GET", "/healthz"
        )
        return json.loads(payload.decode("utf-8"))
