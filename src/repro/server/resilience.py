"""Resilient serving: supervision, circuit breaking, and retry policy.

The paper's latency-insensitive discipline -- stalls, retries, and
backpressure as first-class, correctness-preserving events -- applied
to the service itself.  Three pieces:

* :class:`CircuitBreaker` -- the per-shard health gate, a classic
  closed / open / half-open state machine driven by the shard's
  failure rate *and* by supervisor signals (a watchdog kill trips the
  breaker immediately).  While a breaker is open, content-keyed
  requests fail over to a healthy sibling shard (content ops are pure,
  so re-routing is always safe); when *every* breaker is open the pool
  degrades to serving disk-cache hits only.

* :class:`ShardSupervisor` -- the supervision tree over the shard
  workers.  Each worker records a heartbeat around every job; the
  supervisor restarts any worker whose task has died (today an
  exception escaping the drain loop would silently stop the shard
  forever) and watchdogs any op wedged past ``hang_timeout``
  (abandoning the stuck executor thread and rebuilding the engine).
  Every orphaned in-flight ``done`` future is resolved with an honest
  :class:`~.protocol.RpcError` -- an admitted request must always
  reach a terminal response, never hang its subscribers.

* :class:`RetryPolicy` -- the client half of the contract: jittered
  exponential backoff that honors ``Retry-After``, a deadline-aware
  retry budget, and a whitelist of *transient* error codes (overload,
  shutdown, crashed/wedged workers -- never deterministic op
  failures).

All three are seeded/deterministic where it matters: breakers take an
injectable clock, the retry jitter takes a seed, and the supervisor's
decisions are pure functions of observed timestamps -- so every chaos
finding replays.
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .protocol import (
    ALL_SHARDS_DOWN,
    OVERLOADED,
    SHUTTING_DOWN,
    WATCHDOG_TIMEOUT,
    WORKER_CRASHED,
    RpcError,
)

if TYPE_CHECKING:  # pragma: no cover
    from .pool import ShardPool

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "CircuitBreaker",
    "ResilienceStats",
    "RetryPolicy",
    "ShardSupervisor",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Error codes a client may safely retry: the request never produced a
#: result (or would produce the same one elsewhere); re-sending cannot
#: duplicate work thanks to content-keyed coalescing + caching.
RETRYABLE_CODES = frozenset(
    {OVERLOADED, SHUTTING_DOWN, WORKER_CRASHED, WATCHDOG_TIMEOUT,
     ALL_SHARDS_DOWN}
)


class CircuitBreaker:
    """Closed / open / half-open health gate for one shard.

    * **closed** -- traffic flows; failures inside ``window`` seconds
      accumulate, and reaching ``threshold`` trips the breaker open.
    * **open** -- no traffic for ``cooldown`` seconds (callers fail
      over to a sibling shard); :meth:`remaining` says how long.
    * **half-open** -- after the cooldown, up to ``probes`` requests
      are let through; the first success closes the breaker, any
      failure re-opens it.

    A supervisor signal (worker crash, watchdog kill) can also
    :meth:`trip` the breaker directly -- failure *rate* is not the
    only health input.
    """

    def __init__(
        self,
        threshold: int = 5,
        window: float = 30.0,
        cooldown: float = 5.0,
        probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = max(1, int(threshold))
        self.window = float(window)
        self.cooldown = float(cooldown)
        self.probes = max(1, int(probes))
        self._clock = clock
        self._failures: deque[float] = deque()
        self._state = BREAKER_CLOSED
        self._opened_at = 0.0
        self._probes_used = 0
        #: Times this breaker tripped open (observability).
        self.opens = 0

    # -- state --------------------------------------------------------

    @property
    def state(self) -> str:
        """The current state, advancing open -> half-open lazily."""
        if (
            self._state == BREAKER_OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = BREAKER_HALF_OPEN
            self._probes_used = 0
        return self._state

    def remaining(self) -> float:
        """Seconds of cooldown left (0 unless open)."""
        if self.state != BREAKER_OPEN:
            return 0.0
        return max(0.0, self.cooldown - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """May a request be routed here right now?  In half-open this
        *consumes* one of the probe slots."""
        state = self.state
        if state == BREAKER_CLOSED:
            return True
        if state == BREAKER_OPEN:
            return False
        if self._probes_used < self.probes:
            self._probes_used += 1
            return True
        return False

    # -- signals ------------------------------------------------------

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        while self._failures and self._failures[0] < cutoff:
            self._failures.popleft()

    def trip(self) -> None:
        """Force the breaker open (supervisor watchdog signal)."""
        self._state = BREAKER_OPEN
        self._opened_at = self._clock()
        self._probes_used = 0
        self.opens += 1

    def record_success(self) -> None:
        if self.state in (BREAKER_HALF_OPEN, BREAKER_OPEN):
            # The probe came back healthy: close and forget history.
            self._state = BREAKER_CLOSED
            self._failures.clear()
            self._probes_used = 0
        else:
            self._prune(self._clock())

    def record_failure(self) -> None:
        now = self._clock()
        self._failures.append(now)
        self._prune(now)
        if self.state == BREAKER_HALF_OPEN:
            self.trip()  # the probe failed: back to open
        elif (
            self._state == BREAKER_CLOSED
            and len(self._failures) >= self.threshold
        ):
            self.trip()

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "recent_failures": len(self._failures),
            "opens": self.opens,
            "cooldown_remaining_s": self.remaining(),
        }


@dataclass
class RetryPolicy:
    """Client-side retry semantics for :class:`~.client.ServerClient`.

    Attempt ``n`` (0-based) sleeps ``min(cap_s, base_s * multiplier**n)``
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1]`` -- full-jitter-style decorrelation so a shed
    fleet does not retry in lockstep.  A server-sent ``Retry-After``
    is honored as a *floor* on the delay.  ``budget_s`` bounds the
    total time spent (calls + backoff); a retry that cannot complete
    inside the remaining budget is not attempted.  Only transient
    errors (connection drops and :data:`RETRYABLE_CODES`) are retried
    -- a deterministic op failure would fail identically everywhere.
    """

    retries: int = 3
    base_s: float = 0.05
    cap_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    budget_s: float | None = None
    seed: int | None = None
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def delay(
        self, attempt: int, retry_after: float | None = None
    ) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        base = min(self.cap_s, self.base_s * self.multiplier**attempt)
        scaled = base * (1.0 - self.jitter * self._rng.random())
        if retry_after is not None:
            scaled = max(scaled, float(retry_after))
        return scaled

    def retryable(self, exc: BaseException) -> bool:
        """Is this failure transient (retry may succeed elsewhere or
        later)?"""
        if isinstance(
            exc, (ConnectionError, asyncio.IncompleteReadError, EOFError)
        ):
            return True
        if isinstance(exc, RpcError):
            if exc.code in RETRYABLE_CODES:
                return True
            return getattr(exc, "http_status", 200) == 503
        return False


@dataclass
class ResilienceStats:
    """Counter block for the supervision/failover machinery (owned by
    the pool, surfaced under ``/stats`` -> ``resilience``)."""

    worker_restarts: int = 0
    worker_crashes: int = 0
    watchdog_kills: int = 0
    engine_rebuilds: int = 0
    orphans_failed: int = 0
    shutdown_failed: int = 0
    failovers: int = 0
    degraded_served: int = 0
    all_shards_down: int = 0

    def as_dict(self) -> dict:
        return {
            "worker_restarts": self.worker_restarts,
            "worker_crashes": self.worker_crashes,
            "watchdog_kills": self.watchdog_kills,
            "engine_rebuilds": self.engine_rebuilds,
            "orphans_failed": self.orphans_failed,
            "shutdown_failed": self.shutdown_failed,
            "failovers": self.failovers,
            "degraded_served": self.degraded_served,
            "all_shards_down": self.all_shards_down,
        }


class ShardSupervisor:
    """The supervision tree over a :class:`~.pool.ShardPool`.

    A single asyncio task wakes every ``interval`` seconds and, per
    shard:

    * **dead worker** -- the drain-loop task has finished (crashed,
      was cancelled, or exited): fail the orphaned in-flight future
      with :data:`~.protocol.WORKER_CRASHED`, count a failure on the
      shard's breaker, and restart the worker.  Jobs still queued are
      picked up by the replacement -- nothing is lost.
    * **wedged op** -- the in-flight job has been running longer than
      ``hang_timeout``: fail its future with
      :data:`~.protocol.WATCHDOG_TIMEOUT`, *trip* the breaker,
      abandon the stuck executor thread, rebuild the shard's engine
      (its process pool may be the thing that is wedged), and restart
      the worker.

    ``check()`` is synchronous and idempotent so tests (and the chaos
    harness) can drive it deterministically without the timer.
    """

    def __init__(
        self,
        pool: "ShardPool",
        interval: float = 0.1,
        hang_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.pool = pool
        self.interval = max(0.01, float(interval))
        self.hang_timeout = float(hang_timeout)
        self._clock = clock
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._loop(), name="repro-shard-supervisor"
            )

    async def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None

    async def _loop(self) -> None:
        while True:
            await asyncio.sleep(self.interval)
            try:
                self.check()
            except Exception:  # pragma: no cover - must never die
                pass

    def check(self, now: float | None = None) -> list[dict]:
        """One supervision pass; returns the actions taken (tests and
        the chaos harness assert on these)."""
        now = self._clock() if now is None else now
        actions: list[dict] = []
        pool = self.pool
        if not pool.running:
            return actions
        for idx in range(pool.shards):
            state = pool.states[idx]
            worker = pool.worker_task(idx)
            if worker is None or worker.done():
                pool.fail_inflight(
                    idx,
                    RpcError(
                        WORKER_CRASHED,
                        f"shard {idx} worker died mid-job; "
                        "the job was not completed (safe to retry)",
                        data={"shard": idx},
                    ),
                )
                state.breaker.record_failure()
                pool.restart_shard(idx)
                pool.resilience.worker_crashes += 1
                pool.qmodel.note_disruption()
                actions.append({"shard": idx, "action": "restart-dead"})
                continue
            inflight = state.inflight
            if (
                inflight is not None
                and self.hang_timeout > 0
                and now - inflight.t_start > self.hang_timeout
            ):
                pool.fail_inflight(
                    idx,
                    RpcError(
                        WATCHDOG_TIMEOUT,
                        f"shard {idx} op exceeded the "
                        f"{self.hang_timeout:.1f}s hung-op watchdog; "
                        "worker restarted (safe to retry)",
                        data={"shard": idx, "op": inflight.job.op},
                    ),
                )
                state.breaker.trip()
                pool.restart_shard(
                    idx, rebuild_engine=True, abandon_executor=True
                )
                pool.resilience.watchdog_kills += 1
                pool.qmodel.note_disruption()
                actions.append({"shard": idx, "action": "watchdog-kill"})
        return actions
