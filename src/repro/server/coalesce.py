"""In-flight request coalescing by content fingerprint.

The perf core of the server: two requests whose jobs hash to the same
:func:`~repro.engine.cache.content_key` are the *same computation*, so
only the first (the **leader**) is admitted to an engine shard; every
later arrival (a **follower**) subscribes to the leader's future and
is served the shared result bit-for-bit.  Completed results then live
in the engine's memo/disk cache under the very same key, so the
steady-state path for repeated content is: coalesce while in flight,
cache hit afterwards -- the engine never sees the duplicate.

Cancellation safety: the shared future is resolved by a detached
executor task, never by a subscriber, and subscribers wait through
:func:`asyncio.shield` -- a follower (or the leader's own HTTP
connection) going away neither cancels the computation nor disturbs
the other subscribers.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

__all__ = ["Coalescer", "InflightEntry"]


class InflightEntry:
    """One in-flight computation: the shared future plus the progress
    subscribers attached to it."""

    __slots__ = ("key", "future", "subscribers", "waiters")

    def __init__(self, key: str, future: asyncio.Future) -> None:
        self.key = key
        self.future = future
        #: Progress-event queues of streaming subscribers.
        self.subscribers: list[asyncio.Queue] = []
        #: Requests currently waiting on the future (leader included).
        self.waiters = 0

    def publish(self, event: dict) -> None:
        """Fan a progress event out to every streaming subscriber."""
        for queue in self.subscribers:
            queue.put_nowait(event)


class Coalescer:
    """Keyed single-flight execution over asyncio.

    ``await run(key, start)`` either starts ``start()`` as a detached
    task (leader) or joins the identical in-flight computation
    (follower).  The entry is removed the moment its future resolves,
    so a later request with the same key starts fresh -- by then the
    engine cache serves it, which is the cheap path anyway.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._inflight: dict[str, InflightEntry] = {}
        #: Computations started (one per unique in-flight key).
        self.leaders = 0
        #: Requests that joined an existing in-flight computation.
        self.followers = 0

    def __len__(self) -> int:
        return len(self._inflight)

    @property
    def coalesce_rate(self) -> float:
        """Fraction of admitted requests served by someone else's
        in-flight computation."""
        total = self.leaders + self.followers
        return self.followers / total if total else 0.0

    def admit(
        self,
        key: str,
        start: Callable[[InflightEntry], Awaitable[object]],
    ) -> tuple[InflightEntry, bool]:
        """Admit one request: returns ``(entry, is_leader)``.

        For a leader, ``start(entry)`` is spawned as a detached task
        whose result (or exception) resolves ``entry.future``; the
        task is intentionally *not* tied to the requesting connection.
        """
        if self.enabled:
            entry = self._inflight.get(key)
            if entry is not None and not entry.future.done():
                self.followers += 1
                return entry, False
        loop = asyncio.get_running_loop()
        entry = InflightEntry(key, loop.create_future())
        if self.enabled:
            self._inflight[key] = entry
        self.leaders += 1
        task = loop.create_task(self._drive(entry, start))
        # Keep a strong reference until the drive finishes (asyncio
        # only holds weak references to running tasks).
        entry.future.add_done_callback(lambda _f, _t=task: None)
        return entry, True

    async def _drive(
        self,
        entry: InflightEntry,
        start: Callable[[InflightEntry], Awaitable[object]],
    ) -> None:
        try:
            result = await start(entry)
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
            self._resolve(entry, error=exc)
        else:
            self._resolve(entry, result=result)

    def _resolve(
        self,
        entry: InflightEntry,
        result: object = None,
        error: BaseException | None = None,
    ) -> None:
        self._inflight.pop(entry.key, None)
        if entry.future.done():  # pragma: no cover - defensive
            return
        if error is not None:
            entry.future.set_exception(error)
            # Every subscriber observes the exception through wait();
            # mark it retrieved so a fully-cancelled audience doesn't
            # log "exception was never retrieved".
            entry.future.exception()
        else:
            entry.future.set_result(result)

    async def wait(
        self, entry: InflightEntry, timeout: float | None = None
    ) -> object:
        """Await the shared result, shielded: cancelling this waiter
        (client disconnect, deadline) never cancels the computation.
        Raises :class:`asyncio.TimeoutError` past ``timeout``."""
        entry.waiters += 1
        try:
            return await asyncio.wait_for(
                asyncio.shield(entry.future), timeout
            )
        finally:
            entry.waiters -= 1
