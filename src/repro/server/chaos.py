"""Server-level chaos: seeded fault injection against the service.

:mod:`repro.faults` validates the *simulators* under adversarial stall
schedules; this module applies the same discipline to the serving
layer.  A campaign boots a real in-process
:class:`~.app.AnalysisServer` (real sockets, real shard workers, real
supervisor), drives a duplicate-heavy seeded workload through
retrying :class:`~.client.ServerClient` instances, and concurrently
injects faults drawn from a seeded RNG:

* **worker kills** -- cancel a shard's drain-loop task mid-job (the
  failure mode ISSUE'd against ``pool.py``: before supervision this
  silently stopped the shard forever);
* **executor exceptions / latency / hangs** -- via the pool's
  ``chaos_hook`` seam, raised or slept *inside* the worker thread
  (hangs exceed the watchdog threshold, forcing a kill + engine
  rebuild);
* **broken process pools** -- terminate a pooled engine's worker
  process (only meaningful with ``engine_jobs > 1``);
* **severed connections** -- close a client's keep-alive socket while
  a call may be in flight (exercising reconnect-and-retry).

Invariants checked after the drain (violations fail the campaign):

1. **termination** -- every request reaches a terminal response
   (result or honest error) within its timeout; nothing hangs;
2. **exactly-once accounting** -- every admitted execution departs
   exactly once: ``admitted == terminals`` on the pool and
   ``arrivals == completions`` on the queue model, under coalescing,
   failover, supervisor orphan-resolution, and shutdown combined;
3. **agreement** -- all successful responses for one content key
   carry the identical value (coalesced subscribers and retried
   duplicates must be indistinguishable);
4. **recovery** -- after injection stops, ``/healthz`` returns to
   all-shards-ok within a bounded window, and the ``/stats``
   self-model is live and stable again (predictions resume).

Everything is seeded, so a failing campaign replays.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time
from dataclasses import dataclass, field

from .app import AnalysisServer, ServerConfig
from .client import ServerClient, ServerError
from .resilience import RetryPolicy

__all__ = [
    "ServerChaosConfig",
    "ServerChaosReport",
    "run_server_campaign",
]


@dataclass
class ServerChaosConfig:
    """One campaign: ``requests`` per seed, for each of ``seeds``."""

    requests: int = 70
    seeds: tuple[int, ...] = (0, 1, 2)
    shards: int = 2
    clients: int = 8
    engine_jobs: int = 1
    queue_limit: int = 64
    #: Mean delay between injection events (seconds).
    injection_period: float = 0.03
    #: Relative weights of the injection kinds.
    kill_workers: float = 1.0
    drop_connections: float = 1.0
    exec_exception_rate: float = 0.05
    exec_latency_rate: float = 0.15
    exec_latency_s: float = 0.02
    #: Probability of a wedged op (must exceed ``hang_timeout``).
    exec_hang_rate: float = 0.01
    exec_hang_s: float = 0.9
    hang_timeout: float = 0.4
    #: Supervisor cadence + breaker tuning (fast, for short campaigns).
    heartbeat_interval: float = 0.05
    breaker_threshold: int = 4
    breaker_cooldown: float = 0.3
    #: Pooled-engine process kills per seed (needs ``engine_jobs>1``).
    break_pools: int = 0
    #: Client-side per-request timeout: exceeding it is a *hang*
    #: violation (must dominate the full retry + cooldown chain).
    request_timeout: float = 15.0
    #: Bounded post-chaos window for /healthz to return to all-ok.
    recovery_timeout: float = 5.0
    retry: RetryPolicy | None = None

    def policy(self, seed: int) -> RetryPolicy:
        if self.retry is not None:
            return self.retry
        return RetryPolicy(
            retries=5, base_s=0.02, cap_s=0.3, jitter=0.5, seed=seed
        )


@dataclass
class ServerChaosReport:
    """Campaign outcome; mirrors :class:`repro.faults.CampaignReport`."""

    config: dict
    trials: list[dict] = field(default_factory=list)
    violations: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def summary(self) -> dict:
        totals = {
            key: sum(t[key] for t in self.trials)
            for key in (
                "requests",
                "succeeded",
                "errored",
                "hung",
                "retries_used",
                "kills",
                "drops",
                "pool_breaks",
            )
        }
        return {
            "seeds": [t["seed"] for t in self.trials],
            **totals,
            "violations": len(self.violations),
            "ok": self.ok,
        }

    def as_dict(self) -> dict:
        return {
            "config": self.config,
            "trials": self.trials,
            "violations": self.violations,
            "summary": self.summary,
        }

    def render(self) -> str:
        s = self.summary
        lines = [
            f"server chaos: {len(self.trials)} seed(s), "
            f"{s['requests']} requests "
            f"({s['succeeded']} ok, {s['errored']} honest errors, "
            f"{s['hung']} hangs), "
            f"{s['kills']} worker kills, {s['drops']} dropped "
            f"connections, {s['retries_used']} client retries",
        ]
        for trial in self.trials:
            res = trial["resilience"]
            lines.append(
                f"  seed {trial['seed']}: {trial['requests']} reqs, "
                f"restarts={res['worker_restarts']}, "
                f"watchdog={res['watchdog_kills']}, "
                f"failovers={res['failovers']}, "
                f"recovered in {trial['recovery_s']:.2f}s"
            )
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            for violation in self.violations:
                lines.append(f"    - {violation}")
        else:
            lines.append("  all invariants held")
        return "\n".join(lines)


def _scrub(value: object) -> object:
    """Drop wall-clock timing fields before fingerprinting: op values
    embed measurement metadata (``elapsed``, ``*_seconds``) that
    legitimately differs between two independent *computations* of the
    same content key (e.g. after an engine rebuild evicted the memo).
    The agreement invariant is about semantic results."""
    if isinstance(value, dict):
        return {
            k: _scrub(v)
            for k, v in value.items()
            if not (k.endswith("elapsed") or k.endswith("_seconds"))
        }
    if isinstance(value, list):
        return [_scrub(v) for v in value]
    return value


def _fingerprint(value: object) -> str:
    return json.dumps(_scrub(value), sort_keys=True, default=str)


def _corpus(rng: random.Random, n: int) -> list[tuple[str, dict]]:
    """A duplicate-heavy workload of cheap content-keyed requests --
    heavy duplication is the point: it maximizes coalescing across
    concurrent clients, which invariant 3 then checks."""
    menu: list[tuple[str, dict]] = [
        ("analyze", {"system": "fig1"}),
        ("analyze", {"system": "fig2-right"}),
        ("analyze", {"system": "fig15"}),
        ("simulate", {"system": "fig1", "options": {"clocks": 48}}),
        ("simulate", {"system": "fig2-right", "options": {"clocks": 64}}),
        ("measure", {"system": "fig1", "options": {"clocks": 48}}),
    ]
    return [menu[rng.randrange(len(menu))] for _ in range(n)]


def _make_hook(cfg: ServerChaosConfig, seed: int, counters: dict):
    """The executor-thread fault injector handed to
    ``pool.chaos_hook``.  Runs in worker threads, hence its own lock
    around the shared RNG."""
    rng = random.Random(seed * 7919 + 13)
    lock = threading.Lock()

    def hook(shard: int, job) -> None:
        with lock:
            draw = rng.random()
        if draw < cfg.exec_hang_rate:
            counters["hangs_injected"] += 1
            time.sleep(cfg.exec_hang_s)
        elif draw < cfg.exec_hang_rate + cfg.exec_exception_rate:
            counters["exceptions_injected"] += 1
            raise RuntimeError(
                f"chaos: injected executor failure on shard {shard}"
            )
        elif draw < (
            cfg.exec_hang_rate
            + cfg.exec_exception_rate
            + cfg.exec_latency_rate
        ):
            time.sleep(cfg.exec_latency_s)

    return hook


def _break_one_pool(server: AnalysisServer, rng: random.Random) -> bool:
    """Terminate one worker process of a random pooled shard engine;
    the engine's own BrokenProcessPool recovery (PR 5) must absorb
    it.  No-op for in-thread engines (``engine_jobs == 1``)."""
    engines = list(server.pool.engines)
    rng.shuffle(engines)
    for engine in engines:
        pool = getattr(engine, "_pool", None)
        processes = list(getattr(pool, "_processes", {}).values())
        if processes:
            rng.choice(processes).terminate()
            return True
    return False


async def _drive_seed(
    cfg: ServerChaosConfig, seed: int
) -> tuple[dict, list[dict]]:
    """One seed's trial: boot, inject, drive, drain, verify."""
    violations: list[dict] = []
    counters = {
        "kills": 0,
        "drops": 0,
        "pool_breaks": 0,
        "hangs_injected": 0,
        "exceptions_injected": 0,
    }
    server = AnalysisServer(
        ServerConfig(
            port=0,
            shards=cfg.shards,
            engine_jobs=cfg.engine_jobs,
            queue_limit=cfg.queue_limit,
            heartbeat_interval=cfg.heartbeat_interval,
            hang_timeout=cfg.hang_timeout,
            breaker_threshold=cfg.breaker_threshold,
            breaker_cooldown=cfg.breaker_cooldown,
        )
    )
    await server.start()
    server.pool.chaos_hook = _make_hook(cfg, seed, counters)

    rng = random.Random(seed)
    requests = _corpus(rng, cfg.requests)
    outcomes: list[dict] = []
    chaos_on = asyncio.Event()
    chaos_on.set()

    async def client_task(worker: int, slice_: list) -> None:
        client = ServerClient(
            "127.0.0.1", server.port, retry=cfg.policy(seed * 101 + worker)
        )
        clients[worker] = client
        try:
            for method, params in slice_:
                key = _fingerprint((method, params))
                record = {"key": key, "status": "hung"}
                outcomes.append(record)
                try:
                    result = await asyncio.wait_for(
                        client.call(method, params),
                        timeout=cfg.request_timeout,
                    )
                except asyncio.TimeoutError:
                    record["status"] = "hung"
                    # The connection may hold a half-read response;
                    # reset it so later requests parse cleanly.
                    await client.aclose()
                except ServerError as exc:
                    record["status"] = "error"
                    record["code"] = exc.code
                except (
                    ConnectionError,
                    asyncio.IncompleteReadError,
                    EOFError,
                ) as exc:
                    # Retries exhausted on a severed connection: an
                    # honest transport error, still terminal.
                    record["status"] = "error"
                    record["code"] = type(exc).__name__
                else:
                    record["status"] = "ok"
                    record["value"] = _fingerprint(result["value"])
                record["retries"] = client.retries_used
        finally:
            await client.aclose()

    async def chaos_task() -> None:
        chaos_rng = random.Random(seed * 31 + 7)
        pool_breaks_left = (
            cfg.break_pools if cfg.engine_jobs > 1 else 0
        )
        kinds = [
            ("kill", cfg.kill_workers),
            ("drop", cfg.drop_connections),
        ]
        while chaos_on.is_set():
            await asyncio.sleep(
                cfg.injection_period * (0.5 + chaos_rng.random())
            )
            if not chaos_on.is_set():
                return
            total = sum(weight for _, weight in kinds)
            if total <= 0:
                continue
            draw = chaos_rng.random() * total
            for kind, weight in kinds:
                draw -= weight
                if draw <= 0:
                    break
            if kind == "kill":
                server.pool.kill_worker(
                    chaos_rng.randrange(cfg.shards)
                )
                counters["kills"] += 1
            elif kind == "drop":
                victim = clients[chaos_rng.randrange(len(clients))]
                if victim is not None:
                    await victim.aclose()
                    counters["drops"] += 1
            if pool_breaks_left > 0 and _break_one_pool(
                server, chaos_rng
            ):
                pool_breaks_left -= 1
                counters["pool_breaks"] += 1

    clients: list[ServerClient | None] = [None] * cfg.clients
    slices: list[list] = [[] for _ in range(cfg.clients)]
    for i, request in enumerate(requests):
        slices[i % cfg.clients].append(request)
    injector = asyncio.ensure_future(chaos_task())
    t_load = time.monotonic()
    try:
        await asyncio.gather(
            *(client_task(i, s) for i, s in enumerate(slices))
        )
    finally:
        chaos_on.clear()
        injector.cancel()
        try:
            await injector
        except asyncio.CancelledError:
            pass
    load_s = time.monotonic() - t_load

    # The storm is over: disarm the executor hook so the recovery
    # probes measure the server healing, not fresh injections.
    server.pool.chaos_hook = None

    # -- invariant 4: bounded recovery to all-healthy -----------------
    t_recover = time.monotonic()
    recovery_s = None
    probe = ServerClient("127.0.0.1", server.port)
    try:
        while time.monotonic() - t_recover < cfg.recovery_timeout:
            try:
                health = await probe.health()
            except (ConnectionError, asyncio.IncompleteReadError):
                await probe.aclose()
                health = {"ok": False}
            if health.get("ok") and all(
                shard["ok"] for shard in health.get("shards", [])
            ):
                recovery_s = time.monotonic() - t_recover
                break
            await asyncio.sleep(cfg.heartbeat_interval)
        if recovery_s is None:
            violations.append(
                {
                    "seed": seed,
                    "invariant": "recovery",
                    "detail": "healthz did not return to all-ok "
                    f"within {cfg.recovery_timeout}s",
                }
            )
            recovery_s = cfg.recovery_timeout
        # Self-model re-convergence: drive a few clean requests and
        # require the predictions to be live and stable again.
        retry_probe = ServerClient(
            "127.0.0.1", server.port, retry=cfg.policy(seed + 1)
        )
        try:
            for _ in range(3):
                await retry_probe.call("analyze", {"system": "fig1"})
        finally:
            await retry_probe.aclose()
        await probe.aclose()
        stats = await probe.stats()
        queueing = stats["queueing"]
        if not queueing["predicted"]["stable"]:
            violations.append(
                {
                    "seed": seed,
                    "invariant": "self-model",
                    "detail": "post-recovery prediction is not stable "
                    f"(rho={queueing['predicted']['rho']:.3f})",
                }
            )
    finally:
        await probe.aclose()

    pool = server.pool
    trial = {
        "seed": seed,
        "requests": len(outcomes),
        "succeeded": sum(1 for o in outcomes if o["status"] == "ok"),
        "errored": sum(1 for o in outcomes if o["status"] == "error"),
        "hung": sum(1 for o in outcomes if o["status"] == "hung"),
        "retries_used": sum(
            c.retries_used for c in clients if c is not None
        ),
        "kills": counters["kills"],
        "drops": counters["drops"],
        "pool_breaks": counters["pool_breaks"],
        "injected": {
            "hangs": counters["hangs_injected"],
            "exceptions": counters["exceptions_injected"],
        },
        "admitted": pool.admitted,
        "terminals": pool.terminals,
        "resilience": pool.resilience.as_dict(),
        "load_s": load_s,
        "recovery_s": recovery_s,
    }

    # -- invariant 1: termination -------------------------------------
    if trial["hung"]:
        violations.append(
            {
                "seed": seed,
                "invariant": "termination",
                "detail": f"{trial['hung']} request(s) reached no "
                f"terminal response within {cfg.request_timeout}s",
            }
        )
    # -- invariant 2: exactly-once accounting -------------------------
    if pool.admitted != pool.terminals:
        violations.append(
            {
                "seed": seed,
                "invariant": "exactly-once",
                "detail": f"admitted={pool.admitted} but "
                f"terminals={pool.terminals}",
            }
        )
    model = server.qmodel
    completed = model.observed()["completed"]
    if model.arrivals_total != completed:
        violations.append(
            {
                "seed": seed,
                "invariant": "exactly-once",
                "detail": f"qmodel arrivals={model.arrivals_total} but "
                f"departures={completed}",
            }
        )
    # -- invariant 3: coalesced agreement -----------------------------
    values_by_key: dict[str, set[str]] = {}
    for outcome in outcomes:
        if outcome["status"] == "ok":
            values_by_key.setdefault(outcome["key"], set()).add(
                outcome["value"]
            )
    for key, values in values_by_key.items():
        if len(values) > 1:
            violations.append(
                {
                    "seed": seed,
                    "invariant": "agreement",
                    "detail": f"{len(values)} distinct successful "
                    f"values for one content key ({key[:60]}...)",
                }
            )

    await server.close()
    return trial, violations


def run_server_campaign(
    config: ServerChaosConfig | None = None,
) -> ServerChaosReport:
    """Run the full campaign (one fresh server + event loop per
    seed) and return the report; ``report.ok`` is the verdict."""
    cfg = config or ServerChaosConfig()
    report = ServerChaosReport(
        config={
            "requests": cfg.requests,
            "seeds": list(cfg.seeds),
            "shards": cfg.shards,
            "clients": cfg.clients,
            "engine_jobs": cfg.engine_jobs,
            "hang_timeout": cfg.hang_timeout,
            "break_pools": cfg.break_pools,
        }
    )
    for seed in cfg.seeds:
        trial, violations = asyncio.run(_drive_seed(cfg, seed))
        report.trials.append(trial)
        report.violations.extend(violations)
    return report
