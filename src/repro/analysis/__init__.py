"""Shared, content-fingerprinted analysis pipeline.

``repro.analysis`` owns the derived-artifact layer between the raw
:class:`~repro.core.LisGraph` model and everything that consumes it
(solvers, simulators, the engine, the CLI): a :class:`Context` freezes
one system, fingerprints its canonical JSON, and memoizes every
Section-III/VII artifact so each is computed at most once per content.

See :mod:`repro.analysis.context` for the design notes.
"""

from .context import (
    Context,
    ContextStats,
    clear_registry,
    context_from_json,
    get_context,
    global_stats,
    reset_global_stats,
)

__all__ = [
    "Context",
    "ContextStats",
    "clear_registry",
    "context_from_json",
    "get_context",
    "global_stats",
    "reset_global_stats",
]
