"""Content-fingerprinted analysis contexts (lower once, share everywhere).

Every layer of the stack derives the same Section-III/VII artifacts
from a :class:`~repro.core.LisGraph`: the ideal and doubled marked
graphs, the deficient-cycle enumeration, MSTs, the rule-4 SCC collapse
and the :mod:`repro.sim` flat arrays.  Before this module each layer
re-derived them independently -- the doubled graph was re-lowered at
roughly ten call sites and the (exponential!) cycle enumeration was
repeated per solver even when ``bench_table4`` compares exact vs.
heuristic on the *same* instance.

A :class:`Context` wraps a frozen snapshot of a LIS and memoizes each
derived artifact, computed at most once per content fingerprint:

* the fingerprint is the SHA-256 of the canonical JSON form
  (:func:`repro.core.serialize.lis_to_json`) -- the same bytes the
  analysis engine hashes into its cache key, so engine keys and
  Context identity agree;
* marked graphs are handed out as **defensive copies** (their
  ``Edge.data`` token dicts are mutable, and simulators mutate them),
  so no caller can poison the cached masters;
* one structural cycle enumeration serves *every* extra-token variant:
  the doubled graph's elementary cycles do not depend on token counts,
  and a queue-sizing assignment adds ``extra[c]`` tokens to a cycle
  exactly when channel ``c``'s sizable backedge lies on it -- which is
  precisely :attr:`CycleRecord.channels`;
* per-artifact hit/miss counters (:class:`ContextStats`) make the
  sharing observable (``repro stats``, ``EngineStats.context``).

Contexts are safe to share across threads (an internal lock guards
artifact construction) and across engine ops in one worker process
(:func:`context_from_json` keeps a small fingerprint-keyed registry).
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import TYPE_CHECKING, Hashable

from ..core.cycles import (
    CycleExplosionError,
    CycleRecord,
    collapse_sccs,
    cycle_records,
    is_collapsible,
)
from ..core.lis_graph import LisError, LisGraph
from ..core.marked_graph import MarkedGraph
from ..core.serialize import lis_fingerprint, lis_from_json, lis_to_json
from ..core.throughput import ThroughputResult, mst

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..schedule.oracle import ScheduleOracle
    from ..sim.compile import CompiledSystem

__all__ = [
    "Context",
    "ContextStats",
    "get_context",
    "context_from_json",
    "global_stats",
    "reset_global_stats",
]

#: Artifact names whose hit/miss counters :class:`ContextStats` tracks.
ARTIFACTS = (
    "ideal_mg",
    "doubled_mg",
    "ideal_mst",
    "actual_mst",
    "cycles",
    "collapsed",
    "compiled",
    "td_kernel",
    "schedule",
)


@dataclass
class ContextStats:
    """Per-artifact memoization counters, shared by contexts.

    ``counters`` maps ``"<artifact>.hit"`` / ``"<artifact>.miss"`` to
    counts: a *miss* is a fresh computation (a lowering performed, an
    enumeration run), a *hit* is a cached artifact served.  For the
    ``cycles`` artifact a hit counts every request answered from the
    one structural enumeration -- including all extra-token variants.
    """

    counters: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, artifact: str, hit: bool) -> None:
        key = f"{artifact}.{'hit' if hit else 'miss'}"
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + 1

    def count(self, artifact: str, kind: str) -> int:
        return self.counters.get(f"{artifact}.{kind}", 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self.counters)

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Counter increments since a :meth:`snapshot`."""
        now = self.snapshot()
        out = {}
        for key, value in now.items():
            diff = value - before.get(key, 0)
            if diff:
                out[key] = diff
        return out

    def merge(self, counters: dict[str, int]) -> None:
        with self._lock:
            for key, value in counters.items():
                self.counters[key] = self.counters.get(key, 0) + int(value)

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()

    def render(self) -> str:
        """Aligned per-artifact table (the ``repro stats`` view)."""
        lines = [f"{'artifact':<14}{'computed':>10}{'reused':>9}"]
        named = [a for a in ARTIFACTS if self.count(a, "hit") or self.count(a, "miss")]
        extra = sorted(
            {k.rsplit(".", 1)[0] for k in self.snapshot()} - set(ARTIFACTS)
        )
        for artifact in [*named, *extra]:
            lines.append(
                f"{artifact:<14}{self.count(artifact, 'miss'):>10}"
                f"{self.count(artifact, 'hit'):>9}"
            )
        return "\n".join(lines)


_GLOBAL_STATS = ContextStats()


def global_stats() -> ContextStats:
    """The process-wide counters shared by registry-created contexts."""
    return _GLOBAL_STATS


def reset_global_stats() -> None:
    _GLOBAL_STATS.reset()


def _extra_key(
    extra_tokens: dict[int, int] | None, channel_ids: set[int]
) -> tuple[tuple[int, int], ...]:
    """Canonical hashable key of a queue-sizing assignment.

    Validates like :meth:`LisGraph.doubled_marked_graph` (unknown
    channels and negative counts raise) and drops zero entries, so
    ``{}``, ``None`` and ``{cid: 0}`` share one artifact slot.
    """
    if not extra_tokens:
        return ()
    unknown = set(extra_tokens) - channel_ids
    if unknown:
        raise LisError(f"extra tokens on unknown channels: {sorted(unknown)}")
    for cid, tokens in extra_tokens.items():
        if tokens < 0:
            raise LisError(f"negative extra tokens on channel {cid}")
    return tuple(
        (cid, tokens)
        for cid, tokens in sorted(extra_tokens.items())
        if tokens
    )


class Context:
    """An immutable analysis context over one LIS content fingerprint.

    The constructor snapshots ``lis`` (a frozen private copy), so later
    mutation of the caller's graph cannot desynchronize the fingerprint
    from the cached artifacts.  All artifact methods are memoized and
    thread-safe; marked graphs come back as defensive copies.

    A Context also exposes the read-only :class:`LisGraph` surface
    (``system``, ``channels()``, ``latency()``, ...), so graph-reading
    code -- the simulators, the DOT writer -- accepts either type.
    """

    def __init__(self, lis: LisGraph, stats: ContextStats | None = None) -> None:
        if isinstance(lis, Context):  # idempotent construction
            lis = lis.lis
        self.lis: LisGraph = lis.copy().freeze()
        self.lis_json: str = lis_to_json(self.lis)
        self.fingerprint: str = lis_fingerprint(self.lis_json)
        self.stats = stats if stats is not None else _GLOBAL_STATS
        self._lock = threading.RLock()
        self._channel_ids = set(self.lis.channel_ids())
        self._ideal: MarkedGraph | None = None
        self._doubled: dict[tuple, MarkedGraph] = {}
        self._ideal_mst: ThroughputResult | None = None
        self._actual_mst: dict[tuple, ThroughputResult] = {}
        self._records: list[CycleRecord] | None = None
        self._sizable: dict[int, int] | None = None
        self._collapsed: tuple["Context", dict[int, int]] | None = None
        self._compiled: "CompiledSystem | None" = None
        self._td_kernels: dict[tuple, object] = {}
        self._schedules: dict[tuple, "ScheduleOracle"] = {}

    # ------------------------------------------------------------------
    # Read-only LisGraph surface (duck-typed pass-throughs)
    # ------------------------------------------------------------------
    @property
    def system(self):
        return self.lis.system

    @property
    def default_queue(self) -> int:
        return self.lis.default_queue

    def channels(self):
        return self.lis.channels()

    def channel(self, cid: int):
        return self.lis.channel(cid)

    def channel_ids(self) -> list[int]:
        return self.lis.channel_ids()

    def shells(self):
        return self.lis.shells()

    def latency(self, shell: Hashable) -> int:
        return self.lis.latency(shell)

    def queue(self, cid: int) -> int:
        return self.lis.queue(cid)

    def relays(self, cid: int) -> int:
        return self.lis.relays(cid)

    def total_relays(self) -> int:
        return self.lis.total_relays()

    def copy(self) -> LisGraph:
        """A *mutable* clone of the underlying LIS (leaves the context)."""
        return self.lis.copy()

    # ------------------------------------------------------------------
    # Marked-graph lowerings
    # ------------------------------------------------------------------
    def _ideal_master(self) -> MarkedGraph:
        with self._lock:
            if self._ideal is None:
                self._ideal = self.lis.ideal_marked_graph()
                self.stats.record("ideal_mg", hit=False)
            else:
                self.stats.record("ideal_mg", hit=True)
            return self._ideal

    def _doubled_master(
        self, extra_tokens: dict[int, int] | None = None
    ) -> MarkedGraph:
        key = _extra_key(extra_tokens, self._channel_ids)
        with self._lock:
            master = self._doubled.get(key)
            if master is None:
                master = self.lis.doubled_marked_graph(dict(key))
                self._doubled[key] = master
                self.stats.record("doubled_mg", hit=False)
            else:
                self.stats.record("doubled_mg", hit=True)
            return master

    def ideal_marked_graph(self) -> MarkedGraph:
        """A defensive copy of the cached ideal lowering (Section III-A)."""
        return self._ideal_master().copy()

    def doubled_marked_graph(
        self, extra_tokens: dict[int, int] | None = None
    ) -> MarkedGraph:
        """A defensive copy of the cached doubled lowering (III-B),
        one master per distinct extra-token assignment."""
        return self._doubled_master(extra_tokens).copy()

    def sizable_backedges(self, mg: MarkedGraph | None = None) -> dict[int, int]:
        """Channel id -> place key of its shell-side backedge.

        Place keys are construction-order deterministic, so the mapping
        is the same for every doubled lowering of this fingerprint; a
        caller-supplied ``mg`` (the old call form) is accepted and
        resolved directly.
        """
        if mg is not None:
            return self.lis.sizable_backedges(mg)
        with self._lock:
            if self._sizable is None:
                self._sizable = self.lis.sizable_backedges(
                    self._doubled_master()
                )
            return dict(self._sizable)

    # ------------------------------------------------------------------
    # Throughput
    # ------------------------------------------------------------------
    def ideal_mst(self) -> ThroughputResult:
        """Cached :func:`repro.core.ideal_mst` (III-C on the ideal MG)."""
        with self._lock:
            if self._ideal_mst is None:
                self._ideal_mst = mst(self._ideal_master())
                self.stats.record("ideal_mst", hit=False)
            else:
                self.stats.record("ideal_mst", hit=True)
            result = self._ideal_mst
        # The witness cycle aliases the master graph's Edge objects.
        return copy.deepcopy(result)

    def actual_mst(
        self, extra_tokens: dict[int, int] | None = None
    ) -> ThroughputResult:
        """Cached :func:`repro.core.actual_mst` per extra-token key."""
        key = _extra_key(extra_tokens, self._channel_ids)
        with self._lock:
            result = self._actual_mst.get(key)
            if result is None:
                result = mst(self._doubled_master(extra_tokens))
                self._actual_mst[key] = result
                self.stats.record("actual_mst", hit=False)
            else:
                self.stats.record("actual_mst", hit=True)
        return copy.deepcopy(result)

    # ------------------------------------------------------------------
    # Cycle enumeration (one structural pass serves every variant)
    # ------------------------------------------------------------------
    def _base_records(self, max_cycles: int | None) -> list[CycleRecord]:
        with self._lock:
            if self._records is None:
                # Any *successful* enumeration is complete (max_cycles
                # only aborts), so the first one serves all budgets.
                self._records = cycle_records(
                    self._doubled_master(), max_cycles=max_cycles
                )
                self.stats.record("cycles", hit=False)
            else:
                self.stats.record("cycles", hit=True)
            records = self._records
        if max_cycles is not None and len(records) > max_cycles:
            raise CycleExplosionError(
                f"cycle enumeration exceeded budget of {max_cycles}"
            )
        return records

    def cycle_records(
        self,
        extra_tokens: dict[int, int] | None = None,
        max_cycles: int | None = None,
    ) -> list[CycleRecord]:
        """Elementary cycles of the doubled graph under ``extra_tokens``.

        The cycle *structure* of a doubled marked graph is independent
        of token counts, and extra queue tokens land exactly on the
        sizable backedges recorded in :attr:`CycleRecord.channels` --
        so records for any assignment are the cached structural records
        with ``sum(extra[c] for c in record.channels)`` added to each
        token count.  Equivalent to enumerating
        ``doubled_marked_graph(extra_tokens)`` afresh, without the
        exponential re-enumeration.
        """
        key = _extra_key(extra_tokens, self._channel_ids)
        records = self._base_records(max_cycles)
        if not key:
            return list(records)
        extra = dict(key)
        return [
            replace(
                record,
                tokens=record.tokens
                + sum(extra.get(c, 0) for c in record.channels),
            )
            if any(c in extra for c in record.channels)
            else record
            for record in records
        ]

    def deficient_cycles(
        self,
        target: Fraction | None = None,
        extra_tokens: dict[int, int] | None = None,
        max_cycles: int | None = None,
    ) -> list[CycleRecord]:
        """Cycles whose mean falls below ``target`` (default: ideal MST)."""
        goal = target if target is not None else self.ideal_mst().mst
        return [
            record
            for record in self.cycle_records(extra_tokens, max_cycles)
            if record.mean < goal
        ]

    def td_instance(
        self,
        target: Fraction | None = None,
        extra_tokens: dict[int, int] | None = None,
        max_cycles: int | None = None,
        simplify: bool = True,
    ):
        """A fresh :class:`~repro.core.TokenDeficitInstance` (VII-A).

        TD instances are mutable (solvers simplify them in place), so
        each call builds a new one -- from the *shared* cycle records.
        """
        from ..core.token_deficit import td_instance_from_records

        goal = target if target is not None else self.ideal_mst().mst
        records = self.deficient_cycles(goal, extra_tokens, max_cycles)
        return td_instance_from_records(records, goal, simplify=simplify)

    def td_kernel(
        self,
        target: Fraction | None = None,
        extra_tokens: dict[int, int] | None = None,
        max_cycles: int | None = None,
        simplify: bool = True,
    ):
        """The bitset-compiled :class:`~repro.core.solvers.TdKernel` of
        this content's TD instance, cached per (target, assignment,
        simplify) key.

        Unlike :meth:`td_instance` (mutable, rebuilt per call) the
        kernel is immutable apart from its stats accumulator, so one
        compilation serves every solver, batch-feasibility check, and
        portfolio probe on the same content.  ``simplify=False``
        compiles the *unsimplified* instance (no forced weights), the
        form that validates complete assignments via ``check_batch``.
        """
        from ..core.solvers.kernel import compile_td

        goal = target if target is not None else self.ideal_mst().mst
        key = (goal, _extra_key(extra_tokens, self._channel_ids), simplify)
        with self._lock:
            kern = self._td_kernels.get(key)
            if kern is None:
                instance = self.td_instance(
                    goal, extra_tokens, max_cycles, simplify=simplify
                )
                kern = compile_td(instance)
                self._td_kernels[key] = kern
                self.stats.record("td_kernel", hit=False)
            else:
                self.stats.record("td_kernel", hit=True)
            return kern

    # ------------------------------------------------------------------
    # Rule-4 SCC collapse and the simulation kernel
    # ------------------------------------------------------------------
    def is_collapsible(self) -> bool:
        return is_collapsible(self.lis)

    def collapsed(self) -> tuple["Context", dict[int, int]]:
        """The rule-4 collapsed system as a Context of its own, plus the
        collapsed-channel -> original-channel map (VII-A)."""
        with self._lock:
            if self._collapsed is None:
                collapsed_lis, channel_map = collapse_sccs(self.lis)
                self._collapsed = (
                    Context(collapsed_lis, stats=self.stats),
                    channel_map,
                )
                self.stats.record("collapsed", hit=False)
            else:
                self.stats.record("collapsed", hit=True)
            ctx, channel_map = self._collapsed
            return ctx, dict(channel_map)

    def compiled(self) -> "CompiledSystem":
        """The :mod:`repro.sim` flat-array form (immutable, shared)."""
        with self._lock:
            if self._compiled is None:
                from ..sim.compile import compile_lis

                self._compiled = compile_lis(
                    self.lis, mg=self._doubled_master()
                )
                self.stats.record("compiled", hit=False)
            else:
                self.stats.record("compiled", hit=True)
            return self._compiled

    def schedule_oracle(
        self,
        extra_tokens: dict[int, int] | None = None,
        max_steps: int = 50_000,
    ) -> "ScheduleOracle":
        """The analytic :class:`~repro.schedule.ScheduleOracle` of this
        content, cached per extra-token assignment.

        The oracle is immutable (frozen arrays, closed-form queries),
        so one marking walk serves every ``backend="schedule"``
        measurement, occupancy query, and differential check on the
        same fingerprint.  The walk itself reuses :meth:`compiled`.
        """
        key = _extra_key(extra_tokens, self._channel_ids)
        with self._lock:
            oracle = self._schedules.get(key)
            if oracle is None:
                from ..schedule.oracle import derive_schedule

                oracle = derive_schedule(
                    self, extra_tokens=dict(key), max_steps=max_steps
                )
                self._schedules[key] = oracle
                self.stats.record("schedule", hit=False)
            else:
                self.stats.record("schedule", hit=True)
            return oracle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Context({self.lis!r}, fingerprint={self.fingerprint[:12]}...)"
        )


# ----------------------------------------------------------------------
# Fingerprint-keyed registry (cross-call / cross-op reuse)
# ----------------------------------------------------------------------

_REGISTRY_CAPACITY = 64
_REGISTRY: "OrderedDict[str, Context]" = OrderedDict()
_REGISTRY_LOCK = threading.Lock()


def _same_structure(a: LisGraph, b: LisGraph) -> bool:
    """Guard against canonical-JSON aliasing: ``lis_to_json`` stringifies
    shell names, so graphs differing only in name *types* (``1`` vs
    ``"1"``) share a fingerprint but must not share artifacts."""
    return list(a.system.nodes) == list(b.system.nodes)


def get_context(lis: "LisGraph | Context | object") -> Context:
    """The shared :class:`Context` for ``lis``'s current content.

    Serializes and fingerprints the graph, then returns the registered
    context for that fingerprint (creating and registering one on
    miss).  Registry contexts use the process-global
    :class:`ContextStats`.  Idempotent on Contexts.

    Also accepts any declarative root from :mod:`repro.dsl` (an
    ``@system`` class, a ``SystemDecl``, a ``SystemBuilder``) via the
    duck-typed ``__lis_decl__`` marker: the declaration is lowered in
    declaration order, so its fingerprint -- and therefore the
    registry slot and every cached artifact -- is shared with the
    equivalent hand-built graph.
    """
    if isinstance(lis, Context):
        return lis
    if not isinstance(lis, LisGraph):
        decl = getattr(lis, "__lis_decl__", None)
        if decl is None or not hasattr(decl, "lower"):
            raise TypeError(
                f"get_context() needs a LisGraph, a Context, or a "
                f"declarative system (repro.dsl), got {lis!r}"
            )
        lis = decl.lower()
    text = lis_to_json(lis)
    fingerprint = lis_fingerprint(text)
    with _REGISTRY_LOCK:
        ctx = _REGISTRY.get(fingerprint)
        if ctx is not None:
            _REGISTRY.move_to_end(fingerprint)
            if _same_structure(ctx.lis, lis):
                return ctx
            return Context(lis)  # aliased names: private, unregistered
        ctx = Context(lis)
        _REGISTRY[fingerprint] = ctx
        while len(_REGISTRY) > _REGISTRY_CAPACITY:
            _REGISTRY.popitem(last=False)
        return ctx


def context_from_json(text: str) -> Context:
    """The shared Context for a canonical-JSON LIS document.

    Hashes the text directly and only parses it on a registry miss --
    this is how engine ops share artifacts across ops on the same
    serialized system without re-parsing, let alone re-lowering.
    """
    fingerprint = lis_fingerprint(text)
    with _REGISTRY_LOCK:
        ctx = _REGISTRY.get(fingerprint)
        if ctx is not None:
            _REGISTRY.move_to_end(fingerprint)
            return ctx
        ctx = Context(lis_from_json(text))
        _REGISTRY[fingerprint] = ctx
        while len(_REGISTRY) > _REGISTRY_CAPACITY:
            _REGISTRY.popitem(last=False)
        return ctx


def clear_registry() -> None:
    """Drop all registered contexts (tests; frees cached artifacts)."""
    with _REGISTRY_LOCK:
        _REGISTRY.clear()
