"""repro -- performance analysis and optimization of latency-insensitive systems.

A from-scratch reproduction of the latency-insensitive design (LID)
performance line of work: marked-graph modeling of latency-insensitive
systems (LISs), maximal-sustainable-throughput (MST) analysis,
backpressure-induced throughput degradation, and its repair by queue
sizing or relay-station insertion (Carloni & Sangiovanni-Vincentelli,
DAC 2000; Collins & Carloni, IEEE TCAD 2008).

Quick start::

    from repro import LisGraph, ideal_mst, actual_mst, size_queues

    lis = LisGraph()
    lis.add_channel("A", "B", relays=1)   # a pipelined channel
    lis.add_channel("A", "B")             # and a short parallel one

    ideal_mst(lis).mst      # Fraction(1, 1)
    actual_mst(lis).mst     # Fraction(2, 3)  <- backpressure degradation
    size_queues(lis).extra_tokens  # {1: 1}   <- the one-token fix

Subpackages:

* :mod:`repro.graphs` -- graph substrate (multigraphs, SCCs, cycles,
  minimum cycle mean) implemented from scratch.
* :mod:`repro.core` -- the paper's contribution: marked graphs, MST,
  topology classes, the queue-sizing problem, heuristic/exact/fixed
  solvers, relay-station insertion, the NP-completeness reduction.
* :mod:`repro.analysis` -- the shared analysis :class:`Context`: an
  immutable, content-fingerprinted view of one system that memoizes
  every derived artifact (lowerings, MSTs, cycle enumeration, SCC
  collapse, compiled arrays) so nothing is computed twice.
* :mod:`repro.lis` -- two cycle-accurate simulators plus environment
  models for open systems.
* :mod:`repro.sim` -- the NumPy-vectorized batch simulation kernel,
  cycle-exact against both reference simulators.
* :mod:`repro.schedule` -- the analytic schedule oracle: balanced
  binary firing words, exact steady-state throughput, occupancy and
  transient latency without simulating (``backend="schedule"``).
* :mod:`repro.gen` -- the Section VIII random generator and every
  worked example from the paper's figures.
* :mod:`repro.dsl` -- the declarative frontend: ``@shell`` /
  ``@system`` class decorators, typed ports, hierarchical
  composition, lowering to fingerprint-identical graphs, and
  SystemVerilog export pinned cycle-exactly against the simulators.
* :mod:`repro.soc` -- the COFDM UWB transmitter case study.
* :mod:`repro.engine` -- the self-healing batch analysis engine:
  process-pool fan-out, content-hash memoization, per-op
  observability, checksummed disk caching with quarantine, retry
  with backoff, and checkpoint/resume journals.
* :mod:`repro.faults` -- seeded fault injection (stall schedules,
  void storms, stop glitches, relay jitter) with an invariant
  harness and chaos campaigns across all three simulators.
* :mod:`repro.experiments` -- shared experiment harness used by the
  ``benchmarks/`` suite.
* :mod:`repro.stochastic` -- stochastic stall/arrival processes, the
  vectorized Monte-Carlo tail estimator, analytic tail quantiles
  (exact under global modulated service), and tail-vs-queue-sizing
  curves (``repro tail``).
* :mod:`repro.server` -- analysis-as-a-service: an asyncio
  HTTP/JSON-RPC front end with fingerprint request coalescing,
  sharded engine workers, admission control, and a Little's-Law /
  M/M/1 queueing self-model (``repro serve``).
"""

from .core import (
    AnalysisReport,
    LisGraph,
    MarkedGraph,
    QsSolution,
    Solver,
    TdKernel,
    ThroughputResult,
    TopologyClass,
    actual_mst,
    analyze,
    available_solvers,
    classify_topology,
    compile_td,
    degradation_ratio,
    fixed_qs_mst,
    get_solver,
    ideal_mst,
    minimal_fixed_q,
    mst,
    register_solver,
    size_queues,
)
from .analysis import Context, get_context
from .engine import (
    AnalysisEngine,
    Checkpoint,
    EngineStats,
    analyze_many,
    run_checkpointed,
    solve_exact_portfolio,
)
from .faults import (
    FaultSchedule,
    FaultSpec,
    build_schedule,
    check_invariants,
    run_campaign,
)
from .gen import GeneratorConfig, generate_lis, mesh_lis, torus_lis
from .lis import (
    Backend,
    RtlSimulator,
    ShellBehavior,
    TraceSimulator,
    available_backends,
    crossvalidate,
    get_backend,
    measured_throughput,
    register_backend,
    simulate_trace,
)
__version__ = "1.10.0"

# The vectorized backend, the schedule oracle and the stochastic layer
# need numpy, which is an optional dependency; resolve their names
# lazily so `import repro` works without it.  The declarative frontend
# resolves lazily too, keeping `import repro` free of its module tree.
_SIM_EXPORTS = {"BatchSimulator", "FastSimulator", "simulate_fast"}
_DSL_EXPORTS = {
    "Channel",
    "Port",
    "SystemBuilder",
    "SystemDecl",
    "crosscheck_rtl",
    "export_rtl",
    "shell",
    "system",
}
_SCHEDULE_EXPORTS = {"ScheduleOracle", "derive_schedule"}
_SERVER_EXPORTS = {
    "AnalysisServer",
    "ServerClient",
    "ServerConfig",
    "QueueModel",
    "RetryPolicy",
}
_STOCHASTIC_EXPORTS = {
    "MonteCarloResult",
    "StochasticSpec",
    "TailCurve",
    "TailEstimate",
    "arrival_envelope",
    "bernoulli_stalls",
    "burst_stalls",
    "estimate_tails",
    "periodic_stalls",
    "run_monte_carlo",
    "tail_curve",
}


def __getattr__(name):
    if name in _SIM_EXPORTS:
        from . import sim

        return getattr(sim, name)
    if name in _DSL_EXPORTS:
        from . import dsl

        return getattr(dsl, name)
    if name in _SCHEDULE_EXPORTS:
        from . import schedule

        return getattr(schedule, name)
    if name in _STOCHASTIC_EXPORTS:
        from . import stochastic

        return getattr(stochastic, name)
    if name in _SERVER_EXPORTS:
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AnalysisEngine",
    "AnalysisReport",
    "AnalysisServer",
    "Backend",
    "BatchSimulator",
    "Channel",
    "Checkpoint",
    "Context",
    "EngineStats",
    "FastSimulator",
    "FaultSchedule",
    "FaultSpec",
    "GeneratorConfig",
    "LisGraph",
    "MarkedGraph",
    "MonteCarloResult",
    "Port",
    "QsSolution",
    "QueueModel",
    "RetryPolicy",
    "RtlSimulator",
    "ScheduleOracle",
    "ServerClient",
    "ServerConfig",
    "ShellBehavior",
    "Solver",
    "StochasticSpec",
    "SystemBuilder",
    "SystemDecl",
    "TailCurve",
    "TailEstimate",
    "TdKernel",
    "ThroughputResult",
    "TopologyClass",
    "TraceSimulator",
    "actual_mst",
    "analyze",
    "analyze_many",
    "arrival_envelope",
    "available_backends",
    "available_solvers",
    "bernoulli_stalls",
    "build_schedule",
    "burst_stalls",
    "check_invariants",
    "classify_topology",
    "compile_td",
    "crosscheck_rtl",
    "crossvalidate",
    "degradation_ratio",
    "derive_schedule",
    "estimate_tails",
    "export_rtl",
    "fixed_qs_mst",
    "generate_lis",
    "get_backend",
    "get_context",
    "get_solver",
    "ideal_mst",
    "measured_throughput",
    "mesh_lis",
    "minimal_fixed_q",
    "mst",
    "periodic_stalls",
    "register_backend",
    "register_solver",
    "run_campaign",
    "run_checkpointed",
    "run_monte_carlo",
    "shell",
    "simulate_fast",
    "simulate_trace",
    "size_queues",
    "system",
    "solve_exact_portfolio",
    "tail_curve",
    "torus_lis",
    "__version__",
]
