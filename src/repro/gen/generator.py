"""Random LIS generation (paper, Section VIII).

The generator takes the paper's parameters:

* ``v``  -- number of vertices (shells),
* ``s``  -- number of SCCs,
* ``c``  -- minimum number of extra cycles (chords) per SCC,
* ``rs`` -- number of relay stations to insert,
* ``rp`` -- whether reconvergent paths between SCCs are allowed,
* ``policy`` -- relay-station placement: ``"any"`` edge, or ``"scc"``
  (only edges between SCCs),

and produces a :class:`~repro.core.lis_graph.LisGraph` by the paper's
five steps: partition vertices into SCCs; give each SCC a Hamiltonian
cycle plus ``c`` chords; connect the SCCs with a random
connected DAG (a tree when ``rp = 0``); realize each inter-SCC edge
with a channel between random member vertices; and sprinkle the relay
stations over the edges the policy allows.

All randomness flows through a caller-supplied seed, making every
experiment in :mod:`benchmarks` reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.lis_graph import LisGraph

__all__ = [
    "GeneratorConfig",
    "generate_lis",
    "GeneratorError",
    "mesh_lis",
    "torus_lis",
]


class GeneratorError(Exception):
    """Raised when the requested parameters are unsatisfiable."""


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the Section VIII random-graph generator.

    Attributes mirror the paper's inputs; ``queue`` sets the uniform
    baseline queue capacity and ``seed`` fixes the random stream.
    """

    v: int = 50
    s: int = 5
    c: int = 5
    rs: int = 10
    rp: bool = True
    policy: str = "scc"
    queue: int = 1
    seed: int | None = None

    def validate(self) -> None:
        if self.s < 1:
            raise GeneratorError("need at least one SCC")
        if self.v < 2 * self.s:
            raise GeneratorError(
                f"need v >= 2*s to give every SCC a cycle (v={self.v}, s={self.s})"
            )
        if self.c < 0 or self.rs < 0:
            raise GeneratorError("c and rs must be non-negative")
        if self.policy not in ("any", "scc"):
            raise GeneratorError(f"unknown policy {self.policy!r}")
        if self.policy == "scc" and self.s < 2 and self.rs > 0:
            raise GeneratorError(
                "policy 'scc' needs at least two SCCs to place relays"
            )
        if self.queue < 1:
            raise GeneratorError("queue must be >= 1")


def _partition_vertices(
    rng: random.Random, v: int, s: int
) -> list[list[str]]:
    """Step 1: split shells ``n0..n{v-1}`` into s groups of size >= 2."""
    names = [f"n{i}" for i in range(v)]
    rng.shuffle(names)
    # Give every SCC two vertices, then deal the rest randomly.
    sizes = [2] * s
    for _ in range(v - 2 * s):
        sizes[rng.randrange(s)] += 1
    groups: list[list[str]] = []
    start = 0
    for size in sizes:
        groups.append(names[start : start + size])
        start += size
    return groups


def _build_scc(
    rng: random.Random, lis: LisGraph, members: list[str], chords: int
) -> list[int]:
    """Step 2: Hamiltonian cycle plus up to ``chords`` chord channels.

    Returns the channel ids created.  Chords are distinct ordered pairs
    not already used; when the SCC is too small to host all requested
    chords (the paper's "as long as there are enough possible edges"),
    the available ones are used.
    """
    created: list[int] = []
    order = list(members)
    rng.shuffle(order)
    used: set[tuple[str, str]] = set()
    for i, src in enumerate(order):
        dst = order[(i + 1) % len(order)]
        created.append(lis.add_channel(src, dst))
        used.add((src, dst))
    candidates = [
        (u, w)
        for u in members
        for w in members
        if u != w and (u, w) not in used
    ]
    rng.shuffle(candidates)
    for u, w in candidates[:chords]:
        created.append(lis.add_channel(u, w))
        used.add((u, w))
    return created


def _connect_sccs(
    rng: random.Random,
    lis: LisGraph,
    groups: list[list[str]],
    rp: bool,
) -> list[int]:
    """Steps 3-4: a connected DAG over SCCs, realized as channels.

    SCC indices are ordered by a random topological permutation, so
    every added edge points forward and no inter-SCC cycle can form.
    Without reconvergent paths the auxiliary graph is a random tree;
    with ``rp`` set, extra forward edges are added, which creates
    reconvergence with high probability.
    """
    s = len(groups)
    if s == 1:
        return []
    topo = list(range(s))
    rng.shuffle(topo)
    position = {scc: i for i, scc in enumerate(topo)}

    aux_edges: list[tuple[int, int]] = []
    connected = {topo[0]}
    for scc in topo[1:]:
        other = rng.choice(sorted(connected))
        a, b = (other, scc) if position[other] < position[scc] else (scc, other)
        aux_edges.append((a, b))
        connected.add(scc)
    if rp:
        # Calibrated to the paper's Table IV averages: ~12 inter-SCC
        # edges for s = 10 and ~25 for s = 20 (tree edges + extras).
        extra = rng.randint(2, max(2, s // 3 + 1))
        existing = set(aux_edges)
        for _ in range(extra):
            a, b = rng.sample(range(s), 2)
            if position[a] > position[b]:
                a, b = b, a
            if (a, b) in existing:
                continue
            existing.add((a, b))
            aux_edges.append((a, b))

    created = []
    for a, b in aux_edges:
        src = rng.choice(groups[a])
        dst = rng.choice(groups[b])
        created.append(lis.add_channel(src, dst))
    return created


def mesh_lis(
    rows: int,
    cols: int,
    queue: int = 1,
    torus: bool = False,
    relays: int = 0,
    queue_choices: list[int] | None = None,
    seed: int | None = 0,
) -> LisGraph:
    """A ``rows x cols`` mesh NoC as a LIS: one shell per router
    (named ``m{r}_{c}``), one channel per directed link between
    4-neighbours, optionally wrapped into a torus.

    The workload axis this feeds (:mod:`repro.stochastic`) follows the
    wormhole-NoC buffer analyses: ``queue_choices`` draws each link's
    queue capacity from a list (heterogeneous per-channel buffers)
    and ``relays`` sprinkles relay stations over random links (long
    wires segmented for frequency).  Both draws -- the only
    randomness -- flow through ``seed``, so equal parameters give
    fingerprint-identical systems (pinned by the seed-stability
    suite).  Wrap links are skipped along a dimension shorter than 3,
    where they would duplicate an existing link or form a self-loop.
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise GeneratorError("mesh needs at least two routers")
    if relays < 0:
        raise GeneratorError("relays must be non-negative")
    if queue < 1 or (queue_choices is not None and min(queue_choices) < 1):
        raise GeneratorError("queue capacities must be >= 1")
    rng = random.Random(seed)
    lis = LisGraph(default_queue=queue)
    for r in range(rows):
        for c in range(cols):
            lis.add_shell(f"m{r}_{c}")
    channels: list[int] = []

    def link(a: str, b: str) -> None:
        channels.append(lis.add_channel(a, b))
        channels.append(lis.add_channel(b, a))

    for r in range(rows):
        for c in range(cols):
            here = f"m{r}_{c}"
            if c + 1 < cols:
                link(here, f"m{r}_{c + 1}")
            elif torus and cols >= 3:
                link(here, f"m{r}_0")
            if r + 1 < rows:
                link(here, f"m{r + 1}_{c}")
            elif torus and rows >= 3:
                link(here, f"m0_{c}")
    if queue_choices:
        for cid in channels:
            lis.set_queue(cid, rng.choice(queue_choices))
    for _ in range(relays):
        lis.insert_relay(rng.choice(channels))
    return lis


def torus_lis(
    rows: int,
    cols: int,
    queue: int = 1,
    relays: int = 0,
    queue_choices: list[int] | None = None,
    seed: int | None = 0,
) -> LisGraph:
    """:func:`mesh_lis` with wrap-around links (``torus=True``)."""
    return mesh_lis(
        rows,
        cols,
        queue=queue,
        torus=True,
        relays=relays,
        queue_choices=queue_choices,
        seed=seed,
    )


def generate_lis(config: GeneratorConfig) -> LisGraph:
    """Generate a random LIS per the paper's Section VIII procedure."""
    config.validate()
    rng = random.Random(config.seed)
    lis = LisGraph(default_queue=config.queue)

    groups = _partition_vertices(rng, config.v, config.s)
    intra: list[int] = []
    for members in groups:
        intra.extend(_build_scc(rng, lis, members, config.c))
    inter = _connect_sccs(rng, lis, groups, config.rp)

    eligible = inter if config.policy == "scc" else intra + inter
    if config.rs > 0 and not eligible:
        raise GeneratorError("no eligible channels for relay insertion")
    for _ in range(config.rs):
        lis.insert_relay(rng.choice(eligible))
    return lis
