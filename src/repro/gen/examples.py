"""Factories for the worked examples in the paper's figures.

Each function returns a :class:`~repro.core.lis_graph.LisGraph` (or a
marked graph) matching a specific figure, with the channel ids needed
by tests and benchmarks exposed via node/channel naming conventions.
These examples double as executable documentation: every quantitative
claim the paper makes about them is asserted in the test-suite.
"""

from __future__ import annotations

from ..core.lis_graph import LisGraph

__all__ = [
    "fig1_lis",
    "fig2_left_lis",
    "fig2_right_lis",
    "fig15_lis",
    "fig10_limiter_lis",
    "uplink_downlink_lis",
    "ring_lis",
    "tree_lis",
]


def fig1_lis() -> LisGraph:
    """The running example of Figs. 1-2 (left): cores A and B.

    A feeds B over two channels; the *upper* channel is routed long and
    carries one relay station.  Channel ids: upper = 0, lower = 1.

    * Ideal MST = 1 (no feedback loop).
    * With backpressure and q = 1 everywhere, the MST degrades to 2/3
      (Fig. 5's critical cycle {A, relay station, B, A}).
    * Raising the lower channel's queue to 2 restores MST = 1 (Fig. 6).
    """
    lis = LisGraph()
    lis.add_shell("A")
    lis.add_shell("B")
    lis.add_channel("A", "B", relays=1)  # upper, pipelined
    lis.add_channel("A", "B")  # lower
    return lis


def fig2_left_lis() -> LisGraph:
    """Alias of :func:`fig1_lis`: the same system with backpressure in
    mind (backedges only materialize in the doubled marked graph)."""
    return fig1_lis()


def fig2_right_lis() -> LisGraph:
    """Fig. 2 (right): a second relay station inserted on the *lower*
    channel for performance, equalizing the two path latencies.

    With q = 1 the doubled graph now sustains MST = 1.
    """
    lis = fig1_lis()
    lis.insert_relay(1)  # lower channel
    return lis


def fig15_lis() -> LisGraph:
    """Fig. 15: the LIS where relay-station insertion cannot recover
    the ideal MST but queue sizing can.

    Channels (ids in parentheses):
        A->E with one relay station (0), E->D (1), D->C (2), C->B (3),
        B->A (4), A->C (5), C->E (6).

    * Ideal MST = 5/6, set by the cycle {A, rs, E, D, C, B}.
    * Doubled with q = 1, the cycle {A, rs, E, /C, /A} (backedges on
      the last two hops) has mean 3/4 < 5/6.
    * Inserting a relay station on (A,C) or (C,E) creates a new
      forward cycle of mean 3/4, so insertion alone cannot help.
    """
    lis = LisGraph()
    for shell in "ABCDE":
        lis.add_shell(shell)
    lis.add_channel("A", "E", relays=1)  # 0
    lis.add_channel("E", "D")  # 1
    lis.add_channel("D", "C")  # 2
    lis.add_channel("C", "B")  # 3
    lis.add_channel("B", "A")  # 4
    lis.add_channel("A", "C")  # 5
    lis.add_channel("C", "E")  # 6
    return lis


def fig10_limiter_lis() -> LisGraph:
    """Fig. 10: an isolated cycle with six places and five tokens.

    Realized as a ring of five shells with one relay station on the
    first channel; it pins the ideal MST of the NP-completeness
    construction to 5/6.  Shells are named ``lim0..lim4``.
    """
    lis = LisGraph()
    names = [f"lim{i}" for i in range(5)]
    for name in names:
        lis.add_shell(name)
    for i, name in enumerate(names):
        lis.add_channel(name, names[(i + 1) % 5], relays=1 if i == 0 else 0)
    return lis


def uplink_downlink_lis() -> LisGraph:
    """The introduction's motivating composition: an uplink subsystem
    with MST 3/4 feeding a downlink subsystem with MST 2/3.

    The uplink is a 3-ring with one relay station (3 tokens / 4
    places); the downlink is a 2-ring with one relay station (2 tokens
    / 3 places); a single channel connects them.  Without infinite
    queues the faster uplink would overflow the downlink, so
    backpressure is mandatory here.
    """
    lis = LisGraph()
    up = [f"u{i}" for i in range(3)]
    down = [f"d{i}" for i in range(2)]
    for name in up + down:
        lis.add_shell(name)
    for i, name in enumerate(up):
        lis.add_channel(name, up[(i + 1) % 3], relays=1 if i == 0 else 0)
    for i, name in enumerate(down):
        lis.add_channel(name, down[(i + 1) % 2], relays=1 if i == 0 else 0)
    lis.add_channel(up[0], down[0])
    return lis


def ring_lis(n: int, relays: int = 0, queue: int = 1) -> LisGraph:
    """A ring of ``n`` shells with ``relays`` relay stations on the
    closing channel.  Ideal MST = n / (n + relays), capped at 1."""
    if n < 1:
        raise ValueError("ring needs at least one shell")
    lis = LisGraph(default_queue=queue)
    names = [f"s{i}" for i in range(n)]
    for name in names:
        lis.add_shell(name)
    for i, name in enumerate(names):
        lis.add_channel(
            name, names[(i + 1) % n], relays=relays if i == n - 1 else 0
        )
    return lis


def tree_lis(depth: int, fanout: int = 2, relays_per_channel: int = 1) -> LisGraph:
    """A complete tree of shells, every channel pipelined.

    Trees have no reconvergent paths, so (Section IV-A) fixed q = 1
    suffices for zero MST degradation however many relay stations are
    inserted.  Node names are tuples encoding the path from the root.
    """
    lis = LisGraph()
    root = ("n",)
    lis.add_shell(root)
    frontier = [root]
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for i in range(fanout):
                child = parent + (i,)
                lis.add_shell(child)
                lis.add_channel(parent, child, relays=relays_per_channel)
                next_frontier.append(child)
        frontier = next_frontier
    return lis
