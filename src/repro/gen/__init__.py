"""Synthetic LIS generation: random topologies (Section VIII) and the
named examples from the paper's figures."""

from .generator import (
    GeneratorConfig,
    GeneratorError,
    generate_lis,
    mesh_lis,
    torus_lis,
)
from .examples import (
    fig1_lis,
    fig2_left_lis,
    fig2_right_lis,
    fig10_limiter_lis,
    fig15_lis,
    ring_lis,
    tree_lis,
    uplink_downlink_lis,
)

__all__ = [
    "GeneratorConfig",
    "GeneratorError",
    "generate_lis",
    "mesh_lis",
    "torus_lis",
    "fig1_lis",
    "fig2_left_lis",
    "fig2_right_lis",
    "fig10_limiter_lis",
    "fig15_lis",
    "ring_lis",
    "tree_lis",
    "uplink_downlink_lis",
]
