"""Synthetic LIS generation: random topologies (Section VIII) and the
named examples from the paper's figures."""

from .generator import (
    GeneratorConfig,
    GeneratorError,
    generate_lis,
    mesh_lis,
    torus_lis,
)
from .examples import (
    fig1_lis,
    fig2_left_lis,
    fig2_right_lis,
    fig10_limiter_lis,
    fig15_lis,
    ring_lis,
    tree_lis,
    uplink_downlink_lis,
)

# The declarative twins pull in repro.dsl; resolve them lazily so
# importing repro.gen stays free of the DSL module tree.
_DECLARATIVE_EXPORTS = {"DECLARATIVE_TWINS", "twin_fingerprints", "verify_twin"}


def __getattr__(name):
    if name in _DECLARATIVE_EXPORTS:
        from . import declarative

        return getattr(declarative, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DECLARATIVE_TWINS",
    "GeneratorConfig",
    "GeneratorError",
    "generate_lis",
    "mesh_lis",
    "torus_lis",
    "fig1_lis",
    "fig2_left_lis",
    "fig2_right_lis",
    "fig10_limiter_lis",
    "fig15_lis",
    "ring_lis",
    "tree_lis",
    "twin_fingerprints",
    "uplink_downlink_lis",
    "verify_twin",
]
