"""Declarative twins of the built-in example factories.

Every entry pairs a hand-built :mod:`repro.gen` / :mod:`repro.soc`
factory with the :mod:`repro.dsl` declaration that lowers to the very
same graph -- same shells, same channel ids, same canonical JSON,
**byte-identical fingerprint**.  The round-trip regression suite
iterates this table, so the two spellings can never drift apart; the
CLI uses it to resolve ``--dsl``-side names for systems that also
exist as classic factories.
"""

from __future__ import annotations

from typing import Callable

from ..core.lis_graph import LisGraph
from ..dsl.corpus import corpus_system
from ..dsl.decl import SystemDecl
from .examples import (
    fig1_lis,
    fig2_right_lis,
    fig15_lis,
    ring_lis,
    uplink_downlink_lis,
)
from .generator import mesh_lis, torus_lis

__all__ = ["DECLARATIVE_TWINS", "twin_fingerprints", "verify_twin"]


def _cofdm() -> LisGraph:
    from ..soc.cofdm import cofdm_transmitter

    return cofdm_transmitter()


def _cofdm_fig19() -> LisGraph:
    from ..soc.cofdm import fig19_scenario

    return fig19_scenario()


#: ``corpus name -> (hand-built factory, declarative factory)``.
DECLARATIVE_TWINS: dict[
    str, tuple[Callable[[], LisGraph], Callable[[], SystemDecl]]
] = {
    "fig1": (fig1_lis, lambda: corpus_system("fig1")),
    "fig2_right": (fig2_right_lis, lambda: corpus_system("fig2_right")),
    "fig15": (fig15_lis, lambda: corpus_system("fig15")),
    "uplink_downlink": (
        uplink_downlink_lis,
        lambda: corpus_system("uplink_downlink"),
    ),
    "cofdm": (_cofdm, lambda: corpus_system("cofdm")),
    "cofdm_fig19": (_cofdm_fig19, lambda: corpus_system("cofdm_fig19")),
    "mesh3x3": (lambda: mesh_lis(3, 3), lambda: corpus_system("mesh3x3")),
    "torus4x4": (
        lambda: torus_lis(4, 4),
        lambda: corpus_system("torus4x4"),
    ),
    "ring8": (
        lambda: ring_lis(8, relays=2),
        lambda: corpus_system("ring8"),
    ),
}


def twin_fingerprints(name: str) -> tuple[str, str]:
    """``(hand-built fingerprint, DSL fingerprint)`` for one twin."""
    hand, decl = DECLARATIVE_TWINS[name]
    return hand().freeze().fingerprint(), decl().fingerprint()


def verify_twin(name: str) -> bool:
    """True iff the two spellings produce byte-identical fingerprints."""
    left, right = twin_fingerprints(name)
    return left == right
