"""ASCII table rendering and result persistence for experiments.

Every benchmark regenerates one of the paper's tables or figures as a
plain-text table; this module renders and stores them uniformly under
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import tempfile
from fractions import Fraction
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "atomic_write_text",
    "format_cell",
    "render_table",
    "results_dir",
    "save_result",
    "save_result_json",
]


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename), so a
    crash mid-write never leaves a truncated result file behind and
    concurrent readers see either the old content or the new."""
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def format_cell(value: Any) -> str:
    """Human-friendly formatting: Fractions as fixed-point, floats
    rounded, everything else via str()."""
    if isinstance(value, Fraction):
        return f"{float(value):.3f}"
    if isinstance(value, float):
        return f"{value:.3f}"
    if value is None:
        return "-"
    return str(value)


def render_table(
    headers: list[str], rows: Iterable[Iterable[Any]], title: str | None = None
) -> str:
    """A boxless aligned ASCII table."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [
        max([len(h)] + [len(r[i]) for r in str_rows])
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def results_dir() -> Path:
    """Where benchmark tables are persisted (created on demand).

    Defaults to ``benchmarks/results`` relative to the repository root;
    override with the ``REPRO_RESULTS_DIR`` environment variable.
    """
    override = os.environ.get("REPRO_RESULTS_DIR")
    if override:
        path = Path(override)
    else:
        path = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_result(name: str, text: str) -> Path:
    """Persist a rendered table under ``benchmarks/results/<name>.txt``."""
    path = results_dir() / f"{name}.txt"
    atomic_write_text(path, text + "\n")
    return path


def _json_default(value: Any) -> Any:
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if hasattr(value, "value"):  # enums (TopologyClass, ...)
        return value.value
    return str(value)


def save_result_json(name: str, data: dict | None = None) -> str:
    """Persist a machine-readable result line alongside the text table.

    Writes ``benchmarks/results/<name>.json`` containing one JSON
    object (``{"bench": name, ...data}``) and returns the serialized
    line, so benchmark trajectories can be tracked by tooling without
    parsing ASCII tables.  Fractions are encoded as ``"n/d"`` strings.
    """
    payload = {"bench": name}
    if data:
        payload.update(data)
    line = json.dumps(payload, sort_keys=True, default=_json_default)
    path = results_dir() / f"{name}.json"
    atomic_write_text(path, line + "\n")
    return line
