"""Shared experiment harness: runners, table rendering, sizing knobs."""

from .config import cofdm_limit, exact_timeout, trials
from .runners import (
    Table4Row,
    fig16_mst_degradation,
    fig17_fixed_queue_recovery,
    table4_exact_vs_heuristic,
    tail_latency_curves,
)
from .tables import (
    format_cell,
    render_table,
    results_dir,
    save_result,
    save_result_json,
)

__all__ = [
    "cofdm_limit",
    "exact_timeout",
    "trials",
    "Table4Row",
    "fig16_mst_degradation",
    "fig17_fixed_queue_recovery",
    "table4_exact_vs_heuristic",
    "tail_latency_curves",
    "format_cell",
    "render_table",
    "results_dir",
    "save_result",
    "save_result_json",
]
