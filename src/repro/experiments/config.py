"""Experiment sizing knobs.

The paper averages 50 random trials per configuration and gives the
exact solver a one-hour timeout.  Those settings make the full
benchmark run take a long while, so the defaults here are scaled for
continuous testing; set the environment variables to reproduce the
paper-scale runs::

    REPRO_TRIALS=50 REPRO_EXACT_TIMEOUT=3600 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

__all__ = ["trials", "exact_timeout", "cofdm_limit"]

_DEFAULT_TRIALS = 10
_DEFAULT_EXACT_TIMEOUT = 20.0


def trials(default: int | None = None) -> int:
    """Number of random trials per configuration (paper: 50)."""
    return int(os.environ.get("REPRO_TRIALS", default or _DEFAULT_TRIALS))


def exact_timeout(default: float | None = None) -> float:
    """Per-instance exact-solver budget in seconds (paper: 3600)."""
    return float(
        os.environ.get(
            "REPRO_EXACT_TIMEOUT", default or _DEFAULT_EXACT_TIMEOUT
        )
    )


def cofdm_limit() -> int | None:
    """Cap on Table V placements; unset/0 sweeps all 435."""
    raw = os.environ.get("REPRO_COFDM_LIMIT", "")
    if not raw:
        return None
    value = int(raw)
    return value if value > 0 else None
