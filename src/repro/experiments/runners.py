"""Experiment runners for Section VIII's figures and tables.

Each runner is deterministic given its seed base, averages over a
configurable number of random systems, and returns plain dicts/rows
that the benchmarks render with :mod:`repro.experiments.tables`.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from fractions import Fraction

from ..core.cycles import collapse_sccs
from ..core.solvers.exact import ExactTimeout, solve_td_exact
from ..core.solvers.heuristic import solve_td_heuristic
from ..core.throughput import actual_mst, ideal_mst
from ..core.token_deficit import build_td_instance
from ..gen.generator import GeneratorConfig, generate_lis
from ..graphs import scc_of
from ..graphs.cycles import count_edge_cycles

__all__ = [
    "fig16_mst_degradation",
    "fig17_fixed_queue_recovery",
    "Table4Row",
    "table4_exact_vs_heuristic",
]


def fig16_mst_degradation(
    rs_values: list[int],
    queues: list[int],
    policies: tuple[str, ...] = ("scc", "any"),
    trials: int = 10,
    v: int = 50,
    s: int = 5,
    c: int = 5,
    seed_base: int = 1000,
) -> dict[tuple[str, str], list[float]]:
    """Fig. 16: average MST vs relay-station count.

    Returns ``{(policy, queue_label): [avg MST per rs value]}`` where
    ``queue_label`` is ``"inf"`` for the ideal system (infinite queues,
    no backpressure) or ``str(q)`` for finite uniform queues.
    """
    series: dict[tuple[str, str], list[float]] = {}
    for policy in policies:
        labels = ["inf"] + [str(q) for q in queues]
        for label in labels:
            series[(policy, label)] = []
        for rs in rs_values:
            sums = {label: 0.0 for label in labels}
            for trial in range(trials):
                cfg = GeneratorConfig(
                    v=v,
                    s=s,
                    c=c,
                    rs=rs,
                    rp=True,
                    policy=policy,
                    seed=seed_base + 7919 * trial + rs,
                )
                lis = generate_lis(cfg)
                sums["inf"] += float(ideal_mst(lis).mst)
                for q in queues:
                    trial_lis = lis.copy()
                    trial_lis.set_all_queues(q)
                    sums[str(q)] += float(actual_mst(trial_lis).mst)
            for label in labels:
                series[(policy, label)].append(sums[label] / trials)
    return series


def fig17_fixed_queue_recovery(
    q_values: list[int],
    trials: int = 10,
    rs: int = 10,
    v: int = 50,
    s: int = 5,
    c: int = 5,
    seed_base: int = 2000,
) -> dict[int, float]:
    """Fig. 17: average actual/ideal MST ratio vs uniform queue size,
    for scc-policy relay insertion (ideal MST is 1 there)."""
    totals = {q: 0.0 for q in q_values}
    for trial in range(trials):
        cfg = GeneratorConfig(
            v=v, s=s, c=c, rs=rs, rp=True, policy="scc",
            seed=seed_base + 104729 * trial,
        )
        lis = generate_lis(cfg)
        ideal = ideal_mst(lis).mst
        for q in q_values:
            trial_lis = lis.copy()
            trial_lis.set_all_queues(q)
            totals[q] += float(actual_mst(trial_lis).mst / ideal)
    return {q: total / trials for q, total in totals.items()}


@dataclass
class Table4Row:
    """One aggregated row of the paper's Table IV."""

    v: int
    s: int
    c: int
    rs: int
    trials: int = 0
    avg_edges: float = 0.0
    avg_inter_scc_edges: float = 0.0
    avg_inter_scc_cycles: float = 0.0
    exact_solutions: list[int] = field(default_factory=list)
    heuristic_solutions_finished: list[int] = field(default_factory=list)
    unfinished_cycles: list[float] = field(default_factory=list)
    heuristic_solutions_unfinished: list[int] = field(default_factory=list)

    @property
    def percent_exact_finished(self) -> float:
        total = len(self.exact_solutions) + len(
            self.heuristic_solutions_unfinished
        )
        return len(self.exact_solutions) / total if total else 1.0

    def as_table_row(self) -> list:
        mean = lambda xs: statistics.fmean(xs) if xs else None  # noqa: E731
        return [
            f"({self.v},{self.avg_edges:.2f})",
            self.s,
            f"{self.avg_inter_scc_edges:.2f}",
            f"{self.avg_inter_scc_cycles:.2f}",
            self.rs,
            mean(self.exact_solutions),
            mean(self.heuristic_solutions_finished),
            f"{self.percent_exact_finished:.2f}",
            mean(self.unfinished_cycles),
            mean(self.heuristic_solutions_unfinished),
        ]

    HEADERS = [
        "(V,E)",
        "#SCC",
        "Edges(inter)",
        "Cycles(inter)",
        "RS",
        "Exact",
        "Heuristic",
        "%ExactFin",
        "CyclesUnfin",
        "HeurNoExact",
    ]


def table4_exact_vs_heuristic(
    configs: list[tuple[int, int, int]] | None = None,
    trials: int = 10,
    rs: int = 10,
    exact_timeout: float = 20.0,
    seed_base: int = 3000,
) -> list[Table4Row]:
    """Table IV: exact vs heuristic queue sizing on DAG-of-SCC systems
    with inter-SCC relay stations, solved after the SCC collapse.

    ``configs`` is a list of ``(v, s, c)`` tuples; the defaults mirror
    the paper's four rows (chord counts chosen so that average edge
    counts match the published (V, E) pairs).
    """
    if configs is None:
        configs = [(50, 10, 2), (100, 10, 1), (100, 20, 1), (200, 10, 1)]
    rows = []
    for row_idx, (v, s, c) in enumerate(configs):
        row = Table4Row(v=v, s=s, c=c, rs=rs, trials=trials)
        edges_sum = inter_sum = cycles_sum = 0.0
        for trial in range(trials):
            cfg = GeneratorConfig(
                v=v, s=s, c=c, rs=rs, rp=True, policy="scc",
                seed=seed_base + 15485863 * row_idx + 6151 * trial,
            )
            lis = generate_lis(cfg)
            edges_sum += len(lis.channels())
            mapping = scc_of(lis.system)
            inter_sum += sum(
                1
                for e in lis.channels()
                if mapping[e.src] != mapping[e.dst]
            )
            collapsed, _ = collapse_sccs(lis)
            doubled = collapsed.doubled_marked_graph()
            cycles_sum += count_edge_cycles(doubled.graph)
            instance = build_td_instance(
                collapsed, target=Fraction(1), simplify=True
            )
            heuristic_cost = instance.solution_cost(
                solve_td_heuristic(instance)
            )
            try:
                outcome = solve_td_exact(instance, timeout=exact_timeout)
                row.exact_solutions.append(
                    outcome.cost + sum(instance.forced.values())
                )
                row.heuristic_solutions_finished.append(heuristic_cost)
            except ExactTimeout:
                row.unfinished_cycles.append(
                    count_edge_cycles(doubled.graph)
                )
                row.heuristic_solutions_unfinished.append(heuristic_cost)
        row.avg_edges = edges_sum / trials
        row.avg_inter_scc_edges = inter_sum / trials
        row.avg_inter_scc_cycles = cycles_sum / trials
        rows.append(row)
    return rows
