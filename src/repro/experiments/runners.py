"""Experiment runners for Section VIII's figures and tables.

Each runner is deterministic given its seed base, averages over a
configurable number of random systems, and returns plain dicts/rows
that the benchmarks render with :mod:`repro.experiments.tables`.

All of them fan their per-system work out through the
:class:`~repro.engine.AnalysisEngine`: pass ``jobs=`` to parallelize,
``cache_dir=`` to memoize across runs, or an existing ``engine=`` to
share its pool, cache, and stats.  Results are aggregated in
submission order, so serial and parallel runs produce identical
numbers.
"""

from __future__ import annotations

import contextlib
import statistics
from dataclasses import dataclass, field
from fractions import Fraction

from ..engine import AnalysisEngine
from ..gen.generator import GeneratorConfig, generate_lis

__all__ = [
    "fig16_mst_degradation",
    "fig17_fixed_queue_recovery",
    "Table4Row",
    "table4_exact_vs_heuristic",
    "tail_latency_curves",
]


@contextlib.contextmanager
def _engine_for(engine, jobs, cache_dir):
    """An engine to submit through: the caller's (left open) or a
    transient one (closed on exit)."""
    if engine is not None:
        yield engine
        return
    with AnalysisEngine(jobs=jobs, cache_dir=cache_dir) as local:
        yield local


def _run_tasks(eng, tasks, checkpoint, chunk):
    """``eng.run`` with an optional completion journal, so a killed
    runner resumes where it died (see :mod:`repro.engine.checkpoint`)."""
    if checkpoint is not None:
        from ..engine import run_checkpointed

        return run_checkpointed(eng, tasks, checkpoint, chunk=chunk)
    return eng.run(tasks)


def fig16_mst_degradation(
    rs_values: list[int],
    queues: list[int],
    policies: tuple[str, ...] = ("scc", "any"),
    trials: int = 10,
    v: int = 50,
    s: int = 5,
    c: int = 5,
    seed_base: int = 1000,
    jobs: int | str | None = None,
    cache_dir=None,
    engine: AnalysisEngine | None = None,
    checkpoint=None,
    checkpoint_chunk: int = 16,
    method: str = "analytic",
) -> dict[tuple[str, str], list[float]]:
    """Fig. 16: average MST vs relay-station count.

    Returns ``{(policy, queue_label): [avg MST per rs value]}`` where
    ``queue_label`` is ``"inf"`` for the ideal system (infinite queues,
    no backpressure) or ``str(q)`` for finite uniform queues.
    ``checkpoint`` journals completed sweeps for crash resume.
    ``method`` selects how each finite-queue point is computed:
    ``"analytic"`` (Karp) or ``"schedule"`` (the eventually-periodic
    oracle -- same exact values, different derivation; see the
    ``mst_sweep`` op).
    """
    grid = [
        (policy, rs, trial)
        for policy in policies
        for rs in rs_values
        for trial in range(trials)
    ]
    tasks = []
    for policy, rs, trial in grid:
        cfg = GeneratorConfig(
            v=v,
            s=s,
            c=c,
            rs=rs,
            rp=True,
            policy=policy,
            seed=seed_base + 7919 * trial + rs,
        )
        tasks.append(
            (
                "mst_sweep",
                generate_lis(cfg),
                {"queues": queues, "method": method},
            )
        )
    with _engine_for(engine, jobs, cache_dir) as eng:
        sweeps = _run_tasks(eng, tasks, checkpoint, checkpoint_chunk)

    labels = ["inf"] + [str(q) for q in queues]
    series: dict[tuple[str, str], list[float]] = {
        (policy, label): [] for policy in policies for label in labels
    }
    sums: dict[tuple[str, int, str], float] = {}
    for (policy, rs, _trial), sweep in zip(grid, sweeps):
        for label in labels:
            key = (policy, rs, label)
            sums[key] = sums.get(key, 0.0) + float(sweep[label])
    for policy in policies:
        for label in labels:
            series[(policy, label)] = [
                sums[(policy, rs, label)] / trials for rs in rs_values
            ]
    return series


def fig17_fixed_queue_recovery(
    q_values: list[int],
    trials: int = 10,
    rs: int = 10,
    v: int = 50,
    s: int = 5,
    c: int = 5,
    seed_base: int = 2000,
    jobs: int | str | None = None,
    cache_dir=None,
    engine: AnalysisEngine | None = None,
    checkpoint=None,
    checkpoint_chunk: int = 16,
    method: str = "analytic",
) -> dict[int, float]:
    """Fig. 17: average actual/ideal MST ratio vs uniform queue size,
    for scc-policy relay insertion (ideal MST is 1 there).  ``method``
    is forwarded to the ``mst_sweep`` op (``"analytic"`` or
    ``"schedule"``)."""
    tasks = []
    for trial in range(trials):
        cfg = GeneratorConfig(
            v=v, s=s, c=c, rs=rs, rp=True, policy="scc",
            seed=seed_base + 104729 * trial,
        )
        tasks.append(
            (
                "mst_sweep",
                generate_lis(cfg),
                {"queues": q_values, "method": method},
            )
        )
    with _engine_for(engine, jobs, cache_dir) as eng:
        sweeps = _run_tasks(eng, tasks, checkpoint, checkpoint_chunk)
    totals = {q: 0.0 for q in q_values}
    for sweep in sweeps:
        ideal = sweep["inf"]
        for q in q_values:
            totals[q] += float(sweep[str(q)] / ideal)
    return {q: total / trials for q, total in totals.items()}


def tail_latency_curves(
    systems: dict | None = None,
    specs: list[dict] | None = None,
    clocks: int = 600,
    trials: int = 200,
    max_extra: int = 3,
    quantiles: tuple[float, ...] = (0.5, 0.99, 0.999),
    jobs: int | str | None = None,
    cache_dir=None,
    engine: AnalysisEngine | None = None,
    checkpoint=None,
    checkpoint_chunk: int = 1,
) -> dict[str, dict]:
    """Tail-vs-queue-sizing curves over a set of systems (the
    ``bench_tail_curves`` deliverable).

    ``systems`` maps name -> LIS (default: fig15, the COFDM
    transmitter, and a 4x4 mesh NoC); ``specs`` is a list of
    :meth:`~repro.stochastic.StochasticSpec.as_dict` dicts (default: a
    10% global Bernoulli service modulation).  Each (system, sizing
    ladder) pair runs as one ``tail_curves`` engine task -- one kernel
    batch of ``(max_extra + 1) * trials`` configurations -- and the
    returned ``{name: TailCurve.as_dict()}`` is deterministic in the
    spec seeds.  ``checkpoint`` journals completed systems for crash
    resume.
    """
    if systems is None:
        from ..gen.examples import fig15_lis
        from ..gen.generator import mesh_lis
        from ..soc import cofdm_transmitter

        systems = {
            "fig15": fig15_lis(),
            "cofdm": cofdm_transmitter(),
            "mesh4x4": mesh_lis(4, 4),
        }
    if specs is None:
        from ..stochastic import bernoulli_stalls

        specs = [bernoulli_stalls(rate=0.1, scope="global").as_dict()]
    names = list(systems)
    options = {
        "specs": specs,
        "clocks": clocks,
        "trials": trials,
        "max_extra": max_extra,
        "quantiles": list(quantiles),
    }
    tasks = [("tail_curves", systems[name], options) for name in names]
    with _engine_for(engine, jobs, cache_dir) as eng:
        curves = _run_tasks(eng, tasks, checkpoint, checkpoint_chunk)
    return dict(zip(names, curves))


@dataclass
class Table4Row:
    """One aggregated row of the paper's Table IV."""

    v: int
    s: int
    c: int
    rs: int
    trials: int = 0
    avg_edges: float = 0.0
    avg_inter_scc_edges: float = 0.0
    avg_inter_scc_cycles: float = 0.0
    exact_solutions: list[int] = field(default_factory=list)
    heuristic_solutions_finished: list[int] = field(default_factory=list)
    unfinished_cycles: list[float] = field(default_factory=list)
    heuristic_solutions_unfinished: list[int] = field(default_factory=list)
    exact_ms: list[float] = field(default_factory=list)
    heuristic_ms: list[float] = field(default_factory=list)
    solver_stats: dict[str, int] = field(default_factory=dict)

    @property
    def percent_exact_finished(self) -> float:
        total = len(self.exact_solutions) + len(
            self.heuristic_solutions_unfinished
        )
        return len(self.exact_solutions) / total if total else 1.0

    def as_table_row(self) -> list:
        mean = lambda xs: statistics.fmean(xs) if xs else None  # noqa: E731
        return [
            f"({self.v},{self.avg_edges:.2f})",
            self.s,
            f"{self.avg_inter_scc_edges:.2f}",
            f"{self.avg_inter_scc_cycles:.2f}",
            self.rs,
            mean(self.exact_solutions),
            mean(self.heuristic_solutions_finished),
            f"{self.percent_exact_finished:.2f}",
            mean(self.unfinished_cycles),
            mean(self.heuristic_solutions_unfinished),
            f"{statistics.fmean(self.exact_ms):.2f}" if self.exact_ms else None,
            f"{statistics.fmean(self.heuristic_ms):.2f}"
            if self.heuristic_ms
            else None,
        ]

    HEADERS = [
        "(V,E)",
        "#SCC",
        "Edges(inter)",
        "Cycles(inter)",
        "RS",
        "Exact",
        "Heuristic",
        "%ExactFin",
        "CyclesUnfin",
        "HeurNoExact",
        "Exact ms",
        "Heur ms",
    ]


def table4_exact_vs_heuristic(
    configs: list[tuple[int, int, int]] | None = None,
    trials: int = 10,
    rs: int = 10,
    exact_timeout: float = 20.0,
    seed_base: int = 3000,
    jobs: int | str | None = None,
    cache_dir=None,
    engine: AnalysisEngine | None = None,
    checkpoint=None,
    checkpoint_chunk: int = 16,
) -> list[Table4Row]:
    """Table IV: exact vs heuristic queue sizing on DAG-of-SCC systems
    with inter-SCC relay stations, solved after the SCC collapse.

    ``configs`` is a list of ``(v, s, c)`` tuples; the defaults mirror
    the paper's four rows (chord counts chosen so that average edge
    counts match the published (V, E) pairs).
    """
    if configs is None:
        configs = [(50, 10, 2), (100, 10, 1), (100, 20, 1), (200, 10, 1)]
    grid = [
        (row_idx, v, s, c, trial)
        for row_idx, (v, s, c) in enumerate(configs)
        for trial in range(trials)
    ]
    tasks = []
    for row_idx, v, s, c, trial in grid:
        cfg = GeneratorConfig(
            v=v, s=s, c=c, rs=rs, rp=True, policy="scc",
            seed=seed_base + 15485863 * row_idx + 6151 * trial,
        )
        tasks.append(
            (
                "table4_trial",
                generate_lis(cfg),
                {"exact_timeout": exact_timeout},
            )
        )
    with _engine_for(engine, jobs, cache_dir) as eng:
        outcomes = _run_tasks(eng, tasks, checkpoint, checkpoint_chunk)

    rows = [
        Table4Row(v=v, s=s, c=c, rs=rs, trials=trials)
        for v, s, c in configs
    ]
    sums = [[0.0, 0.0, 0.0] for _ in configs]
    for (row_idx, *_cfg), outcome in zip(grid, outcomes):
        row = rows[row_idx]
        sums[row_idx][0] += outcome["edges"]
        sums[row_idx][1] += outcome["inter_scc_edges"]
        sums[row_idx][2] += outcome["inter_scc_cycles"]
        row.exact_ms.append(outcome.get("exact_ms", 0.0))
        row.heuristic_ms.append(outcome.get("heuristic_ms", 0.0))
        for stats in (
            outcome.get("exact_stats") or {},
            outcome.get("heuristic_stats") or {},
        ):
            for key, value in stats.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    row.solver_stats[key] = row.solver_stats.get(
                        key, 0
                    ) + int(value)
        if outcome["exact_cost"] is not None:
            row.exact_solutions.append(outcome["exact_cost"])
            row.heuristic_solutions_finished.append(
                outcome["heuristic_cost"]
            )
        else:
            row.unfinished_cycles.append(outcome["inter_scc_cycles"])
            row.heuristic_solutions_unfinished.append(
                outcome["heuristic_cost"]
            )
    for row, (edges, inter, cycles) in zip(rows, sums):
        row.avg_edges = edges / trials
        row.avg_inter_scc_edges = inter / trials
        row.avg_inter_scc_cycles = cycles / trials
    return rows
