"""Minimum cycle mean: Karp's algorithm, Howard's policy iteration.

The cycle time of a timed marked graph with unit delays is the
reciprocal of the *minimum cycle mean* -- the smallest ratio of tokens
to places around any cycle (paper, Section III-B).  This module
computes that quantity exactly, over integer edge weights (token
counts) with :class:`fractions.Fraction` results, and extracts one
*critical cycle* attaining it.

Two independent algorithms are provided:

* :func:`karp_minimum_cycle_mean` -- Karp's O(nm) dynamic program
  [Karp 1978], run per strongly connected component.  This is the
  default used throughout the library, as the paper suggests.
* :func:`howard_minimum_cycle_mean` -- Howard's policy iteration,
  typically much faster in practice; used as a cross-check and for
  large graphs.

Both handle multigraphs (parallel edges) and self-loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Hashable

from .digraph import Digraph, Edge
from .scc import strongly_connected_components

__all__ = [
    "CycleMeanResult",
    "karp_minimum_cycle_mean",
    "howard_minimum_cycle_mean",
    "minimum_cycle_mean",
    "minimum_cycle_ratio",
    "critical_cycle",
    "critical_edges",
]

WeightFn = Callable[[Edge], int]
TimeFn = Callable[[Edge], int]


def _unit_time(_edge: Edge) -> int:
    return 1

_INF = float("inf")


@dataclass(frozen=True)
class CycleMeanResult:
    """The minimum cycle mean together with one cycle attaining it.

    Attributes:
        mean: Minimum over all cycles of (total edge weight) / (number
            of edges), as an exact :class:`Fraction`.
        cycle: One critical cycle, as an edge list in traversal order.
    """

    mean: Fraction
    cycle: list[Edge]

    @property
    def tokens(self) -> int:
        """Total weight (token count) on the returned critical cycle.

        Only meaningful for unit-time means (where the cycle's weight
        equals mean * length); for :func:`minimum_cycle_ratio` results
        sum the weights of :attr:`cycle` directly.
        """
        return self.mean.numerator * len(self.cycle) // self.mean.denominator


def _cyclic_sccs(graph: Digraph) -> list[list[Hashable]]:
    """SCCs that contain at least one cycle (size >= 2, or a self-loop)."""
    out = []
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            out.append(component)
        else:
            node = component[0]
            if any(e.dst == node for e in graph.out_edges(node)):
                out.append(component)
    return out


def _karp_on_scc(
    graph: Digraph, component: list[Hashable], weight: WeightFn
) -> Fraction:
    """Karp's DP restricted to one strongly connected component."""
    members = set(component)
    nodes = list(component)
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    # In-edges restricted to the component, per node index.
    in_edges: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for node in nodes:
        for edge in graph.in_edges(node):
            if edge.src in members:
                in_edges[index[node]].append((index[edge.src], weight(edge)))

    source = 0
    # D[k][v]: minimum weight of a walk with exactly k edges from source.
    prev = [_INF] * n
    prev[source] = 0
    table = [list(prev)]
    for _ in range(n):
        cur = [_INF] * n
        for v in range(n):
            best = _INF
            for u, w in in_edges[v]:
                if prev[u] is not _INF and prev[u] + w < best:
                    best = prev[u] + w
            cur[v] = best
        table.append(cur)
        prev = cur

    best_mean: Fraction | None = None
    d_n = table[n]
    for v in range(n):
        if d_n[v] is _INF or d_n[v] == _INF:
            continue
        worst: Fraction | None = None
        for k in range(n):
            if table[k][v] == _INF:
                continue
            candidate = Fraction(int(d_n[v] - table[k][v]), n - k)
            if worst is None or candidate > worst:
                worst = candidate
        if worst is not None and (best_mean is None or worst < best_mean):
            best_mean = worst
    if best_mean is None:  # pragma: no cover - SCC guaranteed cyclic
        raise RuntimeError("Karp found no cycle in a cyclic SCC")
    return best_mean


def karp_minimum_cycle_mean(
    graph: Digraph, weight: WeightFn
) -> Fraction | None:
    """Minimum cycle mean over the whole graph, or ``None`` if acyclic."""
    best: Fraction | None = None
    for component in _cyclic_sccs(graph):
        mean = _karp_on_scc(graph, component, weight)
        if best is None or mean < best:
            best = mean
    return best


def critical_cycle(
    graph: Digraph,
    weight: WeightFn,
    mean: Fraction,
    time: TimeFn = _unit_time,
) -> list[Edge]:
    """Extract one cycle whose weight/time ratio equals ``mean``.

    ``mean`` must be the *minimum* cycle ratio.  Uses the standard
    reduction: with reduced integer weights ``w'(e) = q*w(e) - p*t(e)``
    for ``mean = p/q``, every cycle has non-negative reduced weight and
    critical cycles have exactly zero.  Bellman--Ford potentials then
    make critical-cycle edges *tight* (``pot[u] + w' == pot[v]``), and
    any cycle of tight edges is critical.  With the default unit
    ``time`` this is the minimum cycle *mean* witness.
    """
    p, q = mean.numerator, mean.denominator

    def reduced(edge: Edge) -> int:
        return q * weight(edge) - p * time(edge)

    # Bellman-Ford from a virtual source attached to every node with
    # zero-weight edges: start all potentials at 0 and relax.
    pot: dict[Hashable, int] = {node: 0 for node in graph.nodes}
    edges = list(graph.edges)
    for _ in range(graph.number_of_nodes()):
        changed = False
        for edge in edges:
            cand = pot[edge.src] + reduced(edge)
            if cand < pot[edge.dst]:
                pot[edge.dst] = cand
                changed = True
        if not changed:
            break
    else:  # pragma: no cover - mean minimality violated
        raise ValueError("negative cycle: supplied mean is not minimal")

    # Tight subgraph; any directed cycle in it attains the mean.
    tight: dict[Hashable, list[Edge]] = {node: [] for node in graph.nodes}
    for edge in edges:
        if pot[edge.src] + reduced(edge) == pot[edge.dst]:
            tight[edge.src].append(edge)

    # Iterative DFS for a cycle among tight edges.
    color: dict[Hashable, int] = {}  # 0 absent, 1 on stack, 2 done
    parent_edge: dict[Hashable, Edge] = {}
    for root in graph.nodes:
        if color.get(root, 0) == 2 or not tight[root]:
            continue
        stack: list[tuple[Hashable, iter]] = [(root, iter(tight[root]))]
        color[root] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for edge in it:
                dst = edge.dst
                state = color.get(dst, 0)
                if state == 1:
                    # Found a cycle: unwind from ``node`` back to ``dst``.
                    cycle = [edge]
                    cur = node
                    while cur != dst:
                        back = parent_edge[cur]
                        cycle.append(back)
                        cur = back.src
                    cycle.reverse()
                    return cycle
                if state == 0:
                    color[dst] = 1
                    parent_edge[dst] = edge
                    stack.append((dst, iter(tight[dst])))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                stack.pop()
    raise ValueError("no critical cycle found: supplied mean is not attained")


def critical_edges(
    graph: Digraph,
    weight: WeightFn,
    mean: Fraction,
    time: TimeFn = _unit_time,
) -> set[int]:
    """Keys of every edge lying on *some* critical cycle.

    With the Bellman--Ford potentials of the standard reduction, an
    edge belongs to a critical cycle iff it is *tight*
    (``pot[u] + w' == pot[v]`` for reduced weights ``w' = q*w - p*t``)
    and both endpoints sit in the same non-trivial strongly connected
    component of the tight subgraph (inside such a component any tight
    edge closes a zero-reduced-weight -- hence critical -- cycle).

    Unlike enumerating all critical cycles (potentially exponential),
    this runs in O(nm) and is what the bottleneck reports use.
    """
    p, q = mean.numerator, mean.denominator

    def reduced(edge: Edge) -> int:
        return q * weight(edge) - p * time(edge)

    pot: dict[Hashable, int] = {node: 0 for node in graph.nodes}
    edges = list(graph.edges)
    for _ in range(graph.number_of_nodes()):
        changed = False
        for edge in edges:
            cand = pot[edge.src] + reduced(edge)
            if cand < pot[edge.dst]:
                pot[edge.dst] = cand
                changed = True
        if not changed:
            break
    else:
        raise ValueError("negative cycle: supplied mean is not minimal")

    tight = [
        edge
        for edge in edges
        if pot[edge.src] + reduced(edge) == pot[edge.dst]
    ]
    tight_graph = graph.edge_subgraph([e.key for e in tight])
    out: set[int] = set()
    for component in strongly_connected_components(tight_graph):
        members = set(component)
        if len(members) == 1:
            node = component[0]
            # A tight self-loop is its own critical cycle.
            out.update(
                e.key
                for e in tight_graph.out_edges(node)
                if e.dst == node
            )
            continue
        out.update(
            e.key
            for e in tight
            if e.src in members and e.dst in members
        )
    return out


def minimum_cycle_mean(
    graph: Digraph, weight: WeightFn
) -> CycleMeanResult | None:
    """Minimum cycle mean with a witness cycle; ``None`` if acyclic."""
    mean = karp_minimum_cycle_mean(graph, weight)
    if mean is None:
        return None
    return CycleMeanResult(mean=mean, cycle=critical_cycle(graph, weight, mean))


# ----------------------------------------------------------------------
# Howard's policy iteration
# ----------------------------------------------------------------------
def _howard_on_scc(
    graph: Digraph,
    component: list[Hashable],
    weight: WeightFn,
    time: TimeFn = _unit_time,
) -> Fraction:
    """Howard's algorithm restricted to one strongly connected component.

    Generalized to minimum cycle *ratio* (cycle weight / cycle time):
    with unit times this is the minimum cycle mean.  Times must be
    positive integers.
    """
    members = set(component)
    out_edges: dict[Hashable, list[Edge]] = {
        node: [e for e in graph.out_edges(node) if e.dst in members]
        for node in component
    }
    # Initial policy: pick the minimum-weight out-edge of each node.
    policy: dict[Hashable, Edge] = {
        node: min(edges, key=weight) for node, edges in out_edges.items()
    }

    while True:
        # --- Policy evaluation -------------------------------------------
        eta: dict[Hashable, Fraction] = {}
        bias: dict[Hashable, Fraction] = {}
        state: dict[Hashable, int] = {}  # 0 unvisited, 1 in progress, 2 done

        for start in component:
            if state.get(start, 0) == 2:
                continue
            # Walk the functional chain until a repeat or a settled node.
            chain: list[Hashable] = []
            pos: dict[Hashable, int] = {}
            node = start
            while state.get(node, 0) == 0:
                state[node] = 1
                pos[node] = len(chain)
                chain.append(node)
                node = policy[node].dst
            if state[node] == 1:
                # New cycle discovered: chain[pos[node]:] closes at ``node``.
                cycle_nodes = chain[pos[node]:]
                total = sum(weight(policy[v]) for v in cycle_nodes)
                span = sum(time(policy[v]) for v in cycle_nodes)
                mean = Fraction(total, span)
                # Biases around the cycle: fix the entry node at zero and
                # walk backwards so
                # h[u] = w(pi(u)) - mean*t(pi(u)) + h[succ(u)].
                eta[node] = mean
                bias[node] = Fraction(0)
                for v in reversed(cycle_nodes[1:]):
                    succ = policy[v].dst
                    eta[v] = mean
                    bias[v] = (
                        weight(policy[v])
                        - mean * time(policy[v])
                        + bias[succ]
                    )
                for v in cycle_nodes:
                    state[v] = 2
            # Settle the non-cycle prefix of the chain backwards.
            settle_upto = pos.get(node, len(chain))
            for v in reversed(chain[:settle_upto]):
                succ = policy[v].dst
                eta[v] = eta[succ]
                bias[v] = (
                    weight(policy[v]) - eta[succ] * time(policy[v]) + bias[succ]
                )
                state[v] = 2

        # --- Policy improvement ------------------------------------------
        improved = False
        for node in component:
            best_edge = policy[node]
            best_eta = eta[best_edge.dst]
            best_val = (
                weight(best_edge)
                - best_eta * time(best_edge)
                + bias[best_edge.dst]
            )
            for edge in out_edges[node]:
                cand_eta = eta[edge.dst]
                cand_val = (
                    weight(edge) - cand_eta * time(edge) + bias[edge.dst]
                )
                if cand_eta < best_eta or (
                    cand_eta == best_eta and cand_val < best_val
                ):
                    best_edge, best_eta, best_val = edge, cand_eta, cand_val
            if best_edge is not policy[node]:
                cur_eta = eta[policy[node].dst]
                cur_val = (
                    weight(policy[node])
                    - cur_eta * time(policy[node])
                    + bias[policy[node].dst]
                )
                if best_eta < cur_eta or best_val < cur_val:
                    policy[node] = best_edge
                    improved = True
        if not improved:
            return min(eta.values())


def howard_minimum_cycle_mean(
    graph: Digraph, weight: WeightFn
) -> Fraction | None:
    """Minimum cycle mean via Howard's policy iteration; ``None`` if acyclic."""
    best: Fraction | None = None
    for component in _cyclic_sccs(graph):
        mean = _howard_on_scc(graph, component, weight)
        if best is None or mean < best:
            best = mean
    return best


def minimum_cycle_ratio(
    graph: Digraph, weight: WeightFn, time: TimeFn
) -> CycleMeanResult | None:
    """Minimum cycle ratio (sum of weights / sum of times) with witness.

    The generalization the paper's footnote 3 needs: shells wrapping
    pipelined cores of latency L contribute L time units per firing, so
    the cycle time of a loop through them is tokens / (hop count plus
    extra latency).  Times must be positive integers; returns ``None``
    for acyclic graphs.

    Implemented with Howard's policy iteration (exact rational
    arithmetic) plus the Bellman--Ford reduction for the witness
    cycle.
    """
    for edge in graph.edges:
        if time(edge) <= 0:
            raise ValueError(f"non-positive time on edge {edge.key}")
    best: Fraction | None = None
    for component in _cyclic_sccs(graph):
        ratio = _howard_on_scc(graph, component, weight, time)
        if best is None or ratio < best:
            best = ratio
    if best is None:
        return None
    witness = critical_cycle(graph, weight, best, time)
    return CycleMeanResult(mean=best, cycle=witness)
