"""Serialization helpers for :class:`~repro.graphs.digraph.Digraph`.

Provides a stable edge-list text format (round-trippable, used by the
experiment harness to persist generated topologies) and Graphviz DOT
export for visual inspection of marked graphs, with the paper's
conventions: dashed backedges, token counts as edge labels, boxes for
relay stations.
"""

from __future__ import annotations

import json
from typing import Callable

from .digraph import Digraph, Edge

__all__ = ["to_edgelist", "from_edgelist", "to_dot"]


def to_edgelist(graph: Digraph) -> str:
    """Serialize to a line-oriented JSON edge-list format.

    Line 1 is a JSON object of node -> attribute dict; each subsequent
    line is one edge as ``[src, dst, attrs]``.  Node names must be
    strings (or JSON-representable); edge keys are regenerated on load
    in serialization order.
    """
    lines = [json.dumps({str(n): graph.node_data(n) for n in graph.nodes})]
    for edge in sorted(graph.edges, key=lambda e: e.key):
        lines.append(json.dumps([str(edge.src), str(edge.dst), edge.data]))
    return "\n".join(lines) + "\n"


def from_edgelist(text: str) -> Digraph:
    """Parse the format produced by :func:`to_edgelist`."""
    lines = [line for line in text.splitlines() if line.strip()]
    graph = Digraph()
    if not lines:
        return graph
    for node, attrs in json.loads(lines[0]).items():
        graph.add_node(node, **attrs)
    for line in lines[1:]:
        src, dst, attrs = json.loads(line)
        graph.add_edge(src, dst, **attrs)
    return graph


def to_dot(
    graph: Digraph,
    name: str = "lis",
    edge_label: Callable[[Edge], str] | None = None,
    node_shape: Callable[[object], str] | None = None,
) -> str:
    """Graphviz DOT rendering.

    Edges whose ``data['kind'] == 'back'`` are drawn dashed, following
    the paper's figures.  ``edge_label`` defaults to showing the
    ``tokens`` attribute when present.
    """

    def default_label(edge: Edge) -> str:
        tokens = edge.data.get("tokens")
        return "" if tokens is None else str(tokens)

    label_fn = edge_label or default_label
    out = [f"digraph {json.dumps(name)} {{"]
    for node in graph.nodes:
        shape = node_shape(node) if node_shape else "ellipse"
        out.append(f"  {json.dumps(str(node))} [shape={shape}];")
    for edge in sorted(graph.edges, key=lambda e: e.key):
        attrs = []
        label = label_fn(edge)
        if label:
            attrs.append(f"label={json.dumps(label)}")
        if edge.data.get("kind") == "back":
            attrs.append("style=dashed")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        out.append(
            f"  {json.dumps(str(edge.src))} -> "
            f"{json.dumps(str(edge.dst))}{suffix};"
        )
    out.append("}")
    return "\n".join(out) + "\n"
