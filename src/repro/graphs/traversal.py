"""Basic traversals on :class:`~repro.graphs.digraph.Digraph`.

All traversals are iterative (no recursion) so they scale to the large
doubled marked graphs produced by the synthetic generator without
hitting Python's recursion limit.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator

from .digraph import Digraph, GraphError

__all__ = [
    "dfs_preorder",
    "bfs_order",
    "reachable_from",
    "co_reachable_to",
    "topological_sort",
    "is_acyclic",
    "has_path",
]


def dfs_preorder(graph: Digraph, start: Hashable) -> Iterator[Hashable]:
    """Yield nodes reachable from ``start`` in depth-first preorder."""
    if not graph.has_node(start):
        raise GraphError(f"no node {start!r}")
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        yield node
        # Reverse so the first successor is explored first, matching the
        # usual recursive formulation.
        for succ in reversed(graph.successors(node)):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)


def bfs_order(graph: Digraph, start: Hashable) -> Iterator[Hashable]:
    """Yield nodes reachable from ``start`` in breadth-first order."""
    if not graph.has_node(start):
        raise GraphError(f"no node {start!r}")
    seen = {start}
    queue: deque[Hashable] = deque([start])
    while queue:
        node = queue.popleft()
        yield node
        for succ in graph.successors(node):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)


def reachable_from(graph: Digraph, start: Hashable) -> set[Hashable]:
    """The set of nodes reachable from ``start`` (including ``start``)."""
    return set(dfs_preorder(graph, start))


def co_reachable_to(graph: Digraph, target: Hashable) -> set[Hashable]:
    """The set of nodes from which ``target`` is reachable (incl. itself)."""
    return set(dfs_preorder(graph.reversed(), target))


def has_path(graph: Digraph, src: Hashable, dst: Hashable) -> bool:
    """True if a directed path ``src -> ... -> dst`` exists."""
    if not graph.has_node(src) or not graph.has_node(dst):
        return False
    if src == dst:
        return True
    seen = {src}
    stack = [src]
    while stack:
        node = stack.pop()
        for succ in graph.successors(node):
            if succ == dst:
                return True
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return False


def topological_sort(graph: Digraph) -> list[Hashable]:
    """Kahn's algorithm.  Raises :class:`GraphError` if the graph is cyclic."""
    indeg = {node: graph.in_degree(node) for node in graph.nodes}
    ready = deque(node for node, d in indeg.items() if d == 0)
    order: list[Hashable] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for edge in graph.out_edges(node):
            indeg[edge.dst] -= 1
            if indeg[edge.dst] == 0:
                ready.append(edge.dst)
    if len(order) != graph.number_of_nodes():
        raise GraphError("graph has at least one cycle; no topological order")
    return order


def is_acyclic(graph: Digraph) -> bool:
    """True if the graph contains no directed cycle (self-loops count)."""
    try:
        topological_sort(graph)
    except GraphError:
        return False
    return True


def induced_order(graph: Digraph, nodes: Iterable[Hashable]) -> list[Hashable]:
    """Topological order of the subgraph induced by ``nodes``."""
    return topological_sort(graph.subgraph(nodes))
