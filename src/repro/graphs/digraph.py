"""An edge-keyed directed multigraph.

This is the foundational data structure for the whole library.  Marked
graphs that model latency-insensitive systems (LISs) routinely contain
*parallel* edges -- two channels between the same pair of cores, or a
forward edge together with additional forward edges and backedges after
the doubling transform -- so a plain ``dict[node, set[node]]`` adjacency
is not enough.  Every edge therefore carries a unique integer key, and
all algorithms in :mod:`repro.graphs` operate on edge keys rather than
on ``(src, dst)`` pairs.

The implementation deliberately avoids any third-party dependency; the
test-suite cross-validates it against :mod:`networkx`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator

__all__ = ["Edge", "Digraph", "GraphError"]


class GraphError(Exception):
    """Raised on structurally invalid graph operations."""


@dataclass(frozen=True)
class Edge:
    """A single directed edge.

    Attributes:
        key: Unique integer identifier within the owning graph.  Keys are
            never reused, even after edge removal, so they can safely be
            stored by client code (e.g. as channel identifiers).
        src: Source node.
        dst: Destination node.
        data: Mutable attribute dictionary (e.g. token counts, edge kind).
    """

    key: int
    src: Hashable
    dst: Hashable
    data: dict[str, Any] = field(default_factory=dict, compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Edge({self.key}: {self.src!r}->{self.dst!r}, {self.data})"


class Digraph:
    """A directed multigraph with integer-keyed edges and attribute dicts.

    Nodes may be any hashable value.  Edges are identified by an integer
    key returned from :meth:`add_edge`; parallel edges and self-loops are
    allowed.  Both nodes and edges carry attribute dictionaries.

    The class exposes the small, explicit API that the analysis layers
    need: adjacency queries by node and by edge key, copies, subgraphs,
    and structural predicates.  Algorithms (SCCs, cycle enumeration,
    minimum cycle mean, ...) live in sibling modules and take a
    :class:`Digraph` as input.
    """

    def __init__(self) -> None:
        self._node_data: dict[Hashable, dict[str, Any]] = {}
        self._edges: dict[int, Edge] = {}
        self._out: dict[Hashable, list[int]] = {}
        self._in: dict[Hashable, list[int]] = {}
        self._next_key = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable, **attrs: Any) -> Hashable:
        """Add ``node`` (idempotent); merge ``attrs`` into its data dict."""
        if node not in self._node_data:
            self._node_data[node] = {}
            self._out[node] = []
            self._in[node] = []
        self._node_data[node].update(attrs)
        return node

    def add_edge(self, src: Hashable, dst: Hashable, **attrs: Any) -> int:
        """Add a directed edge ``src -> dst`` and return its unique key.

        Missing endpoints are created implicitly.  Parallel edges are
        permitted: calling this twice with the same endpoints produces
        two distinct edges.
        """
        self.add_node(src)
        self.add_node(dst)
        key = self._next_key
        self._next_key += 1
        edge = Edge(key, src, dst, dict(attrs))
        self._edges[key] = edge
        self._out[src].append(key)
        self._in[dst].append(key)
        return key

    def remove_edge(self, key: int) -> Edge:
        """Remove and return the edge with ``key``."""
        try:
            edge = self._edges.pop(key)
        except KeyError:
            raise GraphError(f"no edge with key {key}") from None
        self._out[edge.src].remove(key)
        self._in[edge.dst].remove(key)
        return edge

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._node_data:
            raise GraphError(f"no node {node!r}")
        for key in list(self._out[node]):
            self.remove_edge(key)
        for key in list(self._in[node]):
            self.remove_edge(key)
        del self._node_data[node]
        del self._out[node]
        del self._in[node]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Iterator[Hashable]:
        return iter(self._node_data)

    @property
    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    def node_data(self, node: Hashable) -> dict[str, Any]:
        try:
            return self._node_data[node]
        except KeyError:
            raise GraphError(f"no node {node!r}") from None

    def edge(self, key: int) -> Edge:
        try:
            return self._edges[key]
        except KeyError:
            raise GraphError(f"no edge with key {key}") from None

    def has_node(self, node: Hashable) -> bool:
        return node in self._node_data

    def has_edge(self, src: Hashable, dst: Hashable) -> bool:
        """True if at least one edge ``src -> dst`` exists."""
        if src not in self._out:
            return False
        return any(self._edges[k].dst == dst for k in self._out[src])

    def edges_between(self, src: Hashable, dst: Hashable) -> list[Edge]:
        """All parallel edges ``src -> dst`` (possibly empty)."""
        if src not in self._out:
            return []
        return [self._edges[k] for k in self._out[src] if self._edges[k].dst == dst]

    def out_edges(self, node: Hashable) -> list[Edge]:
        try:
            keys = self._out[node]
        except KeyError:
            raise GraphError(f"no node {node!r}") from None
        return [self._edges[k] for k in keys]

    def in_edges(self, node: Hashable) -> list[Edge]:
        try:
            keys = self._in[node]
        except KeyError:
            raise GraphError(f"no node {node!r}") from None
        return [self._edges[k] for k in keys]

    def successors(self, node: Hashable) -> list[Hashable]:
        """Distinct successor nodes (parallel edges collapse to one entry)."""
        seen: dict[Hashable, None] = {}
        for edge in self.out_edges(node):
            seen.setdefault(edge.dst, None)
        return list(seen)

    def predecessors(self, node: Hashable) -> list[Hashable]:
        """Distinct predecessor nodes."""
        seen: dict[Hashable, None] = {}
        for edge in self.in_edges(node):
            seen.setdefault(edge.src, None)
        return list(seen)

    def out_degree(self, node: Hashable) -> int:
        """Number of outgoing edges (counting parallels)."""
        return len(self._out[node])

    def in_degree(self, node: Hashable) -> int:
        """Number of incoming edges (counting parallels)."""
        return len(self._in[node])

    def number_of_nodes(self) -> int:
        return len(self._node_data)

    def number_of_edges(self) -> int:
        return len(self._edges)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._node_data

    def __len__(self) -> int:
        return len(self._node_data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._node_data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Digraph":
        """A deep structural copy; edge keys are preserved."""
        g = type(self)()
        for node, data in self._node_data.items():
            g.add_node(node, **data)
        for edge in self._edges.values():
            g._edges[edge.key] = Edge(edge.key, edge.src, edge.dst, dict(edge.data))
            g._out[edge.src].append(edge.key)
            g._in[edge.dst].append(edge.key)
        g._next_key = self._next_key
        return g

    def subgraph(self, nodes: Iterable[Hashable]) -> "Digraph":
        """The induced subgraph on ``nodes``; edge keys are preserved."""
        keep = set(nodes)
        missing = keep - set(self._node_data)
        if missing:
            raise GraphError(f"nodes not in graph: {sorted(map(repr, missing))}")
        g = type(self)()
        for node in keep:
            g.add_node(node, **self._node_data[node])
        for edge in self._edges.values():
            if edge.src in keep and edge.dst in keep:
                g._edges[edge.key] = Edge(
                    edge.key, edge.src, edge.dst, dict(edge.data)
                )
                g._out[edge.src].append(edge.key)
                g._in[edge.dst].append(edge.key)
        g._next_key = self._next_key
        return g

    def edge_subgraph(self, keys: Iterable[int]) -> "Digraph":
        """The subgraph containing exactly the edges ``keys`` (+ endpoints)."""
        g = type(self)()
        for key in keys:
            edge = self.edge(key)
            g.add_node(edge.src, **self._node_data[edge.src])
            g.add_node(edge.dst, **self._node_data[edge.dst])
            g._edges[edge.key] = Edge(edge.key, edge.src, edge.dst, dict(edge.data))
            g._out[edge.src].append(edge.key)
            g._in[edge.dst].append(edge.key)
        g._next_key = self._next_key
        return g

    def reversed(self) -> "Digraph":
        """A copy with every edge direction flipped (keys preserved)."""
        g = type(self)()
        for node, data in self._node_data.items():
            g.add_node(node, **data)
        for edge in self._edges.values():
            g._edges[edge.key] = Edge(edge.key, edge.dst, edge.src, dict(edge.data))
            g._out[edge.dst].append(edge.key)
            g._in[edge.src].append(edge.key)
        g._next_key = self._next_key
        return g

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    def self_loops(self) -> list[Edge]:
        return [e for e in self._edges.values() if e.src == e.dst]

    def sources(self) -> list[Hashable]:
        """Nodes with no incoming edges."""
        return [n for n in self._node_data if not self._in[n]]

    def sinks(self) -> list[Hashable]:
        """Nodes with no outgoing edges."""
        return [n for n in self._node_data if not self._out[n]]
