"""Strongly connected components and condensation.

The maximal-sustainable-throughput definition of the paper (Section
III-C) decomposes a marked graph into its strongly connected components
(SCCs): the MST of the whole system is the minimum MST over its SCC
subgraphs.  The condensation (the DAG of SCCs) is also the object on
which reconvergent paths between SCCs are detected and on which the
SCC-collapse simplification of Section VII-A operates.

Tarjan's algorithm is implemented iteratively.
"""

from __future__ import annotations

from typing import Hashable

from .digraph import Digraph

__all__ = [
    "strongly_connected_components",
    "condensation",
    "is_strongly_connected",
    "scc_of",
]


def strongly_connected_components(graph: Digraph) -> list[list[Hashable]]:
    """Tarjan's SCC algorithm (iterative).

    Returns the components as lists of nodes, in reverse topological
    order of the condensation (a Tarjan property: each component is
    emitted only after every component it can reach).
    """
    index_of: dict[Hashable, int] = {}
    lowlink: dict[Hashable, int] = {}
    on_stack: set[Hashable] = set()
    stack: list[Hashable] = []
    components: list[list[Hashable]] = []
    counter = 0

    for root in graph.nodes:
        if root in index_of:
            continue
        # Each frame is (node, iterator over successors).
        work = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs = work[-1]
            advanced = False
            for succ in succs:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[Hashable] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                components.append(component)
    return components


def scc_of(graph: Digraph) -> dict[Hashable, int]:
    """Map each node to the index of its SCC.

    Indices follow the order returned by
    :func:`strongly_connected_components` (reverse topological).
    """
    mapping: dict[Hashable, int] = {}
    for idx, component in enumerate(strongly_connected_components(graph)):
        for node in component:
            mapping[node] = idx
    return mapping


def is_strongly_connected(graph: Digraph) -> bool:
    """True if the graph is non-empty and forms a single SCC."""
    if graph.number_of_nodes() == 0:
        return False
    return len(strongly_connected_components(graph)) == 1


def condensation(graph: Digraph) -> tuple[Digraph, dict[Hashable, int]]:
    """The component DAG of ``graph``.

    Returns ``(dag, mapping)`` where ``dag`` has one node per SCC (the
    SCC index, an int) and one edge per inter-SCC edge of ``graph``
    (parallel inter-SCC edges are preserved, since they correspond to
    distinct channels; each condensation edge stores the key of the
    originating edge in its ``data['origin']``), and ``mapping`` sends
    each original node to its SCC index.

    Each condensation node stores its member list in ``data['members']``.
    """
    components = strongly_connected_components(graph)
    mapping: dict[Hashable, int] = {}
    for idx, component in enumerate(components):
        for node in component:
            mapping[node] = idx
    dag = Digraph()
    for idx, component in enumerate(components):
        dag.add_node(idx, members=list(component))
    for edge in graph.edges:
        a, b = mapping[edge.src], mapping[edge.dst]
        if a != b:
            dag.add_edge(a, b, origin=edge.key)
    return dag, mapping
