"""Articulation points and biconnected components (Hopcroft--Tarjan).

Both are computed on the *underlying undirected multigraph* of a
:class:`~repro.graphs.digraph.Digraph`.  They drive the topology
classification of the paper's Section IV: a strongly connected LIS has
*no reconvergent paths* exactly when every biconnected component of its
underlying undirected graph is either a single edge (a bridge) or a
single directed cycle, in which case any node shared by two cycles is
an articulation point and fixed queue sizing preserves the ideal MST.

Parallel edges matter: two parallel channels between the same pair of
cores *are* a pair of reconvergent paths (they form an undirected
cycle), so the traversal is edge-indexed -- only the specific edge used
to enter a node is skipped, not every edge to the parent.
"""

from __future__ import annotations

from typing import Hashable

from .digraph import Digraph, Edge

__all__ = [
    "undirected_adjacency",
    "articulation_points",
    "biconnected_components",
    "bridges",
]


def undirected_adjacency(graph: Digraph) -> dict[Hashable, list[Edge]]:
    """Adjacency of the underlying undirected multigraph.

    Each directed edge appears in the adjacency list of both endpoints
    (once for a self-loop).
    """
    adj: dict[Hashable, list[Edge]] = {node: [] for node in graph.nodes}
    for edge in graph.edges:
        adj[edge.src].append(edge)
        if edge.dst != edge.src:
            adj[edge.dst].append(edge)
    return adj


def _other_endpoint(edge: Edge, node: Hashable) -> Hashable:
    return edge.dst if edge.src == node else edge.src


def biconnected_components(graph: Digraph) -> list[list[Edge]]:
    """Biconnected components of the underlying undirected multigraph.

    Returns a list of components, each a list of :class:`Edge` objects.
    Self-loops form their own singleton components.  Isolated nodes do
    not appear (components are edge sets).
    """
    adj = undirected_adjacency(graph)
    visited: set[Hashable] = set()
    depth: dict[Hashable, int] = {}
    low: dict[Hashable, int] = {}
    components: list[list[Edge]] = []
    edge_stack: list[Edge] = []

    for root in graph.nodes:
        if root in visited:
            continue
        visited.add(root)
        depth[root] = low[root] = 0
        # Frame: (node, incoming edge key or None, iterator over incident edges)
        work: list[tuple[Hashable, int | None, object]] = [
            (root, None, iter(adj[root]))
        ]
        while work:
            node, in_key, edges = work[-1]
            advanced = False
            for edge in edges:  # type: ignore[union-attr]
                if edge.key == in_key:
                    continue  # do not traverse the entry edge backwards
                if edge.src == edge.dst:
                    # Self-loops are their own biconnected component.
                    if edge.src == node:
                        components.append([edge])
                    continue
                other = _other_endpoint(edge, node)
                if other not in visited:
                    edge_stack.append(edge)
                    visited.add(other)
                    depth[other] = low[other] = depth[node] + 1
                    work.append((other, edge.key, iter(adj[other])))
                    advanced = True
                    break
                if depth[other] < depth[node]:
                    # Back edge to an ancestor (or a parallel edge).
                    edge_stack.append(edge)
                    low[node] = min(low[node], depth[other])
            if advanced:
                continue
            work.pop()
            if work:
                parent, parent_in_key, _ = work[-1]
                low[parent] = min(low[parent], low[node])
                if low[node] >= depth[parent]:
                    # ``parent`` separates this subtree: pop everything
                    # stacked since -- and including -- the tree edge
                    # that entered ``node`` (edges of earlier sibling
                    # subtrees sit below it and must stay).
                    component: list[Edge] = []
                    while edge_stack:
                        top = edge_stack.pop()
                        component.append(top)
                        if top.key == in_key:
                            break
                    if component:
                        components.append(component)
    # Deduplicate self-loop components (a self-loop is visited once per
    # adjacency entry; we added it once, so nothing to do).
    return components


def articulation_points(graph: Digraph) -> set[Hashable]:
    """Nodes whose removal disconnects the underlying undirected graph."""
    points: set[Hashable] = set()
    # A node is an articulation point iff it belongs to >= 2 biconnected
    # components that each contain at least one non-self-loop edge, or is
    # the attachment of a self-loop plus another component.  The classic
    # characterisation via components is simpler and already exact:
    membership: dict[Hashable, int] = {}
    for component in biconnected_components(graph):
        nodes = set()
        for edge in component:
            nodes.add(edge.src)
            nodes.add(edge.dst)
        for node in nodes:
            membership[node] = membership.get(node, 0) + 1
    for node, count in membership.items():
        if count >= 2:
            points.add(node)
    return points


def bridges(graph: Digraph) -> list[Edge]:
    """Edges whose removal disconnects the underlying undirected graph.

    A bridge is exactly a biconnected component consisting of a single
    non-self-loop edge.
    """
    result = []
    for component in biconnected_components(graph):
        if len(component) == 1 and component[0].src != component[0].dst:
            result.append(component[0])
    return result
