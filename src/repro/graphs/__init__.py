"""Graph substrate: multigraphs and the algorithms the paper relies on.

Everything here is implemented from scratch (no third-party graph
library); the test-suite cross-validates against :mod:`networkx`.
"""

from .digraph import Digraph, Edge, GraphError
from .traversal import (
    bfs_order,
    dfs_preorder,
    has_path,
    induced_order,
    is_acyclic,
    reachable_from,
    co_reachable_to,
    topological_sort,
)
from .scc import (
    condensation,
    is_strongly_connected,
    scc_of,
    strongly_connected_components,
)
from .biconnected import (
    articulation_points,
    biconnected_components,
    bridges,
)
from .cycles import (
    CycleExplosionError,
    count_edge_cycles,
    cycle_edges_to_nodes,
    elementary_edge_cycles,
    elementary_node_cycles,
)
from .mcm import (
    CycleMeanResult,
    critical_cycle,
    critical_edges,
    howard_minimum_cycle_mean,
    karp_minimum_cycle_mean,
    minimum_cycle_mean,
    minimum_cycle_ratio,
)
from .io import from_edgelist, to_dot, to_edgelist

__all__ = [
    "Digraph",
    "Edge",
    "GraphError",
    "bfs_order",
    "dfs_preorder",
    "has_path",
    "induced_order",
    "is_acyclic",
    "reachable_from",
    "co_reachable_to",
    "topological_sort",
    "condensation",
    "is_strongly_connected",
    "scc_of",
    "strongly_connected_components",
    "articulation_points",
    "biconnected_components",
    "bridges",
    "CycleExplosionError",
    "count_edge_cycles",
    "cycle_edges_to_nodes",
    "elementary_edge_cycles",
    "elementary_node_cycles",
    "CycleMeanResult",
    "critical_cycle",
    "critical_edges",
    "howard_minimum_cycle_mean",
    "karp_minimum_cycle_mean",
    "minimum_cycle_mean",
    "minimum_cycle_ratio",
    "from_edgelist",
    "to_dot",
    "to_edgelist",
]
