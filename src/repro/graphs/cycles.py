"""Elementary cycle enumeration (Johnson's algorithm) for multigraphs.

The queue-sizing machinery of the paper (Sections VII--VIII) enumerates
every elementary cycle of a doubled marked graph, computes each cycle's
token deficit, and sizes queues so that every deficit is covered.  Two
subtleties drive this module's design:

* Doubled marked graphs are **multigraphs**: a channel contributes a
  forward edge *and* a backedge, and two parallel channels between the
  same shells contribute parallel edges.  Distinct parallel edges give
  rise to distinct cycles with different token counts (the paper's
  Table VI lists two cycles through the same block sequence), so cycles
  must be enumerated at the *edge* level.  We first enumerate
  node-simple cycles with Johnson's algorithm on the simple quotient
  graph, then expand each node cycle into the Cartesian product of the
  parallel edges along it.

* Elementary cycles suffice: any non-elementary cycle decomposes into
  elementary ones and its token/place ratio is a mediant of theirs, so
  bounding every elementary cycle mean bounds every cycle mean.

The number of elementary cycles can be exponential; callers may pass
``max_cycles`` to abort early (a :class:`CycleExplosionError` is
raised), mirroring the paper's observation that enumeration "may blow
up fairly quickly".
"""

from __future__ import annotations

from collections import defaultdict
from itertools import product
from typing import Hashable, Iterator

from .digraph import Digraph, Edge

__all__ = [
    "CycleExplosionError",
    "elementary_node_cycles",
    "elementary_edge_cycles",
    "count_edge_cycles",
    "cycle_edges_to_nodes",
]


class CycleExplosionError(RuntimeError):
    """Raised when cycle enumeration exceeds a caller-supplied budget."""


def _simple_adjacency(graph: Digraph) -> dict[Hashable, set[Hashable]]:
    """Successor sets with parallel edges collapsed and self-loops removed."""
    adj: dict[Hashable, set[Hashable]] = {node: set() for node in graph.nodes}
    for edge in graph.edges:
        if edge.src != edge.dst:
            adj[edge.src].add(edge.dst)
    return adj


def _nontrivial_sccs(adj: dict[Hashable, set[Hashable]]) -> list[set[Hashable]]:
    """SCCs with >= 2 nodes of a dict-of-sets digraph (iterative Tarjan)."""
    index_of: dict[Hashable, int] = {}
    lowlink: dict[Hashable, int] = {}
    on_stack: set[Hashable] = set()
    stack: list[Hashable] = []
    out: list[set[Hashable]] = []
    counter = 0
    for root in adj:
        if root in index_of:
            continue
        work = [(root, iter(adj[root]))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs = work[-1]
            advanced = False
            for succ in succs:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adj[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: set[Hashable] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.add(w)
                    if w == node:
                        break
                if len(component) > 1:
                    out.append(component)
    return out


def elementary_node_cycles(graph: Digraph) -> Iterator[list[Hashable]]:
    """Yield every elementary (node-simple) cycle as a node list.

    Self-loops are yielded as single-node cycles ``[v]`` (once per node,
    regardless of how many parallel self-loop edges exist; the edge-level
    expansion in :func:`elementary_edge_cycles` multiplies them out).

    This is Johnson's algorithm in its iterative form.
    """
    # Self-loop node cycles first.
    loop_nodes = {e.src for e in graph.self_loops()}
    for node in loop_nodes:
        yield [node]

    sub_adj = _simple_adjacency(graph)
    sccs = _nontrivial_sccs(sub_adj)
    while sccs:
        component = sccs.pop()
        start = next(iter(component))
        comp_adj = {
            node: {s for s in sub_adj[node] if s in component}
            for node in component
        }
        path = [start]
        blocked = {start}
        closed: set[Hashable] = set()
        B: dict[Hashable, set[Hashable]] = defaultdict(set)
        stack = [(start, list(comp_adj[start]))]
        while stack:
            this_node, nbrs = stack[-1]
            if nbrs:
                next_node = nbrs.pop()
                if next_node == start:
                    yield list(path)
                    closed.update(path)
                elif next_node not in blocked:
                    path.append(next_node)
                    stack.append((next_node, list(comp_adj[next_node])))
                    closed.discard(next_node)
                    blocked.add(next_node)
                    continue
            if not nbrs:
                if this_node in closed:
                    # Unblock this_node and everything blocked through it.
                    unblock_stack = [this_node]
                    while unblock_stack:
                        node = unblock_stack.pop()
                        if node in blocked:
                            blocked.discard(node)
                            unblock_stack.extend(B[node])
                            B[node].clear()
                else:
                    for nbr in comp_adj[this_node]:
                        B[nbr].add(this_node)
                stack.pop()
                path.pop()
        # Remove the start node and recurse on the remainder.
        remainder = {
            node: {s for s in comp_adj[node] if s != start}
            for node in component
            if node != start
        }
        for node in remainder:
            sub_adj[node] = sub_adj[node] - {start}
        sccs.extend(_nontrivial_sccs(remainder))


def elementary_edge_cycles(
    graph: Digraph, max_cycles: int | None = None
) -> Iterator[list[Edge]]:
    """Yield every elementary cycle as a list of :class:`Edge` objects.

    Each node-simple cycle is expanded into one edge cycle per choice of
    parallel edge along every hop.  The edge list is rotated so that it
    starts at the hop leaving the cycle's first node as enumerated.

    Args:
        graph: The multigraph to enumerate.
        max_cycles: Optional budget; exceeding it raises
            :class:`CycleExplosionError`.
    """
    emitted = 0
    for node_cycle in elementary_node_cycles(graph):
        if len(node_cycle) == 1:
            node = node_cycle[0]
            hop_choices = [
                [e for e in graph.out_edges(node) if e.dst == node]
            ]
        else:
            hop_choices = [
                graph.edges_between(
                    node_cycle[i], node_cycle[(i + 1) % len(node_cycle)]
                )
                for i in range(len(node_cycle))
            ]
        for combo in product(*hop_choices):
            emitted += 1
            if max_cycles is not None and emitted > max_cycles:
                raise CycleExplosionError(
                    f"more than {max_cycles} elementary cycles"
                )
            yield list(combo)


def count_edge_cycles(graph: Digraph) -> int:
    """The number of elementary edge cycles, without materializing them.

    Parallel-edge multiplicities are multiplied per node cycle, so this
    is far cheaper than ``len(list(elementary_edge_cycles(g)))`` when
    multiplicity is high.
    """
    total = 0
    for node_cycle in elementary_node_cycles(graph):
        if len(node_cycle) == 1:
            node = node_cycle[0]
            count = sum(1 for e in graph.out_edges(node) if e.dst == node)
        else:
            count = 1
            for i in range(len(node_cycle)):
                count *= len(
                    graph.edges_between(
                        node_cycle[i], node_cycle[(i + 1) % len(node_cycle)]
                    )
                )
        total += count
    return total


def cycle_edges_to_nodes(cycle: list[Edge]) -> list[Hashable]:
    """The node sequence visited by an edge cycle (one entry per hop)."""
    return [edge.src for edge in cycle]
