"""The parallel cached analysis engine.

:class:`AnalysisEngine` is the batch substrate under the experiment
runners, the Table V exhaustive sweep, the CLI's ``--jobs``/``--cache``
flags, and the benchmarks.  It owns three concerns:

* **fan-out** -- independent analyses go through a
  :class:`~concurrent.futures.ProcessPoolExecutor`; results always come
  back in submission order, so a parallel run is a drop-in replacement
  for the serial loop it replaces;
* **memoization** -- results are cached under a content hash of the
  serialized system + op + options (in-memory LRU always, pickle files
  under ``cache_dir`` optionally), so repeated sweeps and overlapping
  experiments never recompute a minimum cycle mean;
* **observability** -- per-op timing, hit/miss/disk-hit counters and
  solver-call counts accumulate in :class:`EngineStats`, render as
  text, and persist into the cache directory for
  ``python -m repro stats``;
* **self-healing** -- hour-scale sweeps must survive infrastructure
  faults, not just compute them: every pool op gets a wall-clock
  timeout with bounded retry + exponential backoff, a broken process
  pool (worker SIGKILLed, OOMed, segfaulted) is detected, rebuilt, and
  the in-flight ops replayed, and an op that keeps breaking the pool
  degrades to in-process serial execution rather than sinking the
  batch.  Every recovery action is counted in :class:`EngineStats`.
"""

from __future__ import annotations

import copy
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..analysis import Context
from ..core.lis_graph import LisGraph
from ..core.serialize import lis_to_json
from .cache import DiskCache, LruCache, content_key
from .ops import run_op

__all__ = ["AnalysisEngine", "EngineStats", "OpStats", "analyze_many"]


@dataclass
class OpStats:
    """Counters for one operation name."""

    calls: int = 0
    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    coalesced: int = 0
    seconds: float = 0.0
    solver_calls: int = 0
    failures: int = 0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "seconds": self.seconds,
            "solver_calls": self.solver_calls,
            "failures": self.failures,
        }

    def delta(self, before: "OpStats") -> "OpStats":
        """Counters accumulated since ``before`` (a prior snapshot)."""
        return OpStats(
            calls=self.calls - before.calls,
            hits=self.hits - before.hits,
            disk_hits=self.disk_hits - before.disk_hits,
            misses=self.misses - before.misses,
            coalesced=self.coalesced - before.coalesced,
            seconds=self.seconds - before.seconds,
            solver_calls=self.solver_calls - before.solver_calls,
            failures=self.failures - before.failures,
        )


@dataclass
class EngineStats:
    """Aggregated engine observability (see :class:`OpStats`)."""

    ops: dict[str, OpStats] = field(default_factory=dict)
    batches: int = 0
    tasks: int = 0
    wall_seconds: float = 0.0
    serialize_seconds: float = 0.0
    #: Aggregated repro.analysis per-artifact counters
    #: (``"<artifact>.hit"`` / ``"<artifact>.miss"``) from every op run.
    context: dict[str, int] = field(default_factory=dict)
    #: Aggregated solver-kernel search counters (``nodes_explored``,
    #: ``table_hits``, ``bound_cuts``, ``batch_checks``) from every op
    #: that ran a registry solver.
    solver: dict[str, int] = field(default_factory=dict)
    #: Self-healing counters: ops replayed after a pool fault, per-op
    #: wall-clock timeouts, pool teardown/rebuild events, ops that fell
    #: back to in-process serial execution, ops that ultimately failed
    #: (their exception is attached to the task outcome), corrupt disk
    #: cache entries quarantined, and tasks served from a checkpoint
    #: file instead of being recomputed.
    retries: int = 0
    op_timeouts: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    failures: int = 0
    corrupt_entries: int = 0
    checkpoint_hits: int = 0

    def op(self, name: str) -> OpStats:
        if name not in self.ops:
            self.ops[name] = OpStats()
        return self.ops[name]

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.ops.values())

    @property
    def disk_hits(self) -> int:
        return sum(s.disk_hits for s in self.ops.values())

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.ops.values())

    @property
    def solver_calls(self) -> int:
        return sum(s.solver_calls for s in self.ops.values())

    @property
    def hit_rate(self) -> float:
        served = self.hits + self.disk_hits + self.misses
        return (self.hits + self.disk_hits) / served if served else 0.0

    def merge_context(self, counters: dict[str, int]) -> None:
        for key, value in (counters or {}).items():
            self.context[key] = self.context.get(key, 0) + int(value)

    def merge_solver(self, counters: dict[str, int]) -> None:
        for key, value in (counters or {}).items():
            self.solver[key] = self.solver.get(key, 0) + int(value)

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "tasks": self.tasks,
            "wall_seconds": self.wall_seconds,
            "serialize_seconds": self.serialize_seconds,
            "ops": {name: s.as_dict() for name, s in self.ops.items()},
            "context": dict(self.context),
            "solver": dict(self.solver),
            "retries": self.retries,
            "op_timeouts": self.op_timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallbacks": self.serial_fallbacks,
            "failures": self.failures,
            "corrupt_entries": self.corrupt_entries,
            "checkpoint_hits": self.checkpoint_hits,
        }

    def snapshot(self) -> "EngineStats":
        """An independent deep copy of the current counters.

        Long-lived processes (the analysis server, notebook sessions)
        need *per-interval* observability on top of the engine's
        cumulative counters: take a snapshot before an operation and
        call :meth:`delta` afterwards to get exactly what that
        operation contributed, without resetting (and thereby
        conflating) the cumulative view other readers rely on.
        """
        return copy.deepcopy(self)

    def delta(self, before: "EngineStats") -> "EngineStats":
        """The counters accumulated since the ``before`` snapshot.

        Every numeric field, per-op table entry, and context/solver
        counter is subtracted; ops (and counter keys) that saw no
        traffic in the interval are dropped from the result, so a
        delta renders as the interval's activity only.
        """
        out = EngineStats(
            batches=self.batches - before.batches,
            tasks=self.tasks - before.tasks,
            wall_seconds=self.wall_seconds - before.wall_seconds,
            serialize_seconds=(
                self.serialize_seconds - before.serialize_seconds
            ),
            retries=self.retries - before.retries,
            op_timeouts=self.op_timeouts - before.op_timeouts,
            pool_rebuilds=self.pool_rebuilds - before.pool_rebuilds,
            serial_fallbacks=(
                self.serial_fallbacks - before.serial_fallbacks
            ),
            failures=self.failures - before.failures,
            corrupt_entries=self.corrupt_entries - before.corrupt_entries,
            checkpoint_hits=self.checkpoint_hits - before.checkpoint_hits,
        )
        for name, stats in self.ops.items():
            prior = before.ops.get(name, OpStats())
            diff = stats.delta(prior)
            if any(v for v in diff.as_dict().values()):
                out.ops[name] = diff
        for field_name in ("context", "solver"):
            current: dict = getattr(self, field_name)
            prior_map: dict = getattr(before, field_name)
            diff_map = {
                key: value - prior_map.get(key, 0)
                for key, value in current.items()
                if value - prior_map.get(key, 0)
            }
            getattr(out, field_name).update(diff_map)
        return out

    def render(self) -> str:
        """Human-readable stats block (the ``repro stats`` view)."""
        lines = [
            f"batches: {self.batches}   tasks: {self.tasks}   "
            f"wall: {self.wall_seconds:.3f}s   "
            f"hit rate: {self.hit_rate:.1%}",
            f"{'op':<22}{'calls':>7}{'hits':>7}{'disk':>7}"
            f"{'miss':>7}{'solver':>8}{'seconds':>10}",
        ]
        for name in sorted(self.ops):
            s = self.ops[name]
            lines.append(
                f"{name:<22}{s.calls:>7}{s.hits:>7}{s.disk_hits:>7}"
                f"{s.misses:>7}{s.solver_calls:>8}{s.seconds:>10.3f}"
            )
        if self.context:
            lines.append(f"{'artifact':<22}{'computed':>9}{'reused':>9}")
            artifacts = sorted(
                {key.rsplit(".", 1)[0] for key in self.context}
            )
            for artifact in artifacts:
                lines.append(
                    f"{artifact:<22}"
                    f"{self.context.get(f'{artifact}.miss', 0):>9}"
                    f"{self.context.get(f'{artifact}.hit', 0):>9}"
                )
        if self.solver:
            lines.append(f"{'solver counter':<22}{'total':>9}")
            for key in sorted(self.solver):
                lines.append(f"{key:<22}{self.solver[key]:>9}")
        healing = {
            "retries": self.retries,
            "op timeouts": self.op_timeouts,
            "pool rebuilds": self.pool_rebuilds,
            "serial fallbacks": self.serial_fallbacks,
            "failures": self.failures,
            "corrupt entries": self.corrupt_entries,
            "checkpoint hits": self.checkpoint_hits,
        }
        if any(healing.values()):
            lines.append(
                "self-healing: "
                + "   ".join(f"{k}: {v}" for k, v in healing.items() if v)
            )
        return "\n".join(lines)


def _default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


def _warm_worker() -> int:
    """Pool-worker warmup body: pull the heavy module tree into the
    worker process so the first real op doesn't pay the imports."""
    from ..analysis import context_from_json  # noqa: F401
    from ..core.throughput import actual_mst  # noqa: F401

    return os.getpid()


class _TaskFailure:
    """Internal marker carried through the result list for a task whose
    op raised (or exhausted its retries): the exception travels with
    the task instead of aborting its siblings."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


class AnalysisEngine:
    """Parallel, cached, self-healing executor of LIS analysis
    operations.

    Args:
        jobs: Worker processes.  ``None``, 0 or 1 run everything in
            process (no pool); ``"auto"`` uses the CPU count.
        cache_size: In-memory LRU capacity (entries; 0 disables).
        cache_dir: Optional on-disk cache directory, shared across
            engines and runs.
        op_timeout: Optional wall-clock budget in seconds granted to
            each pooled op (measured from when the engine starts
            waiting on it, so a queued op is never charged for its
            predecessors).  A timed-out op's worker is presumed wedged:
            the pool is rebuilt and the op retried up to
            ``max_retries`` times before a ``TimeoutError`` is attached
            to its task.  ``None`` (default) waits forever.
        max_retries: Replay budget per op for pool-level faults (worker
            killed, pool broken, timeout) before giving up -- a pool
            fault exhausting its retries degrades to one in-process
            serial execution instead of failing.  Op-level exceptions
            (the op itself raising) are deterministic and never
            retried.
        retry_backoff: Base of the exponential backoff slept between
            replay rounds (``retry_backoff * 2**round`` seconds, capped
            at 4s).

    Use as a context manager (or call :meth:`close`) so the worker
    pool is reaped and stats are persisted to the cache directory.
    """

    def __init__(
        self,
        jobs: int | str | None = None,
        cache_size: int = 4096,
        cache_dir: str | os.PathLike | None = None,
        op_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.25,
    ) -> None:
        if jobs == "auto":
            jobs = _default_jobs()
        self.jobs = max(1, int(jobs or 1))
        self.op_timeout = op_timeout
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff = max(0.0, float(retry_backoff))
        self.stats = EngineStats()
        self._memory = LruCache(cache_size)
        self._disk = DiskCache(cache_dir) if cache_dir else None
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "AnalysisEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down and persist cumulative stats."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self.flush_stats()

    def flush_stats(self) -> None:
        """Merge this engine's counters into ``<cache_dir>/stats.json``
        (no-op without a cache directory)."""
        if self._disk is not None and self.stats.tasks:
            self._disk.merge_stats(self.stats.as_dict())

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def prewarm(self) -> None:
        """Spin the worker pool up (and import the analysis stack in
        every worker) before the first real batch arrives.

        A long-lived front end (the analysis server) reuses one engine
        handle per shard across its whole lifetime; without prewarming,
        the first request after startup -- or after a pool rebuild --
        pays process fork + module import inside its latency budget.
        No-op for in-process engines (``jobs <= 1``) and when the pool
        already exists with live workers.
        """
        if self.jobs <= 1 or self._closed:
            return
        pool = self._ensure_pool()
        futures = [pool.submit(_warm_worker) for _ in range(self.jobs)]
        for future in futures:
            try:
                future.result()
            except Exception:
                # A worker dying during warmup is handled by the
                # normal self-healing path on the first real batch.
                pass

    def _rebuild_pool(self) -> None:
        """Tear the (presumed broken or wedged) pool down -- terminating
        any worker that is still alive, e.g. one stuck in a timed-out op
        -- so the next :meth:`_ensure_pool` starts fresh."""
        pool, self._pool = self._pool, None
        if pool is not None:
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.terminate()
                except Exception:
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
        self.stats.pool_rebuilds += 1

    # -- the batch surface --------------------------------------------

    def run(
        self, tasks: Sequence[tuple], return_exceptions: bool = False
    ) -> list:
        """Execute ``(op, lis, options)`` tasks; results in task order.

        ``lis`` may be a :class:`LisGraph`, an
        :class:`~repro.analysis.Context` (its canonical JSON is already
        computed, so serialization is free and in-process runs reuse
        the context's artifacts), or the canonical JSON text itself.
        Identical tasks inside one batch are computed once (coalesced);
        cached results are served without touching the pool.

        One task raising never discards its siblings: **every** task in
        the batch is completed and every success is cached before
        failures are reported.  With ``return_exceptions=False`` (the
        default) the first failing task's exception -- in task order --
        then propagates, exactly as the historical surface did (e.g.
        :class:`ExactTimeout` from an exact op).  With
        ``return_exceptions=True`` the exception object itself is
        returned in that task's slot instead, preserving the
        documented deterministic ordering.
        """
        t_start = time.perf_counter()
        self.stats.batches += 1
        self.stats.tasks += len(tasks)

        results: list = [None] * len(tasks)
        # key -> (op, lis_json, options, [indices])
        pending: dict[str, list] = {}
        try:
            for i, task in enumerate(tasks):
                op, lis, options = (*task, None)[:3]
                t0 = time.perf_counter()
                if isinstance(lis, str):
                    lis_json = lis
                elif isinstance(lis, Context):
                    lis_json = lis.lis_json
                else:
                    lis_json = lis_to_json(lis)
                self.stats.serialize_seconds += time.perf_counter() - t0
                key = content_key(op, lis_json, options)
                per_op = self.stats.op(op)
                per_op.calls += 1
                if key in self._memory:
                    per_op.hits += 1
                    results[i] = copy.deepcopy(self._memory.get(key))
                    continue
                if self._disk is not None:
                    try:
                        value = self._disk.get(op, key)
                    except KeyError:
                        pass
                    else:
                        per_op.disk_hits += 1
                        self._memory.put(key, value)
                        results[i] = copy.deepcopy(value)
                        continue
                if key in pending:
                    per_op.coalesced += 1
                    pending[key][3].append(i)
                else:
                    pending[key] = [op, lis_json, options, [i]]

            if pending:
                self._execute(pending, results)
        finally:
            if self._disk is not None:
                self.stats.corrupt_entries = self._disk.corrupt_entries
            self.stats.wall_seconds += time.perf_counter() - t_start

        first_error: BaseException | None = None
        for i, value in enumerate(results):
            if isinstance(value, _TaskFailure):
                if first_error is None:
                    first_error = value.error
                results[i] = value.error
        if first_error is not None and not return_exceptions:
            raise first_error
        return results

    def _execute(self, pending: dict[str, list], results: list) -> None:
        items = list(pending.items())
        if self.jobs > 1 and len(items) > 1:
            outcomes = self._execute_pool(
                [
                    (op, lis_json, options)
                    for _, (op, lis_json, options, _) in items
                ]
            )
        else:
            outcomes = [
                self._run_local(op, lis_json, options)
                for _, (op, lis_json, options, _) in items
            ]
        for (key, (op, _, _, indices)), outcome in zip(items, outcomes):
            per_op = self.stats.op(op)
            if isinstance(outcome, _TaskFailure):
                per_op.failures += 1
                self.stats.failures += 1
                for i in indices:
                    results[i] = outcome
                continue
            value, meta = outcome
            per_op.misses += 1
            per_op.seconds += meta.get("elapsed", 0.0)
            per_op.solver_calls += meta.get("solver_calls", 0)
            self.stats.merge_context(meta.get("context") or {})
            self.stats.merge_solver(meta.get("solver") or {})
            self._memory.put(key, value)
            if self._disk is not None:
                self._disk.put(op, key, value)
            for i in indices:
                results[i] = copy.deepcopy(value)

    def _run_local(self, op: str, lis_json: str, options: dict | None):
        """In-process execution; op-level exceptions become task
        failures rather than aborting the batch."""
        try:
            return run_op(op, lis_json, options)
        except Exception as exc:
            return _TaskFailure(exc)

    def _execute_pool(self, calls: list[tuple]) -> list:
        """Fan ``calls`` out over the worker pool, healing pool-level
        faults: a timed-out or broken-pool op is replayed (fresh pool)
        up to ``max_retries`` times with exponential backoff; an op
        that exhausts its replays on pool faults runs once in-process
        (serial degradation).  Returns one ``(value, meta)`` or
        :class:`_TaskFailure` per call, in call order."""
        outcomes: list = [None] * len(calls)
        attempts = [0] * len(calls)
        todo = list(range(len(calls)))
        round_no = 0
        while todo:
            pool = self._ensure_pool()
            futures: dict[int, object] = {}
            broken = False
            try:
                for i in todo:
                    futures[i] = pool.submit(run_op, *calls[i])
            except BrokenProcessPool:
                broken = True
            retry: list[int] = []

            def fault(i: int, failure: _TaskFailure | None) -> None:
                """Replay ``i`` if it has budget left; otherwise attach
                ``failure``, or degrade to serial when the fault was
                pool-level (failure is None)."""
                attempts[i] += 1
                if attempts[i] <= self.max_retries:
                    retry.append(i)
                elif failure is not None:
                    outcomes[i] = failure
                else:
                    self.stats.serial_fallbacks += 1
                    outcomes[i] = self._run_local(*calls[i])

            for i in todo:
                future = futures.get(i)
                if future is None or (broken and not future.done()):
                    # Never ran (or died with the pool): replay it.
                    fault(i, None)
                    continue
                try:
                    outcomes[i] = future.result(
                        timeout=None if broken else self.op_timeout
                    )
                except _FutureTimeout:
                    self.stats.op_timeouts += 1
                    broken = True  # the worker is wedged; rebuild below
                    fault(
                        i,
                        _TaskFailure(
                            TimeoutError(
                                f"op {calls[i][0]!r} exceeded "
                                f"op_timeout={self.op_timeout}s "
                                f"(attempt {attempts[i] + 1})"
                            )
                        ),
                    )
                except BrokenProcessPool:
                    broken = True
                    fault(i, None)
                except Exception as exc:
                    # The op itself raised: deterministic, not retried.
                    outcomes[i] = _TaskFailure(exc)
            if broken:
                self._rebuild_pool()
            todo = retry
            if todo:
                self.stats.retries += len(todo)
                delay = self.retry_backoff * (2**round_no)
                round_no += 1
                if delay > 0:
                    time.sleep(min(delay, 4.0))
        return outcomes

    def map(
        self,
        op: str,
        systems: Iterable[LisGraph | Context | str],
        options: dict | None = None,
    ) -> list:
        """Run one op over many systems with shared options."""
        return self.run([(op, lis, options) for lis in systems])

    # -- single-system conveniences -----------------------------------

    def _one(self, op: str, lis: LisGraph | Context | str, options: dict | None = None):
        return self.run([(op, lis, options)])[0]

    def ideal_mst(self, lis: LisGraph | Context | str):
        """Cached :func:`repro.core.ideal_mst` (a ThroughputResult)."""
        return self._one("ideal_mst", lis)

    def actual_mst(self, lis: LisGraph | Context | str, extra_tokens=None):
        """Cached :func:`repro.core.actual_mst`."""
        options = (
            {"extra_tokens": dict(extra_tokens)} if extra_tokens else None
        )
        return self._one("actual_mst", lis, options)

    def size_queues(self, lis: LisGraph | Context | str, **options):
        """Cached :func:`repro.core.size_queues` (same keywords)."""
        return self._one("size_queues", lis, options or None)

    def analyze(self, lis: LisGraph | Context | str, **options):
        """Cached :func:`repro.core.analyze` full report."""
        return self._one("analyze", lis, options or None)


def analyze_many(
    systems: Sequence[LisGraph | Context | str],
    jobs: int | str | None = None,
    cache_dir: str | os.PathLike | None = None,
    engine: AnalysisEngine | None = None,
    **options,
) -> list:
    """Full :class:`~repro.core.AnalysisReport` for each system.

    Batch counterpart of :func:`repro.core.analyze`: fans out over
    ``jobs`` worker processes (deterministic result order) and caches
    under ``cache_dir`` when given.  Pass an existing ``engine`` to
    reuse its pool, cache, and stats; otherwise a transient engine is
    created and closed around the batch.
    """
    if engine is not None:
        return engine.map("analyze", systems, options or None)
    with AnalysisEngine(jobs=jobs, cache_dir=cache_dir) as local:
        return local.map("analyze", systems, options or None)
