"""Parallel cached analysis engine (the batch substrate).

Everything that runs *many* independent LIS analyses -- experiment
runners, the exhaustive SoC sweeps, the benchmarks, the CLI's
``--jobs``/``--cache`` surface -- submits work here instead of looping:

    from repro.engine import AnalysisEngine

    with AnalysisEngine(jobs=4, cache_dir=".repro-cache") as engine:
        reports = engine.map("analyze", systems)
        print(engine.stats.render())

See :mod:`repro.engine.core` for the engine, :mod:`repro.engine.ops`
for the operation registry, and :mod:`repro.engine.cache` for the
content-hash cache layers.
"""

from .cache import DiskCache, LruCache, canonical_options, content_key
from .checkpoint import Checkpoint, run_checkpointed, task_key
from .core import AnalysisEngine, EngineStats, OpStats, analyze_many
from .ops import available_ops, get_op, register_op, run_op
from .portfolio import PORTFOLIO_NODE_LIMIT, solve_exact_portfolio

__all__ = [
    "AnalysisEngine",
    "EngineStats",
    "OpStats",
    "analyze_many",
    "available_ops",
    "get_op",
    "register_op",
    "run_op",
    "solve_exact_portfolio",
    "PORTFOLIO_NODE_LIMIT",
    "Checkpoint",
    "run_checkpointed",
    "task_key",
    "DiskCache",
    "LruCache",
    "canonical_options",
    "content_key",
]
