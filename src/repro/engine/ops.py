"""The operations an :class:`~repro.engine.AnalysisEngine` can run.

An *op* is a named pure function over a shared analysis context::

    fn(ctx: repro.analysis.Context, options: dict) -> (result, meta)

where ``meta`` carries observability counters (``solver_calls``, plus
the per-artifact ``context`` hit/miss delta added by :func:`run_op`).
Ops receive the :class:`~repro.analysis.Context` for the serialized
system's fingerprint -- the same SHA-256 the cache key is built from --
so a result is valid for exactly the content that keyed it, worker
processes never unpickle arbitrary objects, and **two ops on the same
serialized system share one set of lowerings and one cycle
enumeration** through the context registry.

:func:`run_op` is the process-pool entrypoint (module-level, hence
picklable); :func:`register_op` admits project-specific operations,
which then work from every engine, including cached and parallel runs.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Callable

from ..analysis import Context, context_from_json, get_context, global_stats
from ..core.throughput import actual_mst, ideal_mst

__all__ = ["available_ops", "get_op", "register_op", "run_op"]

OpFn = Callable[[Context, dict], "tuple[object, dict]"]

_OPS: dict[str, OpFn] = {}


def register_op(name: str, fn: OpFn, overwrite: bool = False) -> None:
    """Register ``fn`` as an engine operation under ``name``."""
    if name in _OPS and not overwrite:
        raise ValueError(f"op {name!r} already registered")
    _OPS[name] = fn


def get_op(name: str) -> OpFn:
    try:
        return _OPS[name]
    except KeyError:
        known = ", ".join(sorted(_OPS))
        raise ValueError(f"unknown op {name!r} (available: {known})") from None


def available_ops() -> tuple[str, ...]:
    return tuple(sorted(_OPS))


def run_op(op: str, lis_json: str, options: dict | None) -> tuple:
    """Execute one op; the ``(result, meta)`` pair comes back with the
    compute wall-clock and the context-counter delta added to ``meta``.
    This is the function worker processes run."""
    fn = get_op(op)
    ctx = context_from_json(lis_json)
    before = global_stats().snapshot()
    t0 = time.perf_counter()
    result, meta = fn(ctx, options or {})
    meta = dict(meta)
    meta["elapsed"] = time.perf_counter() - t0
    meta["context"] = global_stats().delta(before)
    return result, meta


def _coerce_target(value) -> Fraction | None:
    if value is None or isinstance(value, Fraction):
        return value
    return Fraction(value)


#: The uniform per-solver counters threaded through op meta into
#: ``EngineStats.solver`` and the ``repro stats`` solver table.
SOLVER_COUNTER_KEYS = (
    "nodes_explored",
    "table_hits",
    "bound_cuts",
    "batch_checks",
)


def _solver_counters(*stats_dicts: dict) -> dict[str, int]:
    """Merge solver stats dicts into the uniform numeric counters the
    engine aggregates (``EngineStats.solver``); solver-specific extras
    such as ``backend`` labels or ``lp_bound`` are dropped."""
    out: dict[str, int] = {}
    for stats in stats_dicts:
        for key in SOLVER_COUNTER_KEYS:
            value = (stats or {}).get(key)
            if isinstance(value, (int, float)):
                out[key] = out.get(key, 0) + int(value)
    return out


def _op_ideal_mst(ctx: Context, options: dict):
    return ideal_mst(ctx), {"solver_calls": 0}


def _op_actual_mst(ctx: Context, options: dict):
    extra = options.get("extra_tokens")
    if extra is not None:
        extra = {int(cid): int(tokens) for cid, tokens in extra.items()}
    return actual_mst(ctx, extra), {"solver_calls": 0}


def _sweep_rate(trial, method: str) -> Fraction:
    """The practical rate of one sweep point under the chosen method:
    ``"analytic"`` (Karp minimum cycle mean) or ``"schedule"`` (the
    analytic schedule oracle's common shell rate, falling back to
    Karp on systems it does not support)."""
    if method == "schedule":
        from ..lis.backends import get_backend

        tctx = get_context(trial)
        if get_backend("schedule").supports(tctx):
            return tctx.schedule_oracle().min_rate()
        return actual_mst(tctx).mst
    if method != "analytic":
        raise ValueError(f"unknown sweep method {method!r}")
    return actual_mst(trial).mst


def _op_mst_sweep(ctx: Context, options: dict):
    """Ideal MST plus the practical MST at each uniform queue size.

    Options: ``queues`` (list of ints), ``include_ideal`` (default
    True), ``method`` (``"analytic"`` -- Karp, the default -- or
    ``"schedule"`` for the eventually-periodic oracle; the two are
    provably equal on strongly connected systems, so ``"schedule"``
    here is the cross-checking mode of the Fig. 16/17 sweeps, with
    ``"inf"`` always analytic because the ideal system may accumulate
    tokens unboundedly).  Returns ``{"inf": Fraction, "<q>":
    Fraction, ...}`` -- the per-trial unit of the Fig. 16 / Fig. 17
    sweeps, batched so one task amortizes one system's generation and
    transfer.
    """
    method = options.get("method", "analytic")
    out: dict[str, Fraction] = {}
    if options.get("include_ideal", True):
        out["inf"] = ideal_mst(ctx).mst
    for q in options.get("queues", ()):
        # Each queue size is a different content; mutate a plain clone
        # rather than building (and registering) a context per point.
        trial = ctx.copy()
        trial.set_all_queues(int(q))
        out[str(q)] = _sweep_rate(trial, method)
    return out, {"solver_calls": 0}


def _op_measure(ctx: Context, options: dict):
    """Throughput of one shell through a named measurement backend
    (:mod:`repro.lis.backends`), with automatic fallback.

    Options: ``backend`` (default ``"schedule"``), ``shell`` (default:
    the limiting-cycle probe of :func:`repro.lis.select_probe_shell`),
    ``clocks`` / ``warmup`` (simulation horizon; ignored by exact
    backends), ``extra_tokens``.  Returns ``{"shell", "backend"
    (the backend that actually ran, after fallback), "throughput"}``.
    """
    from ..lis.backends import resolve_backend
    from ..lis.measurement import select_probe_shell

    extra = options.get("extra_tokens")
    if extra is not None:
        extra = {int(cid): int(tokens) for cid, tokens in extra.items()}
    shell = options.get("shell")
    if shell is None:
        shell = select_probe_shell(ctx, extra_tokens=extra)
    clocks = int(options.get("clocks", 400))
    warmup = int(options.get("warmup", 100))
    backend = resolve_backend(options.get("backend", "schedule"), ctx)
    rate = backend.measure(
        ctx, shell, clocks=clocks, warmup=warmup, extra_tokens=extra
    )
    meta = {
        "solver_calls": 0,
        "simulated_cycles": 0 if backend.exact else warmup + clocks,
    }
    return {
        "shell": shell,
        "backend": backend.name,
        "throughput": rate,
    }, meta


def _op_size_queues(ctx: Context, options: dict):
    from ..core.solvers import size_queues

    solution = size_queues(
        ctx,
        method=options.get("method", "heuristic"),
        target=_coerce_target(options.get("target")),
        collapse=options.get("collapse", "auto"),
        timeout=options.get("timeout"),
        max_cycles=options.get("max_cycles"),
        verify=options.get("verify", True),
    )
    return solution, {
        "solver_calls": 1,
        "solver": _solver_counters(solution.stats),
    }


def _op_analyze(ctx: Context, options: dict):
    from ..core.report import analyze

    report = analyze(
        ctx,
        method=options.get("method", "heuristic"),
        max_cycles=options.get("max_cycles"),
    )
    meta: dict = {"solver_calls": 1 if report.fix is not None else 0}
    if report.fix is not None:
        meta["solver"] = _solver_counters(report.fix.stats)
    return report, meta


def _op_td_probe(ctx: Context, options: dict):
    """One root-partitioned feasibility probe of the exact search: "is
    there a solution with <= ``budget`` tokens whose first token lands
    on ``root_channel``?" -- the unit of work
    :func:`~repro.engine.solve_exact_portfolio` fans out per bisection
    budget.

    Options: ``budget`` (int, required), ``root_channel`` (optional
    channel id), ``target`` (optional throughput, e.g. ``"7/8"``),
    ``collapse`` (default True: probe the rule-4 collapsed system when
    the topology allows it),
    ``timeout`` (seconds).  Returns ``{"feasible", "weights", "stats"}``
    over the (collapsed) residual problem.
    """
    from ..core.solvers.kernel import KernelStats

    work = ctx
    if options.get("collapse", True) and ctx.is_collapsible():
        work, _ = ctx.collapsed()
    kern = work.td_kernel(_coerce_target(options.get("target")))
    stats = KernelStats()
    deadline = None
    if options.get("timeout") is not None:
        deadline = time.monotonic() + float(options["timeout"])
    root = options.get("root_channel")
    weights = kern.feasible(
        int(options["budget"]),
        root_channel=None if root is None else int(root),
        deadline=deadline,
        stats=stats,
    )
    result = {
        "feasible": weights is not None,
        "weights": weights,
        "stats": stats.as_dict(),
    }
    return result, {
        "solver_calls": 1,
        "solver": _solver_counters(stats.as_dict()),
    }


def _op_table4_trial(ctx: Context, options: dict):
    """One Table IV trial: structure counts, the heuristic cost, and
    the exact cost (None on timeout) after the SCC collapse.

    The collapsed system's *single* cycle enumeration (cached on its
    context) serves the cycle count, the deficient filter, and both
    solvers' TD instance -- previously this op enumerated twice.
    """
    from ..core.solvers import get_solver
    from ..core.solvers.exact import ExactTimeout
    from ..graphs import scc_of

    mapping = scc_of(ctx.system)
    inter_scc_edges = sum(
        1 for e in ctx.channels() if mapping[e.src] != mapping[e.dst]
    )
    collapsed, _ = ctx.collapsed()
    inter_scc_cycles = len(collapsed.cycle_records())
    instance = collapsed.td_instance(target=Fraction(1), simplify=True)
    t0 = time.perf_counter()
    heuristic_weights, heur_stats = get_solver("heuristic").solve_instance(
        instance
    )
    heuristic_ms = (time.perf_counter() - t0) * 1e3
    heuristic_cost = instance.solution_cost(heuristic_weights)
    exact_cost: int | None = None
    exact_stats: dict = {}
    t0 = time.perf_counter()
    try:
        weights, exact_stats = get_solver("exact").solve_instance(
            instance, timeout=options.get("exact_timeout")
        )
        exact_cost = sum(weights.values()) + sum(instance.forced.values())
    except ExactTimeout:
        pass
    exact_ms = (time.perf_counter() - t0) * 1e3
    result = {
        "edges": len(ctx.channels()),
        "inter_scc_edges": inter_scc_edges,
        "inter_scc_cycles": inter_scc_cycles,
        "heuristic_cost": heuristic_cost,
        "heuristic_ms": heuristic_ms,
        "heuristic_stats": heur_stats,
        "exact_cost": exact_cost,
        "exact_ms": exact_ms,
        "exact_stats": exact_stats,
    }
    meta = {"solver_calls": 2, "solver": _solver_counters(heur_stats, exact_stats)}
    return result, meta


def _op_exhaustive_placement(ctx: Context, options: dict):
    """One Table V placement: insert relay stations on the listed
    channels of the (serialized) base system, then run the heuristic
    and optionally the exact solver on both TD variants."""
    from ..soc.exhaustive import solve_placement

    channels = tuple(int(c) for c in options["channels"])
    lis = ctx.copy()
    for cid in channels:
        lis.insert_relay(cid)
    placed = get_context(lis)
    placement = solve_placement(
        placed,
        channels,
        target=ideal_mst(placed).mst,
        run_exact=options.get("run_exact", True),
        exact_timeout=options.get("exact_timeout"),
    )
    calls = 0
    if placement.degraded:
        calls = 2 + (2 if options.get("run_exact", True) else 0)
    return placement, {"solver_calls": calls}


def _op_simulate_batch(ctx: Context, options: dict):
    """Vectorized batch simulation of one topology under many
    queue-sizing assignments (:mod:`repro.sim`).

    Options: ``assignments`` (list of ``{channel id: extra tokens}``;
    default ``[{}]``), ``clocks`` (measured cycles, default 400),
    ``warmup`` (discarded leading cycles, default 100),
    ``check_feasible`` (default False: also validate every assignment
    against the *unsimplified* token-deficit kernel in one batch
    matrix check, reported as a ``feasible`` flag per assignment),
    ``backend`` (``"fast"``, the default, or ``"schedule"``: answer
    from the analytic oracle instead of stepping clocks -- exact
    asymptotic rates and infinite-horizon peak occupancies, falling
    back to ``fast`` when the oracle does not support the system).
    Returns one dict per assignment: ``throughput`` ({shell: Fraction}
    over the measurement window) and ``max_occupancy`` ({channel id:
    peak items on the consumer shell's queue}).
    """
    from ..sim import BatchSimulator

    assignments = [
        {int(c): int(x) for c, x in a.items()}
        for a in (options.get("assignments") or [{}])
    ]
    clocks = int(options.get("clocks", 400))
    warmup = int(options.get("warmup", 100))
    backend = options.get("backend", "fast")
    if backend not in ("fast", "schedule"):
        raise ValueError(
            f"simulate_batch backend must be 'fast' or 'schedule', "
            f"got {backend!r}"
        )
    flags = None
    solver_meta: dict = {}
    if options.get("check_feasible"):
        kern = ctx.td_kernel(simplify=False)
        flags = [bool(f) for f in kern.check_batch(assignments)]
        solver_meta = _solver_counters({"batch_checks": len(assignments)})

    if backend == "schedule":
        from ..lis.backends import get_backend

        if not get_backend("schedule").supports(ctx):
            backend = "fast"

    out = []
    if backend == "schedule":
        for b, extra in enumerate(assignments):
            oracle = ctx.schedule_oracle(extra)
            entry = {
                "throughput": oracle.shell_throughputs(),
                "max_occupancy": oracle.max_queue_occupancy(),
            }
            if flags is not None:
                entry["feasible"] = flags[b]
            out.append(entry)
        meta = {"solver_calls": 0, "simulated_cycles": 0}
    else:
        sim = BatchSimulator(ctx, assignments)
        result = sim.run(warmup + clocks, warmup=warmup)
        compiled = sim.compiled
        for b in range(result.width):
            rates = result.throughput(b)
            entry = {
                "throughput": {
                    name: rates[name]
                    for i, name in enumerate(compiled.node_names)
                    if compiled.is_shell[i]
                },
                "max_occupancy": result.max_queue_occupancy(b),
            }
            if flags is not None:
                entry["feasible"] = flags[b]
            out.append(entry)
        meta = {"solver_calls": 0, "simulated_cycles": warmup + clocks}
    if solver_meta:
        meta["solver"] = solver_meta
    return out, meta


def _op_fault_trial(ctx: Context, options: dict):
    """One fault-injection trial: build the schedule from serialized
    specs, run the invariant harness on the requested backend, and
    return the JSON-able report (:mod:`repro.faults`).

    Options: ``specs`` (list of :meth:`FaultSpec.as_dict` dicts,
    required), ``backend`` (default ``"trace"``), ``seed`` (behavior
    seed, default 0), ``extra_tokens`` ({channel id: extra}),
    ``measure``, ``settle``, ``epsilon`` (Fraction string),
    ``min_items``.
    """
    from ..faults import FaultSpec, check_invariants

    specs = [FaultSpec.from_dict(d) for d in options["specs"]]
    kwargs: dict = {
        "backend": options.get("backend", "trace"),
        "seed": int(options.get("seed", 0)),
    }
    if options.get("extra_tokens") is not None:
        kwargs["extra_tokens"] = {
            int(c): int(x) for c, x in options["extra_tokens"].items()
        }
    if options.get("measure") is not None:
        kwargs["measure"] = int(options["measure"])
    if options.get("settle") is not None:
        kwargs["settle"] = int(options["settle"])
    if options.get("epsilon") is not None:
        kwargs["epsilon"] = Fraction(options["epsilon"])
    if options.get("min_items") is not None:
        kwargs["min_items"] = int(options["min_items"])
    report = check_invariants(ctx, specs, **kwargs)
    return report.as_dict(), {
        "solver_calls": 0,
        "simulated_cycles": 2 * report.clocks,
    }


def _parse_stochastic_options(options: dict):
    """Shared option parsing of the two stochastic ops: specs, horizon
    and quantile levels (all JSON-able, per the op contract)."""
    from ..stochastic import StochasticSpec

    specs = [StochasticSpec.from_dict(d) for d in options["specs"]]
    clocks = int(options.get("clocks", 600))
    trials = int(options.get("trials", 200))
    quantiles = tuple(
        float(q) for q in options.get("quantiles", (0.5, 0.99, 0.999))
    )
    return specs, clocks, trials, quantiles


def _op_tail_point(ctx: Context, options: dict):
    """One Monte-Carlo + analytic tail estimate at a single queue
    sizing (:mod:`repro.stochastic`).

    Options: ``specs`` (list of :meth:`StochasticSpec.as_dict` dicts,
    required), ``clocks`` (default 600), ``trials`` (default 200),
    ``warmup``, ``extra_tokens``, ``node`` (shell name; default the
    slowest shell), ``work`` (completion firing target),
    ``quantiles`` (default p50/p99/p999), ``analytic`` (default True).
    Returns the Monte-Carlo summary plus, when requested, the analytic
    estimate and the :func:`repro.stochastic.agreement` cross-check.
    """
    from ..stochastic import agreement, estimate_tails, run_monte_carlo

    specs, clocks, trials, quantiles = _parse_stochastic_options(options)
    extra = {
        int(c): int(x)
        for c, x in (options.get("extra_tokens") or {}).items()
    }
    node = options.get("node")
    work = options.get("work")
    mc = run_monte_carlo(
        ctx,
        specs,
        clocks=clocks,
        trials=trials,
        warmup=int(options.get("warmup", 0)),
        extra_tokens=extra,
        node=node,
        work=None if work is None else int(work),
    )
    result = mc.summary(quantiles)
    if options.get("analytic", True):
        estimate = estimate_tails(
            ctx,
            specs,
            clocks=clocks,
            node=mc.node,
            work=mc.work,
            quantiles=quantiles,
            extra_tokens=extra,
        )
        result["analytic"] = estimate.as_dict()
        result["agreement"] = agreement(mc, estimate, quantiles)
    return result, {
        "solver_calls": 0,
        "simulated_cycles": clocks * trials,
    }


def _op_tail_curves(ctx: Context, options: dict):
    """A full p50/p99/p999-vs-queue-sizing curve
    (:func:`repro.stochastic.tail_curve`).

    Options as :func:`tail_point` plus ``sizings`` (list of
    ``{channel id: extra}``; default the uniform ladder of
    :func:`~repro.stochastic.uniform_sizings` up to ``max_extra``,
    default 3).  Returns :meth:`TailCurve.as_dict`.
    """
    from ..stochastic import tail_curve, uniform_sizings

    specs, clocks, trials, quantiles = _parse_stochastic_options(options)
    sizings = options.get("sizings")
    if sizings is None:
        sizings = uniform_sizings(ctx, int(options.get("max_extra", 3)))
    else:
        sizings = [
            {int(c): int(x) for c, x in s.items()} for s in sizings
        ]
    work = options.get("work")
    curve = tail_curve(
        ctx,
        specs,
        clocks=clocks,
        trials=trials,
        sizings=sizings,
        quantiles=quantiles,
        node=options.get("node"),
        work=None if work is None else int(work),
        warmup=int(options.get("warmup", 0)),
        analytic=options.get("analytic", True),
    )
    return curve.as_dict(), {
        "solver_calls": 0,
        "simulated_cycles": clocks * trials * len(sizings),
    }


def _op_chaos_probe(ctx: Context, options: dict):
    """Engine-level chaos: deliberately misbehave inside a worker.

    First run with a given ``sentinel`` path: create the sentinel and
    SIGKILL our own process (or sleep past the op timeout when
    ``mode="hang"``), so the pool breaks mid-result.  The engine's
    replay then re-runs the op, finds the sentinel, and returns
    normally -- proving the rebuild + retry path end to end.  The
    ``salt`` option only differentiates cache keys between drills.
    """
    import os
    import signal

    sentinel = options.get("sentinel")
    mode = options.get("mode", "kill")
    if sentinel and not os.path.exists(sentinel):
        fd = os.open(sentinel, os.O_CREAT | os.O_WRONLY, 0o644)
        os.close(fd)
        if mode == "hang":
            time.sleep(float(options.get("sleep", 3600.0)))
        else:
            os.kill(os.getpid(), signal.SIGKILL)
    return {
        "survived": True,
        "pid": os.getpid(),
        "salt": options.get("salt"),
        "fingerprint": ctx.fingerprint,
    }, {"solver_calls": 0}


register_op("ideal_mst", _op_ideal_mst)
register_op("actual_mst", _op_actual_mst)
register_op("mst_sweep", _op_mst_sweep)
register_op("measure", _op_measure)
register_op("size_queues", _op_size_queues)
register_op("analyze", _op_analyze)
register_op("table4_trial", _op_table4_trial)
register_op("td_probe", _op_td_probe)
register_op("exhaustive_placement", _op_exhaustive_placement)
register_op("simulate_batch", _op_simulate_batch)
register_op("fault_trial", _op_fault_trial)
register_op("tail_point", _op_tail_point)
register_op("tail_curves", _op_tail_curves)
register_op("chaos_probe", _op_chaos_probe)
