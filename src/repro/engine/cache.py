"""Content-addressed result caching for the analysis engine.

Keys are SHA-256 hashes over the *serialized* LIS (the canonical JSON
of :mod:`repro.core.serialize`), the operation name, and the
canonicalized option set.  Because the key is derived from content,
mutating a system (``set_queue``, ``insert_relay``) changes its
serialization and therefore never aliases a stale entry -- there is no
explicit invalidation protocol to get wrong.

Two layers:

* :class:`LruCache` -- in-memory, bounded, per-engine;
* :class:`DiskCache` -- optional pickle files under a cache directory,
  shared between runs and processes (written atomically via rename).

The disk layer uses :mod:`pickle`: treat a cache directory like any
other local build artifact and do not point the engine at an
untrusted one.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from fractions import Fraction
from pathlib import Path
from typing import Any

__all__ = ["DiskCache", "LruCache", "canonical_options", "content_key"]

_KEY_VERSION = "repro-engine-v1"


def _json_default(value: Any) -> str:
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    return str(value)


def canonical_options(options: dict | None) -> str:
    """Deterministic JSON text for an option dict (Fractions included)."""
    return json.dumps(
        options or {},
        sort_keys=True,
        separators=(",", ":"),
        default=_json_default,
    )


def content_key(op: str, lis_json: str, options: dict | None) -> str:
    """The cache key: hash of (engine version, op, options, system)."""
    digest = hashlib.sha256()
    for part in (_KEY_VERSION, op, canonical_options(options), lis_json):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class LruCache:
    """A small LRU mapping key -> result, with hit/miss counts kept by
    the owning engine (this class only stores)."""

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = max(0, maxsize)
        self._data: OrderedDict[str, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str) -> Any:
        """The stored value, promoted to most-recent; KeyError on miss."""
        value = self._data[key]
        self._data.move_to_end(key)
        return value

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def put(self, key: str, value: Any) -> None:
        if self.maxsize == 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


class DiskCache:
    """Pickle-per-entry cache directory; file names carry the op name
    so ``python -m repro stats`` can break usage down per operation."""

    STATS_FILE = "stats.json"

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, op: str, key: str) -> Path:
        return self.directory / f"{op}--{key}.pkl"

    def get(self, op: str, key: str) -> Any:
        """Unpickled entry; KeyError when absent or unreadable."""
        path = self._path(op, key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            raise KeyError(key) from None

    def put(self, op: str, key: str, value: Any) -> None:
        path = self._path(op, key)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def entries(self) -> dict[str, int]:
        """Entry counts per op name."""
        counts: dict[str, int] = {}
        for path in self.directory.glob("*--*.pkl"):
            op = path.name.rsplit("--", 1)[0]
            counts[op] = counts.get(op, 0) + 1
        return counts

    def total_bytes(self) -> int:
        return sum(
            path.stat().st_size for path in self.directory.glob("*--*.pkl")
        )

    def read_stats(self) -> dict:
        """Cumulative engine counters persisted beside the entries."""
        path = self.directory / self.STATS_FILE
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}

    def merge_stats(self, update: dict) -> None:
        """Accumulate ``update`` (nested dicts of numbers) into
        ``stats.json`` so observability survives across runs."""

        def merge(into: dict, frm: dict) -> dict:
            for key, value in frm.items():
                if isinstance(value, dict):
                    into[key] = merge(dict(into.get(key) or {}), value)
                elif isinstance(value, (int, float)):
                    into[key] = into.get(key, 0) + value
                else:
                    into[key] = value
            return into

        merged = merge(self.read_stats(), update)
        path = self.directory / self.STATS_FILE
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
