"""Content-addressed result caching for the analysis engine.

Keys are SHA-256 hashes over the *serialized* LIS (the canonical JSON
of :mod:`repro.core.serialize`), the operation name, and the
canonicalized option set.  Because the key is derived from content,
mutating a system (``set_queue``, ``insert_relay``) changes its
serialization and therefore never aliases a stale entry -- there is no
explicit invalidation protocol to get wrong.

Two layers:

* :class:`LruCache` -- in-memory, bounded, per-engine;
* :class:`DiskCache` -- optional pickle files under a cache directory,
  shared between runs and processes (written atomically via rename).

Disk entries are *checksummed*: each file carries a format magic and
the SHA-256 of its pickle payload, so a torn write, bit rot, or a
stray truncation is detected on read.  A corrupt file is never
silently re-read forever -- it is moved into a ``quarantine/`` subdir
(for post-mortems) and counted in ``corrupt_entries``, which flows
into ``stats.json`` and the ``repro stats`` report.

The disk layer uses :mod:`pickle`: treat a cache directory like any
other local build artifact and do not point the engine at an
untrusted one.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from fractions import Fraction
from pathlib import Path
from typing import Any, Iterator

try:  # advisory locking: POSIX only, degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = ["DiskCache", "LruCache", "canonical_options", "content_key"]

_KEY_VERSION = "repro-engine-v1"


def _json_default(value: Any) -> str:
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    return str(value)


def canonical_options(options: dict | None) -> str:
    """Deterministic JSON text for an option dict (Fractions included)."""
    return json.dumps(
        options or {},
        sort_keys=True,
        separators=(",", ":"),
        default=_json_default,
    )


def content_key(op: str, lis_json: str, options: dict | None) -> str:
    """The cache key: hash of (engine version, op, options, system)."""
    digest = hashlib.sha256()
    for part in (_KEY_VERSION, op, canonical_options(options), lis_json):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class LruCache:
    """A small LRU mapping key -> result, with hit/miss counts kept by
    the owning engine (this class only stores)."""

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = max(0, maxsize)
        self._data: OrderedDict[str, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str) -> Any:
        """The stored value, promoted to most-recent; KeyError on miss."""
        value = self._data[key]
        self._data.move_to_end(key)
        return value

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def put(self, key: str, value: Any) -> None:
        if self.maxsize == 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


class DiskCache:
    """Pickle-per-entry cache directory; file names carry the op name
    so ``python -m repro stats`` can break usage down per operation.

    Entries are framed as ``MAGIC + sha256-hex + "\\n" + payload``;
    :meth:`get` verifies the digest before unpickling and quarantines
    anything that fails (see :meth:`_quarantine`).  Files written by
    older versions (no magic) are still read as plain pickles.
    """

    STATS_FILE = "stats.json"
    QUARANTINE_DIR = "quarantine"
    LOCK_FILE = ".lock"
    MAGIC = b"%REPRO-CACHE-1%\n"

    def __init__(
        self,
        directory: str | os.PathLike,
        max_bytes: int | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Corrupt entries detected (and quarantined) by this instance.
        self.corrupt_entries = 0
        #: Optional size cap: after a put pushes the directory past
        #: this many bytes, the oldest entries are evicted (under the
        #: advisory lock) until the cache fits again.  ``None`` (the
        #: default) never evicts.
        self.max_bytes = max_bytes
        #: Entries this instance evicted to stay under ``max_bytes``.
        self.evicted_entries = 0
        # Approximate bytes written since the last full-size check, so
        # a busy writer doesn't stat the whole directory on every put.
        self._bytes_since_check = 0

    def _path(self, op: str, key: str) -> Path:
        return self.directory / f"{op}--{key}.pkl"

    @contextlib.contextmanager
    def _lock(self) -> Iterator[None]:
        """Advisory, cross-process exclusive lock on the cache dir.

        Serializes the read-modify-write of ``stats.json``, eviction
        scans, and quarantine moves across *processes* sharing one
        cache directory (many server shards, parallel pytest workers,
        concurrent CLI runs).  Entry reads/writes themselves don't need
        it: puts are atomic rename-into-place and content-addressed,
        so the worst cross-process race is both writers storing the
        same bytes.  On platforms without :mod:`fcntl` the lock
        degrades to a no-op (single-process use stays correct).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = self.directory / self.LOCK_FILE
        with lock_path.open("a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry out of the lookup path so it is never
        re-read (and re-failed) again, keeping the bytes for diagnosis.
        Taken under the advisory lock so two processes detecting the
        same corrupt file don't race the move (the loser would
        otherwise unlink a healthy rewrite that landed in between)."""
        self.corrupt_entries += 1
        target_dir = self.directory / self.QUARANTINE_DIR
        with self._lock():
            try:
                target_dir.mkdir(exist_ok=True)
                os.replace(path, target_dir / path.name)
            except OSError:
                # Already quarantined by a sibling process, cross-device
                # or permission trouble: fall back to removal; leaving
                # the corrupt file in place would mask every future
                # lookup of this key as a disk hit that always fails.
                try:
                    os.unlink(path)
                except OSError:
                    pass

    def get(self, op: str, key: str) -> Any:
        """Unpickled entry; KeyError when absent.  A present-but-corrupt
        file (bad frame, digest mismatch, truncated pickle) is counted
        in ``corrupt_entries``, moved to ``quarantine/``, and reported
        as a KeyError so the engine recomputes it."""
        path = self._path(op, key)
        try:
            with path.open("rb") as fh:
                blob = fh.read()
        except OSError:
            raise KeyError(key) from None
        payload = blob
        if blob.startswith(self.MAGIC):
            head = len(self.MAGIC)
            digest_end = head + 64
            stored = blob[head:digest_end]
            payload = blob[digest_end + 1 :]
            if (
                blob[digest_end : digest_end + 1] != b"\n"
                or hashlib.sha256(payload).hexdigest().encode() != stored
            ):
                self._quarantine(path)
                raise KeyError(key) from None
        try:
            return pickle.loads(payload)
        except Exception:
            # Unpicklable payload: checksum mismatch already quarantined
            # above; this path covers legacy (unframed) corruption and
            # payloads whose classes no longer import.
            self._quarantine(path)
            raise KeyError(key) from None

    def put(self, op: str, key: str, value: Any) -> None:
        path = self._path(op, key)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode()
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(self.MAGIC)
                fh.write(digest)
                fh.write(b"\n")
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._bytes_since_check += len(payload) + len(self.MAGIC) + 65
            if self._bytes_since_check >= max(self.max_bytes // 8, 1):
                self._bytes_since_check = 0
                self.evict()

    def evict(self) -> int:
        """Drop the oldest entries until the directory fits in
        ``max_bytes``; returns the number of entries removed.

        Runs under the advisory lock so concurrent writers sharing the
        cache directory never double-evict or race a put's rename: a
        file that vanishes mid-scan (evicted by a sibling, quarantined)
        is simply skipped.  No-op when ``max_bytes`` is ``None``.
        """
        if self.max_bytes is None:
            return 0
        removed = 0
        with self._lock():
            entries = []
            for path in self.directory.glob("*--*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
            total = sum(size for _, size, _ in entries)
            entries.sort()
            for _, size, path in entries:
                if total <= self.max_bytes:
                    break
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                removed += 1
        self.evicted_entries += removed
        return removed

    def quarantined(self) -> int:
        """Number of corrupt entries parked under ``quarantine/``."""
        target_dir = self.directory / self.QUARANTINE_DIR
        if not target_dir.is_dir():
            return 0
        return sum(1 for _ in target_dir.glob("*.pkl"))

    def entries(self) -> dict[str, int]:
        """Entry counts per op name."""
        counts: dict[str, int] = {}
        for path in self.directory.glob("*--*.pkl"):
            op = path.name.rsplit("--", 1)[0]
            counts[op] = counts.get(op, 0) + 1
        return counts

    def total_bytes(self) -> int:
        return sum(
            path.stat().st_size for path in self.directory.glob("*--*.pkl")
        )

    def read_stats(self) -> dict:
        """Cumulative engine counters persisted beside the entries."""
        path = self.directory / self.STATS_FILE
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}

    def merge_stats(self, update: dict) -> None:
        """Accumulate ``update`` (nested dicts of numbers) into
        ``stats.json`` so observability survives across runs.

        The read-modify-write runs under the advisory lock: without
        it, two processes flushing stats concurrently (server shards,
        parallel benchmark runs) would each read the same baseline and
        the slower writer would silently drop the faster one's counts.
        """

        def merge(into: dict, frm: dict) -> dict:
            for key, value in frm.items():
                if isinstance(value, dict):
                    into[key] = merge(dict(into.get(key) or {}), value)
                elif isinstance(value, (int, float)):
                    into[key] = into.get(key, 0) + value
                else:
                    into[key] = value
            return into

        with self._lock():
            merged = merge(self.read_stats(), update)
            path = self.directory / self.STATS_FILE
            text = json.dumps(merged, indent=2, sort_keys=True) + "\n"
            # Atomic (write-temp-then-rename): a crash mid-write must
            # not leave a truncated stats.json that read_stats then
            # discards.
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(text)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
