"""Engine-parallel exact queue sizing (the portfolio driver).

The exact solver's search tree partitions at the root: every optimal
solution puts at least one token on a covering channel of the
worst-deficit cycle, so "is budget K feasible?" decomposes into
independent sub-questions, one per root branch
(:meth:`~repro.core.solvers.TdKernel.root_branch_channels`).  Each
sub-question is a pure engine op (``td_probe``), so it caches by
content and fans out across worker processes like any other analysis.

:func:`solve_exact_portfolio` keeps easy instances cheap: it first runs
the compiled kernel's bisection in process under a node budget, and
only instances that blow past :data:`PORTFOLIO_NODE_LIMIT` nodes pay
the fan-out overhead -- each bisection budget then probes all root
branches in parallel and combines their answers.
"""

from __future__ import annotations

import time
from fractions import Fraction

from ..analysis import Context, get_context
from ..core.lis_graph import LisGraph
from ..core.solvers.exact import ExactTimeout
from ..core.solvers.kernel import KernelStats, NodeLimitReached
from .core import AnalysisEngine

__all__ = ["PORTFOLIO_NODE_LIMIT", "solve_exact_portfolio"]

#: In-process node budget before the search escalates to the engine.
PORTFOLIO_NODE_LIMIT = 20_000


def solve_exact_portfolio(
    lis: LisGraph | Context,
    *,
    engine: AnalysisEngine | None = None,
    target: Fraction | None = None,
    timeout: float | None = None,
    node_limit: int = PORTFOLIO_NODE_LIMIT,
    collapse: bool = True,
) -> tuple[dict[int, int], dict]:
    """Optimal queue sizing with engine-parallel root splitting.

    Args:
        lis: The system (or its :class:`~repro.analysis.Context`).
        engine: Engine to fan probes out through; a transient
            auto-sized one is created (and closed) when omitted.
        target: Throughput to restore; default = the ideal MST.
        timeout: Wall-clock budget in seconds, shared by the in-process
            attempt and every probe (:class:`ExactTimeout` on expiry).
        node_limit: In-process DFS nodes before escalating to the
            engine (``<= 0`` escalates immediately).
        collapse: Solve the rule-4 collapsed system (the Table IV
            setting) when the topology allows it -- like the facade's
            ``collapse="auto"``, systems with intra-SCC relay stations
            fall back to the full graph; the returned channel ids are
            mapped back.

    Returns:
        ``(extra_tokens, stats)`` -- the *complete* optimal assignment
        (forced weights merged, channel ids of the input system) and
        the uniform solver stats dict, with ``stats["portfolio"]``
        recording whether the engine fan-out was needed.
    """
    ctx = get_context(lis)
    work, channel_map = ctx, None
    if collapse and ctx.is_collapsible():
        work, channel_map = ctx.collapsed()
    kern = work.td_kernel(target)
    deadline = None if timeout is None else time.monotonic() + timeout
    stats = KernelStats()

    def finish(weights: dict[int, int], used_portfolio: bool):
        merged = dict(kern.forced)
        for cid, tokens in weights.items():
            if tokens:
                merged[cid] = merged.get(cid, 0) + tokens
        if channel_map is not None:
            merged = {
                channel_map[cid]: tokens for cid, tokens in merged.items()
            }
        out = stats.as_dict()
        out["backend"] = "kernel"
        out["portfolio"] = used_portfolio
        return merged, out

    if node_limit > 0:
        try:
            weights, _ = kern.solve_exact(
                deadline=deadline, node_limit=node_limit, stats=stats
            )
            return finish(weights, used_portfolio=False)
        except NodeLimitReached:
            pass

    roots = kern.root_branch_channels()
    if not roots:  # trivial residual problem (pragma: node_limit <= 0)
        return finish({}, used_portfolio=False)

    own_engine = engine is None
    eng = engine if engine is not None else AnalysisEngine(jobs="auto")
    try:

        def probe(budget: int) -> dict[int, int] | None:
            """Feasibility at ``budget`` via one root-split fan-out.

            ``work`` is already the (possibly collapsed) system the
            weights refer to, so the probes run with collapse off.
            """
            options: dict = {"budget": budget, "collapse": False}
            if target is not None:
                options["target"] = str(target)
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ExactTimeout
                options["timeout"] = remaining
            outcomes = eng.run(
                [
                    ("td_probe", work, {**options, "root_channel": c})
                    for c in roots
                ]
            )
            best_w = None
            for outcome in outcomes:
                probe_stats = outcome["stats"]
                stats.nodes_explored += probe_stats["nodes_explored"]
                stats.table_hits += probe_stats["table_hits"]
                stats.bound_cuts += probe_stats["bound_cuts"]
                if outcome["feasible"]:
                    weights = {
                        int(c): int(w)
                        for c, w in outcome["weights"].items()
                    }
                    if best_w is None or sum(weights.values()) < sum(
                        best_w.values()
                    ):
                        best_w = weights
            return best_w

        heuristic = kern.solve_heuristic()
        low = max(kern.root_lower_bound(), max(kern.deficits))
        high = sum(heuristic.values())
        if high <= low:  # heuristic meets the admissible bound: optimal
            return finish(heuristic, used_portfolio=False)
        best: dict[int, int] | None = None
        while low < high:
            mid = (low + high) // 2
            found = probe(mid)
            if found is not None:
                best = found
                high = sum(found.values())
            else:
                low = mid + 1
        if best is None or sum(best.values()) > low:
            best = probe(low)
            if best is None:  # pragma: no cover - upper bound is feasible
                raise RuntimeError(
                    "portfolio bisection converged on infeasible budget"
                )
        return finish(best, used_portfolio=True)
    finally:
        if own_engine:
            eng.close()
