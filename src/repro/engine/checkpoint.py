"""Checkpoint/resume protocol for long engine runs.

An hour-scale sweep (the Table V exhaustive insertion, the Fig. 16/17
queue sweeps) that dies at 90% used to restart from zero.  A
:class:`Checkpoint` is an append-only JSONL journal of completed
tasks, keyed by the same content hash the engine caches under
(:func:`repro.engine.cache.content_key`), so a resumed run serves
every journaled task without recomputing it and continues with the
rest -- producing output byte-for-byte identical to an uninterrupted
run.

Journal format (one JSON object per line)::

    {"v": "repro-checkpoint-v1", "key": "<sha256 content key>",
     "sha256": "<sha256 of the pickle payload>", "data": "<base64>"}

Each record is self-verifying: the payload digest is checked on load
and any line that fails to parse or verify -- typically the torn final
line of a killed run -- is skipped (counted in ``corrupt_lines``), so
a checkpoint file is usable after any crash.  Records are flushed and
fsynced as they are written.

Like the disk cache, the payload is :mod:`pickle`: treat checkpoint
files as local build artifacts and do not load untrusted ones.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Sequence

from ..analysis import Context
from ..core.serialize import lis_to_json
from .cache import content_key

__all__ = ["Checkpoint", "run_checkpointed", "task_key"]

_VERSION = "repro-checkpoint-v1"


def task_key(task: tuple) -> str:
    """The journal key of one ``(op, lis, options)`` engine task -- the
    same content hash the engine's caches use."""
    op, lis, options = (*task, None)[:3]
    if isinstance(lis, str):
        lis_json = lis
    elif isinstance(lis, Context):
        lis_json = lis.lis_json
    else:
        lis_json = lis_to_json(lis)
    return content_key(op, lis_json, options)


class Checkpoint:
    """Append-only journal of completed engine tasks (see module doc).

    Attributes:
        corrupt_lines: Journal lines skipped on load (unparseable or
            failing their digest) -- 0 or 1 after a typical kill.
        served: Tasks answered from the journal by
            :func:`run_checkpointed` against this instance.
        stored: Tasks appended by :func:`run_checkpointed`.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._payloads: dict[str, bytes] = {}
        self.corrupt_lines = 0
        self.served = 0
        self.stored = 0
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    key = entry["key"]
                    payload = base64.b64decode(
                        entry["data"], validate=True
                    )
                    if (
                        entry.get("v") != _VERSION
                        or not isinstance(key, str)
                        or hashlib.sha256(payload).hexdigest()
                        != entry["sha256"]
                    ):
                        raise ValueError("bad checkpoint record")
                except (
                    ValueError,
                    KeyError,
                    TypeError,
                    binascii.Error,
                    json.JSONDecodeError,
                ):
                    self.corrupt_lines += 1
                    continue
                self._payloads[key] = payload

    def __contains__(self, key: str) -> bool:
        return key in self._payloads

    def __len__(self) -> int:
        return len(self._payloads)

    def keys(self):
        return self._payloads.keys()

    def get(self, key: str):
        """The journaled result for ``key`` (KeyError when absent)."""
        return pickle.loads(self._payloads[key])

    def put(self, key: str, value) -> None:
        """Append one completed task; flushed + fsynced immediately so
        the record survives a SIGKILL right after it."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        record = {
            "v": _VERSION,
            "key": key,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "data": base64.b64encode(payload).decode("ascii"),
        }
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._payloads[key] = payload


def run_checkpointed(
    engine,
    tasks: Sequence[tuple],
    checkpoint: Checkpoint | str | os.PathLike,
    chunk: int = 16,
) -> list:
    """:meth:`AnalysisEngine.run` with a completion journal.

    Tasks already recorded in ``checkpoint`` are served from it
    (counted as ``checkpoint_hits`` in the engine stats); the rest run
    through the engine in task order, ``chunk`` at a time, each chunk
    journaled as it completes.  Results come back in task order, so an
    interrupted sweep re-run with the same checkpoint file yields
    exactly what the uninterrupted run would have.
    """
    ckpt = (
        checkpoint
        if isinstance(checkpoint, Checkpoint)
        else Checkpoint(checkpoint)
    )
    keys = [task_key(task) for task in tasks]
    results: list = [None] * len(tasks)
    missing: list[int] = []
    for i, key in enumerate(keys):
        if key in ckpt:
            results[i] = ckpt.get(key)
            ckpt.served += 1
            engine.stats.checkpoint_hits += 1
        else:
            missing.append(i)
    step = max(1, int(chunk))
    for start in range(0, len(missing), step):
        group = missing[start : start + step]
        values = engine.run([tasks[i] for i in group])
        for i, value in zip(group, values):
            if keys[i] not in ckpt:  # duplicates resolve to one record
                ckpt.put(keys[i], value)
                ckpt.stored += 1
            results[i] = value
    return results
