"""Batch and single-configuration fronts for the vectorized kernel.

:class:`BatchSimulator` evaluates B queue-sizing assignments of one
topology in a single run -- the compile cost is paid once and every
kernel step advances all configurations together.  :class:`FastSimulator`
is the B = 1 convenience with the same ``run(clocks) -> Trace`` surface
as the reference simulators (values reconstructed on demand by
:class:`~repro.sim.replay.TraceReplayer`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Mapping, Sequence

import numpy as np

from ..core.lis_graph import LisGraph
from ..lis.protocol import ShellBehavior, Trace
from .compile import CompiledSystem, compile_lis
from .kernel import step_batch
from .replay import TraceReplayer

__all__ = [
    "BatchRunResult",
    "BatchSimulator",
    "FastSimulator",
    "simulate_fast",
]


class BatchRunResult:
    """Outcome of one batched run: per-configuration firing counts over
    the measurement window, peak queue occupancies, and (when recorded)
    the full firing history."""

    def __init__(
        self,
        compiled: CompiledSystem,
        assignments: list[dict[int, int]],
        clocks: int,
        warmup: int,
        counts: np.ndarray,
        occupancy: np.ndarray,
        history: np.ndarray | None,
    ) -> None:
        self.compiled = compiled
        self.assignments = assignments
        self.clocks = clocks
        self.warmup = warmup
        self.counts = counts
        self.occupancy = occupancy
        self.history = history

    @property
    def width(self) -> int:
        """Number of configurations in the batch."""
        return len(self.assignments)

    def throughput(
        self, b: int = 0, node: Hashable | None = None
    ) -> Fraction | dict[Hashable, Fraction]:
        """Firing rate over the post-warmup window; a single node's, or
        ``{node: rate}`` for every transition when ``node`` is None."""
        window = self.clocks - self.warmup
        if node is not None:
            i = self.compiled.node_index[node]
            return Fraction(int(self.counts[b, i]), window)
        return {
            name: Fraction(int(self.counts[b, i]), window)
            for i, name in enumerate(self.compiled.node_names)
        }

    def max_queue_occupancy(self, b: int = 0) -> dict[int, int]:
        """Peak items on each channel's consumer-shell queue (matches
        ``TraceSimulator.max_queue_occupancy``)."""
        return {
            channel: int(self.occupancy[b, k])
            for k, channel in enumerate(self.compiled.occ_channels)
        }

    def fired(self, b: int = 0) -> dict[Hashable, list[bool]]:
        """Per-node firing flags (requires ``record=True``)."""
        if self.history is None:
            raise ValueError("run with record=True to keep firing history")
        return {
            name: [bool(x) for x in self.history[:, b, i]]
            for i, name in enumerate(self.compiled.node_names)
        }

    def to_trace(
        self,
        b: int = 0,
        behaviors: Mapping[Hashable, ShellBehavior] | None = None,
    ) -> Trace:
        """Replay configuration ``b``'s data values into a full
        :class:`Trace` (requires ``record=True``)."""
        if self.history is None:
            raise ValueError("run with record=True to keep firing history")
        return TraceReplayer(self.compiled, behaviors).extend(
            self.history[:, b, :]
        )


class BatchSimulator:
    """Evaluate many queue-sizing assignments of one topology at once.

    Args:
        lis: The system; compiled once, shared by the whole batch.  An
            :class:`repro.analysis.Context` reuses its cached compile.
        assignments: One ``{channel id: extra queue slots}`` mapping per
            configuration (``None`` or ``[{}]`` = the system as built).
    """

    def __init__(
        self,
        lis: LisGraph,
        assignments: Sequence[Mapping[int, int]] | None = None,
    ) -> None:
        self.lis = lis
        self.compiled = compile_lis(lis)
        self.assignments = [
            {int(c): int(x) for c, x in a.items()}
            for a in (assignments if assignments is not None else [{}])
        ]
        if not self.assignments:
            raise ValueError("empty assignment batch")

    @property
    def width(self) -> int:
        return len(self.assignments)

    def run(
        self,
        clocks: int,
        warmup: int = 0,
        record: bool = False,
        stall_mask: np.ndarray | None = None,
    ) -> BatchRunResult:
        """Advance every configuration ``clocks`` cycles; firing counts
        are accumulated after the first ``warmup`` cycles.

        ``stall_mask`` is an optional boolean fault schedule (True =
        clock-gate that node on that step).  Shape ``(clocks,
        n_nodes)`` applies one schedule to every configuration in the
        batch (:mod:`repro.faults`); shape ``(clocks, B, n_nodes)``
        gives every configuration its own schedule -- the form
        :mod:`repro.stochastic` uses to run Monte-Carlo trials as the
        batch axis.
        """
        if clocks <= 0:
            raise ValueError("clocks must be positive")
        if not 0 <= warmup < clocks:
            raise ValueError("warmup must satisfy 0 <= warmup < clocks")
        compiled = self.compiled
        if stall_mask is not None:
            stall_mask = np.asarray(stall_mask, dtype=bool)
            allowed = (
                (clocks, compiled.n_nodes),
                (clocks, len(self.assignments), compiled.n_nodes),
            )
            if stall_mask.shape not in allowed:
                raise ValueError(
                    "stall_mask must have shape (clocks, n_nodes) = "
                    f"{allowed[0]} or (clocks, B, n_nodes) = "
                    f"{allowed[1]}, got {stall_mask.shape}"
                )
        tokens = compiled.initial_tokens(self.assignments)
        counts = np.zeros(
            (len(self.assignments), compiled.n_nodes), dtype=tokens.dtype
        )
        occupancy = tokens[:, compiled.occ_cols].copy()
        history = (
            np.zeros(
                (clocks, len(self.assignments), compiled.n_nodes),
                dtype=bool,
            )
            if record
            else None
        )
        step_batch(
            compiled,
            tokens,
            clocks,
            counts=counts,
            count_from=warmup,
            occupancy=occupancy,
            history=history,
            stall_mask=stall_mask,
        )
        return BatchRunResult(
            compiled,
            self.assignments,
            clocks,
            warmup,
            counts,
            occupancy,
            history,
        )


class FastSimulator:
    """Single-configuration front with the reference simulators' API.

    ``run`` is incremental (repeated calls continue the same execution)
    and returns the cumulative data-carrying :class:`Trace`.
    """

    def __init__(
        self,
        lis: LisGraph,
        behaviors: Mapping[Hashable, ShellBehavior] | None = None,
        extra_tokens: dict[int, int] | None = None,
        faults=None,
    ) -> None:
        self.lis = lis
        self.compiled = compile_lis(lis)
        extra = {
            int(c): int(x) for c, x in (extra_tokens or {}).items()
        }
        self._tokens = self.compiled.initial_tokens([extra])
        self._occupancy = self._tokens[:, self.compiled.occ_cols].copy()
        self._replayer = TraceReplayer(self.compiled, behaviors)
        #: Optional fault gate ``(node, clock) -> bool`` with the same
        #: semantics as the reference simulators; materialized into a
        #: per-chunk stall mask at absolute clock offsets.
        self._faults = faults
        self.clocks = 0

    @property
    def trace(self) -> Trace:
        return self._replayer.trace

    def _stall_chunk(self, clocks: int) -> np.ndarray | None:
        if self._faults is None:
            return None
        gate = self._faults
        names = self.compiled.node_names
        start = self.clocks
        mask = np.zeros((clocks, self.compiled.n_nodes), dtype=bool)
        for t in range(clocks):
            clock = start + t
            for i, name in enumerate(names):
                if gate(name, clock):
                    mask[t, i] = True
        return mask

    def run(self, clocks: int) -> Trace:
        if clocks <= 0:
            raise ValueError("clocks must be positive")
        history = np.zeros(
            (clocks, 1, self.compiled.n_nodes), dtype=bool
        )
        step_batch(
            self.compiled,
            self._tokens,
            clocks,
            occupancy=self._occupancy,
            history=history,
            stall_mask=self._stall_chunk(clocks),
        )
        self._replayer.extend(history[:, 0, :])
        self.clocks += clocks
        return self.trace

    def throughput(self, shell: Hashable, skip: int = 0) -> Fraction:
        return self.trace.throughput(shell, skip=skip)

    def max_queue_occupancy(self) -> dict[int, int]:
        """Peak occupancy per channel's shell input queue (see
        ``TraceSimulator.max_queue_occupancy``)."""
        return {
            channel: int(self._occupancy[0, k])
            for k, channel in enumerate(self.compiled.occ_channels)
        }


def simulate_fast(
    lis: LisGraph,
    clocks: int,
    behaviors: Mapping[Hashable, ShellBehavior] | None = None,
    extra_tokens: dict[int, int] | None = None,
    faults=None,
) -> Trace:
    """Convenience wrapper: build a :class:`FastSimulator` and run it."""
    return FastSimulator(lis, behaviors, extra_tokens, faults=faults).run(
        clocks
    )
