"""Reconstruct data-carrying traces from a firing schedule.

The vectorized kernel tracks anonymous tokens only -- shell behaviours
are arbitrary Python callables and cannot be vectorized.  But given
the boolean firing history the kernel records, the data values are
fully determined: this module re-runs the *value* half of
:class:`~repro.lis.trace_sim.TraceSimulator` (FIFOs on forward places,
initial-latched outputs at firing 0, per-channel unwrap of mapping
results) against that schedule, producing a :class:`~repro.lis.
protocol.Trace` identical to the reference simulator's.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable, Mapping

from ..lis.protocol import TAU, ShellBehavior, Trace
from .compile import CompiledSystem

__all__ = ["TraceReplayer"]

_INIT = object()  # placeholder carried by initial tokens (never read)


class TraceReplayer:
    """Feed firing rows (one boolean per node, in compiled node order)
    and accumulate the resulting data-carrying :class:`Trace`."""

    def __init__(
        self,
        compiled: CompiledSystem,
        behaviors: Mapping[Hashable, ShellBehavior] | None = None,
    ) -> None:
        self.compiled = compiled
        self.behaviors = dict(behaviors or {})
        self.trace = Trace()
        self._firing_index = [0] * compiled.n_nodes
        # One FIFO per forward place, keyed by column; initial tokens
        # carry reset placeholders exactly like the trace simulator.
        self._fifo: dict[int, deque] = {}
        for pairs in compiled.in_fwd:
            for _channel, col in pairs:
                self._fifo[col] = deque(
                    [_INIT] * int(compiled.tokens0[col])
                )

    def behavior_of(self, node: Hashable) -> ShellBehavior:
        return self.behaviors.setdefault(node, ShellBehavior())

    def _fire_value(self, i: int, consumed: dict[Hashable, Any]) -> Any:
        if not self.compiled.is_shell[i]:
            (value,) = consumed.values()
            return value
        name = self.compiled.node_names[i]
        behavior = self.behavior_of(name)
        if self._firing_index[i] == 0:
            out = self.compiled.out_channels[i]
            if out:
                return {cid: behavior.initial_for(cid) for cid in out}
            return behavior.initial
        clean = {
            cid: val for cid, val in consumed.items() if val is not _INIT
        }
        return behavior.compute(clean)

    def _step(self, row) -> None:
        compiled = self.compiled
        fired = [i for i in range(compiled.n_nodes) if row[i]]
        consumed: dict[int, dict[Hashable, Any]] = {}
        for i in fired:
            consumed[i] = {
                channel: self._fifo[col].popleft()
                for channel, col in compiled.in_fwd[i]
            }
        emitted: dict[int, Any] = {}
        for i in fired:
            value = self._fire_value(i, consumed[i])
            emitted[i] = value
            for channel, col in compiled.out_fwd[i]:
                if isinstance(value, Mapping) and channel in value:
                    self._fifo[col].append(value[channel])
                else:
                    self._fifo[col].append(value)
            self._firing_index[i] += 1
        for i, name in enumerate(compiled.node_names):
            if i in emitted:
                value = emitted[i]
                if isinstance(value, Mapping):
                    display = value[min(value)] if value else TAU
                else:
                    display = value
                self.trace.record(name, display, True)
            else:
                self.trace.record(name, TAU, False)
        self.trace.clocks += 1

    def extend(self, rows) -> Trace:
        """Replay an iterable of firing rows (each indexable by node)."""
        for row in rows:
            self._step(row)
        return self.trace
