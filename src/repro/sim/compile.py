"""Compile a :class:`~repro.core.LisGraph` into flat kernel arrays.

The doubled marked graph is flattened once into column-parallel form:
every *place* becomes one column of a token matrix, sorted by consumer
transition so the kernel can evaluate AND-firing for all transitions
with a single grouped ``minimum.reduceat``.  The compiled object also
keeps the per-node forward-place wiring needed to replay data values
(:mod:`repro.sim.replay`) and the column of each channel's shell-side
("sizable") backedge, which is where queue-sizing assignments inject
their extra tokens -- the batch dimension of the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from ..core.lis_graph import LisError, LisGraph
from ..core.marked_graph import MarkedGraph

__all__ = ["CompiledSystem", "compile_lis"]


@dataclass(frozen=True)
class CompiledSystem:
    """A LIS lowered to flat arrays (one doubled-marked-graph place per
    column, sorted by consumer node index, then place key)."""

    #: Transition names in node-index order (shells, relays, stages).
    node_names: tuple[Hashable, ...]
    node_index: Mapping[Hashable, int]
    is_shell: tuple[bool, ...]
    #: Producer / consumer node index per place column, shape (P,).
    src: np.ndarray
    dst: np.ndarray
    #: Initial marking per place column, shape (P,).
    tokens0: np.ndarray
    #: Group offsets into the column axis for ``minimum.reduceat`` --
    #: one group per node that has at least one input place.
    group_starts: np.ndarray
    #: Node index of each reduceat group, shape (G,).
    group_nodes: np.ndarray
    #: Columns of shell-side forward places (the consumer queues whose
    #: peak occupancy :meth:`BatchRunResult.max_queue_occupancy` reports).
    occ_cols: np.ndarray
    #: Channel id per occupancy column.
    occ_channels: tuple[int, ...]
    #: Channel id -> column of its sizable backedge.
    sizable_col: Mapping[int, int]
    #: Per node: ((channel key, fwd place column), ...) of its input /
    #: output forward places -- the FIFO wiring the replayer walks.
    in_fwd: tuple[tuple[tuple[Hashable, int], ...], ...]
    out_fwd: tuple[tuple[tuple[Hashable, int], ...], ...]
    #: Per node: real output channel ids (shells only; () elsewhere).
    out_channels: tuple[tuple[int, ...], ...]

    @property
    def n_places(self) -> int:
        return int(self.src.shape[0])

    @property
    def n_nodes(self) -> int:
        return len(self.node_names)

    def initial_tokens(
        self, assignments: Sequence[Mapping[int, int]]
    ) -> np.ndarray:
        """The (B, P) initial marking for a batch of queue-sizing
        assignments (channel id -> extra tokens on its sizable
        backedge), validated like ``doubled_marked_graph``."""
        if not assignments:
            raise ValueError("empty assignment batch")
        tokens = np.tile(self.tokens0, (len(assignments), 1))
        for b, extra in enumerate(assignments):
            unknown = set(extra) - set(self.sizable_col)
            if unknown:
                raise LisError(
                    f"extra tokens on unknown channels: {sorted(unknown)}"
                )
            for cid, count in extra.items():
                if count < 0:
                    raise LisError(
                        f"negative extra tokens on channel {cid}"
                    )
                tokens[b, self.sizable_col[cid]] += count
        return tokens


def compile_lis(lis: LisGraph, mg: "MarkedGraph | None" = None) -> CompiledSystem:
    """Flatten ``lis.doubled_marked_graph()`` into a :class:`CompiledSystem`.

    ``lis`` may be a plain :class:`LisGraph` (lowered here) or an
    :class:`repro.analysis.Context` (the cached compiled form is
    returned directly).  A pre-lowered doubled marked graph may be
    passed as ``mg`` to skip the lowering; it is only read.
    """
    if mg is None and hasattr(lis, "compiled"):  # a repro.analysis.Context
        return lis.compiled()
    if mg is None:
        mg = lis.doubled_marked_graph()
    graph = mg.graph
    node_names = tuple(graph.nodes)
    node_index = {name: i for i, name in enumerate(node_names)}
    is_shell = tuple(
        graph.node_data(name).get("kind") not in ("relay", "stage")
        for name in node_names
    )

    places = sorted(
        mg.places, key=lambda p: (node_index[p.dst], p.key)
    )
    src = np.array(
        [node_index[p.src] for p in places], dtype=np.int64
    ).reshape(-1)
    dst = np.array(
        [node_index[p.dst] for p in places], dtype=np.int64
    ).reshape(-1)
    tokens0 = np.array(
        [p.data["tokens"] for p in places], dtype=np.int64
    ).reshape(-1)

    group_starts: list[int] = []
    group_nodes: list[int] = []
    for col, place in enumerate(places):
        node = node_index[place.dst]
        if not group_nodes or group_nodes[-1] != node:
            group_starts.append(col)
            group_nodes.append(node)

    occ_cols: list[int] = []
    occ_channels: list[int] = []
    sizable_col: dict[int, int] = {}
    in_fwd: list[list[tuple[Hashable, int]]] = [[] for _ in node_names]
    out_fwd: list[list[tuple[Hashable, int]]] = [[] for _ in node_names]
    for col, place in enumerate(places):
        data = place.data
        if data["kind"] == "fwd":
            in_fwd[node_index[place.dst]].append((data["channel"], col))
            out_fwd[node_index[place.src]].append((data["channel"], col))
            if not data.get("internal") and is_shell[node_index[place.dst]]:
                occ_cols.append(col)
                occ_channels.append(data["channel"])
        elif data.get("sizable"):
            sizable_col[data["channel"]] = col

    out_channels = tuple(
        tuple(sorted(e.key for e in lis.system.out_edges(name)))
        if is_shell[i] and name in lis.system
        else ()
        for i, name in enumerate(node_names)
    )

    return CompiledSystem(
        node_names=node_names,
        node_index=node_index,
        is_shell=is_shell,
        src=src,
        dst=dst,
        tokens0=tokens0,
        group_starts=np.array(group_starts, dtype=np.int64),
        group_nodes=np.array(group_nodes, dtype=np.int64),
        occ_cols=np.array(occ_cols, dtype=np.int64),
        occ_channels=tuple(occ_channels),
        sizable_col=sizable_col,
        in_fwd=tuple(tuple(pairs) for pairs in in_fwd),
        out_fwd=tuple(tuple(pairs) for pairs in out_fwd),
        out_channels=out_channels,
    )
