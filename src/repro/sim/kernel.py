"""The vectorized synchronous-step kernel.

One step of the doubled marked graph, for all B configurations at
once:

1. enabled: for every transition with input places, the minimum token
   count over its group of columns is >= 1 (``minimum.reduceat`` over
   the dst-sorted column axis).  Transitions without input places are
   always enabled.
2. fire: every enabled transition consumes one token from each input
   place and produces one on each output place, simultaneously --
   ``tokens += fired[:, src] - fired[:, dst]``.

This is exactly :meth:`repro.core.marked_graph.MarkedGraph.step`
evaluated batch-wise, which is why the kernel is cycle-exact against
the reference simulators.  Optional running outputs: firing counts
over a measurement window, the running max of the shell-queue columns
(peak occupancy), and the full boolean firing history (for replaying
data values).
"""

from __future__ import annotations

import numpy as np

from .compile import CompiledSystem

__all__ = ["step_batch"]


def step_batch(
    compiled: CompiledSystem,
    tokens: np.ndarray,
    clocks: int,
    *,
    counts: np.ndarray | None = None,
    count_from: int = 0,
    occupancy: np.ndarray | None = None,
    history: np.ndarray | None = None,
    history_offset: int = 0,
    stall_mask: np.ndarray | None = None,
    stall_offset: int = 0,
) -> None:
    """Advance ``tokens`` (shape (B, P), mutated in place) by ``clocks``
    synchronous steps.

    Args:
        counts: (B, N) firing-count accumulator, incremented for steps
            ``>= count_from`` (the post-warmup measurement window).
        occupancy: (B, K) running max over the ``occ_cols`` columns;
            callers seed it with the initial marking of those columns.
        history: (T, B, N) boolean firing record, written starting at
            ``history_offset``.
        stall_mask: (T, N) or (T, B, N) boolean fault schedule (see
            :mod:`repro.faults` / :mod:`repro.stochastic`): a True
            entry clock-gates that node on that step even when its
            marking enables it, read starting at ``stall_offset``.
            The (T, N) form applies one schedule to every
            configuration; the (T, B, N) form gives each configuration
            its own schedule (Monte-Carlo trials as the batch axis).
            Stalls are applied to a scratch copy of the enabled
            vector: the persistent ``fired`` array only recomputes
            grouped (input-bearing) rows each step, so writing stalls
            into it would wedge source nodes forever.
    """
    starts = compiled.group_starts
    group_nodes = compiled.group_nodes
    src = compiled.src
    dst = compiled.dst
    occ_cols = compiled.occ_cols
    batch = tokens.shape[0]
    fired = np.ones((batch, compiled.n_nodes), dtype=tokens.dtype)
    grouped = starts.size > 0
    scratch = np.empty_like(fired) if stall_mask is not None else None
    for t in range(clocks):
        if grouped:
            mins = np.minimum.reduceat(tokens, starts, axis=1)
            fired[:, group_nodes] = mins >= 1
        live = fired
        if scratch is not None:
            np.multiply(fired, ~stall_mask[stall_offset + t], out=scratch)
            live = scratch
        if history is not None:
            history[history_offset + t] = live != 0
        tokens += live[:, src]
        tokens -= live[:, dst]
        if occupancy is not None and occ_cols.size:
            np.maximum(occupancy, tokens[:, occ_cols], out=occupancy)
        if counts is not None and t >= count_from:
            counts += live
