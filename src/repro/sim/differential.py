"""Differential cross-validation of the simulation backends.

One system, three executions -- the vectorized kernel, the
marked-graph :class:`~repro.lis.trace_sim.TraceSimulator`, and the
structural :class:`~repro.lis.rtl_sim.RtlSimulator` -- compared for
*cycle-exact* agreement on

* firing patterns (every node, every clock),
* emitted data values (when behaviours are supplied),
* measured throughput at a probe shell (exact ``Fraction`` equality),
* peak queue occupancy per channel.

The analytic ``schedule`` oracle (:mod:`repro.schedule`) is pinned to
the same harness as a fourth voice: its closed-form firing plan,
finite-horizon firing counts, and (once the horizon covers
``transient + hyperperiod`` clocks) peak occupancies must equal the
simulated ones *exactly* -- the oracle predicts the simulators, it
does not approximate them.

This is the harness behind the ``tests/sim`` differential properties;
any discrepancy is reported with enough context to reproduce it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Hashable, Mapping

from ..core.lis_graph import LisGraph
from ..lis.rtl_sim import RtlSimulator
from ..lis.trace_sim import TraceSimulator
from .batch import FastSimulator

__all__ = ["DifferentialReport", "differential_check"]

BACKENDS = ("fast", "trace", "rtl")


@dataclass
class DifferentialReport:
    """Outcome of one multi-way comparison."""

    agreed: bool
    failures: list[str] = field(default_factory=list)
    probe: Hashable | None = None
    throughput: dict[str, Fraction] = field(default_factory=dict)
    occupancy: dict[str, dict[int, int]] = field(default_factory=dict)
    #: The analytic oracle, when ``check_schedule`` derived one.
    schedule: "object | None" = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.agreed


def _instantiate(behaviors):
    """Fresh behaviours per backend: stateful cores must not share
    state across the three executions."""
    if behaviors is None:
        return None
    if callable(behaviors):
        return behaviors()
    return dict(behaviors)


def differential_check(
    lis: LisGraph,
    clocks: int = 60,
    behaviors=None,
    extra_tokens: dict[int, int] | None = None,
    probe: Hashable | None = None,
    compare_values: bool = True,
    check_schedule: bool = True,
    check_netlist: bool = False,
) -> DifferentialReport:
    """Run all three backends on ``lis`` and compare cycle-exactly.

    Args:
        behaviors: ``None``, a ``{shell: ShellBehavior}`` mapping, or a
            zero-argument factory returning one (use a factory for
            stateful cores).  With ``None``, only firing patterns,
            throughput, and occupancy are compared -- the default
            pass-through behaviour builds exponentially deep tuples on
            cyclic systems, so value comparison needs scalar cores.
        probe: Shell whose measured rate is compared (default: the
            first shell).
        compare_values: Also require the emitted data values to match
            (forced off when ``behaviors`` is None).
        check_schedule: Also derive the analytic schedule oracle and
            require its per-node firing plan and finite-horizon counts
            to equal the trace execution clock-for-clock (and, when
            ``clocks`` covers the transient plus one hyperperiod, its
            peak occupancies to equal the simulated ones exactly).
        check_netlist: Also run the occupancy-count
            :class:`~repro.dsl.netlist.NetlistSimulator` -- the model
            of the exported SystemVerilog -- as a fourth simulator
            voice, compared on firing patterns, throughput, and peak
            occupancy (it carries no data values).
    """
    fast = FastSimulator(lis, _instantiate(behaviors), extra_tokens)
    trace_sim = TraceSimulator(lis, _instantiate(behaviors), extra_tokens)
    rtl_sim = RtlSimulator(lis, _instantiate(behaviors), extra_tokens)
    traces = {
        "fast": fast.run(clocks),
        "trace": trace_sim.run(clocks),
        "rtl": rtl_sim.run(clocks),
    }
    backends = list(BACKENDS)
    sims: dict[str, object] = {"fast": fast, "trace": trace_sim, "rtl": rtl_sim}
    if check_netlist:
        # Imported lazily: repro.dsl sits above repro.sim in the layer
        # stack, and the netlist voice is only needed when exporting RTL.
        from ..dsl.netlist import NetlistSimulator

        netlist_sim = NetlistSimulator.from_lis(lis, None, extra_tokens)
        traces["netlist"] = netlist_sim.run(clocks)
        sims["netlist"] = netlist_sim
        backends.append("netlist")
    failures: list[str] = []

    reference = traces["trace"]
    for backend in backends:
        if backend == "trace":
            continue
        if traces[backend].fired != reference.fired:
            failures.append(f"firing pattern: {backend} != trace")
    if compare_values and behaviors is not None:
        for backend in ("fast", "rtl"):
            if traces[backend].outputs != reference.outputs:
                failures.append(f"data values: {backend} != trace")

    if probe is None:
        probe = lis.shells()[0]
    throughput = {
        backend: traces[backend].throughput(probe)
        for backend in backends
    }
    if len(set(throughput.values())) > 1:
        failures.append(f"throughput at {probe!r}: {throughput}")

    occupancy = {
        backend: sims[backend].max_queue_occupancy()  # type: ignore[attr-defined]
        for backend in backends
    }
    for backend in backends:
        if backend == "trace":
            continue
        if occupancy[backend] != occupancy["trace"]:
            failures.append(
                f"max queue occupancy: {backend} != trace "
                f"({occupancy[backend]} vs {occupancy['trace']})"
            )

    oracle = None
    if check_schedule:
        from ..analysis import get_context

        oracle = get_context(lis).schedule_oracle(extra_tokens)
        for node in oracle.node_names:
            if oracle.firing_plan(node, clocks) != reference.fired[node]:
                failures.append(
                    f"firing plan: schedule oracle != trace at {node!r}"
                )
        predicted = Fraction(oracle.firings(probe, clocks), clocks)
        throughput["schedule"] = predicted
        if predicted != reference.throughput(probe):
            failures.append(
                f"finite-horizon throughput at {probe!r}: schedule "
                f"oracle predicts {predicted}, trace measured "
                f"{reference.throughput(probe)}"
            )
        if clocks >= oracle.transient + oracle.hyperperiod:
            occupancy["schedule"] = oracle.max_queue_occupancy()
            if occupancy["schedule"] != occupancy["trace"]:
                failures.append(
                    f"max queue occupancy: schedule oracle != trace "
                    f"({occupancy['schedule']} vs {occupancy['trace']})"
                )

    return DifferentialReport(
        agreed=not failures,
        failures=failures,
        probe=probe,
        throughput=throughput,
        occupancy=occupancy,
        schedule=oracle,
    )
