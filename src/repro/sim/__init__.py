"""Vectorized batch simulation of latency-insensitive systems.

The reference simulators (:mod:`repro.lis.trace_sim` and
:mod:`repro.lis.rtl_sim`) execute one system, one clock at a time, in
pure Python -- ideal as executable specifications, far too slow for
ROADMAP-scale sweeps.  This package compiles a :class:`~repro.core.
LisGraph` *once* into flat NumPy arrays (:mod:`repro.sim.compile`) and
then advances **B independent configurations x T cycles** with
vectorized AND-firing / backpressure updates (:mod:`repro.sim.kernel`).

The step semantics are exactly those of the doubled marked graph, so
the kernel is cycle-exact against both reference simulators: firing
patterns, measured throughput, and max queue occupancies all coincide,
and :mod:`repro.sim.differential` packages that comparison for the
test-suite and for ad-hoc validation.

Entry points:

* :class:`FastSimulator` -- drop-in single-configuration simulator with
  the same ``run(clocks) -> Trace`` surface as the reference pair
  (data values are reconstructed from the firing schedule by
  :mod:`repro.sim.replay`).
* :class:`BatchSimulator` -- evaluate many queue-sizing assignments of
  one topology in a single batch.
* ``simulate_batch`` engine op (registered in :mod:`repro.engine.ops`)
  -- fan batches across worker processes with caching.
"""

try:  # pragma: no cover - exercised only on minimal installs
    import numpy  # noqa: F401
except ImportError as exc:  # pragma: no cover
    raise ImportError(
        "repro.sim requires numpy; the rest of the library works "
        "without it (install the '[test]' extra or numpy itself)"
    ) from exc

from .batch import BatchRunResult, BatchSimulator, FastSimulator, simulate_fast
from .compile import CompiledSystem, compile_lis
from .differential import DifferentialReport, differential_check
from .replay import TraceReplayer

__all__ = [
    "BatchRunResult",
    "BatchSimulator",
    "CompiledSystem",
    "DifferentialReport",
    "FastSimulator",
    "TraceReplayer",
    "compile_lis",
    "differential_check",
    "simulate_fast",
]
