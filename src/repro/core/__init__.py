"""Core analysis and optimization layer: the paper's contribution.

Exposes marked graphs, the LIS system model, throughput (MST) analysis,
topology classification, the queue-sizing problem with its
token-deficit abstraction, heuristic/exact/fixed solvers, relay-station
insertion, and the NP-completeness construction.
"""

from .marked_graph import MarkedGraph, MarkingError, place_tokens
from .lis_graph import RELAY_CAPACITY, LisError, LisGraph, relay_name, stage_name
from .throughput import (
    ThroughputResult,
    actual_mst,
    bottleneck_channels,
    cycle_time,
    degradation_ratio,
    ideal_mst,
    ideal_mst_compact,
    mst,
    mst_per_scc,
)
from .topology import (
    RelayPlacement,
    TopologyClass,
    classify_topology,
    conservative_fixed_queue,
    fixed_q1_is_safe,
    has_reconvergent_paths,
    relay_placement,
)
from .cycles import (
    CollapseError,
    CycleRecord,
    collapse_sccs,
    cycle_records,
    deficient_cycles,
    is_collapsible,
)
from .token_deficit import (
    InfeasibleError,
    TokenDeficitInstance,
    build_td_instance,
)
from .relay_opt import (
    InsertionResult,
    apply_insertion,
    equalization_slacks,
    exhaustive_relay_search,
    relay_insertion_can_restore,
)
from .npcomplete import (
    PBLOCK_TABLE,
    QsReduction,
    classify_pblocks,
    cover_to_qs_solution,
    is_vertex_cover,
    minimum_vertex_cover,
    qs_solution_to_cover,
    reduce_vertex_cover_to_qs,
)
from .solvers import (
    ExactOutcome,
    ExactTimeout,
    MilpOutcome,
    QsSolution,
    fixed_qs_mst,
    fixed_qs_profile,
    lp_lower_bound,
    minimal_fixed_q,
    size_queues,
    solve_td_exact,
    solve_td_greedy,
    solve_td_heuristic,
    solve_td_milp,
)
from .serialize import lis_from_json, lis_to_json, load_lis, save_lis
from .slack import channel_slack, pipelining_slack
from .report import AnalysisReport, analyze
from .combined import CombinedSolution, combined_repair
from .scheduling import (
    Schedule,
    ScheduleError,
    periodic_schedule,
    schedule_lis,
    simulation_driven_sizing,
)

__all__ = [
    "InsertionResult",
    "apply_insertion",
    "equalization_slacks",
    "exhaustive_relay_search",
    "relay_insertion_can_restore",
    "PBLOCK_TABLE",
    "QsReduction",
    "classify_pblocks",
    "cover_to_qs_solution",
    "is_vertex_cover",
    "minimum_vertex_cover",
    "qs_solution_to_cover",
    "reduce_vertex_cover_to_qs",
    "RelayPlacement",
    "TopologyClass",
    "classify_topology",
    "conservative_fixed_queue",
    "fixed_q1_is_safe",
    "has_reconvergent_paths",
    "relay_placement",
    "CollapseError",
    "CycleRecord",
    "collapse_sccs",
    "cycle_records",
    "deficient_cycles",
    "is_collapsible",
    "InfeasibleError",
    "TokenDeficitInstance",
    "build_td_instance",
    "ExactOutcome",
    "ExactTimeout",
    "MilpOutcome",
    "QsSolution",
    "lp_lower_bound",
    "solve_td_milp",
    "lis_from_json",
    "lis_to_json",
    "load_lis",
    "save_lis",
    "channel_slack",
    "pipelining_slack",
    "AnalysisReport",
    "analyze",
    "CombinedSolution",
    "combined_repair",
    "Schedule",
    "ScheduleError",
    "periodic_schedule",
    "schedule_lis",
    "simulation_driven_sizing",
    "fixed_qs_mst",
    "fixed_qs_profile",
    "minimal_fixed_q",
    "size_queues",
    "solve_td_exact",
    "solve_td_heuristic",
    "solve_td_greedy",
    "MarkedGraph",
    "MarkingError",
    "place_tokens",
    "RELAY_CAPACITY",
    "LisError",
    "LisGraph",
    "relay_name",
    "stage_name",
    "ThroughputResult",
    "actual_mst",
    "bottleneck_channels",
    "cycle_time",
    "degradation_ratio",
    "ideal_mst",
    "ideal_mst_compact",
    "mst",
    "mst_per_scc",
]
