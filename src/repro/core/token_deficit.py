"""The token-deficit (TD) abstraction of queue sizing (Section VII-A).

An instance of TD is a family of sets ``S = (s_1, s_2, ...)``, one per
*sizable edge* (a shell-queue backedge, identified here by its channel
id), where ``s_i`` contains the deficient cycles that edge ``i`` lies
on; each cycle ``c`` carries a non-negative deficit ``d(c)``.  A
*solution* assigns a weight (extra queue tokens) to each edge so that
every cycle's covering edges sum to at least its deficit; its cost is
the total weight.  TD abstracts away the graph: only the incidence
structure between cycles and sizable edges matters.

This module builds TD instances from LISs, checks feasibility of
weight assignments, and applies the paper's simplification rules:

1. non-deficient cycles are never included (done during enumeration);
2. an edge whose cycle set is a subset of another edge's is dropped;
3. a cycle covered by exactly one edge forces a minimum weight on that
   edge and is then removed (re-evaluating the other cycles' residual
   deficits);
4. the SCC collapse lives in :mod:`repro.core.cycles`.

Rules 2 and 3 are iterated to a fixpoint; a TD instance records its
forced weights so that solvers only search the residual problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from .cycles import CycleRecord, deficient_cycles
from .lis_graph import LisGraph
from .throughput import ideal_mst

__all__ = [
    "TokenDeficitInstance",
    "InfeasibleError",
    "build_td_instance",
    "td_instance_from_records",
]


class InfeasibleError(Exception):
    """A deficient cycle has no sizable edge: no queue sizing can fix it."""


@dataclass
class TokenDeficitInstance:
    """A TD problem instance over channel ids.

    Attributes:
        deficits: Cycle index -> residual deficit (strictly positive).
        sets: Channel id -> set of cycle indices it covers (``s_i``).
        forced: Channel id -> weight already fixed by simplification;
            these tokens are part of every solution's cost.
        cycles: The original cycle records, for reporting (indices in
            ``deficits``/``sets`` refer to this list).
        target: The throughput the instance restores when solved.
    """

    deficits: dict[int, int]
    sets: dict[int, set[int]]
    forced: dict[int, int] = field(default_factory=dict)
    cycles: list[CycleRecord] = field(default_factory=list)
    target: Fraction = Fraction(1)
    #: Lazily built cycle -> covering channels reverse index, kept in
    #: sync by the simplification rules.  Mutating ``sets`` directly
    #: (rather than through ``simplify``) requires
    #: :meth:`invalidate_cover_index`.
    _cover_index: dict[int, set[int]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Memoized :func:`repro.core.solvers.kernel.compile_td` result so
    #: that the heuristic, exact, and MILP solvers compile one shared
    #: kernel per instance.  Cleared together with the cover index.
    _kernel: object = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def _cover_index_map(self) -> dict[int, set[int]]:
        """The reverse index, built on first use in one O(sum |s_i|)
        pass -- previously every ``covering_channels`` query re-scanned
        all sets, making rule 3 and the feasibility checks quadratic."""
        index = self._cover_index
        if index is None:
            index = {}
            for channel, covered in self.sets.items():
                for idx in covered:
                    index.setdefault(idx, set()).add(channel)
            self._cover_index = index
        return index

    def invalidate_cover_index(self) -> None:
        """Drop the cached reverse index and compiled kernel (call
        after mutating ``sets`` outside the simplification rules)."""
        self._cover_index = None
        self._kernel = None

    def covering_channels(self, cycle_idx: int) -> set[int]:
        """Channels whose weight counts toward ``cycle_idx``'s deficit."""
        return set(self._cover_index_map().get(cycle_idx, ()))

    def is_solution(self, weights: dict[int, int]) -> bool:
        """Check a weight assignment (over the residual problem)."""
        index = self._cover_index_map()
        for cycle_idx, deficit in self.deficits.items():
            covered = sum(
                weights.get(channel, 0)
                for channel in index.get(cycle_idx, ())
            )
            if covered < deficit:
                return False
        return True

    def solution_cost(self, weights: dict[int, int]) -> int:
        """Total tokens of ``weights`` plus the forced weights."""
        return sum(weights.values()) + sum(self.forced.values())

    def merge_forced(self, weights: dict[int, int]) -> dict[int, int]:
        """Combine residual-problem weights with the forced weights into
        a complete queue-sizing solution (channel id -> extra tokens)."""
        merged = dict(self.forced)
        for channel, weight in weights.items():
            if weight:
                merged[channel] = merged.get(channel, 0) + weight
        return merged

    @property
    def is_trivial(self) -> bool:
        """True when simplification solved everything already."""
        return not self.deficits

    # ------------------------------------------------------------------
    # Simplification (rules 2 and 3, to fixpoint)
    # ------------------------------------------------------------------
    def simplify(
        self, rules: tuple[str, ...] = ("subset", "singleton")
    ) -> "TokenDeficitInstance":
        """Apply the selected simplification rules in place, to fixpoint.

        ``rules`` may contain ``"subset"`` (rule 2: drop dominated
        edges) and/or ``"singleton"`` (rule 3: force singleton-covered
        cycles).  The ablation benchmarks use the selective forms; all
        production paths apply both.
        """
        unknown = set(rules) - {"subset", "singleton"}
        if unknown:
            raise ValueError(f"unknown simplification rules: {sorted(unknown)}")
        self._kernel = None
        changed = True
        while changed:
            changed = False
            if "subset" in rules:
                changed |= self._drop_subset_sets()
            if "singleton" in rules:
                changed |= self._force_singletons()
        return self

    def _drop_subset_sets(self) -> bool:
        """Rule 2: remove any set that is a subset of another set."""
        channels = sorted(self.sets)
        doomed: set[int] = set()
        for i, a in enumerate(channels):
            if a in doomed:
                continue
            for b in channels[i + 1:]:
                if b in doomed:
                    continue
                sa, sb = self.sets[a], self.sets[b]
                if sa <= sb:
                    doomed.add(a)
                    break
                if sb <= sa:
                    doomed.add(b)
        for channel in doomed:
            covered = self.sets.pop(channel)
            if self._cover_index is not None:
                for idx in covered:
                    chans = self._cover_index.get(idx)
                    if chans is not None:
                        chans.discard(channel)
        return bool(doomed)

    def _force_singletons(self) -> bool:
        """Rule 3: a cycle covered by one edge pins that edge's weight.

        The forced increment is immediately discounted from *every*
        cycle the edge covers (its tokens help all of them), and the
        edge stays in the instance -- a later singleton may force it
        further.
        """
        changed = False
        for idx in list(self.deficits):
            if idx not in self.deficits:
                continue  # discounted away by an earlier forcing
            channels = self.covering_channels(idx)
            if not channels:
                raise InfeasibleError(
                    f"cycle through {self.cycles[idx].node_path} has no "
                    "sizable backedge"
                )
            if len(channels) > 1:
                continue
            channel = channels.pop()
            increment = self.deficits[idx]
            self.forced[channel] = self.forced.get(channel, 0) + increment
            changed = True
            self._discount(channel, increment)
        return changed

    def _discount(self, channel: int, amount: int) -> None:
        """Reduce the residual deficit of every cycle covered by
        ``channel`` by ``amount``, dropping fully covered cycles.

        Fully covered cycles are removed from exactly their covering
        sets (via the reverse index) rather than by scanning every set.
        """
        index = self._cover_index_map()
        for idx in list(self.sets.get(channel, ())):
            if idx not in self.deficits:
                continue
            residual = self.deficits[idx] - amount
            if residual <= 0:
                del self.deficits[idx]
                for ch in index.pop(idx, ()):
                    cov = self.sets.get(ch)
                    if cov is not None:
                        cov.discard(idx)
            else:
                self.deficits[idx] = residual
        # Drop channels whose coverage became empty (no live cycle
        # references them, so the index needs no update).
        for ch in [c for c, cov in self.sets.items() if not cov]:
            del self.sets[ch]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TokenDeficitInstance(cycles={len(self.deficits)}, "
            f"sets={len(self.sets)}, forced={self.forced})"
        )


def td_instance_from_records(
    records: list[CycleRecord],
    target: Fraction,
    simplify: bool = True,
) -> TokenDeficitInstance:
    """Assemble a (fresh, mutable) TD instance from deficient-cycle
    records -- the shared back half of :func:`build_td_instance`, also
    used by :meth:`repro.analysis.Context.td_instance` so one cycle
    enumeration can feed many instances."""
    deficits: dict[int, int] = {}
    sets: dict[int, set[int]] = {}
    for idx, record in enumerate(records):
        deficits[idx] = record.deficit(target)
        for channel in record.channels:
            sets.setdefault(channel, set()).add(idx)

    instance = TokenDeficitInstance(
        deficits=deficits, sets=sets, cycles=list(records), target=target
    )
    if simplify:
        instance.simplify()
    elif any(not record.channels for record in records):
        raise InfeasibleError("deficient cycle without sizable backedges")
    return instance


def build_td_instance(
    lis: LisGraph,
    target: Fraction | None = None,
    extra_tokens: dict[int, int] | None = None,
    max_cycles: int | None = None,
    simplify: bool = True,
) -> TokenDeficitInstance:
    """Build a TD instance for ``lis`` (a LisGraph or an
    :class:`~repro.analysis.Context`).

    Args:
        lis: The system to size (baseline queues as configured).
        target: Throughput to restore; defaults to the ideal MST.
        extra_tokens: Already-committed extra queue tokens (the
            instance then covers only the *residual* degradation).
        max_cycles: Optional cycle-enumeration budget.
        simplify: Apply rules 2-3 before returning.

    Raises:
        InfeasibleError: If a deficient cycle crosses no sizable
            backedge (cannot happen for doubled graphs built by
            :meth:`LisGraph.doubled_marked_graph`, whose every
            MST-reducing cycle includes at least one shell backedge or
            is an all-forward cycle already counted in the ideal MST).
    """
    if hasattr(lis, "td_instance"):  # a repro.analysis.Context
        return lis.td_instance(
            target=target,
            extra_tokens=extra_tokens,
            max_cycles=max_cycles,
            simplify=simplify,
        )
    goal = target if target is not None else ideal_mst(lis).mst
    doubled = lis.doubled_marked_graph(extra_tokens)
    records = deficient_cycles(doubled, goal, max_cycles=max_cycles)
    return td_instance_from_records(records, goal, simplify=simplify)
