"""Timed marked graphs with step semantics (paper, Section III).

A marked graph ("decision-free Petri net") is the performance model of
a latency-insensitive system: transitions are shells / relay stations,
and every place has exactly one producer and one consumer transition.
That restriction lets us store a marked graph as a directed multigraph
whose *nodes are transitions* and whose *edges are places* -- exactly
the convention the paper adopts ("when we talk about an edge ... we
mean the two arcs and the (one) place between two transitions").

The class implements:

* construction with per-place initial markings;
* the synchronous **step semantics** of Section III-B, where every
  enabled transition fires concurrently in each step, so that steps
  can be indexed by clock periods;
* the classical marked-graph invariants used by the test-suite: the
  token count of every cycle is preserved by firing, and a marked
  graph is live iff every cycle carries at least one token.

All delays are one clock period (``d(t) = 1`` for every transition),
per the paper's synchronous model.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Iterable

from ..graphs import Digraph, Edge
from ..graphs.mcm import karp_minimum_cycle_mean

__all__ = ["MarkedGraph", "MarkingError", "place_tokens"]


class MarkingError(Exception):
    """Raised on invalid markings or firings."""


def place_tokens(place: Edge) -> int:
    """The token count stored on a place (an edge of the graph)."""
    return place.data["tokens"]


class MarkedGraph:
    """A timed marked graph with unit transition delays.

    Transitions are nodes of an internal :class:`Digraph`; places are
    edges carrying a ``tokens`` attribute.  Place keys are the edge
    keys, stable across copies.
    """

    def __init__(self) -> None:
        self.graph = Digraph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_transition(self, name: Hashable, **attrs) -> Hashable:
        """Add a transition (idempotent)."""
        return self.graph.add_node(name, **attrs)

    def add_place(
        self, src: Hashable, dst: Hashable, tokens: int = 0, **attrs
    ) -> int:
        """Add a place from ``src`` to ``dst`` holding ``tokens``.

        Returns the place key.  Parallel places are permitted.
        """
        if tokens < 0:
            raise MarkingError(f"negative initial tokens: {tokens}")
        return self.graph.add_edge(src, dst, tokens=tokens, **attrs)

    def copy(self) -> "MarkedGraph":
        clone = MarkedGraph()
        clone.graph = self.graph.copy()
        return clone

    # ------------------------------------------------------------------
    # Marking access
    # ------------------------------------------------------------------
    @property
    def transitions(self) -> list[Hashable]:
        return list(self.graph.nodes)

    @property
    def places(self) -> list[Edge]:
        return list(self.graph.edges)

    def tokens(self, place_key: int) -> int:
        return self.graph.edge(place_key).data["tokens"]

    def set_tokens(self, place_key: int, tokens: int) -> None:
        if tokens < 0:
            raise MarkingError(f"negative tokens: {tokens}")
        self.graph.edge(place_key).data["tokens"] = tokens

    def add_tokens(self, place_key: int, delta: int) -> None:
        self.set_tokens(place_key, self.tokens(place_key) + delta)

    def marking(self) -> dict[int, int]:
        """The current marking as ``{place_key: tokens}``."""
        return {p.key: p.data["tokens"] for p in self.places}

    def set_marking(self, marking: dict[int, int]) -> None:
        for key, tokens in marking.items():
            self.set_tokens(key, tokens)

    def total_tokens(self) -> int:
        return sum(p.data["tokens"] for p in self.places)

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def is_enabled(self, transition: Hashable) -> bool:
        """A transition is enabled when every input place has a token."""
        return all(
            p.data["tokens"] >= 1 for p in self.graph.in_edges(transition)
        )

    def enabled_transitions(self) -> list[Hashable]:
        return [t for t in self.graph.nodes if self.is_enabled(t)]

    def fire(self, transition: Hashable) -> None:
        """Fire a single transition (interleaving semantics)."""
        if not self.is_enabled(transition):
            raise MarkingError(f"transition {transition!r} not enabled")
        for p in self.graph.in_edges(transition):
            p.data["tokens"] -= 1
        for p in self.graph.out_edges(transition):
            p.data["tokens"] += 1

    def step(self) -> set[Hashable]:
        """One synchronous step: fire *all* enabled transitions at once.

        Enabledness is evaluated against the marking at the start of the
        step, matching the paper's step semantics where a reaction is a
        single clock period.  Returns the set of transitions that fired.
        """
        fired = set(self.enabled_transitions())
        for t in fired:
            for p in self.graph.in_edges(t):
                p.data["tokens"] -= 1
        for t in fired:
            for p in self.graph.out_edges(t):
                p.data["tokens"] += 1
        return fired

    def run(self, steps: int) -> list[set[Hashable]]:
        """Run ``steps`` synchronous steps; returns the firing sets."""
        return [self.step() for _ in range(steps)]

    # ------------------------------------------------------------------
    # Classical properties
    # ------------------------------------------------------------------
    def is_live(self) -> bool:
        """Liveness: every directed cycle carries at least one token.

        (Commoner et al., 1971.)  Computed via the minimum cycle mean:
        the marked graph is live iff it is acyclic or the minimum
        token/place ratio over cycles is strictly positive.
        """
        mcm = karp_minimum_cycle_mean(self.graph, place_tokens)
        return mcm is None or mcm > 0

    def is_deadlocked(self) -> bool:
        """True when no transition is enabled."""
        return not self.enabled_transitions()

    def cycle_token_count(self, place_keys: Iterable[int]) -> int:
        """Token count along a cycle given by its place keys.

        This quantity is invariant under any firing sequence -- the
        fundamental marked-graph invariant the test-suite checks.
        """
        return sum(self.tokens(k) for k in place_keys)

    def cycle_mean(self, place_keys: Iterable[int]) -> Fraction:
        """Tokens / places along the given cycle (unit delays)."""
        keys = list(place_keys)
        if not keys:
            raise MarkingError("empty cycle")
        return Fraction(self.cycle_token_count(keys), len(keys))

    # ------------------------------------------------------------------
    # Long-run measurement
    # ------------------------------------------------------------------
    def measure_firing_rate(
        self, transition: Hashable, steps: int, warmup: int = 0
    ) -> Fraction:
        """Empirical firing rate of ``transition`` over a run.

        Runs ``warmup`` throwaway steps, then ``steps`` measured steps,
        mutating the marking.  For a strongly connected live marked
        graph this converges to the reciprocal of the cycle time, i.e.
        to the maximal sustainable throughput.
        """
        if steps <= 0:
            raise MarkingError("steps must be positive")
        self.run(warmup)
        count = sum(1 for fired in self.run(steps) if transition in fired)
        return Fraction(count, steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MarkedGraph(transitions={self.graph.number_of_nodes()}, "
            f"places={self.graph.number_of_edges()}, "
            f"tokens={self.total_tokens()})"
        )
