"""The one-stop analysis report for a LIS.

Bundles everything a designer asks about a system into one structured
object with a text rendering: topology class, ideal vs practical MST,
the limiting critical cycle, per-channel bottleneck/slack status, and
the recommended queue-sizing fix.  The CLI's ``analyze --full`` uses
it; library users get the structured fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .lis_graph import LisGraph
from .slack import pipelining_slack
from .solvers import QsSolution, size_queues
from .throughput import bottleneck_channels
from .topology import (
    RelayPlacement,
    TopologyClass,
    classify_topology,
    relay_placement,
)

__all__ = ["AnalysisReport", "analyze"]


@dataclass(frozen=True)
class AnalysisReport:
    """Structured full analysis of a LIS."""

    shells: int
    channels: int
    relay_stations: int
    topology: TopologyClass
    placement: RelayPlacement
    ideal: Fraction
    practical: Fraction
    critical_path: tuple | None
    bottlenecks: frozenset[int]
    slack: dict[int, int | None]
    fix: QsSolution | None

    @property
    def degraded(self) -> bool:
        return self.practical < self.ideal

    def render(self, lis: LisGraph) -> str:
        """Human-readable multi-section report."""
        lines = [
            "System",
            f"  shells / channels / relay stations: "
            f"{self.shells} / {self.channels} / {self.relay_stations}",
            f"  topology: {self.topology.value}"
            f" (relays {self.placement.value})",
            "",
            "Throughput",
            f"  ideal MST:     {self.ideal} ({float(self.ideal):.4f})",
            f"  practical MST: {self.practical}"
            f" ({float(self.practical):.4f})",
        ]
        if self.critical_path:
            lines.append(
                "  critical cycle: "
                + " -> ".join(str(n) for n in self.critical_path)
            )
        lines.append("")
        lines.append("Channels")
        for channel in lis.channels():
            cid = channel.key
            flags = []
            if cid in self.bottlenecks:
                flags.append("BOTTLENECK")
            slack = self.slack.get(cid)
            slack_text = "inf" if slack is None else str(slack)
            lines.append(
                f"  {cid:>3} {channel.src} -> {channel.dst}"
                f"  q={channel.data['queue']}"
                f" rs={channel.data['relays']}"
                f" slack={slack_text}"
                + ("  [" + ",".join(flags) + "]" if flags else "")
            )
        if self.fix is not None and self.fix.cost:
            lines.append("")
            lines.append(
                f"Recommended queue sizing ({self.fix.method}, "
                f"{self.fix.cost} tokens -> MST {self.fix.achieved})"
            )
            for cid, tokens in sorted(self.fix.extra_tokens.items()):
                channel = lis.channel(cid)
                lines.append(
                    f"  channel {cid} ({channel.src} -> {channel.dst}): "
                    f"+{tokens}"
                )
        return "\n".join(lines)


def analyze(
    lis: LisGraph,
    method: str = "heuristic",
    max_cycles: int | None = None,
) -> AnalysisReport:
    """Run the full analysis pipeline on ``lis`` (not mutated).

    Accepts a :class:`LisGraph` or an :class:`repro.analysis.Context`;
    a plain graph is wrapped in a shared context so the report's MSTs,
    bottlenecks, slack and sizing fix all work off one pair of
    lowerings and one cycle enumeration.
    """
    from ..analysis import get_context

    ctx = get_context(lis)
    ideal = ctx.ideal_mst()
    practical = ctx.actual_mst()
    fix = None
    if practical.mst < ideal.mst:
        fix = size_queues(ctx, method=method, max_cycles=max_cycles)
    critical_path = None
    if practical.critical is not None:
        critical_path = tuple(p.src for p in practical.critical)
    return AnalysisReport(
        shells=ctx.system.number_of_nodes(),
        channels=len(ctx.channels()),
        relay_stations=ctx.total_relays(),
        topology=classify_topology(ctx.lis),
        placement=relay_placement(ctx.lis),
        ideal=ideal.mst,
        practical=practical.mst,
        critical_path=critical_path,
        bottlenecks=frozenset(bottleneck_channels(ctx)),
        slack=pipelining_slack(ctx, max_cycles=max_cycles),
        fix=fix,
    )
