"""Relay-station insertion as a throughput optimization (Section VI).

Inserting *extra* relay stations -- beyond those required to meet
timing -- can equalize the latencies of reconvergent paths so that a
shell's inputs arrive in the same clock period, removing the stalls
that backpressure would otherwise cause (Casu--Macchiarulo).  In the
paper's Fig. 2, one relay station on the short channel restores the
MST to 1 without touching any queue.

The catch (and the paper's Section VI contribution) is that extra
relay stations live on *forward* edges: placed on a channel that
belongs to a small forward cycle, they lower the *ideal* MST itself.
Fig. 15 exhibits a LIS where every useful insertion point sits on such
a cycle, so no insertion strategy can recover the ideal throughput --
queue sizing is strictly more powerful there.  Finding an optimal
insertion is NP-complete like QS (proof in the authors' technical
report), so this module provides:

* :func:`equalization_slacks` -- the linear-time path-balancing
  heuristic for DAG topologies (longest-path slack per channel);
* :func:`exhaustive_relay_search` -- bounded exhaustive search over
  insertion assignments, used both as a small-instance optimizer and
  to *certify* counterexamples where insertion cannot help;
* :func:`relay_insertion_can_restore` -- the certification predicate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable

from ..graphs import is_acyclic, topological_sort
from .lis_graph import LisGraph
from .throughput import actual_mst, ideal_mst

__all__ = [
    "InsertionResult",
    "equalization_slacks",
    "apply_insertion",
    "exhaustive_relay_search",
    "relay_insertion_can_restore",
]


@dataclass(frozen=True)
class InsertionResult:
    """Outcome of a relay-insertion search.

    Attributes:
        added: Channel id -> number of extra relay stations.
        ideal: Ideal MST of the modified system.
        actual: Practical (doubled-graph) MST of the modified system.
        evaluated: How many assignments the search scored.
    """

    added: dict[int, int]
    ideal: Fraction
    actual: Fraction
    evaluated: int

    @property
    def total_added(self) -> int:
        return sum(self.added.values())


def apply_insertion(lis: LisGraph, added: dict[int, int]) -> LisGraph:
    """A copy of ``lis`` with ``added[cid]`` extra relays per channel."""
    out = lis.copy()
    for cid, count in added.items():
        out.insert_relay(cid, count)
    return out


def equalization_slacks(lis: LisGraph) -> dict[int, int]:
    """Casu--Macchiarulo path equalization for acyclic systems.

    Computes, per channel, how many relay stations to add so that every
    path from the sources to any shell has the same latency: with
    ``depth(v)`` the longest latency from any source to ``v`` (counting
    one cycle per shell hop plus one per relay station), the slack of a
    channel ``(u, v)`` is ``depth(v) - depth(u) - 1 - relays``.

    Raises ``ValueError`` for cyclic systems, where equalization is not
    well-defined (and where added relays would lower the ideal MST).
    """
    if not is_acyclic(lis.system):
        raise ValueError("path equalization requires an acyclic system")
    depth: dict[Hashable, int] = {node: 0 for node in lis.system.nodes}
    for node in topological_sort(lis.system):
        for channel in lis.system.out_edges(node):
            latency = depth[node] + 1 + channel.data["relays"]
            if latency > depth[channel.dst]:
                depth[channel.dst] = latency
    slacks: dict[int, int] = {}
    for channel in lis.channels():
        slack = (
            depth[channel.dst]
            - depth[channel.src]
            - 1
            - channel.data["relays"]
        )
        if slack > 0:
            slacks[channel.key] = slack
    return slacks


def exhaustive_relay_search(
    lis: LisGraph,
    max_added: int,
    target: Fraction | None = None,
    preserve_ideal: bool = True,
) -> InsertionResult:
    """Best assignment of at most ``max_added`` extra relay stations.

    Scores every multiset of channels of size 0..``max_added`` (so the
    cost is O(channels^max_added); intended for small systems and for
    certifying counterexamples).  Among assignments, prefers the
    highest practical MST, breaking ties toward fewer relays.

    Args:
        preserve_ideal: When True, assignments that lower the system's
            ideal MST below ``target`` are discarded -- inserting those
            relays would trade one degradation for another.
        target: Defaults to the unmodified system's ideal MST.
    """
    goal = target if target is not None else ideal_mst(lis).mst
    channel_ids = lis.channel_ids()
    best_added: dict[int, int] = {}
    best_ideal = ideal_mst(lis).mst
    best_actual = actual_mst(lis).mst
    evaluated = 1
    for count in range(1, max_added + 1):
        for combo in itertools.combinations_with_replacement(
            channel_ids, count
        ):
            added: dict[int, int] = {}
            for cid in combo:
                added[cid] = added.get(cid, 0) + 1
            trial = apply_insertion(lis, added)
            trial_ideal = ideal_mst(trial).mst
            evaluated += 1
            if preserve_ideal and trial_ideal < goal:
                continue
            trial_actual = actual_mst(trial).mst
            if trial_actual > best_actual:
                best_added = added
                best_ideal = trial_ideal
                best_actual = trial_actual
    return InsertionResult(
        added=best_added,
        ideal=best_ideal,
        actual=best_actual,
        evaluated=evaluated,
    )


def relay_insertion_can_restore(
    lis: LisGraph, max_added: int
) -> tuple[bool, InsertionResult]:
    """Can <= ``max_added`` extra relay stations recover the ideal MST?

    Returns ``(certified, result)``: ``certified`` is True when some
    assignment achieves a practical MST equal to the original ideal
    MST.  With ``certified == False`` the pair is a *counterexample
    certificate* for the bounded budget (the paper's Fig. 15 yields
    False for every budget, because any insertion on the two useful
    channels lowers the ideal MST to 3/4).
    """
    goal = ideal_mst(lis).mst
    result = exhaustive_relay_search(lis, max_added, target=goal)
    return result.actual >= goal, result
