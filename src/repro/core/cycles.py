"""Deficient-cycle analysis of doubled marked graphs (Section VII-A).

The queue-sizing machinery works cycle-by-cycle: a cycle of the
doubled graph is *deficient* (w.r.t. a target throughput, normally the
ideal MST) when its token/place ratio falls below the target; its
*deficit* is the number of extra tokens needed to lift it to the
target.  Extra tokens can only be added on *sizable* backedges (the
shell-side queue backedges -- relay-station capacity is fixed by the
hardware), so each cycle record carries the set of channels whose
queue could absorb its deficit.

The module also implements the paper's most powerful simplification
(rule 4 of Section VII-A): when the LIS is a DAG of SCCs and relay
stations sit only on inter-SCC channels, each SCC collapses to a
single vertex.  With baseline queues of one, every intra-SCC path of
the doubled graph has a token/place ratio of exactly one, so removing
it from a cycle changes neither the deficit nor the coverable
channels; the collapsed problem is *equivalent*, with exponentially
fewer cycles to enumerate.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from ..graphs import Edge, elementary_edge_cycles, scc_of
from ..graphs.cycles import CycleExplosionError
from .lis_graph import LisGraph
from .marked_graph import MarkedGraph
from .topology import RelayPlacement, relay_placement

__all__ = [
    "CycleRecord",
    "cycle_records",
    "deficient_cycles",
    "CollapseError",
    "is_collapsible",
    "collapse_sccs",
    "CycleExplosionError",
]


@dataclass(frozen=True)
class CycleRecord:
    """One elementary cycle of a doubled marked graph.

    Attributes:
        places: Place keys along the cycle, in traversal order.
        tokens: Total tokens on the cycle in the initial marking.
        channels: Channels whose *sizable* backedge lies on this cycle
            (extra queue tokens on any of them raise this cycle's mean).
        node_path: The transitions visited, for reporting.
    """

    places: tuple[int, ...]
    tokens: int
    channels: frozenset[int]
    node_path: tuple

    @property
    def length(self) -> int:
        return len(self.places)

    @property
    def mean(self) -> Fraction:
        return Fraction(self.tokens, self.length)

    def deficit(self, target: Fraction) -> int:
        """Minimum extra tokens to reach ``(tokens + x) / length >= target``."""
        need = target * self.length - self.tokens
        if need <= 0:
            return 0
        return -((-need.numerator) // need.denominator)  # ceil for Fraction


def _record_from_edges(cycle: list[Edge]) -> CycleRecord:
    tokens = sum(e.data["tokens"] for e in cycle)
    channels = frozenset(
        e.data["channel"]
        for e in cycle
        if e.data.get("kind") == "back" and e.data.get("sizable")
    )
    return CycleRecord(
        places=tuple(e.key for e in cycle),
        tokens=tokens,
        channels=channels,
        node_path=tuple(e.src for e in cycle),
    )


def cycle_records(
    mg: MarkedGraph, max_cycles: int | None = None
) -> list[CycleRecord]:
    """All elementary cycles of ``mg`` as :class:`CycleRecord` objects."""
    return [
        _record_from_edges(cycle)
        for cycle in elementary_edge_cycles(mg.graph, max_cycles=max_cycles)
    ]


def deficient_cycles(
    mg: MarkedGraph,
    target: Fraction,
    max_cycles: int | None = None,
) -> list[CycleRecord]:
    """Cycles of ``mg`` whose mean is strictly below ``target``.

    This applies the paper's first simplification: cycles already at or
    above the target (in particular all-forward cycles without relay
    stations and pure edge/backedge pairs) are discarded immediately.
    """
    return [
        record
        for record in cycle_records(mg, max_cycles=max_cycles)
        if record.mean < target
    ]


class CollapseError(Exception):
    """Raised when the SCC-collapse simplification does not apply."""


def is_collapsible(lis: LisGraph) -> bool:
    """True when rule 4 applies: relay stations only between SCCs.

    The simplification is exact when all baseline queues are one (the
    usual starting point of queue sizing); with larger baseline queues
    it remains sound but may over-estimate deficits.
    """
    return relay_placement(lis) in (
        RelayPlacement.NONE,
        RelayPlacement.INTER_SCC,
    )


def collapse_sccs(lis: LisGraph) -> tuple[LisGraph, dict[int, int]]:
    """Collapse each SCC of ``lis`` to a single shell.

    Returns ``(collapsed, channel_map)`` where ``channel_map`` sends
    each channel id of the collapsed LIS to the originating channel id
    of ``lis``.  Only inter-SCC channels survive; a queue-sizing
    solution found on the collapsed system maps back through
    ``channel_map`` and is a valid (and, for q = 1 baselines, optimal)
    solution of the original.

    Raises :class:`CollapseError` if relay stations exist inside SCCs.
    """
    if not is_collapsible(lis):
        raise CollapseError(
            "SCC collapse requires relay stations only on inter-SCC channels"
        )
    mapping = scc_of(lis.system)
    collapsed = LisGraph(default_queue=lis.default_queue)
    for node in lis.system.nodes:
        collapsed.add_shell(("scc", mapping[node]))
    channel_map: dict[int, int] = {}
    for channel in lis.channels():
        a, b = mapping[channel.src], mapping[channel.dst]
        if a == b:
            continue  # intra-SCC channel: absorbed by the collapse
        new_cid = collapsed.add_channel(
            ("scc", a),
            ("scc", b),
            queue=channel.data["queue"],
            relays=channel.data["relays"],
        )
        channel_map[new_cid] = channel.key
    return collapsed, channel_map


def total_extra_tokens(extra: dict[int, int] | Iterable[tuple[int, int]]) -> int:
    """Sum of a queue-sizing solution's extra tokens (its cost)."""
    if isinstance(extra, dict):
        return sum(extra.values())
    return sum(v for _, v in extra)
