"""The queue-sizing solver registry.

Every solver is registered under a short name with one normalized
instance-level signature::

    fn(instance: TokenDeficitInstance, *, timeout: float | None = None)
        -> tuple[dict[int, int], dict]

returning the residual weights plus a stats dict (``nodes_explored``,
``lp_bound``, ... -- solver specific).  :func:`get_solver` is the one
lookup used by :func:`~repro.core.solvers.size_queues`, the analysis
engine, and the benchmarks; third-party solvers plug in through
:func:`register_solver` and immediately work everywhere a method name
is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .exact import (
    solve_td_exact_instance,
    solve_td_exact_reference_instance,
)
from .greedy import solve_td_greedy_instance
from .heuristic import (
    solve_td_heuristic_instance,
    solve_td_heuristic_reference_instance,
)
from .milp import solve_td_milp_instance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from fractions import Fraction

    from ..lis_graph import LisGraph
    from ..token_deficit import TokenDeficitInstance

__all__ = ["Solver", "available_solvers", "get_solver", "register_solver"]

InstanceSolver = Callable[..., "tuple[dict[int, int], dict]"]


@dataclass(frozen=True)
class Solver:
    """A named queue-sizing algorithm.

    Attributes:
        name: Registry key (``size_queues(..., method=name)``).
        fn: The normalized instance-level solver.
        description: One-line summary shown by diagnostics.
        supports_timeout: Whether ``timeout`` is honoured (purely
            informational; every registered ``fn`` must *accept* it).
    """

    name: str
    fn: InstanceSolver = field(repr=False)
    description: str = ""
    supports_timeout: bool = False

    def solve_instance(
        self,
        instance: "TokenDeficitInstance",
        *,
        timeout: float | None = None,
    ) -> tuple[dict[int, int], dict]:
        """Solve a token-deficit instance's residual problem.

        Returns ``(weights, stats)``; forced weights are not included
        (merge with :meth:`TokenDeficitInstance.merge_forced`).
        """
        return self.fn(instance, timeout=timeout)

    def solve(
        self,
        lis: "LisGraph",
        *,
        target: "Fraction | None" = None,
        timeout: float | None = None,
        max_cycles: int | None = None,
        collapse: str = "auto",
        verify: bool = True,
    ):
        """Size the queues of ``lis`` with this solver (the normalized
        keyword set shared by every entrypoint); returns a
        :class:`~repro.core.solvers.QsSolution`."""
        from .facade import size_queues

        return size_queues(
            lis,
            method=self.name,
            target=target,
            timeout=timeout,
            max_cycles=max_cycles,
            collapse=collapse,
            verify=verify,
        )


_REGISTRY: dict[str, Solver] = {}


def register_solver(
    name: str,
    fn: InstanceSolver,
    description: str = "",
    supports_timeout: bool = False,
    overwrite: bool = False,
) -> Solver:
    """Register ``fn`` under ``name``; returns the :class:`Solver`."""
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"solver {name!r} already registered")
    solver = Solver(
        name=name,
        fn=fn,
        description=description,
        supports_timeout=supports_timeout,
    )
    _REGISTRY[name] = solver
    return solver


def get_solver(name: str) -> Solver:
    """Look up a registered solver by name (ValueError when unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown method {name!r} (available: {known})"
        ) from None


def available_solvers() -> tuple[str, ...]:
    """Registered solver names, sorted."""
    return tuple(sorted(_REGISTRY))


register_solver(
    "heuristic",
    solve_td_heuristic_instance,
    description="Section VII-B decrement-and-test descent (bitset kernel)",
)
register_solver(
    "heuristic-ref",
    solve_td_heuristic_reference_instance,
    description="pure-Python reference descent (kernel oracle)",
)
register_solver(
    "greedy",
    solve_td_greedy_instance,
    description="textbook set-cover marginal coverage",
)
register_solver(
    "exact",
    solve_td_exact_instance,
    description="binary search + branch and bound (optimal, bitset kernel)",
    supports_timeout=True,
)
register_solver(
    "exact-ref",
    solve_td_exact_reference_instance,
    description="pure-Python reference exact search (kernel oracle)",
    supports_timeout=True,
)
register_solver(
    "milp",
    solve_td_milp_instance,
    description="LP-based branch and bound (needs scipy)",
    supports_timeout=True,
)
