"""The high-level queue-sizing entry point.

:func:`size_queues` is the API most callers want: it builds the
token-deficit instance (optionally collapsing SCCs first, per the
paper's rule-4 simplification), dispatches to the requested solver
through the :mod:`~repro.core.solvers.registry`, maps the solution
back to channels of the original system, and verifies that the
restored MST matches the target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction

from ..cycles import collapse_sccs, is_collapsible
from ..lis_graph import LisGraph
from ..throughput import actual_mst, ideal_mst
from ..token_deficit import build_td_instance
from .registry import get_solver

__all__ = ["QsSolution", "size_queues"]


@dataclass(frozen=True)
class QsSolution:
    """A queue-sizing result.

    Attributes:
        extra_tokens: Channel id -> extra queue slots (tokens added to
            that channel's shell-side backedge), in terms of the
            *original* system's channel ids.
        cost: Total extra tokens.
        target: The throughput the solution restores.
        achieved: The verified MST of the doubled graph with the
            solution applied.
        method: The registry name of the solver that produced it.
        simplified: Whether the SCC collapse was applied.
        cycles_enumerated: Deficient cycles the solver reasoned about.
        elapsed: Solver wall-clock time in seconds (excluding cycle
            enumeration, matching the paper's CPU-time accounting).
        enumeration_elapsed: Cycle-enumeration wall-clock time.
    """

    extra_tokens: dict[int, int]
    cost: int
    target: Fraction
    achieved: Fraction
    method: str
    simplified: bool = False
    cycles_enumerated: int = 0
    elapsed: float = 0.0
    enumeration_elapsed: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def restores_target(self) -> bool:
        return self.achieved >= self.target

    @property
    def solver_calls(self) -> int:
        """Solver invocations behind this solution (for engine stats)."""
        return 1


def size_queues(
    lis: LisGraph,
    method: str = "heuristic",
    target: Fraction | None = None,
    collapse: str = "auto",
    timeout: float | None = None,
    max_cycles: int | None = None,
    verify: bool = True,
) -> QsSolution:
    """Size the queues of ``lis`` to eliminate MST degradation.

    Args:
        lis: The system (queues as configured form the baseline) -- a
            :class:`LisGraph`, or an :class:`repro.analysis.Context` so
            that multi-solver comparisons share one cycle enumeration
            (the ideal MST, the collapse, and the verification lowering
            are then all served from the context's artifact cache).
        method: A registered solver name -- ``"heuristic"`` (Section
            VII-B descent), ``"greedy"`` (set-cover marginal coverage),
            ``"exact"`` (binary search + branch and bound), ``"milp"``
            (the Lu--Koh-style LP branch and bound; needs scipy), or
            anything added via
            :func:`~repro.core.solvers.register_solver`.  The exact and
            MILP solvers may raise :class:`ExactTimeout`.
        target: Throughput to restore; default = the ideal MST.
        collapse: ``"auto"`` collapses SCCs when the topology allows it
            (relay stations only between SCCs), ``"never"`` works on
            the full graph, ``"always"`` requires collapsibility.
        timeout: Wall-clock budget for timeout-aware solvers.
        max_cycles: Cycle-enumeration budget (raises
            :class:`~repro.graphs.CycleExplosionError` beyond it).
        verify: Re-analyze the doubled graph with the solution applied
            and record the achieved MST (cheap; disable only in tight
            benchmarking loops).

    Returns:
        A :class:`QsSolution` whose ``extra_tokens`` refer to channels
        of the input system.
    """
    solver = get_solver(method)
    if collapse not in ("auto", "never", "always"):
        raise ValueError(f"unknown collapse mode {collapse!r}")

    goal = target if target is not None else ideal_mst(lis).mst
    if not 0 < goal <= 1:
        raise ValueError(
            f"target throughput must be in (0, 1], got {goal}"
        )

    use_collapse = (
        collapse == "always"
        or (collapse == "auto" and is_collapsible(lis))
    )
    channel_map: dict[int, int] | None = None
    work = lis
    if use_collapse:
        if hasattr(lis, "collapsed"):  # a repro.analysis.Context
            work, channel_map = lis.collapsed()
        else:
            work, channel_map = collapse_sccs(lis)

    t0 = time.monotonic()
    instance = build_td_instance(
        work, target=goal, max_cycles=max_cycles, simplify=True
    )
    t1 = time.monotonic()
    weights, stats = solver.solve_instance(instance, timeout=timeout)
    t2 = time.monotonic()

    merged = instance.merge_forced(weights)
    if channel_map is not None:
        merged = {channel_map[cid]: tokens for cid, tokens in merged.items()}

    achieved = actual_mst(lis, merged).mst if verify else goal
    return QsSolution(
        extra_tokens=merged,
        cost=sum(merged.values()),
        target=goal,
        achieved=achieved,
        method=solver.name,
        simplified=use_collapse,
        cycles_enumerated=len(instance.cycles),
        elapsed=t2 - t1,
        enumeration_elapsed=t1 - t0,
        stats=stats,
    )
