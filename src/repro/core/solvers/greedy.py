"""A greedy set-cover queue-sizing solver.

The token-deficit problem is a covering problem, so the classical
greedy rule applies: repeatedly add one token to the sizable edge
whose coverage helps the most still-deficient cycles.  This is *not*
the paper's heuristic (Section VII-B starts from a feasible assignment
and descends); it serves as an independent baseline with the textbook
H(n)-approximation guarantee, and the ablation benchmarks compare the
two greedy philosophies against the exact optimum.
"""

from __future__ import annotations

from .. import token_deficit as td
from ._compat import solver_entrypoint
from .kernel import empty_stats

__all__ = ["solve_td_greedy", "solve_td_greedy_instance"]


def solve_td_greedy_instance(
    instance: td.TokenDeficitInstance, *, timeout: float | None = None
) -> tuple[dict[int, int], dict]:
    """Normalized registry signature: ``(weights, stats)``.

    ``timeout`` is accepted for signature uniformity but not consulted
    (the cover loop terminates in at most total-deficit iterations).
    The stats carry the uniform zero-valued search counters so every
    registry solver renders in one ``repro stats`` table.
    """
    stats = empty_stats()
    stats["backend"] = "reference"
    return _cover(instance), stats


@solver_entrypoint("greedy")
def solve_td_greedy(instance: td.TokenDeficitInstance) -> dict[int, int]:
    """Residual-problem weights found by greedy marginal coverage.

    Normalized entrypoint: pass a LisGraph plus any of ``target``,
    ``timeout``, ``max_cycles``, ``collapse`` for a
    :class:`~repro.core.solvers.QsSolution`; the instance-passing
    signature is deprecated (see :mod:`repro.core.solvers.registry`).
    """
    return _cover(instance)


def _cover(instance: td.TokenDeficitInstance) -> dict[int, int]:
    """Each iteration grants one token to the channel covering the
    largest number of cycles with positive residual deficit (ties
    broken by the smallest channel id, for determinism), until nothing
    is deficient.
    """
    residual = dict(instance.deficits)
    weights: dict[int, int] = {}
    while residual:
        best_channel = None
        best_gain = 0
        for channel in sorted(instance.sets):
            gain = sum(
                1 for idx in instance.sets[channel] if idx in residual
            )
            if gain > best_gain:
                best_gain, best_channel = gain, channel
        if best_channel is None:
            raise td.InfeasibleError(
                "deficient cycles remain with no covering channel"
            )
        weights[best_channel] = weights.get(best_channel, 0) + 1
        for idx in list(instance.sets[best_channel]):
            if idx not in residual:
                continue
            residual[idx] -= 1
            if residual[idx] <= 0:
                del residual[idx]
    return weights
