"""An (M)ILP reference solver for queue sizing.

Previous work (Lu & Koh, ICCAD'03 / TCAD'06) solves queue sizing with
mixed integer linear programming; the paper positions its
cycle-correlation approach against that baseline.  For comparison and
cross-validation, this module formulates the token-deficit problem as
the natural covering integer program

    minimize    sum_e w_e
    subject to  sum_{e : cycle c crosses e} w_e  >=  deficit(c)
                w_e >= 0, integer

and solves it by branch-and-bound over LP relaxations
(:func:`scipy.optimize.linprog`, HiGHS).  The LP relaxation also
yields a fractional lower bound, used by tests and the ablation
benchmarks to bracket the heuristic.

This module is optional: it is the only part of the library that
imports :mod:`scipy`, and it degrades with a clear error when scipy is
unavailable.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from .. import token_deficit as td
from ._compat import solver_entrypoint
from .exact import ExactTimeout
from .kernel import compile_td, empty_stats, kernel_enabled

__all__ = [
    "MilpOutcome",
    "lp_lower_bound",
    "solve_td_milp",
    "solve_td_milp_instance",
]

_EPS = 1e-6


def _require_scipy():
    try:
        from scipy.optimize import linprog
    except ImportError as exc:  # pragma: no cover - scipy present in CI
        raise ImportError(
            "the MILP reference solver requires scipy; install it or use "
            "method='exact'"
        ) from exc
    return linprog


@dataclass(frozen=True)
class MilpOutcome:
    """Result of the branch-and-bound ILP solve (residual problem).

    Attributes:
        weights: Optimal integer weights (channel id -> tokens).
        cost: Total tokens (== sum of weights).
        lp_bound: The root LP relaxation's optimal value.
        nodes_explored: Branch-and-bound nodes solved.
        batch_checks: Kernel batch-feasibility rows spent validating
            the ceil-rounded root-LP warm start (0 with the kernel off).
    """

    weights: dict[int, int]
    cost: int
    lp_bound: float
    nodes_explored: int
    batch_checks: int = 0


def _build_rows(instance: td.TokenDeficitInstance):
    """Constraint matrix rows of the covering LP."""
    channels = sorted(instance.sets)
    index = {ch: i for i, ch in enumerate(channels)}
    rows = []
    rhs = []
    for cycle_idx, deficit in instance.deficits.items():
        row = [0.0] * len(channels)
        for channel in instance.covering_channels(cycle_idx):
            row[index[channel]] = -1.0  # linprog uses A_ub x <= b_ub
        rows.append(row)
        rhs.append(-float(deficit))
    return channels, rows, rhs


def lp_lower_bound(instance: td.TokenDeficitInstance) -> float:
    """Optimal value of the fractional relaxation (0 when trivial).

    Any integer solution costs at least this much; the bound excludes
    the instance's forced weights.
    """
    if instance.is_trivial:
        return 0.0
    linprog = _require_scipy()
    channels, rows, rhs = _build_rows(instance)
    result = linprog(
        c=[1.0] * len(channels),
        A_ub=rows,
        b_ub=rhs,
        bounds=[(0, None)] * len(channels),
        method="highs",
    )
    if not result.success:  # pragma: no cover - covering LPs are feasible
        raise RuntimeError(f"LP relaxation failed: {result.message}")
    return float(result.fun)


def solve_td_milp_instance(
    instance: td.TokenDeficitInstance,
    *,
    timeout: float | None = None,
) -> tuple[dict[int, int], dict]:
    """Normalized registry signature: ``(weights, stats)``."""
    outcome = _branch_and_bound(instance, timeout=timeout)
    stats = empty_stats()
    stats["nodes_explored"] = outcome.nodes_explored
    stats["batch_checks"] = outcome.batch_checks
    stats["lp_bound"] = outcome.lp_bound
    stats["backend"] = "milp"
    return outcome.weights, stats


@solver_entrypoint("milp")
def solve_td_milp(
    instance: td.TokenDeficitInstance,
    timeout: float | None = None,
) -> MilpOutcome:
    """Minimum-cost integer solution via LP-based branch and bound.

    Normalized entrypoint: pass a LisGraph plus any of ``target``,
    ``timeout``, ``max_cycles``, ``collapse`` for a
    :class:`~repro.core.solvers.QsSolution`; the instance-passing
    signature is deprecated (see :mod:`repro.core.solvers.registry`).
    """
    return _branch_and_bound(instance, timeout=timeout)


def _branch_and_bound(
    instance: td.TokenDeficitInstance,
    timeout: float | None = None,
) -> MilpOutcome:
    """Branches on the most fractional variable of each relaxation;
    prunes with ``ceil(LP value) >= incumbent``.  Raises
    :class:`~repro.core.solvers.exact.ExactTimeout` on expiry of
    ``timeout`` (wall-clock seconds).
    """
    if instance.is_trivial:
        return MilpOutcome(weights={}, cost=0, lp_bound=0.0, nodes_explored=0)
    linprog = _require_scipy()
    channels, rows, rhs = _build_rows(instance)
    n = len(channels)
    deadline = None if timeout is None else time.monotonic() + timeout

    # Incumbent from the trivially feasible per-channel max assignment.
    from .heuristic import _descend

    incumbent = _descend(instance)
    best_cost = sum(incumbent.values())
    best = {ch: incumbent.get(ch, 0) for ch in channels}

    kern = compile_td(instance) if kernel_enabled() else None
    batch_checks = 0
    root_bound: float | None = None
    nodes = 0
    # Each frame: (lower_bounds, upper_bounds) per variable.
    stack: list[tuple[list[float], list[float | None]]] = [
        ([0.0] * n, [None] * n)
    ]
    while stack:
        if deadline is not None and time.monotonic() > deadline:
            raise ExactTimeout
        lo, hi = stack.pop()
        result = linprog(
            c=[1.0] * n,
            A_ub=rows,
            b_ub=rhs,
            bounds=list(zip(lo, hi)),
            method="highs",
        )
        nodes += 1
        if root_bound is None:
            root_bound = float(result.fun) if result.success else math.inf
            if result.success and kern is not None:
                # Warm start: ceil-rounding the root relaxation of a
                # covering LP is always feasible; the kernel's batch
                # check validates the candidate before it replaces the
                # descent incumbent.
                candidate = [math.ceil(xi - _EPS) for xi in result.x]
                before = kern.stats.batch_checks
                feasible = bool(
                    kern.check_batch(
                        [
                            {
                                ch: w
                                for ch, w in zip(channels, candidate)
                                if w
                            }
                        ]
                    )[0]
                )
                batch_checks += kern.stats.batch_checks - before
                if feasible and sum(candidate) < best_cost:
                    best_cost = sum(candidate)
                    best = dict(zip(channels, candidate))
        if not result.success:
            continue  # infeasible branch
        value = float(result.fun)
        if math.ceil(value - _EPS) >= best_cost:
            continue  # cannot beat the incumbent
        x = result.x
        # Most fractional variable.
        frac_idx = -1
        frac_dist = _EPS
        for i, xi in enumerate(x):
            dist = abs(xi - round(xi))
            if dist > frac_dist:
                frac_dist, frac_idx = dist, i
        if frac_idx < 0:
            # Integral optimum for this node.
            cost = round(value)
            if cost < best_cost:
                best_cost = cost
                best = {
                    ch: int(round(xi)) for ch, xi in zip(channels, x)
                }
            continue
        xi = x[frac_idx]
        down_hi = list(hi)
        down_hi[frac_idx] = math.floor(xi)
        up_lo = list(lo)
        up_lo[frac_idx] = math.ceil(xi)
        stack.append((list(lo), down_hi))
        stack.append((up_lo, list(hi)))

    weights = {ch: w for ch, w in best.items() if w > 0}
    return MilpOutcome(
        weights=weights,
        cost=best_cost,
        lp_bound=root_bound or 0.0,
        nodes_explored=nodes,
        batch_checks=batch_checks,
    )
