"""The paper's heuristic queue-sizing algorithm (Section VII-B).

Given a token-deficit instance, start from the trivially feasible
assignment ``w(s_i) = max deficit among s_i's cycles`` and then walk
rounds of decrement-and-test: each unfixed edge weight is lowered by
one; if the assignment stops being a solution the decrement is undone
and that weight is *fixed*.  Rounds repeat while any weight is unfixed.

The complexity is O(|S|^2 |V| |C|) as analyzed in the paper: each
feasibility check costs O(|S||C|) and the total weight, bounded by
|S||V|, shrinks by at least one per round except the last round for
each edge.
"""

from __future__ import annotations

from .. import token_deficit as td
from ._compat import solver_entrypoint
from .kernel import compile_td, empty_stats, kernel_enabled

__all__ = [
    "solve_td_heuristic",
    "solve_td_heuristic_instance",
    "solve_td_heuristic_reference_instance",
]


def solve_td_heuristic_instance(
    instance: td.TokenDeficitInstance, *, timeout: float | None = None
) -> tuple[dict[int, int], dict]:
    """Normalized registry signature: ``(weights, stats)``.

    The descent always terminates quickly, so ``timeout`` is accepted
    for signature uniformity but not consulted.  Runs on the compiled
    kernel (incremental coverage vector) unless ``REPRO_TD_KERNEL=0``;
    both backends return bit-for-bit identical weights.
    """
    if kernel_enabled() and not instance.is_trivial:
        kern = compile_td(instance)
        stats = empty_stats()
        stats["backend"] = "kernel"
        return kern.solve_heuristic(), stats
    return solve_td_heuristic_reference_instance(instance, timeout=timeout)


def solve_td_heuristic_reference_instance(
    instance: td.TokenDeficitInstance, *, timeout: float | None = None
) -> tuple[dict[int, int], dict]:
    """The pure-Python reference descent (registry name
    ``heuristic-ref``): the differential oracle for the kernel."""
    stats = empty_stats()
    stats["backend"] = "reference"
    return _descend(instance), stats


@solver_entrypoint("heuristic")
def solve_td_heuristic(instance: td.TokenDeficitInstance) -> dict[int, int]:
    """Residual-problem weights found by the greedy descent.

    Normalized entrypoint: pass a :class:`~repro.core.lis_graph.LisGraph`
    plus any of ``target``, ``timeout``, ``max_cycles``, ``collapse``
    to get a :class:`~repro.core.solvers.QsSolution`.  Passing a
    :class:`TokenDeficitInstance` (the pre-registry signature) still
    returns ``{channel id: extra tokens}`` over the instance's residual
    problem (forced weights are *not* included; merge with
    :meth:`TokenDeficitInstance.merge_forced`) but is deprecated --
    use ``get_solver("heuristic").solve_instance(...)``.
    """
    return _descend(instance)


def _descend(instance: td.TokenDeficitInstance) -> dict[int, int]:
    if instance.is_trivial:
        return {}

    # Initial feasible assignment: each edge covers its worst cycle alone.
    weights: dict[int, int] = {}
    for channel, cycles in instance.sets.items():
        covered = [instance.deficits[idx] for idx in cycles if idx in instance.deficits]
        weights[channel] = max(covered, default=0)
    if not instance.is_solution(weights):  # pragma: no cover - by construction
        raise td.InfeasibleError("initial max-deficit assignment infeasible")

    fixed: set[int] = set()
    # Deterministic iteration order makes runs reproducible.
    order = sorted(weights)
    while len(fixed) < len(weights):
        for channel in order:
            if channel in fixed:
                continue
            if weights[channel] == 0:
                fixed.add(channel)
                continue
            weights[channel] -= 1
            if not instance.is_solution(weights):
                weights[channel] += 1
                fixed.add(channel)
    return {ch: w for ch, w in weights.items() if w > 0}
