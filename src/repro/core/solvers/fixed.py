"""Fixed (uniform) queue sizing (Section IV and Fig. 17).

Fixed QS sets every queue in the system to the same depth ``q``.  It is
provably optimal at q = 1 for trees and SCCs without reconvergent
paths, always safe at q = r + 1, and empirically recovers most of the
MST at small q for general topologies (Fig. 17).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from ..lis_graph import LisGraph
from ..throughput import actual_mst, ideal_mst
from ..topology import conservative_fixed_queue

__all__ = ["fixed_qs_mst", "fixed_qs_profile", "minimal_fixed_q"]


def fixed_qs_mst(lis: LisGraph, q: int) -> Fraction:
    """MST of the practical LIS with every queue set to ``q``.

    The input LIS is not mutated.
    """
    trial = lis.copy()
    trial.set_all_queues(q)
    return actual_mst(trial).mst


def fixed_qs_profile(
    lis: LisGraph, qs: Iterable[int]
) -> dict[int, Fraction]:
    """``{q: MST(q)}`` for each candidate uniform queue size (Fig. 17)."""
    return {q: fixed_qs_mst(lis, q) for q in qs}


def minimal_fixed_q(lis: LisGraph, q_max: int | None = None) -> int:
    """The smallest uniform queue size recovering the ideal MST.

    MST is monotone non-decreasing in q (extra backedge tokens can only
    raise cycle means), so binary search applies.  The conservative
    bound q = r + 1 guarantees a solution exists at or below ``q_max``'s
    default.
    """
    target = ideal_mst(lis).mst
    high = conservative_fixed_queue(lis) if q_max is None else q_max
    if fixed_qs_mst(lis, high) < target:
        raise ValueError(
            f"no uniform queue size up to {high} recovers the ideal MST"
        )
    low = 1
    while low < high:
        mid = (low + high) // 2
        if fixed_qs_mst(lis, mid) >= target:
            high = mid
        else:
            low = mid + 1
    return low
