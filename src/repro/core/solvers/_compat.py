"""Entrypoint normalization for the ``solve_td_*`` family.

Every public solver entrypoint accepts the same keyword set --
``target``, ``timeout``, ``max_cycles``, ``collapse`` (plus
``verify``) -- and understands two first arguments:

* a :class:`~repro.core.lis_graph.LisGraph`: the normalized path.  The
  token-deficit instance is built internally (honouring ``target``,
  ``max_cycles`` and ``collapse``) and a full
  :class:`~repro.core.solvers.QsSolution` comes back;
* a :class:`~repro.core.token_deficit.TokenDeficitInstance`: the
  pre-registry signature, kept working through this shim but reported
  with a :class:`DeprecationWarning` -- instance-level callers should
  move to ``get_solver(name).solve_instance(...)``.
"""

from __future__ import annotations

import functools
import inspect
import warnings

_UNIFIED = ("target", "timeout", "max_cycles", "collapse", "verify")


def solver_entrypoint(name: str):
    """Decorator turning a legacy instance solver into a normalized
    entrypoint (see module docstring)."""

    def decorate(legacy_fn):
        legacy_params = frozenset(
            inspect.signature(legacy_fn).parameters
        )

        @functools.wraps(legacy_fn)
        def wrapper(system, *args, **kwargs):
            from ..token_deficit import TokenDeficitInstance

            if isinstance(system, TokenDeficitInstance):
                warnings.warn(
                    f"passing a TokenDeficitInstance to solve_td_{name}() "
                    f"is deprecated; use "
                    f"get_solver({name!r}).solve_instance(instance) or "
                    f"pass the LisGraph itself",
                    DeprecationWarning,
                    stacklevel=2,
                )
                # Uniform keywords the legacy body has no use for
                # (e.g. ``timeout`` on the heuristic) are accepted and
                # dropped; everything else goes through unchanged.
                kwargs = {
                    k: v
                    for k, v in kwargs.items()
                    if k in legacy_params or k not in _UNIFIED
                }
                return legacy_fn(system, *args, **kwargs)

            if args:
                raise TypeError(
                    f"solve_td_{name}() takes keyword-only options "
                    f"({', '.join(_UNIFIED)}) when given a LisGraph"
                )
            unknown = set(kwargs) - set(_UNIFIED)
            if unknown:
                raise TypeError(
                    f"solve_td_{name}() got unexpected keyword(s) "
                    f"{sorted(unknown)}; the normalized set is "
                    f"{', '.join(_UNIFIED)}"
                )
            from .facade import size_queues

            return size_queues(system, method=name, **kwargs)

        return wrapper

    return decorate
