"""Queue-sizing solvers: the heuristic and exact algorithms of Section
VII-B plus fixed uniform sizing, behind one high-level entry point.

:func:`size_queues` is the API most callers want: it builds the
token-deficit instance (optionally collapsing SCCs first, per the
paper's rule-4 simplification), runs the requested solver, maps the
solution back to channels of the original system, and verifies that the
restored MST matches the target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction

from ..cycles import collapse_sccs, is_collapsible
from ..lis_graph import LisGraph
from ..throughput import actual_mst, ideal_mst
from ..token_deficit import InfeasibleError, build_td_instance
from .exact import ExactOutcome, ExactTimeout, solve_td_exact
from .fixed import fixed_qs_mst, fixed_qs_profile, minimal_fixed_q
from .greedy import solve_td_greedy
from .heuristic import solve_td_heuristic
from .milp import MilpOutcome, lp_lower_bound, solve_td_milp

__all__ = [
    "QsSolution",
    "size_queues",
    "solve_td_heuristic",
    "solve_td_greedy",
    "solve_td_exact",
    "solve_td_milp",
    "lp_lower_bound",
    "ExactOutcome",
    "ExactTimeout",
    "MilpOutcome",
    "InfeasibleError",
    "fixed_qs_mst",
    "fixed_qs_profile",
    "minimal_fixed_q",
]


@dataclass(frozen=True)
class QsSolution:
    """A queue-sizing result.

    Attributes:
        extra_tokens: Channel id -> extra queue slots (tokens added to
            that channel's shell-side backedge), in terms of the
            *original* system's channel ids.
        cost: Total extra tokens.
        target: The throughput the solution restores.
        achieved: The verified MST of the doubled graph with the
            solution applied.
        method: ``"heuristic"`` or ``"exact"``.
        simplified: Whether the SCC collapse was applied.
        cycles_enumerated: Deficient cycles the solver reasoned about.
        elapsed: Solver wall-clock time in seconds (excluding cycle
            enumeration, matching the paper's CPU-time accounting).
        enumeration_elapsed: Cycle-enumeration wall-clock time.
    """

    extra_tokens: dict[int, int]
    cost: int
    target: Fraction
    achieved: Fraction
    method: str
    simplified: bool = False
    cycles_enumerated: int = 0
    elapsed: float = 0.0
    enumeration_elapsed: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def restores_target(self) -> bool:
        return self.achieved >= self.target


def size_queues(
    lis: LisGraph,
    method: str = "heuristic",
    target: Fraction | None = None,
    collapse: str = "auto",
    timeout: float | None = None,
    max_cycles: int | None = None,
    verify: bool = True,
) -> QsSolution:
    """Size the queues of ``lis`` to eliminate MST degradation.

    Args:
        lis: The system (queues as configured form the baseline).
        method: ``"heuristic"`` (Section VII-B descent), ``"greedy"``
            (set-cover marginal coverage), ``"exact"`` (binary search +
            branch and bound), or ``"milp"`` (the Lu--Koh-style LP
            branch and bound; needs scipy).  The latter two may raise
            :class:`ExactTimeout`.
        target: Throughput to restore; default = the ideal MST.
        collapse: ``"auto"`` collapses SCCs when the topology allows it
            (relay stations only between SCCs), ``"never"`` works on
            the full graph, ``"always"`` requires collapsibility.
        timeout: Wall-clock budget for the exact solver.
        max_cycles: Cycle-enumeration budget (raises
            :class:`~repro.graphs.CycleExplosionError` beyond it).
        verify: Re-analyze the doubled graph with the solution applied
            and record the achieved MST (cheap; disable only in tight
            benchmarking loops).

    Returns:
        A :class:`QsSolution` whose ``extra_tokens`` refer to channels
        of the input system.
    """
    if method not in ("heuristic", "greedy", "exact", "milp"):
        raise ValueError(f"unknown method {method!r}")
    if collapse not in ("auto", "never", "always"):
        raise ValueError(f"unknown collapse mode {collapse!r}")

    goal = target if target is not None else ideal_mst(lis).mst
    if not 0 < goal <= 1:
        raise ValueError(
            f"target throughput must be in (0, 1], got {goal}"
        )

    use_collapse = (
        collapse == "always"
        or (collapse == "auto" and is_collapsible(lis))
    )
    channel_map: dict[int, int] | None = None
    work = lis
    if use_collapse:
        work, channel_map = collapse_sccs(lis)

    t0 = time.monotonic()
    instance = build_td_instance(
        work, target=goal, max_cycles=max_cycles, simplify=True
    )
    t1 = time.monotonic()
    if method == "heuristic":
        weights = solve_td_heuristic(instance)
        stats = {}
    elif method == "greedy":
        weights = solve_td_greedy(instance)
        stats = {}
    elif method == "exact":
        outcome = solve_td_exact(instance, timeout=timeout)
        weights = outcome.weights
        stats = {"nodes_explored": outcome.nodes_explored}
    else:
        milp = solve_td_milp(instance, timeout=timeout)
        weights = milp.weights
        stats = {
            "nodes_explored": milp.nodes_explored,
            "lp_bound": milp.lp_bound,
        }
    t2 = time.monotonic()

    merged = instance.merge_forced(weights)
    if channel_map is not None:
        merged = {channel_map[cid]: tokens for cid, tokens in merged.items()}

    achieved = actual_mst(lis, merged).mst if verify else goal
    return QsSolution(
        extra_tokens=merged,
        cost=sum(merged.values()),
        target=goal,
        achieved=achieved,
        method=method,
        simplified=use_collapse,
        cycles_enumerated=len(instance.cycles),
        elapsed=t2 - t1,
        enumeration_elapsed=t1 - t0,
        stats=stats,
    )
