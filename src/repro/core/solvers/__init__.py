"""Queue-sizing solvers: the heuristic and exact algorithms of Section
VII-B plus fixed uniform sizing, behind one high-level entry point.

:func:`size_queues` is the API most callers want; it dispatches to a
named algorithm through the solver registry (:func:`get_solver` /
:func:`register_solver`), so external solvers plug in uniformly.  All
``solve_td_*`` entrypoints share one normalized keyword set --
``target``, ``timeout``, ``max_cycles``, ``collapse`` -- when given a
:class:`~repro.core.lis_graph.LisGraph`; the older instance-passing
signatures keep working behind :class:`DeprecationWarning` shims.
"""

from __future__ import annotations

from ..token_deficit import InfeasibleError
from .exact import (
    ExactOutcome,
    ExactTimeout,
    solve_td_exact,
    solve_td_exact_instance,
    solve_td_exact_reference_instance,
)
from .facade import QsSolution, size_queues
from .fixed import fixed_qs_mst, fixed_qs_profile, minimal_fixed_q
from .greedy import solve_td_greedy, solve_td_greedy_instance
from .heuristic import (
    solve_td_heuristic,
    solve_td_heuristic_instance,
    solve_td_heuristic_reference_instance,
)
from .kernel import (
    KernelStats,
    NodeLimitReached,
    TdKernel,
    compile_td,
    kernel_enabled,
)
from .milp import (
    MilpOutcome,
    lp_lower_bound,
    solve_td_milp,
    solve_td_milp_instance,
)
from .registry import Solver, available_solvers, get_solver, register_solver

__all__ = [
    "QsSolution",
    "size_queues",
    "Solver",
    "available_solvers",
    "get_solver",
    "register_solver",
    "compile_td",
    "TdKernel",
    "KernelStats",
    "NodeLimitReached",
    "kernel_enabled",
    "solve_td_heuristic",
    "solve_td_heuristic_instance",
    "solve_td_heuristic_reference_instance",
    "solve_td_greedy",
    "solve_td_greedy_instance",
    "solve_td_exact",
    "solve_td_exact_instance",
    "solve_td_exact_reference_instance",
    "solve_td_milp",
    "solve_td_milp_instance",
    "lp_lower_bound",
    "ExactOutcome",
    "ExactTimeout",
    "MilpOutcome",
    "InfeasibleError",
    "fixed_qs_mst",
    "fixed_qs_profile",
    "minimal_fixed_q",
]
