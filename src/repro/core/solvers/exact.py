"""Exact queue sizing (Section VII-B): binary search over a bounded
search tree.

The paper's exact algorithm replicates each set so that all weights are
0/1 and then binary-searches the budget ``K`` between 1 and the
heuristic solution, answering each "is there a solution with at most K
extra tokens?" query with a depth-K search tree.  We implement the same
scheme as a depth-first search that adds one token per level: at each
node, pick the cycle with the largest residual deficit and branch on
which of its covering channels receives the next token.  Pruning: a
branch dies when its remaining budget is below the largest residual
deficit (every extra token helps a given cycle by at most one).

The worst case remains exponential -- optimal QS is NP-complete
(Section V) -- so the solver takes a wall-clock timeout and reports
whether it finished, mirroring the paper's "% Exact finished" column.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .. import token_deficit as td
from ._compat import solver_entrypoint
from .kernel import DEADLINE_STRIDE as _DEADLINE_STRIDE
from .kernel import compile_td, empty_stats, kernel_enabled

__all__ = [
    "ExactOutcome",
    "ExactTimeout",
    "solve_td_exact",
    "solve_td_exact_instance",
    "solve_td_exact_reference_instance",
]


class ExactTimeout(Exception):
    """The exact search exceeded its wall-clock budget.

    Attributes:
        overshoot: Seconds past the deadline when the in-DFS check
            fired (0.0 when raised between bisection probes).
    """

    def __init__(self, message: str = "", overshoot: float = 0.0) -> None:
        super().__init__(message or "exact search timed out")
        self.overshoot = overshoot


@dataclass(frozen=True)
class ExactOutcome:
    """Result of the exact search on a TD instance (residual problem).

    Attributes:
        weights: Optimal residual weights (channel id -> tokens).
        cost: Total residual tokens (== sum of weights).
        nodes_explored: Search-tree nodes visited across all K rounds.
    """

    weights: dict[int, int]
    cost: int
    nodes_explored: int


def _feasible_with_budget(
    instance: td.TokenDeficitInstance,
    budget: int,
    deadline: float | None,
    counter: list[int],
) -> dict[int, int] | None:
    """Depth-first search for a solution using at most ``budget`` tokens."""
    deficits = dict(instance.deficits)
    weights: dict[int, int] = {}

    # Precompute cycle -> covering channels once.
    covers: dict[int, tuple[int, ...]] = {
        idx: tuple(sorted(instance.covering_channels(idx)))
        for idx in deficits
    }

    def dfs(remaining: int) -> bool:
        counter[0] += 1
        if deadline is not None and counter[0] % _DEADLINE_STRIDE == 0:
            now = time.monotonic()
            if now > deadline:
                raise ExactTimeout(overshoot=now - deadline)
        # Find the worst uncovered cycle.
        worst_idx = -1
        worst = 0
        for idx, need in deficits.items():
            if need > worst:
                worst, worst_idx = need, idx
        if worst_idx < 0:
            return True
        if worst > remaining:
            return False
        for channel in covers[worst_idx]:
            weights[channel] = weights.get(channel, 0) + 1
            touched = []
            for idx in instance.sets[channel]:
                if idx in deficits:
                    deficits[idx] -= 1
                    touched.append(idx)
            emptied = [idx for idx in touched if deficits[idx] == 0]
            for idx in emptied:
                del deficits[idx]
            if dfs(remaining - 1):
                return True
            for idx in emptied:
                deficits[idx] = 0
            for idx in touched:
                deficits[idx] += 1
            weights[channel] -= 1
            if weights[channel] == 0:
                del weights[channel]
        return False

    if dfs(budget):
        return dict(weights)
    return None


def solve_td_exact_instance(
    instance: td.TokenDeficitInstance,
    *,
    timeout: float | None = None,
    upper_bound: int | None = None,
) -> tuple[dict[int, int], dict]:
    """Normalized registry signature: ``(weights, stats)``.

    Runs on the bitset-compiled kernel (:mod:`.kernel`) unless
    ``REPRO_TD_KERNEL=0`` routes it through the pure-Python reference
    search.  Both return the optimal residual cost; the witness weights
    may differ between backends (ties in the search order).
    """
    if kernel_enabled():
        if instance.is_trivial:
            stats = empty_stats()
            stats["backend"] = "kernel"
            stats["deadline_overshoot"] = 0.0
            return {}, stats
        kern = compile_td(instance)
        weights, kstats = kern.solve_exact(
            upper_bound=upper_bound, timeout=timeout
        )
        stats = kstats.as_dict()
        stats["backend"] = "kernel"
        stats["deadline_overshoot"] = kstats.deadline_overshoot
        return weights, stats
    return solve_td_exact_reference_instance(
        instance, timeout=timeout, upper_bound=upper_bound
    )


def solve_td_exact_reference_instance(
    instance: td.TokenDeficitInstance,
    *,
    timeout: float | None = None,
    upper_bound: int | None = None,
) -> tuple[dict[int, int], dict]:
    """The pure-Python reference search (registry name ``exact-ref``):
    the differential oracle the kernel is validated against."""
    outcome = _search(instance, upper_bound=upper_bound, timeout=timeout)
    stats = empty_stats()
    stats["nodes_explored"] = outcome.nodes_explored
    stats["backend"] = "reference"
    return outcome.weights, stats


@solver_entrypoint("exact")
def solve_td_exact(
    instance: td.TokenDeficitInstance,
    upper_bound: int | None = None,
    timeout: float | None = None,
) -> ExactOutcome:
    """Minimum-cost solution of a TD instance's residual problem.

    Normalized entrypoint: pass a LisGraph plus any of ``target``,
    ``timeout``, ``max_cycles``, ``collapse`` for a
    :class:`~repro.core.solvers.QsSolution`; the instance-passing
    signature below is deprecated (see
    :mod:`repro.core.solvers.registry`).

    Args:
        instance: The (ideally simplified) TD instance.
        upper_bound: A known-feasible cost; defaults to the heuristic
            solution's cost, as in the paper.
        timeout: Optional wall-clock limit in seconds; on expiry
            :class:`ExactTimeout` is raised.
    """
    return _search(instance, upper_bound=upper_bound, timeout=timeout)


def _search(
    instance: td.TokenDeficitInstance,
    upper_bound: int | None = None,
    timeout: float | None = None,
) -> ExactOutcome:
    """Binary-search K in ``[max residual deficit, upper bound]`` --
    feasibility is monotone in K, so the standard bisection applies.
    """
    from .heuristic import _descend

    deadline = None if timeout is None else time.monotonic() + timeout
    counter = [0]

    if instance.is_trivial:
        return ExactOutcome(weights={}, cost=0, nodes_explored=0)

    if upper_bound is None:
        upper_bound = sum(_descend(instance).values())

    # No single cycle can be fixed with fewer tokens than its deficit.
    low = max(instance.deficits.values())
    high = upper_bound
    best: dict[int, int] | None = None
    while low < high:
        if deadline is not None and time.monotonic() > deadline:
            raise ExactTimeout
        mid = (low + high) // 2
        found = _feasible_with_budget(instance, mid, deadline, counter)
        if found is not None:
            best = found
            high = sum(found.values())
        else:
            low = mid + 1
    if best is None or sum(best.values()) > low:
        if deadline is not None and time.monotonic() > deadline:
            raise ExactTimeout
        best = _feasible_with_budget(instance, low, deadline, counter)
        if best is None:  # pragma: no cover - upper bound is feasible
            raise RuntimeError("binary search converged on infeasible budget")
    return ExactOutcome(
        weights=best, cost=sum(best.values()), nodes_explored=counter[0]
    )
